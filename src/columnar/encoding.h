#ifndef FEISU_COLUMNAR_ENCODING_H_
#define FEISU_COLUMNAR_ENCODING_H_

#include <string>

#include "common/result.h"
#include "columnar/column_vector.h"

namespace feisu {

/// Column encodings used inside ColumnarBlock. Feisu's format is
/// "compression-friendly": the encoder picks the cheapest representation
/// per column chunk based on simple data statistics.
enum class Encoding : uint8_t {
  kPlain = 0,    ///< raw values
  kRle = 1,      ///< (value, run-length) pairs — int64/bool with long runs
  kDict = 2,     ///< dictionary + codes — low-cardinality strings
  kBitPack = 3,  ///< frame-of-reference bit packing — small-domain int64
};

const char* EncodingName(Encoding encoding);

/// A serialized column chunk: chosen encoding + payload bytes (which embed
/// the validity bitmap first).
struct EncodedColumn {
  Encoding encoding = Encoding::kPlain;
  std::string payload;
};

/// Encodes a column, automatically choosing the encoding.
EncodedColumn EncodeColumn(const ColumnVector& column);

/// Encodes with a forced encoding (tests / ablations). Falls back to plain
/// if the encoding does not apply to the column type.
EncodedColumn EncodeColumnAs(const ColumnVector& column, Encoding encoding);

/// Decodes an encoded chunk back into a column of `type`.
///
/// With a non-null `selection` (selection.size() == encoded row count) only
/// rows whose bit is set are materialized, in row order — the result is
/// byte-identical to a full decode followed by ColumnVector::Filter, minus
/// the cost: RLE runs and bit-packed pages whose row range has no set bit
/// are skipped outright, and fixed-width codecs random-access straight to
/// the selected slots.
Result<ColumnVector> DecodeColumn(DataType type, const EncodedColumn& encoded,
                                  const BitVector* selection = nullptr);

/// Process-wide decode instrumentation (relaxed atomics, cheap enough to
/// stay on in production builds). `values_materialized` counts appended
/// output values; `values_skipped` counts encoded slots passed over by a
/// selection; `runs_skipped` counts whole RLE runs skipped without reading
/// their row range.
struct DecodeCounters {
  uint64_t values_materialized = 0;
  uint64_t values_skipped = 0;
  uint64_t runs_skipped = 0;
};
DecodeCounters GetDecodeCounters();
void ResetDecodeCounters();

}  // namespace feisu

#endif  // FEISU_COLUMNAR_ENCODING_H_
