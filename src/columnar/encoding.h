#ifndef FEISU_COLUMNAR_ENCODING_H_
#define FEISU_COLUMNAR_ENCODING_H_

#include <string>

#include "common/result.h"
#include "columnar/column_vector.h"

namespace feisu {

/// Column encodings used inside ColumnarBlock. Feisu's format is
/// "compression-friendly": the encoder picks the cheapest representation
/// per column chunk based on simple data statistics.
enum class Encoding : uint8_t {
  kPlain = 0,    ///< raw values
  kRle = 1,      ///< (value, run-length) pairs — int64/bool with long runs
  kDict = 2,     ///< dictionary + codes — low-cardinality strings
  kBitPack = 3,  ///< frame-of-reference bit packing — small-domain int64
};

const char* EncodingName(Encoding encoding);

/// A serialized column chunk: chosen encoding + payload bytes (which embed
/// the validity bitmap first).
struct EncodedColumn {
  Encoding encoding = Encoding::kPlain;
  std::string payload;
};

/// Encodes a column, automatically choosing the encoding.
EncodedColumn EncodeColumn(const ColumnVector& column);

/// Encodes with a forced encoding (tests / ablations). Falls back to plain
/// if the encoding does not apply to the column type.
EncodedColumn EncodeColumnAs(const ColumnVector& column, Encoding encoding);

/// Decodes an encoded chunk back into a column of `type`.
Result<ColumnVector> DecodeColumn(DataType type, const EncodedColumn& encoded);

}  // namespace feisu

#endif  // FEISU_COLUMNAR_ENCODING_H_
