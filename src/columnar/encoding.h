#ifndef FEISU_COLUMNAR_ENCODING_H_
#define FEISU_COLUMNAR_ENCODING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/column_vector.h"
#include "columnar/value.h"

namespace feisu {

/// Column encodings used inside ColumnarBlock. Feisu's format is
/// "compression-friendly": the encoder picks the cheapest representation
/// per column chunk based on simple data statistics.
enum class Encoding : uint8_t {
  kPlain = 0,    ///< raw values
  kRle = 1,      ///< (value, run-length) pairs — int64/bool with long runs
  kDict = 2,     ///< dictionary + codes — low-cardinality strings
  kBitPack = 3,  ///< frame-of-reference bit packing — small-domain int64
};

const char* EncodingName(Encoding encoding);

/// A serialized column chunk: chosen encoding + payload bytes (which embed
/// the validity bitmap first).
struct EncodedColumn {
  Encoding encoding = Encoding::kPlain;
  std::string payload;
};

/// Encodes a column, automatically choosing the encoding.
EncodedColumn EncodeColumn(const ColumnVector& column);

/// Encodes with a forced encoding (tests / ablations). Falls back to plain
/// if the encoding does not apply to the column type.
EncodedColumn EncodeColumnAs(const ColumnVector& column, Encoding encoding);

/// Decodes an encoded chunk back into a column of `type`.
///
/// With a non-null `selection` (selection.size() == encoded row count) only
/// rows whose bit is set are materialized, in row order — the result is
/// byte-identical to a full decode followed by ColumnVector::Filter, minus
/// the cost: RLE runs and bit-packed pages whose row range has no set bit
/// are skipped outright, and fixed-width codecs random-access straight to
/// the selected slots.
Result<ColumnVector> DecodeColumn(DataType type, const EncodedColumn& encoded,
                                  const BitVector* selection = nullptr);

// ---- Compressed-domain predicate kernels. ----
//
// These evaluate `column OP literal` directly over the encoded payload and
// never materialize a ColumnVector: dictionary columns translate the
// literal into code space once and compare uint32 codes (an equality miss
// in the dictionary short-circuits to an all-zero match without touching a
// single row); RLE columns test each run once and fill the bitmap
// run-granularly (one word-level SetRange per run); bit-packed ints map
// the comparison onto a contiguous code range via the frame-of-reference
// monotonicity and run a branchless word-extraction compare. Results are
// byte-identical to decode-then-evaluate (tests/materialize_test.cc pins
// the full grid).

/// Comparison operators the kernels understand. Mirrors expr's CompareOp
/// member-for-member (callers static_cast between them); duplicated here
/// because columnar sits below expr in the layer DAG and cannot include it.
enum class EncodedCompareOp : uint8_t {
  kEq = 0,
  kNe = 1,
  kLt = 2,
  kLe = 3,
  kGt = 4,
  kGe = 5,
  kContains = 6,
};

/// Kleene predicate bitmaps over one encoded column: bit i of `is_true`
/// (`is_false`) is set when row i definitely passes (fails); a NULL row
/// sets neither (UNKNOWN). Same layout as expr's TriStateVector, so the
/// evaluator copies these through unchanged.
struct EncodedPredicateBits {
  BitVector is_true;
  BitVector is_false;
};

/// Evaluates `column OP literal` over the encoded payload when a kernel
/// applies. Returns true and fills `out` on success; returns false (with
/// `out` untouched) when no kernel covers the combination — the caller
/// falls back to decode-then-evaluate. Returns an error Status only for
/// corrupt payloads. Supported combinations:
///   - kDict  + string column + string literal, every op incl. kContains;
///   - kRle   + int64 column + numeric literal, every op but kContains;
///   - kBitPack + int64 column + numeric literal, every op but kContains;
///   - a NULL literal over any of the above (all rows UNKNOWN).
Result<bool> TryEvaluateEncodedCompare(DataType type,
                                       const EncodedColumn& encoded,
                                       EncodedCompareOp op,
                                       const Value& literal,
                                       EncodedPredicateBits* out);

/// A dictionary column cracked open for code-domain group-by: the
/// dictionary entries plus one code per emitted row (rows follow
/// `selection` order, exactly like DecodeColumn with the same selection).
/// NULL rows carry kNullCode. Codes are an internal representation — they
/// feed the leaf-local Aggregator and never cross the wire (partial
/// batches always carry materialized strings; DESIGN.md §ownership).
struct DictColumnCodes {
  static constexpr uint32_t kNullCode = 0xFFFFFFFFu;
  std::vector<std::string> entries;
  std::vector<uint32_t> codes;
};

/// Extracts dictionary entries and per-row codes from a kDict column.
/// Returns false when the column is not dictionary-encoded; an error
/// Status on corrupt payloads.
Result<bool> TryExtractDictCodes(const EncodedColumn& encoded,
                                 const BitVector* selection,
                                 DictColumnCodes* out);

/// Process-wide decode instrumentation (relaxed atomics, cheap enough to
/// stay on in production builds). `values_materialized` counts appended
/// output values; `values_skipped` counts encoded slots passed over by a
/// selection; `runs_skipped` counts whole RLE runs skipped without reading
/// their row range. The compressed-domain path adds per-path counters:
/// `values_skipped_encoded` counts rows whose predicate was answered
/// without materializing the value, `predicates_encoded` counts kernel
/// hits, and `predicates_fallback` counts comparisons that had to decode
/// (bumped by the evaluator via NoteEncodedPredicateFallback).
struct DecodeCounters {
  uint64_t values_materialized = 0;
  uint64_t values_skipped = 0;
  uint64_t runs_skipped = 0;
  uint64_t values_skipped_encoded = 0;
  uint64_t predicates_encoded = 0;
  uint64_t predicates_fallback = 0;
};
DecodeCounters GetDecodeCounters();
void ResetDecodeCounters();

/// Records one predicate that fell back from the encoded path to
/// decode-then-evaluate (see DecodeCounters::predicates_fallback).
void NoteEncodedPredicateFallback();

}  // namespace feisu

#endif  // FEISU_COLUMNAR_ENCODING_H_
