#include "columnar/value.h"

#include <sstream>

namespace feisu {

int Value::Compare(const Value& other) const {
  if (is_null_ && other.is_null_) return 0;
  if (is_null_) return -1;
  if (other.is_null_) return 1;
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    // String compares only against string; a type mismatch orders by type.
    if (type_ != other.type_) return type_ < other.type_ ? -1 : 1;
    return string_value().compare(other.string_value()) < 0
               ? -1
               : (string_value() == other.string_value() ? 0 : 1);
  }
  double a = AsDouble();
  double b = other.AsDouble();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string Value::ToString() const {
  if (is_null_) return "NULL";
  std::ostringstream os;
  switch (type_) {
    case DataType::kBool:
      os << (bool_value() ? "TRUE" : "FALSE");
      break;
    case DataType::kInt64:
      os << int64_value();
      break;
    case DataType::kDouble:
      os << double_value();
      break;
    case DataType::kString:
      os << '\'' << string_value() << '\'';
      break;
  }
  return os.str();
}

}  // namespace feisu
