#include "columnar/table.h"

#include <algorithm>

namespace feisu {

uint64_t TableMeta::TotalRows() const {
  uint64_t rows = 0;
  for (const auto& b : blocks_) rows += b.num_rows;
  return rows;
}

uint64_t TableMeta::TotalBytes() const {
  uint64_t bytes = 0;
  for (const auto& b : blocks_) bytes += b.bytes;
  return bytes;
}

bool TableMeta::UserMayRead(const std::string& user) const {
  if (allowed_users_.empty()) return true;
  return std::find(allowed_users_.begin(), allowed_users_.end(), user) !=
         allowed_users_.end();
}

}  // namespace feisu
