#include "columnar/block.h"

#include <cstring>

#include "common/hash.h"

namespace feisu {

namespace {

constexpr uint32_t kBlockMagic = 0x4653424BU;  // "FSBK"

template <typename T>
void AppendScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
template <typename T>
bool ReadScalar(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}
void AppendLp(std::string* out, const std::string& s) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
bool ReadLp(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!ReadScalar(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

ColumnStats ComputeStats(const ColumnVector& col) {
  ColumnStats stats;
  for (size_t i = 0; i < col.size(); ++i) {
    Value v = col.GetValue(i);
    if (v.is_null()) {
      ++stats.null_count;
      continue;
    }
    if (stats.min.is_null() || v.Compare(stats.min) < 0) stats.min = v;
    if (stats.max.is_null() || v.Compare(stats.max) > 0) stats.max = v;
  }
  return stats;
}

}  // namespace

void SerializeValue(std::string* out, const Value& v) {
  if (v.is_null()) {
    out->push_back(0);
    return;
  }
  switch (v.type()) {
    case DataType::kBool:
      out->push_back(1);
      out->push_back(v.bool_value() ? 1 : 0);
      break;
    case DataType::kInt64:
      out->push_back(2);
      AppendScalar<int64_t>(out, v.int64_value());
      break;
    case DataType::kDouble:
      out->push_back(3);
      AppendScalar<double>(out, v.double_value());
      break;
    case DataType::kString:
      out->push_back(4);
      AppendLp(out, v.string_value());
      break;
  }
}

bool DeserializeValue(const std::string& in, size_t* pos, Value* v) {
  if (*pos >= in.size()) return false;
  uint8_t tag = static_cast<uint8_t>(in[(*pos)++]);
  switch (tag) {
    case 0:
      *v = Value::Null();
      return true;
    case 1: {
      if (*pos >= in.size()) return false;
      *v = Value::Bool(in[(*pos)++] != 0);
      return true;
    }
    case 2: {
      int64_t x = 0;
      if (!ReadScalar(in, pos, &x)) return false;
      *v = Value::Int64(x);
      return true;
    }
    case 3: {
      double x = 0;
      if (!ReadScalar(in, pos, &x)) return false;
      *v = Value::Double(x);
      return true;
    }
    case 4: {
      std::string s;
      if (!ReadLp(in, pos, &s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

ColumnarBlock ColumnarBlock::FromBatch(int64_t block_id,
                                       const RecordBatch& batch) {
  ColumnarBlock block;
  block.block_id_ = block_id;
  block.num_rows_ = static_cast<uint32_t>(batch.num_rows());
  block.schema_ = batch.schema();
  block.columns_.reserve(batch.num_columns());
  block.stats_.reserve(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    block.columns_.push_back(EncodeColumn(batch.column(c)));
    block.stats_.push_back(ComputeStats(batch.column(c)));
  }
  return block;
}

size_t ColumnarBlock::ByteSize() const {
  size_t bytes = 24;  // header estimate
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes += schema_.field(c).name.size() + 16 + columns_[c].payload.size();
  }
  return bytes;
}

Result<ColumnVector> ColumnarBlock::DecodeColumnAt(
    size_t col, const BitVector* selection) const {
  if (col >= columns_.size()) {
    return Status::InvalidArgument("column index out of range");
  }
  if (selection != nullptr && selection->size() != num_rows_) {
    return Status::InvalidArgument("selection size does not match block");
  }
  return DecodeColumn(schema_.field(col).type, columns_[col], selection);
}

Result<ColumnVector> ColumnarBlock::DecodeColumnByName(
    const std::string& name, const BitVector* selection) const {
  int idx = schema_.FieldIndex(name);
  if (idx < 0) return Status::NotFound("no such column: " + name);
  return DecodeColumnAt(static_cast<size_t>(idx), selection);
}

Result<RecordBatch> ColumnarBlock::DecodeBatch(
    const std::vector<std::string>& names,
    const BitVector* selection) const {
  std::vector<std::string> wanted = names;
  if (wanted.empty()) {
    for (const auto& f : schema_.fields()) wanted.push_back(f.name);
  }
  std::vector<Field> fields;
  std::vector<ColumnVector> columns;
  for (const auto& name : wanted) {
    int idx = schema_.FieldIndex(name);
    if (idx < 0) return Status::NotFound("no such column: " + name);
    FEISU_ASSIGN_OR_RETURN(
        ColumnVector col,
        DecodeColumnAt(static_cast<size_t>(idx), selection));
    fields.push_back(schema_.field(idx));
    columns.push_back(std::move(col));
  }
  return RecordBatch(Schema(std::move(fields)), std::move(columns));
}

std::string ColumnarBlock::Serialize() const {
  std::string out;
  AppendScalar<uint32_t>(&out, kBlockMagic);
  AppendScalar<int64_t>(&out, block_id_);
  AppendScalar<uint32_t>(&out, num_rows_);
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(columns_.size()));
  for (size_t c = 0; c < columns_.size(); ++c) {
    const Field& f = schema_.field(c);
    AppendLp(&out, f.name);
    out.push_back(static_cast<char>(f.type));
    out.push_back(f.nullable ? 1 : 0);
    out.push_back(static_cast<char>(columns_[c].encoding));
    SerializeValue(&out, stats_[c].min);
    SerializeValue(&out, stats_[c].max);
    AppendScalar<uint32_t>(&out, stats_[c].null_count);
    AppendLp(&out, columns_[c].payload);
  }
  AppendScalar<uint64_t>(&out, HashBytes(out.data(), out.size()));
  return out;
}

uint64_t ColumnarBlock::ChecksumOf(const std::string& data) {
  size_t body = data.size() >= sizeof(uint64_t)
                    ? data.size() - sizeof(uint64_t)
                    : data.size();
  return HashBytes(data.data(), body);
}

Result<ColumnarBlock> ColumnarBlock::Deserialize(const std::string& data) {
  size_t pos = 0;
  uint32_t magic = 0;
  if (!ReadScalar(data, &pos, &magic) || magic != kBlockMagic) {
    return Status::Corruption("bad block magic");
  }
  if (data.size() < sizeof(uint64_t)) {
    return Status::Corruption("block too small for checksum");
  }
  uint64_t stored = 0;
  std::memcpy(&stored, data.data() + data.size() - sizeof(uint64_t),
              sizeof(uint64_t));
  if (stored != ChecksumOf(data)) {
    return Status::Corruption("block checksum mismatch");
  }
  ColumnarBlock block;
  uint32_t num_cols = 0;
  if (!ReadScalar(data, &pos, &block.block_id_) ||
      !ReadScalar(data, &pos, &block.num_rows_) ||
      !ReadScalar(data, &pos, &num_cols)) {
    return Status::Corruption("truncated block header");
  }
  std::vector<Field> fields;
  fields.reserve(num_cols);
  for (uint32_t c = 0; c < num_cols; ++c) {
    Field f;
    if (!ReadLp(data, &pos, &f.name)) {
      return Status::Corruption("truncated column name");
    }
    if (pos + 3 > data.size()) {
      return Status::Corruption("truncated column meta");
    }
    f.type = static_cast<DataType>(data[pos++]);
    f.nullable = data[pos++] != 0;
    EncodedColumn enc;
    enc.encoding = static_cast<Encoding>(data[pos++]);
    ColumnStats stats;
    if (!DeserializeValue(data, &pos, &stats.min) ||
        !DeserializeValue(data, &pos, &stats.max) ||
        !ReadScalar(data, &pos, &stats.null_count) ||
        !ReadLp(data, &pos, &enc.payload)) {
      return Status::Corruption("truncated column payload");
    }
    fields.push_back(f);
    block.columns_.push_back(std::move(enc));
    block.stats_.push_back(std::move(stats));
  }
  block.schema_ = Schema(std::move(fields));
  return block;
}

}  // namespace feisu
