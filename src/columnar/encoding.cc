#include "columnar/encoding.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/annotations.h"

namespace feisu {

namespace {

std::atomic<uint64_t> g_values_materialized{0};
std::atomic<uint64_t> g_values_skipped{0};
std::atomic<uint64_t> g_runs_skipped{0};
std::atomic<uint64_t> g_values_skipped_encoded{0};
std::atomic<uint64_t> g_predicates_encoded{0};
std::atomic<uint64_t> g_predicates_fallback{0};

/// Per-decode tally folded into the process counters once per column, so
/// the hot loops never touch an atomic.
struct DecodeTally {
  uint64_t materialized = 0;
  uint64_t skipped = 0;
  uint64_t runs_skipped = 0;
  uint64_t skipped_encoded = 0;
  uint64_t predicates_encoded = 0;

  ~DecodeTally() {
    if (materialized != 0) {
      g_values_materialized.fetch_add(materialized,
                                      std::memory_order_relaxed);
    }
    if (skipped != 0) {
      g_values_skipped.fetch_add(skipped, std::memory_order_relaxed);
    }
    if (runs_skipped != 0) {
      g_runs_skipped.fetch_add(runs_skipped, std::memory_order_relaxed);
    }
    if (skipped_encoded != 0) {
      g_values_skipped_encoded.fetch_add(skipped_encoded,
                                         std::memory_order_relaxed);
    }
    if (predicates_encoded != 0) {
      g_predicates_encoded.fetch_add(predicates_encoded,
                                     std::memory_order_relaxed);
    }
  }
};

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}
template <typename T>
void AppendScalar(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(v));
}
template <typename T>
bool ReadScalar(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
bool ReadLengthPrefixed(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!ReadScalar(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

// Every payload starts with: u32 num_rows, length-prefixed RLE validity.
void AppendHeader(std::string* out, const ColumnVector& col) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(col.size()));
  AppendLengthPrefixed(out, col.validity().SerializeRle());
}

bool ReadHeader(const std::string& in, size_t* pos, uint32_t* num_rows,
                BitVector* validity) {
  if (!ReadScalar(in, pos, num_rows)) return false;
  std::string validity_bytes;
  if (!ReadLengthPrefixed(in, pos, &validity_bytes)) return false;
  if (!BitVector::DeserializeRle(validity_bytes, validity)) return false;
  return validity->size() == *num_rows;
}

std::string EncodePlain(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  switch (col.type()) {
    case DataType::kBool:
      AppendRaw(&out, col.bools().data(), col.bools().size());
      break;
    case DataType::kInt64:
      AppendRaw(&out, col.ints().data(), col.ints().size() * sizeof(int64_t));
      break;
    case DataType::kDouble:
      AppendRaw(&out, col.doubles().data(),
                col.doubles().size() * sizeof(double));
      break;
    case DataType::kString:
      for (const auto& s : col.strings()) AppendLengthPrefixed(&out, s);
      break;
  }
  return out;
}

std::string EncodeRleInt64(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& ints = col.ints();
  size_t i = 0;
  while (i < ints.size()) {
    size_t j = i + 1;
    while (j < ints.size() && ints[j] == ints[i]) ++j;
    AppendScalar<int64_t>(&out, ints[i]);
    AppendScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::string EncodeRleBool(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& bools = col.bools();
  size_t i = 0;
  while (i < bools.size()) {
    size_t j = i + 1;
    while (j < bools.size() && bools[j] == bools[i]) ++j;
    AppendScalar<uint8_t>(&out, bools[i]);
    AppendScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::string EncodeDictString(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  std::unordered_map<std::string, uint32_t> dict;
  std::vector<const std::string*> entries;
  std::vector<uint32_t> codes;
  codes.reserve(col.size());
  for (const auto& s : col.strings()) {
    auto [it, inserted] =
        dict.emplace(s, static_cast<uint32_t>(entries.size()));
    if (inserted) entries.push_back(&it->first);
    codes.push_back(it->second);
  }
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(entries.size()));
  for (const auto* s : entries) AppendLengthPrefixed(&out, *s);
  AppendRaw(&out, codes.data(), codes.size() * sizeof(uint32_t));
  return out;
}

// Frame-of-reference bit packing: store min and (v - min) in the fewest
// bits that cover the range. NULL slots pack as 0.
std::string EncodeBitPackInt64(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& ints = col.ints();
  int64_t min = 0;
  int64_t max = 0;
  bool first = true;
  for (size_t i = 0; i < ints.size(); ++i) {
    if (col.IsNull(i)) continue;
    if (first || ints[i] < min) min = ints[i];
    if (first || ints[i] > max) max = ints[i];
    first = false;
  }
  uint64_t range = first ? 0 : static_cast<uint64_t>(max - min);
  uint8_t width = 0;
  while (width < 64 && (width == 64 ? false : (range >> width) != 0)) {
    ++width;
  }
  if (width == 0) width = 1;
  AppendScalar<int64_t>(&out, min);
  AppendScalar<uint8_t>(&out, width);
  uint64_t buffer = 0;
  int bits_in_buffer = 0;
  for (size_t i = 0; i < ints.size(); ++i) {
    uint64_t v =
        col.IsNull(i) ? 0 : static_cast<uint64_t>(ints[i] - min);
    int remaining = width;
    while (remaining > 0) {
      int take = std::min(remaining, 64 - bits_in_buffer);
      buffer |= (v & ((take == 64 ? ~0ULL : ((1ULL << take) - 1))))
                << bits_in_buffer;
      v >>= take;
      bits_in_buffer += take;
      remaining -= take;
      if (bits_in_buffer == 64) {
        AppendScalar<uint64_t>(&out, buffer);
        buffer = 0;
        bits_in_buffer = 0;
      }
    }
  }
  if (bits_in_buffer > 0) AppendScalar<uint64_t>(&out, buffer);
  return out;
}

Status CheckSelection(const BitVector* selection, uint32_t num_rows) {
  if (selection != nullptr && selection->size() != num_rows) {
    return Status::InvalidArgument("selection size does not match column");
  }
  return Status::OK();
}

Result<ColumnVector> DecodeBitPack(DataType type, const std::string& in,
                                   const BitVector* selection) {
  if (type != DataType::kInt64) {
    return Status::Corruption("bit-pack encoding on non-int64 type");
  }
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad bit-pack column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  int64_t min = 0;
  uint8_t width = 0;
  if (!ReadScalar(in, &pos, &min) || !ReadScalar(in, &pos, &width) ||
      width == 0 || width > 64) {
    return Status::Corruption("bad bit-pack parameters");
  }
  size_t total_bits = static_cast<size_t>(num_rows) * width;
  size_t words = (total_bits + 63) / 64;
  if (pos + words * sizeof(uint64_t) > in.size()) {
    return Status::Corruption("truncated bit-pack payload");
  }
  DecodeTally tally;
  ColumnVector col(type);
  auto word_at = [&](size_t idx) {
    uint64_t w = 0;
    std::memcpy(&w, in.data() + pos + idx * sizeof(uint64_t), sizeof(w));
    return w;
  };
  if (selection != nullptr) {
    // Random access: each selected slot touches at most two payload words,
    // so unselected pages are never read.
    size_t ones = selection->CountOnes();
    col.Reserve(ones);
    uint64_t value_mask =
        width == 64 ? ~0ULL : ((1ULL << width) - 1);
    selection->ForEachSetBit([&](size_t i) {
      if (!validity.Get(i)) {
        col.AppendNull();
        return;
      }
      size_t bit_off = i * width;
      size_t word_idx = bit_off >> 6;
      int shift = static_cast<int>(bit_off & 63);
      uint64_t v = word_at(word_idx) >> shift;
      if (shift + width > 64) {
        v |= word_at(word_idx + 1) << (64 - shift);
      }
      v &= value_mask;
      col.AppendInt64(min + static_cast<int64_t>(v));
    });
    tally.materialized = ones;
    tally.skipped = num_rows - ones;
    return col;
  }
  col.Reserve(num_rows);
  uint64_t buffer = 0;
  int bits_in_buffer = 0;
  size_t word_idx = 0;
  auto next_word = [&]() { return word_at(word_idx++); };
  for (uint32_t i = 0; i < num_rows; ++i) {
    uint64_t v = 0;
    int got = 0;
    while (got < width) {
      if (bits_in_buffer == 0) {
        buffer = next_word();
        bits_in_buffer = 64;
      }
      int take = std::min<int>(width - got, bits_in_buffer);
      uint64_t mask = take == 64 ? ~0ULL : ((1ULL << take) - 1);
      v |= (buffer & mask) << got;
      buffer >>= take;
      bits_in_buffer -= take;
      got += take;
    }
    if (!validity.Get(i)) {
      col.AppendNull();
    } else {
      col.AppendInt64(min + static_cast<int64_t>(v));
    }
  }
  tally.materialized = num_rows;
  return col;
}

// ---- decoders ----

Result<ColumnVector> DecodePlain(DataType type, const std::string& in,
                                 const BitVector* selection) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad plain column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  DecodeTally tally;
  ColumnVector col(type);
  size_t ones = selection != nullptr ? selection->CountOnes() : num_rows;
  col.Reserve(ones);
  tally.materialized = ones;
  tally.skipped = num_rows - ones;
  switch (type) {
    case DataType::kBool: {
      if (pos + num_rows > in.size()) {
        return Status::Corruption("truncated bool column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
        } else {
          col.AppendBool(in[pos + i] != 0);
        }
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kInt64: {
      if (pos + num_rows * sizeof(int64_t) > in.size()) {
        return Status::Corruption("truncated int64 column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
          return;
        }
        int64_t v = 0;
        std::memcpy(&v, in.data() + pos + i * sizeof(int64_t), sizeof(v));
        col.AppendInt64(v);
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kDouble: {
      if (pos + num_rows * sizeof(double) > in.size()) {
        return Status::Corruption("truncated double column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
          return;
        }
        double v = 0;
        std::memcpy(&v, in.data() + pos + i * sizeof(double), sizeof(v));
        col.AppendDouble(v);
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kString: {
      // Variable-width payload: the offsets aren't random-access, so the
      // walk is sequential either way — but unselected rows skip the
      // string construction and copy entirely.
      for (uint32_t i = 0; i < num_rows; ++i) {
        uint32_t len = 0;
        if (!ReadScalar(in, &pos, &len) || pos + len > in.size()) {
          return Status::Corruption("truncated string column");
        }
        if (selection != nullptr && !selection->Get(i)) {
          pos += len;
          continue;
        }
        if (!validity.Get(i)) {
          pos += len;
          col.AppendNull();
          continue;
        }
        col.AppendString(std::string(in.data() + pos, len));
        pos += len;
      }
      break;
    }
  }
  return col;
}

Result<ColumnVector> DecodeRle(DataType type, const std::string& in,
                               const BitVector* selection) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad RLE column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  DecodeTally tally;
  ColumnVector col(type);
  col.Reserve(selection != nullptr ? selection->CountOnes() : num_rows);
  uint32_t produced = 0;
  while (produced < num_rows) {
    uint32_t run = 0;
    int64_t int_value = 0;
    uint8_t bool_value = 0;
    if (type == DataType::kInt64) {
      if (!ReadScalar(in, &pos, &int_value) || !ReadScalar(in, &pos, &run)) {
        return Status::Corruption("truncated RLE run");
      }
    } else if (type == DataType::kBool) {
      if (!ReadScalar(in, &pos, &bool_value) || !ReadScalar(in, &pos, &run)) {
        return Status::Corruption("truncated RLE run");
      }
    } else {
      return Status::Corruption("RLE encoding on non-RLE type");
    }
    if (produced + run > num_rows) {
      return Status::Corruption("RLE overrun");
    }
    if (selection != nullptr) {
      // A run whose whole row range is unselected is skipped without
      // looking at a single row — this is where a sparse SmartIndex hit
      // pays: decode cost scales with matches, not block size.
      if (!selection->AnyInRange(produced, produced + run)) {
        tally.skipped += run;
        ++tally.runs_skipped;
        produced += run;
        continue;
      }
      size_t before = col.size();
      selection->ForEachSetBitInRange(
          produced, produced + run, [&](size_t i) {
            if (!validity.Get(i)) {
              col.AppendNull();
            } else if (type == DataType::kInt64) {
              col.AppendInt64(int_value);
            } else {
              col.AppendBool(bool_value != 0);
            }
          });
      size_t appended = col.size() - before;
      tally.materialized += appended;
      tally.skipped += run - appended;
    } else {
      for (uint32_t k = 0; k < run; ++k) {
        if (!validity.Get(produced + k)) {
          col.AppendNull();
        } else if (type == DataType::kInt64) {
          col.AppendInt64(int_value);
        } else {
          col.AppendBool(bool_value != 0);
        }
      }
      tally.materialized += run;
    }
    produced += run;
  }
  return col;
}

Result<ColumnVector> DecodeDict(DataType type, const std::string& in,
                                const BitVector* selection) {
  if (type != DataType::kString) {
    return Status::Corruption("dict encoding on non-string type");
  }
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad dict column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  uint32_t dict_size = 0;
  if (!ReadScalar(in, &pos, &dict_size)) {
    return Status::Corruption("truncated dict size");
  }
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) {
    if (!ReadLengthPrefixed(in, &pos, &s)) {
      return Status::Corruption("truncated dict entry");
    }
  }
  if (pos + num_rows * sizeof(uint32_t) > in.size()) {
    return Status::Corruption("truncated dict codes");
  }
  DecodeTally tally;
  ColumnVector col(type);
  Status bad_code = Status::OK();
  auto append = [&](size_t i) {
    uint32_t code = 0;
    std::memcpy(&code, in.data() + pos + i * sizeof(uint32_t), sizeof(code));
    if (code >= dict_size) {
      if (bad_code.ok()) bad_code = Status::Corruption("dict code OOB");
      return;
    }
    if (!validity.Get(i)) {
      col.AppendNull();
    } else {
      col.AppendString(dict[code]);
    }
  };
  if (selection != nullptr) {
    // Codes are fixed width: jump straight to the selected slots.
    size_t ones = selection->CountOnes();
    col.Reserve(ones);
    selection->ForEachSetBit(append);
    tally.materialized = ones;
    tally.skipped = num_rows - ones;
  } else {
    col.Reserve(num_rows);
    for (uint32_t i = 0; i < num_rows; ++i) append(i);
    tally.materialized = num_rows;
  }
  FEISU_RETURN_IF_ERROR(bad_code);
  return col;
}

// ---- compressed-domain predicate kernels ----

bool EncodedDoubleMatches(EncodedCompareOp op, double v, double rhs) {
  switch (op) {
    case EncodedCompareOp::kEq:
      return v == rhs;
    case EncodedCompareOp::kNe:
      return v != rhs;
    case EncodedCompareOp::kLt:
      return v < rhs;
    case EncodedCompareOp::kLe:
      return v <= rhs;
    case EncodedCompareOp::kGt:
      return v > rhs;
    case EncodedCompareOp::kGe:
      return v >= rhs;
    case EncodedCompareOp::kContains:
      break;
  }
  return false;
}

// Final Kleene step shared by every kernel: TRUE = match on a valid row,
// FALSE = mismatch on a valid row, NULL rows set neither bit. Word-level
// AND/NOT, no per-row work.
void FinishPredicateBits(BitVector match, const BitVector& validity,
                         EncodedPredicateBits* out) {
  out->is_true = BitVector::And(match, validity);
  match.Not();
  out->is_false = BitVector::And(match, validity);
}

// Both bitmaps all-zero: every row UNKNOWN (NULL literal).
void AllUnknownBits(uint32_t num_rows, EncodedPredicateBits* out) {
  out->is_true = BitVector(num_rows, false);
  out->is_false = BitVector(num_rows, false);
}

// Dictionary kernel: translate the literal into code space once (one match
// flag per dictionary entry), then compare uint32 codes per row. A
// dictionary miss on equality never touches the code array at all — the
// short-circuit the block-skipping layers above rely on.
Result<bool> EncodedCompareDict(const std::string& in, EncodedCompareOp op,
                                const Value& literal,
                                EncodedPredicateBits* out) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad dict column header");
  }
  DecodeTally tally;
  if (literal.is_null()) {
    AllUnknownBits(num_rows, out);
    tally.skipped_encoded = num_rows;
    ++tally.predicates_encoded;
    return true;
  }
  if (literal.type() != DataType::kString) return false;
  uint32_t dict_size = 0;
  if (!ReadScalar(in, &pos, &dict_size)) {
    return Status::Corruption("truncated dict size");
  }
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) {
    if (!ReadLengthPrefixed(in, &pos, &s)) {
      return Status::Corruption("truncated dict entry");
    }
  }
  if (pos + static_cast<size_t>(num_rows) * sizeof(uint32_t) > in.size()) {
    return Status::Corruption("truncated dict codes");
  }
  // Literal -> code space: the per-entry comparisons mirror the decode
  // path exactly (std::string::compare / find, same as Value::Compare).
  const std::string& lit = literal.string_value();
  std::vector<uint8_t> table(dict_size, 0);
  uint32_t match_count = 0;
  for (uint32_t c = 0; c < dict_size; ++c) {
    bool m = false;
    if (op == EncodedCompareOp::kContains) {
      m = dict[c].find(lit) != std::string::npos;
    } else {
      int cmp = dict[c].compare(lit);
      m = EncodedDoubleMatches(op, static_cast<double>(cmp), 0.0);
    }
    table[c] = m ? 1 : 0;
    if (m) ++match_count;
  }
  tally.skipped_encoded = num_rows;
  ++tally.predicates_encoded;
  if (match_count == 0) {
    // Dictionary miss: no row can match. AllZeros TRUE set, every valid
    // row FALSE — without reading a single code.
    out->is_true = BitVector(num_rows, false);
    out->is_false = validity;
    return true;
  }
  if (match_count == dict_size) {
    out->is_true = validity;
    out->is_false = BitVector(num_rows, false);
    return true;
  }
  // Codes live unaligned in the payload; one memcpy gives the contiguous
  // uint32 array the vectorized loops below want.
  std::vector<uint32_t> codes(num_rows);
  std::memcpy(codes.data(), in.data() + pos,
              static_cast<size_t>(num_rows) * sizeof(uint32_t));
  const uint32_t* FEISU_RESTRICT c = codes.data();
  uint32_t max_code = 0;
  for (uint32_t i = 0; i < num_rows; ++i) {
    max_code = c[i] > max_code ? c[i] : max_code;
  }
  if (num_rows > 0 && max_code >= dict_size) {
    return Status::Corruption("dict code OOB");
  }
  std::vector<uint64_t> mwords((static_cast<size_t>(num_rows) + 63) / 64, 0);
  uint64_t* FEISU_RESTRICT mw = mwords.data();
  size_t full_words = static_cast<size_t>(num_rows) >> 6;
  if (match_count == 1 || match_count + 1 == dict_size) {
    // One (mis)matching entry: the row loop is a pure code == constant
    // compare — contiguous, branchless, auto-vectorizable.
    bool invert = match_count != 1;
    uint8_t want = invert ? 0 : 1;
    uint32_t target = 0;
    for (uint32_t e = 0; e < dict_size; ++e) {
      if (table[e] == want) target = e;
    }
    for (size_t w = 0; w < full_words; ++w) {
      uint64_t bits = 0;
      for (unsigned k = 0; k < 64; ++k) {
        bits |= static_cast<uint64_t>((c[w * 64 + k] == target) != invert)
                << k;
      }
      mw[w] = bits;
    }
    for (uint32_t i = static_cast<uint32_t>(full_words * 64); i < num_rows;
         ++i) {
      mw[i >> 6] |= static_cast<uint64_t>((c[i] == target) != invert)
                    << (i & 63);
    }
  } else {
    // General case (range ops, IN-style multi-hit): branchless gather
    // through the per-entry match table.
    const uint8_t* FEISU_RESTRICT t = table.data();
    for (size_t w = 0; w < full_words; ++w) {
      uint64_t bits = 0;
      for (unsigned k = 0; k < 64; ++k) {
        bits |= static_cast<uint64_t>(t[c[w * 64 + k]]) << k;
      }
      mw[w] = bits;
    }
    for (uint32_t i = static_cast<uint32_t>(full_words * 64); i < num_rows;
         ++i) {
      mw[i >> 6] |= static_cast<uint64_t>(t[c[i]]) << (i & 63);
    }
  }
  FinishPredicateBits(BitVector::FromWords(std::move(mwords), num_rows),
                      validity, out);
  return true;
}

// RLE kernel: one comparison per run, one word-level SetRange per matching
// run. The emitted bitmap is run-granular, so its SerializeRle form stays
// proportional to the run count and feeds the RleAnd/RleOr algebra without
// inflating.
Result<bool> EncodedCompareRleInt64(const std::string& in,
                                    EncodedCompareOp op, const Value& literal,
                                    EncodedPredicateBits* out) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad RLE column header");
  }
  DecodeTally tally;
  if (literal.is_null()) {
    AllUnknownBits(num_rows, out);
    tally.skipped_encoded = num_rows;
    ++tally.predicates_encoded;
    return true;
  }
  if (!literal.is_numeric() || op == EncodedCompareOp::kContains) {
    return false;
  }
  // Same double-domain comparison as the decode path's int64 fast path.
  double rhs = literal.AsDouble();
  BitVector match(num_rows, false);
  uint32_t produced = 0;
  while (produced < num_rows) {
    int64_t value = 0;
    uint32_t run = 0;
    if (!ReadScalar(in, &pos, &value) || !ReadScalar(in, &pos, &run)) {
      return Status::Corruption("truncated RLE run");
    }
    if (produced + run > num_rows) {
      return Status::Corruption("RLE overrun");
    }
    if (EncodedDoubleMatches(op, static_cast<double>(value), rhs)) {
      match.SetRange(produced, produced + run, true);
    }
    produced += run;
  }
  tally.skipped_encoded = num_rows;
  ++tally.predicates_encoded;
  FinishPredicateBits(std::move(match), validity, out);
  return true;
}

// Bit-pack kernel. value = min + code is monotone in the code, so the set
// of codes satisfying any single comparison is one contiguous range
// [range_lo, range_hi] (complemented for !=), found by binary search over
// the code domain — then the row loop is a word-at-a-time extraction plus
// two unsigned compares, branchless end to end.
Result<bool> EncodedCompareBitPack(const std::string& in,
                                   EncodedCompareOp op, const Value& literal,
                                   EncodedPredicateBits* out) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad bit-pack column header");
  }
  DecodeTally tally;
  if (literal.is_null()) {
    AllUnknownBits(num_rows, out);
    tally.skipped_encoded = num_rows;
    ++tally.predicates_encoded;
    return true;
  }
  if (!literal.is_numeric() || op == EncodedCompareOp::kContains) {
    return false;
  }
  int64_t min = 0;
  uint8_t width = 0;
  if (!ReadScalar(in, &pos, &min) || !ReadScalar(in, &pos, &width) ||
      width == 0 || width > 64) {
    return Status::Corruption("bad bit-pack parameters");
  }
  size_t total_bits = static_cast<size_t>(num_rows) * width;
  size_t words = (total_bits + 63) / 64;
  if (pos + words * sizeof(uint64_t) > in.size()) {
    return Status::Corruption("truncated bit-pack payload");
  }
  double rhs = literal.AsDouble();
  uint64_t domain_max = width == 64 ? ~0ULL : ((1ULL << width) - 1);
  // Clamp the searched domain so min + code cannot overflow int64: every
  // code produced by the encoder satisfies min + code <= max <= INT64_MAX,
  // so real codes always fall inside the clamped (still monotone) domain.
  uint64_t safe_max =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) -
      static_cast<uint64_t>(min);
  uint64_t search_max = std::min(domain_max, safe_max);
  auto value_at = [min](uint64_t code) {
    return static_cast<double>(
        static_cast<int64_t>(static_cast<uint64_t>(min) + code));
  };
  // Smallest code in [0, search_max] where `pred` is true, given that pred
  // is monotone false -> true over the clamped domain.
  struct Bound {
    bool found;
    uint64_t code;
  };
  auto lower_bound_code = [&](auto pred) -> Bound {
    if (!pred(search_max)) return {false, 0};
    uint64_t lo = 0;
    uint64_t hi = search_max;  // invariant: pred(hi) is true
    while (lo < hi) {
      uint64_t mid = lo + (hi - lo) / 2;
      if (pred(mid)) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return {true, lo};
  };
  // Satisfying code range; an empty range is (1, 0). `invert` flips the
  // verdict (kNe = complement of kEq's range).
  uint64_t range_lo = 1;
  uint64_t range_hi = 0;
  bool invert = false;
  auto eq_range = [&]() {
    Bound lo_b = lower_bound_code(
        [&](uint64_t code) { return value_at(code) >= rhs; });
    if (!lo_b.found) return;
    Bound hi_b = lower_bound_code(
        [&](uint64_t code) { return value_at(code) > rhs; });
    uint64_t hi_code = 0;
    if (!hi_b.found) {
      hi_code = search_max;
    } else if (hi_b.code == 0) {
      return;
    } else {
      hi_code = hi_b.code - 1;
    }
    if (lo_b.code > hi_code) return;
    range_lo = lo_b.code;
    range_hi = hi_code;
  };
  switch (op) {
    case EncodedCompareOp::kLt:
    case EncodedCompareOp::kLe: {
      auto outside = [&](uint64_t code) {
        return op == EncodedCompareOp::kLt ? !(value_at(code) < rhs)
                                           : !(value_at(code) <= rhs);
      };
      Bound b = lower_bound_code(outside);
      if (!b.found) {
        range_lo = 0;
        range_hi = domain_max;  // every code matches
      } else if (b.code > 0) {
        range_lo = 0;
        range_hi = b.code - 1;
      }
      break;
    }
    case EncodedCompareOp::kGt:
    case EncodedCompareOp::kGe: {
      auto inside = [&](uint64_t code) {
        return op == EncodedCompareOp::kGt ? value_at(code) > rhs
                                           : value_at(code) >= rhs;
      };
      Bound b = lower_bound_code(inside);
      if (b.found) {
        range_lo = b.code;
        range_hi = domain_max;
      }
      break;
    }
    case EncodedCompareOp::kEq:
      eq_range();
      break;
    case EncodedCompareOp::kNe:
      eq_range();
      invert = true;
      break;
    case EncodedCompareOp::kContains:
      return false;
  }
  tally.skipped_encoded = num_rows;
  ++tally.predicates_encoded;
  bool range_all = range_lo == 0 && range_hi >= domain_max;
  bool range_none = range_lo > range_hi;
  if ((range_all && !invert) || (range_none && invert)) {
    out->is_true = validity;
    out->is_false = BitVector(num_rows, false);
    return true;
  }
  if ((range_none && !invert) || (range_all && invert)) {
    out->is_true = BitVector(num_rows, false);
    out->is_false = validity;
    return true;
  }
  // One pad word lets every row read two adjacent words unconditionally,
  // keeping the extraction loop branch-free.
  std::vector<uint64_t> packed(words + 1, 0);
  std::memcpy(packed.data(), in.data() + pos, words * sizeof(uint64_t));
  std::vector<uint64_t> mwords((static_cast<size_t>(num_rows) + 63) / 64, 0);
  const uint64_t* FEISU_RESTRICT w = packed.data();
  uint64_t* FEISU_RESTRICT mw = mwords.data();
  const uint64_t rlo = range_lo;
  const uint64_t rhi = range_hi;
  const uint64_t inv = invert ? 1 : 0;
  for (uint32_t i = 0; i < num_rows; ++i) {
    size_t bit = static_cast<size_t>(i) * width;
    size_t idx = bit >> 6;
    unsigned shift = static_cast<unsigned>(bit & 63);
    // (x << 1) << (63 - shift) is x << (64 - shift) without the undefined
    // 64-bit shift at shift == 0 (where the high word contributes nothing).
    uint64_t v =
        (w[idx] >> shift) | ((w[idx + 1] << 1) << (63 - shift));
    v &= domain_max;
    uint64_t m = (static_cast<uint64_t>(v >= rlo) &
                  static_cast<uint64_t>(v <= rhi)) ^
                 inv;
    mw[i >> 6] |= m << (i & 63);
  }
  FinishPredicateBits(BitVector::FromWords(std::move(mwords), num_rows),
                      validity, out);
  return true;
}

// Cheap statistics used to auto-pick an encoding.
Encoding ChooseEncoding(const ColumnVector& col) {
  if (col.size() < 16) return Encoding::kPlain;
  switch (col.type()) {
    case DataType::kInt64: {
      const auto& v = col.ints();
      size_t runs = 1;
      int64_t min = v.empty() ? 0 : v[0];
      int64_t max = min;
      for (size_t i = 1; i < v.size(); ++i) {
        if (v[i] != v[i - 1]) ++runs;
        if (v[i] < min) min = v[i];
        if (v[i] > max) max = v[i];
      }
      // RLE pays off when a run covers >= 4 values on average.
      if (runs * 4 <= v.size()) return Encoding::kRle;
      // Otherwise frame-of-reference bit packing when the value range is
      // materially narrower than 64 bits.
      uint64_t range = static_cast<uint64_t>(max - min);
      int width = 1;
      while (width < 64 && (range >> width) != 0) ++width;
      return width <= 32 ? Encoding::kBitPack : Encoding::kPlain;
    }
    case DataType::kBool:
      return Encoding::kRle;
    case DataType::kString: {
      const auto& v = col.strings();
      std::unordered_map<std::string_view, int> distinct;
      for (const auto& s : v) {
        distinct.emplace(s, 0);
        if (distinct.size() * 4 > v.size()) return Encoding::kPlain;
      }
      return Encoding::kDict;
    }
    case DataType::kDouble:
      return Encoding::kPlain;
  }
  return Encoding::kPlain;
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDict:
      return "DICT";
    case Encoding::kBitPack:
      return "BITPACK";
  }
  return "UNKNOWN";
}

EncodedColumn EncodeColumn(const ColumnVector& column) {
  return EncodeColumnAs(column, ChooseEncoding(column));
}

EncodedColumn EncodeColumnAs(const ColumnVector& column, Encoding encoding) {
  EncodedColumn out;
  if (encoding == Encoding::kRle && column.type() == DataType::kInt64) {
    out.encoding = Encoding::kRle;
    out.payload = EncodeRleInt64(column);
  } else if (encoding == Encoding::kRle && column.type() == DataType::kBool) {
    out.encoding = Encoding::kRle;
    out.payload = EncodeRleBool(column);
  } else if (encoding == Encoding::kDict &&
             column.type() == DataType::kString) {
    out.encoding = Encoding::kDict;
    out.payload = EncodeDictString(column);
  } else if (encoding == Encoding::kBitPack &&
             column.type() == DataType::kInt64) {
    out.encoding = Encoding::kBitPack;
    out.payload = EncodeBitPackInt64(column);
  } else {
    out.encoding = Encoding::kPlain;
    out.payload = EncodePlain(column);
  }
  return out;
}

Result<ColumnVector> DecodeColumn(DataType type, const EncodedColumn& encoded,
                                  const BitVector* selection) {
  switch (encoded.encoding) {
    case Encoding::kPlain:
      return DecodePlain(type, encoded.payload, selection);
    case Encoding::kRle:
      return DecodeRle(type, encoded.payload, selection);
    case Encoding::kDict:
      return DecodeDict(type, encoded.payload, selection);
    case Encoding::kBitPack:
      return DecodeBitPack(type, encoded.payload, selection);
  }
  return Status::Corruption("unknown encoding");
}

Result<bool> TryEvaluateEncodedCompare(DataType type,
                                       const EncodedColumn& encoded,
                                       EncodedCompareOp op,
                                       const Value& literal,
                                       EncodedPredicateBits* out) {
  switch (encoded.encoding) {
    case Encoding::kDict:
      if (type != DataType::kString) return false;
      return EncodedCompareDict(encoded.payload, op, literal, out);
    case Encoding::kRle:
      if (type != DataType::kInt64) return false;
      return EncodedCompareRleInt64(encoded.payload, op, literal, out);
    case Encoding::kBitPack:
      if (type != DataType::kInt64) return false;
      return EncodedCompareBitPack(encoded.payload, op, literal, out);
    case Encoding::kPlain:
      break;
  }
  return false;
}

Result<bool> TryExtractDictCodes(const EncodedColumn& encoded,
                                 const BitVector* selection,
                                 DictColumnCodes* out) {
  if (encoded.encoding != Encoding::kDict) return false;
  const std::string& in = encoded.payload;
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad dict column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  uint32_t dict_size = 0;
  if (!ReadScalar(in, &pos, &dict_size)) {
    return Status::Corruption("truncated dict size");
  }
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) {
    if (!ReadLengthPrefixed(in, &pos, &s)) {
      return Status::Corruption("truncated dict entry");
    }
  }
  if (pos + static_cast<size_t>(num_rows) * sizeof(uint32_t) > in.size()) {
    return Status::Corruption("truncated dict codes");
  }
  out->entries = std::move(dict);
  out->codes.clear();
  bool bad_code = false;
  auto append = [&](size_t i) {
    uint32_t code = 0;
    std::memcpy(&code, in.data() + pos + i * sizeof(uint32_t), sizeof(code));
    if (code >= dict_size) {
      bad_code = true;
      return;
    }
    out->codes.push_back(validity.Get(i) ? code
                                         : DictColumnCodes::kNullCode);
  };
  if (selection != nullptr) {
    out->codes.reserve(selection->CountOnes());
    selection->ForEachSetBit(append);
  } else {
    out->codes.reserve(num_rows);
    for (uint32_t i = 0; i < num_rows; ++i) append(i);
  }
  if (bad_code) return Status::Corruption("dict code OOB");
  return true;
}

DecodeCounters GetDecodeCounters() {
  DecodeCounters out;
  out.values_materialized =
      g_values_materialized.load(std::memory_order_relaxed);
  out.values_skipped = g_values_skipped.load(std::memory_order_relaxed);
  out.runs_skipped = g_runs_skipped.load(std::memory_order_relaxed);
  out.values_skipped_encoded =
      g_values_skipped_encoded.load(std::memory_order_relaxed);
  out.predicates_encoded =
      g_predicates_encoded.load(std::memory_order_relaxed);
  out.predicates_fallback =
      g_predicates_fallback.load(std::memory_order_relaxed);
  return out;
}

void ResetDecodeCounters() {
  g_values_materialized.store(0, std::memory_order_relaxed);
  g_values_skipped.store(0, std::memory_order_relaxed);
  g_runs_skipped.store(0, std::memory_order_relaxed);
  g_values_skipped_encoded.store(0, std::memory_order_relaxed);
  g_predicates_encoded.store(0, std::memory_order_relaxed);
  g_predicates_fallback.store(0, std::memory_order_relaxed);
}

void NoteEncodedPredicateFallback() {
  g_predicates_fallback.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace feisu
