#include "columnar/encoding.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <unordered_map>

namespace feisu {

namespace {

std::atomic<uint64_t> g_values_materialized{0};
std::atomic<uint64_t> g_values_skipped{0};
std::atomic<uint64_t> g_runs_skipped{0};

/// Per-decode tally folded into the process counters once per column, so
/// the hot loops never touch an atomic.
struct DecodeTally {
  uint64_t materialized = 0;
  uint64_t skipped = 0;
  uint64_t runs_skipped = 0;

  ~DecodeTally() {
    if (materialized != 0) {
      g_values_materialized.fetch_add(materialized,
                                      std::memory_order_relaxed);
    }
    if (skipped != 0) {
      g_values_skipped.fetch_add(skipped, std::memory_order_relaxed);
    }
    if (runs_skipped != 0) {
      g_runs_skipped.fetch_add(runs_skipped, std::memory_order_relaxed);
    }
  }
};

void AppendRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}
template <typename T>
void AppendScalar(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(v));
}
template <typename T>
bool ReadScalar(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void AppendLengthPrefixed(std::string* out, const std::string& s) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}
bool ReadLengthPrefixed(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!ReadScalar(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

// Every payload starts with: u32 num_rows, length-prefixed RLE validity.
void AppendHeader(std::string* out, const ColumnVector& col) {
  AppendScalar<uint32_t>(out, static_cast<uint32_t>(col.size()));
  AppendLengthPrefixed(out, col.validity().SerializeRle());
}

bool ReadHeader(const std::string& in, size_t* pos, uint32_t* num_rows,
                BitVector* validity) {
  if (!ReadScalar(in, pos, num_rows)) return false;
  std::string validity_bytes;
  if (!ReadLengthPrefixed(in, pos, &validity_bytes)) return false;
  if (!BitVector::DeserializeRle(validity_bytes, validity)) return false;
  return validity->size() == *num_rows;
}

std::string EncodePlain(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  switch (col.type()) {
    case DataType::kBool:
      AppendRaw(&out, col.bools().data(), col.bools().size());
      break;
    case DataType::kInt64:
      AppendRaw(&out, col.ints().data(), col.ints().size() * sizeof(int64_t));
      break;
    case DataType::kDouble:
      AppendRaw(&out, col.doubles().data(),
                col.doubles().size() * sizeof(double));
      break;
    case DataType::kString:
      for (const auto& s : col.strings()) AppendLengthPrefixed(&out, s);
      break;
  }
  return out;
}

std::string EncodeRleInt64(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& ints = col.ints();
  size_t i = 0;
  while (i < ints.size()) {
    size_t j = i + 1;
    while (j < ints.size() && ints[j] == ints[i]) ++j;
    AppendScalar<int64_t>(&out, ints[i]);
    AppendScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::string EncodeRleBool(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& bools = col.bools();
  size_t i = 0;
  while (i < bools.size()) {
    size_t j = i + 1;
    while (j < bools.size() && bools[j] == bools[i]) ++j;
    AppendScalar<uint8_t>(&out, bools[i]);
    AppendScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    i = j;
  }
  return out;
}

std::string EncodeDictString(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  std::unordered_map<std::string, uint32_t> dict;
  std::vector<const std::string*> entries;
  std::vector<uint32_t> codes;
  codes.reserve(col.size());
  for (const auto& s : col.strings()) {
    auto [it, inserted] =
        dict.emplace(s, static_cast<uint32_t>(entries.size()));
    if (inserted) entries.push_back(&it->first);
    codes.push_back(it->second);
  }
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(entries.size()));
  for (const auto* s : entries) AppendLengthPrefixed(&out, *s);
  AppendRaw(&out, codes.data(), codes.size() * sizeof(uint32_t));
  return out;
}

// Frame-of-reference bit packing: store min and (v - min) in the fewest
// bits that cover the range. NULL slots pack as 0.
std::string EncodeBitPackInt64(const ColumnVector& col) {
  std::string out;
  AppendHeader(&out, col);
  const auto& ints = col.ints();
  int64_t min = 0;
  int64_t max = 0;
  bool first = true;
  for (size_t i = 0; i < ints.size(); ++i) {
    if (col.IsNull(i)) continue;
    if (first || ints[i] < min) min = ints[i];
    if (first || ints[i] > max) max = ints[i];
    first = false;
  }
  uint64_t range = first ? 0 : static_cast<uint64_t>(max - min);
  uint8_t width = 0;
  while (width < 64 && (width == 64 ? false : (range >> width) != 0)) {
    ++width;
  }
  if (width == 0) width = 1;
  AppendScalar<int64_t>(&out, min);
  AppendScalar<uint8_t>(&out, width);
  uint64_t buffer = 0;
  int bits_in_buffer = 0;
  for (size_t i = 0; i < ints.size(); ++i) {
    uint64_t v =
        col.IsNull(i) ? 0 : static_cast<uint64_t>(ints[i] - min);
    int remaining = width;
    while (remaining > 0) {
      int take = std::min(remaining, 64 - bits_in_buffer);
      buffer |= (v & ((take == 64 ? ~0ULL : ((1ULL << take) - 1))))
                << bits_in_buffer;
      v >>= take;
      bits_in_buffer += take;
      remaining -= take;
      if (bits_in_buffer == 64) {
        AppendScalar<uint64_t>(&out, buffer);
        buffer = 0;
        bits_in_buffer = 0;
      }
    }
  }
  if (bits_in_buffer > 0) AppendScalar<uint64_t>(&out, buffer);
  return out;
}

Status CheckSelection(const BitVector* selection, uint32_t num_rows) {
  if (selection != nullptr && selection->size() != num_rows) {
    return Status::InvalidArgument("selection size does not match column");
  }
  return Status::OK();
}

Result<ColumnVector> DecodeBitPack(DataType type, const std::string& in,
                                   const BitVector* selection) {
  if (type != DataType::kInt64) {
    return Status::Corruption("bit-pack encoding on non-int64 type");
  }
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad bit-pack column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  int64_t min = 0;
  uint8_t width = 0;
  if (!ReadScalar(in, &pos, &min) || !ReadScalar(in, &pos, &width) ||
      width == 0 || width > 64) {
    return Status::Corruption("bad bit-pack parameters");
  }
  size_t total_bits = static_cast<size_t>(num_rows) * width;
  size_t words = (total_bits + 63) / 64;
  if (pos + words * sizeof(uint64_t) > in.size()) {
    return Status::Corruption("truncated bit-pack payload");
  }
  DecodeTally tally;
  ColumnVector col(type);
  auto word_at = [&](size_t idx) {
    uint64_t w = 0;
    std::memcpy(&w, in.data() + pos + idx * sizeof(uint64_t), sizeof(w));
    return w;
  };
  if (selection != nullptr) {
    // Random access: each selected slot touches at most two payload words,
    // so unselected pages are never read.
    size_t ones = selection->CountOnes();
    col.Reserve(ones);
    uint64_t value_mask =
        width == 64 ? ~0ULL : ((1ULL << width) - 1);
    selection->ForEachSetBit([&](size_t i) {
      if (!validity.Get(i)) {
        col.AppendNull();
        return;
      }
      size_t bit_off = i * width;
      size_t word_idx = bit_off >> 6;
      int shift = static_cast<int>(bit_off & 63);
      uint64_t v = word_at(word_idx) >> shift;
      if (shift + width > 64) {
        v |= word_at(word_idx + 1) << (64 - shift);
      }
      v &= value_mask;
      col.AppendInt64(min + static_cast<int64_t>(v));
    });
    tally.materialized = ones;
    tally.skipped = num_rows - ones;
    return col;
  }
  col.Reserve(num_rows);
  uint64_t buffer = 0;
  int bits_in_buffer = 0;
  size_t word_idx = 0;
  auto next_word = [&]() { return word_at(word_idx++); };
  for (uint32_t i = 0; i < num_rows; ++i) {
    uint64_t v = 0;
    int got = 0;
    while (got < width) {
      if (bits_in_buffer == 0) {
        buffer = next_word();
        bits_in_buffer = 64;
      }
      int take = std::min<int>(width - got, bits_in_buffer);
      uint64_t mask = take == 64 ? ~0ULL : ((1ULL << take) - 1);
      v |= (buffer & mask) << got;
      buffer >>= take;
      bits_in_buffer -= take;
      got += take;
    }
    if (!validity.Get(i)) {
      col.AppendNull();
    } else {
      col.AppendInt64(min + static_cast<int64_t>(v));
    }
  }
  tally.materialized = num_rows;
  return col;
}

// ---- decoders ----

Result<ColumnVector> DecodePlain(DataType type, const std::string& in,
                                 const BitVector* selection) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad plain column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  DecodeTally tally;
  ColumnVector col(type);
  size_t ones = selection != nullptr ? selection->CountOnes() : num_rows;
  col.Reserve(ones);
  tally.materialized = ones;
  tally.skipped = num_rows - ones;
  switch (type) {
    case DataType::kBool: {
      if (pos + num_rows > in.size()) {
        return Status::Corruption("truncated bool column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
        } else {
          col.AppendBool(in[pos + i] != 0);
        }
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kInt64: {
      if (pos + num_rows * sizeof(int64_t) > in.size()) {
        return Status::Corruption("truncated int64 column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
          return;
        }
        int64_t v = 0;
        std::memcpy(&v, in.data() + pos + i * sizeof(int64_t), sizeof(v));
        col.AppendInt64(v);
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kDouble: {
      if (pos + num_rows * sizeof(double) > in.size()) {
        return Status::Corruption("truncated double column");
      }
      auto append = [&](size_t i) {
        if (!validity.Get(i)) {
          col.AppendNull();
          return;
        }
        double v = 0;
        std::memcpy(&v, in.data() + pos + i * sizeof(double), sizeof(v));
        col.AppendDouble(v);
      };
      if (selection != nullptr) {
        selection->ForEachSetBit(append);
      } else {
        for (uint32_t i = 0; i < num_rows; ++i) append(i);
      }
      break;
    }
    case DataType::kString: {
      // Variable-width payload: the offsets aren't random-access, so the
      // walk is sequential either way — but unselected rows skip the
      // string construction and copy entirely.
      for (uint32_t i = 0; i < num_rows; ++i) {
        uint32_t len = 0;
        if (!ReadScalar(in, &pos, &len) || pos + len > in.size()) {
          return Status::Corruption("truncated string column");
        }
        if (selection != nullptr && !selection->Get(i)) {
          pos += len;
          continue;
        }
        if (!validity.Get(i)) {
          pos += len;
          col.AppendNull();
          continue;
        }
        col.AppendString(std::string(in.data() + pos, len));
        pos += len;
      }
      break;
    }
  }
  return col;
}

Result<ColumnVector> DecodeRle(DataType type, const std::string& in,
                               const BitVector* selection) {
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad RLE column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  DecodeTally tally;
  ColumnVector col(type);
  col.Reserve(selection != nullptr ? selection->CountOnes() : num_rows);
  uint32_t produced = 0;
  while (produced < num_rows) {
    uint32_t run = 0;
    int64_t int_value = 0;
    uint8_t bool_value = 0;
    if (type == DataType::kInt64) {
      if (!ReadScalar(in, &pos, &int_value) || !ReadScalar(in, &pos, &run)) {
        return Status::Corruption("truncated RLE run");
      }
    } else if (type == DataType::kBool) {
      if (!ReadScalar(in, &pos, &bool_value) || !ReadScalar(in, &pos, &run)) {
        return Status::Corruption("truncated RLE run");
      }
    } else {
      return Status::Corruption("RLE encoding on non-RLE type");
    }
    if (produced + run > num_rows) {
      return Status::Corruption("RLE overrun");
    }
    if (selection != nullptr) {
      // A run whose whole row range is unselected is skipped without
      // looking at a single row — this is where a sparse SmartIndex hit
      // pays: decode cost scales with matches, not block size.
      if (!selection->AnyInRange(produced, produced + run)) {
        tally.skipped += run;
        ++tally.runs_skipped;
        produced += run;
        continue;
      }
      size_t before = col.size();
      selection->ForEachSetBitInRange(
          produced, produced + run, [&](size_t i) {
            if (!validity.Get(i)) {
              col.AppendNull();
            } else if (type == DataType::kInt64) {
              col.AppendInt64(int_value);
            } else {
              col.AppendBool(bool_value != 0);
            }
          });
      size_t appended = col.size() - before;
      tally.materialized += appended;
      tally.skipped += run - appended;
    } else {
      for (uint32_t k = 0; k < run; ++k) {
        if (!validity.Get(produced + k)) {
          col.AppendNull();
        } else if (type == DataType::kInt64) {
          col.AppendInt64(int_value);
        } else {
          col.AppendBool(bool_value != 0);
        }
      }
      tally.materialized += run;
    }
    produced += run;
  }
  return col;
}

Result<ColumnVector> DecodeDict(DataType type, const std::string& in,
                                const BitVector* selection) {
  if (type != DataType::kString) {
    return Status::Corruption("dict encoding on non-string type");
  }
  size_t pos = 0;
  uint32_t num_rows = 0;
  BitVector validity;
  if (!ReadHeader(in, &pos, &num_rows, &validity)) {
    return Status::Corruption("bad dict column header");
  }
  FEISU_RETURN_IF_ERROR(CheckSelection(selection, num_rows));
  uint32_t dict_size = 0;
  if (!ReadScalar(in, &pos, &dict_size)) {
    return Status::Corruption("truncated dict size");
  }
  std::vector<std::string> dict(dict_size);
  for (auto& s : dict) {
    if (!ReadLengthPrefixed(in, &pos, &s)) {
      return Status::Corruption("truncated dict entry");
    }
  }
  if (pos + num_rows * sizeof(uint32_t) > in.size()) {
    return Status::Corruption("truncated dict codes");
  }
  DecodeTally tally;
  ColumnVector col(type);
  Status bad_code = Status::OK();
  auto append = [&](size_t i) {
    uint32_t code = 0;
    std::memcpy(&code, in.data() + pos + i * sizeof(uint32_t), sizeof(code));
    if (code >= dict_size) {
      if (bad_code.ok()) bad_code = Status::Corruption("dict code OOB");
      return;
    }
    if (!validity.Get(i)) {
      col.AppendNull();
    } else {
      col.AppendString(dict[code]);
    }
  };
  if (selection != nullptr) {
    // Codes are fixed width: jump straight to the selected slots.
    size_t ones = selection->CountOnes();
    col.Reserve(ones);
    selection->ForEachSetBit(append);
    tally.materialized = ones;
    tally.skipped = num_rows - ones;
  } else {
    col.Reserve(num_rows);
    for (uint32_t i = 0; i < num_rows; ++i) append(i);
    tally.materialized = num_rows;
  }
  FEISU_RETURN_IF_ERROR(bad_code);
  return col;
}

// Cheap statistics used to auto-pick an encoding.
Encoding ChooseEncoding(const ColumnVector& col) {
  if (col.size() < 16) return Encoding::kPlain;
  switch (col.type()) {
    case DataType::kInt64: {
      const auto& v = col.ints();
      size_t runs = 1;
      int64_t min = v.empty() ? 0 : v[0];
      int64_t max = min;
      for (size_t i = 1; i < v.size(); ++i) {
        if (v[i] != v[i - 1]) ++runs;
        if (v[i] < min) min = v[i];
        if (v[i] > max) max = v[i];
      }
      // RLE pays off when a run covers >= 4 values on average.
      if (runs * 4 <= v.size()) return Encoding::kRle;
      // Otherwise frame-of-reference bit packing when the value range is
      // materially narrower than 64 bits.
      uint64_t range = static_cast<uint64_t>(max - min);
      int width = 1;
      while (width < 64 && (range >> width) != 0) ++width;
      return width <= 32 ? Encoding::kBitPack : Encoding::kPlain;
    }
    case DataType::kBool:
      return Encoding::kRle;
    case DataType::kString: {
      const auto& v = col.strings();
      std::unordered_map<std::string_view, int> distinct;
      for (const auto& s : v) {
        distinct.emplace(s, 0);
        if (distinct.size() * 4 > v.size()) return Encoding::kPlain;
      }
      return Encoding::kDict;
    }
    case DataType::kDouble:
      return Encoding::kPlain;
  }
  return Encoding::kPlain;
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "PLAIN";
    case Encoding::kRle:
      return "RLE";
    case Encoding::kDict:
      return "DICT";
    case Encoding::kBitPack:
      return "BITPACK";
  }
  return "UNKNOWN";
}

EncodedColumn EncodeColumn(const ColumnVector& column) {
  return EncodeColumnAs(column, ChooseEncoding(column));
}

EncodedColumn EncodeColumnAs(const ColumnVector& column, Encoding encoding) {
  EncodedColumn out;
  if (encoding == Encoding::kRle && column.type() == DataType::kInt64) {
    out.encoding = Encoding::kRle;
    out.payload = EncodeRleInt64(column);
  } else if (encoding == Encoding::kRle && column.type() == DataType::kBool) {
    out.encoding = Encoding::kRle;
    out.payload = EncodeRleBool(column);
  } else if (encoding == Encoding::kDict &&
             column.type() == DataType::kString) {
    out.encoding = Encoding::kDict;
    out.payload = EncodeDictString(column);
  } else if (encoding == Encoding::kBitPack &&
             column.type() == DataType::kInt64) {
    out.encoding = Encoding::kBitPack;
    out.payload = EncodeBitPackInt64(column);
  } else {
    out.encoding = Encoding::kPlain;
    out.payload = EncodePlain(column);
  }
  return out;
}

Result<ColumnVector> DecodeColumn(DataType type, const EncodedColumn& encoded,
                                  const BitVector* selection) {
  switch (encoded.encoding) {
    case Encoding::kPlain:
      return DecodePlain(type, encoded.payload, selection);
    case Encoding::kRle:
      return DecodeRle(type, encoded.payload, selection);
    case Encoding::kDict:
      return DecodeDict(type, encoded.payload, selection);
    case Encoding::kBitPack:
      return DecodeBitPack(type, encoded.payload, selection);
  }
  return Status::Corruption("unknown encoding");
}

DecodeCounters GetDecodeCounters() {
  DecodeCounters out;
  out.values_materialized =
      g_values_materialized.load(std::memory_order_relaxed);
  out.values_skipped = g_values_skipped.load(std::memory_order_relaxed);
  out.runs_skipped = g_runs_skipped.load(std::memory_order_relaxed);
  return out;
}

void ResetDecodeCounters() {
  g_values_materialized.store(0, std::memory_order_relaxed);
  g_values_skipped.store(0, std::memory_order_relaxed);
  g_runs_skipped.store(0, std::memory_order_relaxed);
}

}  // namespace feisu
