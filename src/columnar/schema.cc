#include "columnar/schema.h"

#include <sstream>

namespace feisu {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  for (size_t i = 0; i < fields_.size(); ++i) {
    index_.emplace(fields_[i].name, static_cast<int>(i));
  }
}

int Schema::FieldIndex(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

Schema Schema::Select(const std::vector<std::string>& names) const {
  std::vector<Field> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    int idx = FieldIndex(name);
    if (idx >= 0) out.push_back(fields_[idx]);
  }
  return Schema(std::move(out));
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        fields_[i].nullable != other.fields_[i].nullable) {
      return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << DataTypeName(fields_[i].type);
  }
  return os.str();
}

}  // namespace feisu
