#ifndef FEISU_COLUMNAR_COLUMN_VECTOR_H_
#define FEISU_COLUMNAR_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_vector.h"
#include "columnar/data_type.h"
#include "columnar/value.h"

namespace feisu {

/// An in-memory, type-tagged column of values with a validity bitmap.
/// This is the unit Feisu's vectorized operators work on.
class ColumnVector {
 public:
  explicit ColumnVector(DataType type) : type_(type) {}

  DataType type() const { return type_; }
  size_t size() const { return validity_.size(); }

  bool IsNull(size_t i) const { return !validity_.Get(i); }
  size_t NullCount() const { return size() - validity_.CountOnes(); }

  /// Typed accessors; the row must be non-NULL and of the vector's type.
  bool GetBool(size_t i) const { return bools_[i]; }
  int64_t GetInt64(size_t i) const { return ints_[i]; }
  double GetDouble(size_t i) const { return doubles_[i]; }
  const std::string& GetString(size_t i) const { return strings_[i]; }

  /// Boxed accessor (NULL-aware), used by row-oriented sinks.
  Value GetValue(size_t i) const;

  void AppendNull();
  void AppendBool(bool v);
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  /// Appends a boxed value; NULLs always accepted, otherwise the value type
  /// must match (int64 is widened into a double column).
  void AppendValue(const Value& v);

  void Reserve(size_t n);

  /// New vector keeping only rows whose bit is set in `selection`
  /// (selection.size() == size()).
  ColumnVector Filter(const BitVector& selection) const;

  /// New vector with rows permuted/subset by `indices`.
  ColumnVector Take(const std::vector<uint32_t>& indices) const;

  /// Like Take, but a negative index produces a NULL row — the shape
  /// outer-join padding needs when gathering both sides from row lists.
  ColumnVector GatherOrNull(const std::vector<int64_t>& indices) const;

  /// Approximate payload bytes (for cost accounting).
  size_t ByteSize() const;

  /// Raw storage access for encoders / vectorized kernels.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const BitVector& validity() const { return validity_; }

 private:
  DataType type_;
  BitVector validity_;  // 1 = valid, 0 = NULL
  std::vector<uint8_t> bools_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace feisu

#endif  // FEISU_COLUMNAR_COLUMN_VECTOR_H_
