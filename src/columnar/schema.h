#ifndef FEISU_COLUMNAR_SCHEMA_H_
#define FEISU_COLUMNAR_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "columnar/data_type.h"

namespace feisu {

/// One column in a table schema.
struct Field {
  std::string name;
  DataType type = DataType::kInt64;
  bool nullable = true;
};

/// An ordered list of named, typed fields with O(1) lookup by name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the named field, or -1 if absent.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const {
    return FieldIndex(name) >= 0;
  }

  /// Schema containing only the named fields, in the given order. Unknown
  /// names are skipped.
  Schema Select(const std::vector<std::string>& names) const;

  bool operator==(const Schema& other) const;

  /// "name:TYPE, name:TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace feisu

#endif  // FEISU_COLUMNAR_SCHEMA_H_
