#ifndef FEISU_COLUMNAR_JSON_FLATTEN_H_
#define FEISU_COLUMNAR_JSON_FLATTEN_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/value.h"

namespace feisu {

/// One flattened attribute: dotted path plus scalar value. Array elements
/// get a bracketed index component, e.g. "clicks[2].url".
struct FlatAttribute {
  std::string path;
  Value value;
};

/// Parses a JSON document and flattens nested objects/arrays into scalar
/// columns, the way Feisu ingests nested log data (paper §III-A: "nested
/// data format such as json ... will be flattened into columns").
///
/// JSON numbers without a fractional part or exponent become INT64,
/// everything else DOUBLE; strings/bools/null map directly. Returns
/// InvalidArgument on malformed input.
Result<std::vector<FlatAttribute>> FlattenJson(const std::string& json);

}  // namespace feisu

#endif  // FEISU_COLUMNAR_JSON_FLATTEN_H_
