#include "columnar/column_vector.h"

#include <cassert>

namespace feisu {

Value ColumnVector::GetValue(size_t i) const {
  if (IsNull(i)) return Value::Null();
  switch (type_) {
    case DataType::kBool:
      return Value::Bool(GetBool(i));
    case DataType::kInt64:
      return Value::Int64(GetInt64(i));
    case DataType::kDouble:
      return Value::Double(GetDouble(i));
    case DataType::kString:
      return Value::String(GetString(i));
  }
  return Value::Null();
}

void ColumnVector::AppendNull() {
  validity_.PushBack(false);
  switch (type_) {
    case DataType::kBool:
      bools_.push_back(0);
      break;
    case DataType::kInt64:
      ints_.push_back(0);
      break;
    case DataType::kDouble:
      doubles_.push_back(0.0);
      break;
    case DataType::kString:
      strings_.emplace_back();
      break;
  }
}

void ColumnVector::AppendBool(bool v) {
  assert(type_ == DataType::kBool);
  validity_.PushBack(true);
  bools_.push_back(v ? 1 : 0);
}

void ColumnVector::AppendInt64(int64_t v) {
  assert(type_ == DataType::kInt64);
  validity_.PushBack(true);
  ints_.push_back(v);
}

void ColumnVector::AppendDouble(double v) {
  assert(type_ == DataType::kDouble);
  validity_.PushBack(true);
  doubles_.push_back(v);
}

void ColumnVector::AppendString(std::string v) {
  assert(type_ == DataType::kString);
  validity_.PushBack(true);
  strings_.push_back(std::move(v));
}

void ColumnVector::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  switch (type_) {
    case DataType::kBool:
      AppendBool(v.bool_value());
      return;
    case DataType::kInt64:
      AppendInt64(v.int64_value());
      return;
    case DataType::kDouble:
      AppendDouble(v.AsDouble());
      return;
    case DataType::kString:
      AppendString(v.string_value());
      return;
  }
}

void ColumnVector::Reserve(size_t n) {
  switch (type_) {
    case DataType::kBool:
      bools_.reserve(n);
      break;
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      strings_.reserve(n);
      break;
  }
}

ColumnVector ColumnVector::Filter(const BitVector& selection) const {
  assert(selection.size() == size());
  ColumnVector out(type_);
  out.Reserve(selection.CountOnes());
  // Word-scan over the selection (skipping all-zero words) with the type
  // switch hoisted out of the per-row path.
  switch (type_) {
    case DataType::kBool:
      selection.ForEachSetBit([&](size_t i) {
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendBool(bools_[i] != 0);
        }
      });
      break;
    case DataType::kInt64:
      selection.ForEachSetBit([&](size_t i) {
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendInt64(ints_[i]);
        }
      });
      break;
    case DataType::kDouble:
      selection.ForEachSetBit([&](size_t i) {
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendDouble(doubles_[i]);
        }
      });
      break;
    case DataType::kString:
      selection.ForEachSetBit([&](size_t i) {
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendString(strings_[i]);
        }
      });
      break;
  }
  return out;
}

ColumnVector ColumnVector::Take(const std::vector<uint32_t>& indices) const {
  ColumnVector out(type_);
  out.Reserve(indices.size());
  switch (type_) {
    case DataType::kBool:
      for (uint32_t i : indices) {
        assert(i < size());
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendBool(bools_[i] != 0);
        }
      }
      break;
    case DataType::kInt64:
      for (uint32_t i : indices) {
        assert(i < size());
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendInt64(ints_[i]);
        }
      }
      break;
    case DataType::kDouble:
      for (uint32_t i : indices) {
        assert(i < size());
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendDouble(doubles_[i]);
        }
      }
      break;
    case DataType::kString:
      for (uint32_t i : indices) {
        assert(i < size());
        if (IsNull(i)) {
          out.AppendNull();
        } else {
          out.AppendString(strings_[i]);
        }
      }
      break;
  }
  return out;
}

ColumnVector ColumnVector::GatherOrNull(
    const std::vector<int64_t>& indices) const {
  ColumnVector out(type_);
  out.Reserve(indices.size());
  switch (type_) {
    case DataType::kBool:
      for (int64_t i : indices) {
        if (i < 0 || IsNull(static_cast<size_t>(i))) {
          out.AppendNull();
        } else {
          out.AppendBool(bools_[static_cast<size_t>(i)] != 0);
        }
      }
      break;
    case DataType::kInt64:
      for (int64_t i : indices) {
        if (i < 0 || IsNull(static_cast<size_t>(i))) {
          out.AppendNull();
        } else {
          out.AppendInt64(ints_[static_cast<size_t>(i)]);
        }
      }
      break;
    case DataType::kDouble:
      for (int64_t i : indices) {
        if (i < 0 || IsNull(static_cast<size_t>(i))) {
          out.AppendNull();
        } else {
          out.AppendDouble(doubles_[static_cast<size_t>(i)]);
        }
      }
      break;
    case DataType::kString:
      for (int64_t i : indices) {
        if (i < 0 || IsNull(static_cast<size_t>(i))) {
          out.AppendNull();
        } else {
          out.AppendString(strings_[static_cast<size_t>(i)]);
        }
      }
      break;
  }
  return out;
}

size_t ColumnVector::ByteSize() const {
  switch (type_) {
    case DataType::kBool:
      return bools_.size();
    case DataType::kInt64:
      return ints_.size() * sizeof(int64_t);
    case DataType::kDouble:
      return doubles_.size() * sizeof(double);
    case DataType::kString: {
      size_t bytes = 0;
      for (const auto& s : strings_) bytes += s.size() + sizeof(uint32_t);
      return bytes;
    }
  }
  return 0;
}

}  // namespace feisu
