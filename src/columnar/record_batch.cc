#include "columnar/record_batch.h"

#include <algorithm>
#include <sstream>

namespace feisu {

RecordBatch::RecordBatch(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.num_fields());
  for (size_t i = 0; i < schema_.num_fields(); ++i) {
    columns_.emplace_back(schema_.field(i).type);
  }
}

RecordBatch::RecordBatch(Schema schema, std::vector<ColumnVector> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {}

const ColumnVector* RecordBatch::ColumnByName(const std::string& name) const {
  int idx = schema_.FieldIndex(name);
  if (idx < 0) return nullptr;
  return &columns_[idx];
}

Status RecordBatch::AppendRow(const std::vector<Value>& values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (!v.is_null() && v.type() != columns_[i].type() &&
        !(v.is_numeric() && columns_[i].type() == DataType::kDouble)) {
      return Status::InvalidArgument("type mismatch for column " +
                                     schema_.field(i).name);
    }
    columns_[i].AppendValue(v);
  }
  return Status::OK();
}

void RecordBatch::Reserve(size_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
}

Status RecordBatch::Append(const RecordBatch& other) {
  if (!(schema_ == other.schema_)) {
    return Status::InvalidArgument("schema mismatch in Append");
  }
  size_t rows = other.num_rows();
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnVector& dst = columns_[c];
    const ColumnVector& src = other.columns_[c];
    dst.Reserve(dst.size() + rows);
    // Column-wise typed copy (schemas are equal, so types match); nulls
    // keep the typed storage index-aligned via AppendNull.
    switch (dst.type()) {
      case DataType::kBool:
        for (size_t i = 0; i < rows; ++i) {
          if (src.IsNull(i)) {
            dst.AppendNull();
          } else {
            dst.AppendBool(src.bools()[i] != 0);
          }
        }
        break;
      case DataType::kInt64:
        for (size_t i = 0; i < rows; ++i) {
          if (src.IsNull(i)) {
            dst.AppendNull();
          } else {
            dst.AppendInt64(src.ints()[i]);
          }
        }
        break;
      case DataType::kDouble:
        for (size_t i = 0; i < rows; ++i) {
          if (src.IsNull(i)) {
            dst.AppendNull();
          } else {
            dst.AppendDouble(src.doubles()[i]);
          }
        }
        break;
      case DataType::kString:
        for (size_t i = 0; i < rows; ++i) {
          if (src.IsNull(i)) {
            dst.AppendNull();
          } else {
            dst.AppendString(src.strings()[i]);
          }
        }
        break;
    }
  }
  return Status::OK();
}

RecordBatch RecordBatch::Filter(const BitVector& selection) const {
  std::vector<ColumnVector> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Filter(selection));
  return RecordBatch(schema_, std::move(out));
}

RecordBatch RecordBatch::Take(const std::vector<uint32_t>& indices) const {
  std::vector<ColumnVector> out;
  out.reserve(columns_.size());
  for (const auto& col : columns_) out.push_back(col.Take(indices));
  return RecordBatch(schema_, std::move(out));
}

size_t RecordBatch::ByteSize() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col.ByteSize();
  return bytes;
}

std::string RecordBatch::ToString(size_t max_rows) const {
  std::vector<size_t> widths(num_columns(), 0);
  std::vector<std::string> header(num_columns());
  for (size_t c = 0; c < num_columns(); ++c) {
    header[c] = schema_.field(c).name;
    widths[c] = header[c].size();
  }
  size_t rows = std::min(num_rows(), max_rows);
  std::vector<std::vector<std::string>> cells(
      rows, std::vector<std::string>(num_columns()));
  for (size_t r = 0; r < rows; ++r) {
    auto& row = cells[r];
    for (size_t c = 0; c < num_columns(); ++c) {
      row[c] = columns_[c].GetValue(r).ToString();
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  emit_row(header);
  os << "|";
  for (size_t c = 0; c < num_columns(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : cells) emit_row(row);
  if (num_rows() > rows) {
    os << "... (" << num_rows() - rows << " more rows)\n";
  }
  return os.str();
}

}  // namespace feisu
