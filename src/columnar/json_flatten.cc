#include "columnar/json_flatten.h"

#include <cctype>
#include <cstdlib>

namespace feisu {

namespace {

/// Minimal recursive-descent JSON parser that emits flattened attributes
/// directly, without building a document tree.
class JsonFlattener {
 public:
  JsonFlattener(const std::string& input, std::vector<FlatAttribute>* out)
      : in_(input), out_(out) {}

  Status Run() {
    SkipWhitespace();
    FEISU_RETURN_IF_ERROR(ParseValue(""));
    SkipWhitespace();
    if (pos_ != in_.size()) {
      return Status::InvalidArgument("trailing bytes after JSON document");
    }
    return Status::OK();
  }

 private:
  void SkipWhitespace() {
    while (pos_ < in_.size() && std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < in_.size() && in_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at offset " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Status ParseValue(const std::string& path) {
    SkipWhitespace();
    if (pos_ >= in_.size()) {
      return Status::InvalidArgument("unexpected end of JSON");
    }
    char c = in_[pos_];
    switch (c) {
      case '{':
        return ParseObject(path);
      case '[':
        return ParseArray(path);
      case '"': {
        std::string s;
        FEISU_RETURN_IF_ERROR(ParseString(&s));
        Emit(path, Value::String(std::move(s)));
        return Status::OK();
      }
      case 't':
        return ParseKeyword(path, "true", Value::Bool(true));
      case 'f':
        return ParseKeyword(path, "false", Value::Bool(false));
      case 'n':
        return ParseKeyword(path, "null", Value::Null());
      default:
        return ParseNumber(path);
    }
  }

  Status ParseKeyword(const std::string& path, const char* word,
                      Value value) {
    size_t len = std::string(word).size();
    if (in_.compare(pos_, len, word) != 0) {
      return Status::InvalidArgument("bad JSON keyword at offset " +
                                     std::to_string(pos_));
    }
    pos_ += len;
    Emit(path, std::move(value));
    return Status::OK();
  }

  Status ParseNumber(const std::string& path) {
    size_t start = pos_;
    bool is_integer = true;
    if (Consume('-')) {
    }
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (Consume('.')) {
      is_integer = false;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < in_.size() && (in_[pos_] == 'e' || in_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (pos_ < in_.size() && (in_[pos_] == '+' || in_[pos_] == '-')) ++pos_;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && in_[start] == '-')) {
      return Status::InvalidArgument("bad JSON number at offset " +
                                     std::to_string(start));
    }
    std::string text = in_.substr(start, pos_ - start);
    if (is_integer) {
      Emit(path, Value::Int64(std::strtoll(text.c_str(), nullptr, 10)));
    } else {
      Emit(path, Value::Double(std::strtod(text.c_str(), nullptr)));
    }
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    FEISU_RETURN_IF_ERROR(Expect('"'));
    out->clear();
    while (pos_ < in_.size()) {
      char c = in_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= in_.size()) break;
        char e = in_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            // Keep it simple: pass the escape through verbatim.
            out->append("\\u");
            for (int k = 0; k < 4 && pos_ < in_.size(); ++k) {
              out->push_back(in_[pos_++]);
            }
            break;
          }
          default:
            return Status::InvalidArgument("bad JSON escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Status::InvalidArgument("unterminated JSON string");
  }

  Status ParseObject(const std::string& path) {
    FEISU_RETURN_IF_ERROR(Expect('{'));
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      FEISU_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      FEISU_RETURN_IF_ERROR(Expect(':'));
      std::string child = path.empty() ? key : path + "." + key;
      FEISU_RETURN_IF_ERROR(ParseValue(child));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect('}');
    }
  }

  Status ParseArray(const std::string& path) {
    FEISU_RETURN_IF_ERROR(Expect('['));
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    size_t index = 0;
    for (;;) {
      std::string child = path + "[" + std::to_string(index++) + "]";
      FEISU_RETURN_IF_ERROR(ParseValue(child));
      SkipWhitespace();
      if (Consume(',')) continue;
      return Expect(']');
    }
  }

  void Emit(const std::string& path, Value value) {
    out_->push_back({path.empty() ? "$" : path, std::move(value)});
  }

  const std::string& in_;
  std::vector<FlatAttribute>* out_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<FlatAttribute>> FlattenJson(const std::string& json) {
  std::vector<FlatAttribute> out;
  JsonFlattener flattener(json, &out);
  FEISU_RETURN_IF_ERROR(flattener.Run());
  return out;
}

}  // namespace feisu
