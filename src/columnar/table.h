#ifndef FEISU_COLUMNAR_TABLE_H_
#define FEISU_COLUMNAR_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/block.h"
#include "columnar/schema.h"

namespace feisu {

/// Catalog metadata for one block of a table: where it lives (a prefixed
/// storage path understood by the common storage layer) and enough
/// statistics for planning without touching the data.
struct TableBlockMeta {
  int64_t block_id = 0;
  std::string path;       ///< e.g. "/hdfs/t1/blk_00004"
  uint32_t num_rows = 0;
  uint64_t bytes = 0;     ///< serialized block size
  std::vector<ColumnStats> stats;        ///< aligned with stats_columns
  std::vector<std::string> stats_columns;  ///< column name per stats entry
};

/// Catalog metadata for a table: schema, access control and block list.
/// The master's job manager consults this to create execution plans; no
/// data bytes live here.
class TableMeta {
 public:
  TableMeta() = default;
  TableMeta(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  const std::vector<TableBlockMeta>& blocks() const { return blocks_; }
  void AddBlock(TableBlockMeta block) { blocks_.push_back(std::move(block)); }

  uint64_t TotalRows() const;
  uint64_t TotalBytes() const;

  /// Access control: the set of users allowed to query the table. An empty
  /// list means public.
  void GrantAccess(const std::string& user) { allowed_users_.push_back(user); }
  bool UserMayRead(const std::string& user) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<TableBlockMeta> blocks_;
  std::vector<std::string> allowed_users_;
};

}  // namespace feisu

#endif  // FEISU_COLUMNAR_TABLE_H_
