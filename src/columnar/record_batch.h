#ifndef FEISU_COLUMNAR_RECORD_BATCH_H_
#define FEISU_COLUMNAR_RECORD_BATCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "columnar/column_vector.h"
#include "columnar/schema.h"

namespace feisu {

/// A horizontal slice of a table: a schema plus one equally sized
/// ColumnVector per field. Operators consume and produce RecordBatches.
class RecordBatch {
 public:
  RecordBatch() = default;
  /// Creates an empty batch with one empty column per schema field.
  explicit RecordBatch(Schema schema);
  RecordBatch(Schema schema, std::vector<ColumnVector> columns);

  const Schema& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector* mutable_column(size_t i) { return &columns_[i]; }

  /// Column by field name; nullptr if absent.
  const ColumnVector* ColumnByName(const std::string& name) const;

  /// Appends one row of boxed values (values.size() == num_columns()).
  Status AppendRow(const std::vector<Value>& values);

  /// Reserves capacity for `rows` total rows in every column.
  void Reserve(size_t rows);

  /// Appends all rows of `other` (schemas must be equal) column-wise.
  Status Append(const RecordBatch& other);

  /// Keeps only selected rows.
  RecordBatch Filter(const BitVector& selection) const;

  /// Rows permuted/subset by `indices`.
  RecordBatch Take(const std::vector<uint32_t>& indices) const;

  /// Approximate payload bytes across all columns.
  size_t ByteSize() const;

  /// Renders up to `max_rows` rows as an aligned ASCII table (debugging,
  /// examples).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<ColumnVector> columns_;
};

}  // namespace feisu

#endif  // FEISU_COLUMNAR_RECORD_BATCH_H_
