#ifndef FEISU_COLUMNAR_DATA_TYPE_H_
#define FEISU_COLUMNAR_DATA_TYPE_H_

#include <cstddef>
#include <string>

namespace feisu {

/// Physical column types supported by Feisu's columnar format. Baidu's log
/// and business tables are wide (hundreds of attributes) but simple-typed;
/// nested JSON attributes are flattened into these primitives on ingest.
enum class DataType {
  kBool,
  kInt64,
  kDouble,
  kString,
};

/// Human-readable type name ("INT64", ...).
const char* DataTypeName(DataType type);

/// Parses a type name; returns false if unrecognized.
bool ParseDataType(const std::string& name, DataType* out);

/// Fixed in-memory width used by cost accounting; strings use an estimate
/// refined by actual payload sizes.
size_t DataTypeWidth(DataType type);

}  // namespace feisu

#endif  // FEISU_COLUMNAR_DATA_TYPE_H_
