#include "columnar/data_type.h"

namespace feisu {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

bool ParseDataType(const std::string& name, DataType* out) {
  if (name == "BOOL") {
    *out = DataType::kBool;
  } else if (name == "INT64") {
    *out = DataType::kInt64;
  } else if (name == "DOUBLE") {
    *out = DataType::kDouble;
  } else if (name == "STRING") {
    *out = DataType::kString;
  } else {
    return false;
  }
  return true;
}

size_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 16;  // average estimate; refined by actual payloads
  }
  return 8;
}

}  // namespace feisu
