#ifndef FEISU_COLUMNAR_VALUE_H_
#define FEISU_COLUMNAR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "columnar/data_type.h"

namespace feisu {

/// A single (possibly NULL) scalar value. Used for literals in expressions,
/// block min/max statistics and row-wise ingestion.
class Value {
 public:
  /// NULL of unspecified type.
  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(DataType::kBool, v); }
  static Value Int64(int64_t v) { return Value(DataType::kInt64, v); }
  static Value Double(double v) { return Value(DataType::kDouble, v); }
  static Value String(std::string v) {
    return Value(DataType::kString, std::move(v));
  }

  bool is_null() const { return is_null_; }
  DataType type() const { return type_; }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int64_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }

  /// Numeric view: int64 and double compare/evaluate in a common domain.
  double AsDouble() const {
    if (type_ == DataType::kInt64) return static_cast<double>(int64_value());
    if (type_ == DataType::kBool) return bool_value() ? 1.0 : 0.0;
    return double_value();
  }

  bool is_numeric() const {
    return !is_null_ &&
           (type_ == DataType::kInt64 || type_ == DataType::kDouble ||
            type_ == DataType::kBool);
  }

  /// Total ordering within a type family (numeric cross-compares allowed).
  /// NULL sorts before everything. Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// SQL-ish rendering: NULL, 42, 3.5, 'abc', TRUE.
  std::string ToString() const;

 private:
  template <typename T>
  Value(DataType type, T v) : is_null_(false), type_(type), data_(std::move(v)) {}

  bool is_null_ = true;
  DataType type_ = DataType::kInt64;
  std::variant<bool, int64_t, double, std::string> data_;
};

}  // namespace feisu

#endif  // FEISU_COLUMNAR_VALUE_H_
