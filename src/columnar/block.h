#ifndef FEISU_COLUMNAR_BLOCK_H_
#define FEISU_COLUMNAR_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/encoding.h"
#include "columnar/record_batch.h"
#include "columnar/schema.h"

namespace feisu {

/// Per-column statistics kept in the block footer; the planner and
/// SmartIndex use min/max for block skipping.
struct ColumnStats {
  Value min;
  Value max;
  uint32_t null_count = 0;
};

/// A self-contained horizontal partition of a table in Feisu's columnar
/// format: schema + one encoded chunk per column + statistics. Blocks are
/// the unit of storage placement, scheduling and SmartIndex addressing
/// (paper §III, Fig. 3).
class ColumnarBlock {
 public:
  ColumnarBlock() = default;

  /// Encodes `batch` into a block with the given id.
  static ColumnarBlock FromBatch(int64_t block_id, const RecordBatch& batch);

  int64_t block_id() const { return block_id_; }
  uint32_t num_rows() const { return num_rows_; }
  const Schema& schema() const { return schema_; }
  const ColumnStats& stats(size_t col) const { return stats_[col]; }

  /// Encoded payload size of one column (drives columnar-I/O cost).
  size_t ColumnByteSize(size_t col) const {
    return columns_[col].payload.size();
  }
  Encoding ColumnEncoding(size_t col) const { return columns_[col].encoding; }

  /// The raw encoded chunk of one column — what the compressed-domain
  /// predicate kernels (TryEvaluateEncodedCompare) and the code-domain
  /// group-by (TryExtractDictCodes) operate on without decoding.
  const EncodedColumn& encoded_column(size_t col) const {
    return columns_[col];
  }

  /// Total serialized size.
  size_t ByteSize() const;

  /// Decodes a single column by index. With a non-null `selection`
  /// (selection.size() == num_rows()) only selected rows materialize —
  /// identical to full decode + Filter, but encodings skip unselected
  /// runs/pages instead of decoding them.
  Result<ColumnVector> DecodeColumnAt(
      size_t col, const BitVector* selection = nullptr) const;
  /// Decodes a single column by name.
  Result<ColumnVector> DecodeColumnByName(
      const std::string& name, const BitVector* selection = nullptr) const;

  /// Decodes the named columns (all columns if `names` is empty) into a
  /// RecordBatch, pushing `selection` down into every column decode.
  Result<RecordBatch> DecodeBatch(
      const std::vector<std::string>& names = {},
      const BitVector* selection = nullptr) const;

  /// Whole-block (de)serialization — what actually lives in storage. The
  /// serialized form carries a trailing FNV-1a checksum over the body;
  /// Deserialize verifies it and reports Corruption on any mismatch, so
  /// damaged replicas are detected before a single value is decoded.
  std::string Serialize() const;
  static Result<ColumnarBlock> Deserialize(const std::string& data);

  /// Checksum of a serialized block body (everything before the trailing
  /// 8 checksum bytes). Exposed for tests and storage scrubbers.
  static uint64_t ChecksumOf(const std::string& data);

 private:
  int64_t block_id_ = 0;
  uint32_t num_rows_ = 0;
  Schema schema_;
  std::vector<EncodedColumn> columns_;
  std::vector<ColumnStats> stats_;
};

/// Serializes a Value with a leading type tag (shared with block stats).
void SerializeValue(std::string* out, const Value& v);
bool DeserializeValue(const std::string& in, size_t* pos, Value* v);

}  // namespace feisu

#endif  // FEISU_COLUMNAR_BLOCK_H_
