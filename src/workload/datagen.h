#ifndef FEISU_WORKLOAD_DATAGEN_H_
#define FEISU_WORKLOAD_DATAGEN_H_

#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "common/rng.h"

namespace feisu {

/// Paper Table I — the real datasets' shapes, used to label benchmark
/// output and to scale the simulated-I/O model.
struct PaperDataset {
  const char* table;
  double rows_billions;
  const char* uncompressed_size;
  int num_fields;
  const char* storage;
};
const std::vector<PaperDataset>& PaperTableI();

/// Schema of the user-business-log datasets T1/T2 (paper Table I: 200
/// attributes, URL-clicked information and query attributes). Columns are
/// named c0..c{n-1}; a type mix mirrors log data: mostly small-domain
/// integers, with periodic string (URLs/keywords) and double (latencies)
/// attributes. T1 and T2 share this schema.
Schema MakeLogSchema(size_t num_fields = 200);

/// Schema of the traced-webpage dataset T3 (57 fields): by construction a
/// subset of T1/T2's attributes, as in the paper.
Schema MakeWebpageSchema(size_t num_fields = 57);

/// Generates `n` rows of log-like data: zipf-skewed keyword strings,
/// small-domain integers (0..100) and uniform doubles; ~1% NULLs.
RecordBatch GenerateRows(const Schema& schema, size_t n, Rng* rng);

}  // namespace feisu

#endif  // FEISU_WORKLOAD_DATAGEN_H_
