#include "workload/tracegen.h"

#include <algorithm>

#include "common/rng.h"

namespace feisu {

namespace {

/// Generates one fresh predicate atom over a (zipf-)popular column.
std::string FreshAtom(const TraceConfig& config, const Schema& schema,
                      Rng* rng) {
  size_t col_idx = rng->NextZipf(schema.num_fields(), config.column_zipf);
  const Field& field = schema.field(col_idx);
  static const char* kNumericOps[] = {"=", "!=", "<", "<=", ">", ">="};
  switch (field.type) {
    case DataType::kString: {
      if (rng->NextBool(0.5)) {
        return field.name + " CONTAINS 'kw_" +
               std::to_string(rng->NextZipf(200, 1.1)) + "'";
      }
      return field.name + " = 'kw_" +
             std::to_string(rng->NextZipf(200, 1.1)) + "'";
    }
    case DataType::kDouble: {
      const char* op = rng->NextBool(config.eq_prob)
                           ? "="
                           : kNumericOps[1 + rng->NextUint64(5)];
      return field.name + " " + op + " " +
             std::to_string(rng->NextInt64(0, config.value_domain * 10));
    }
    default: {
      const char* op = rng->NextBool(config.eq_prob)
                           ? "="
                           : kNumericOps[1 + rng->NextUint64(5)];
      return field.name + " " + op + " " +
             std::to_string(rng->NextInt64(0, config.value_domain));
    }
  }
}

/// Picks an aggregatable (numeric) column, zipf-weighted.
std::string NumericColumn(const TraceConfig& config, const Schema& schema,
                          Rng* rng) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    size_t idx = rng->NextZipf(schema.num_fields(), config.column_zipf);
    if (schema.field(idx).type == DataType::kInt64 ||
        schema.field(idx).type == DataType::kDouble) {
      return schema.field(idx).name;
    }
  }
  return schema.field(0).name;
}

std::string AnyColumn(const TraceConfig& config, const Schema& schema,
                      Rng* rng) {
  size_t idx = rng->NextZipf(schema.num_fields(), config.column_zipf);
  return schema.field(idx).name;
}

}  // namespace

std::vector<TraceQuery> GenerateTrace(const TraceConfig& config,
                                      const Schema& schema) {
  Rng rng(config.seed);
  std::vector<std::string> predicate_pool;
  std::vector<TraceQuery> trace;
  trace.reserve(config.num_queries);

  auto draw_atom = [&]() -> std::string {
    if (!predicate_pool.empty() &&
        rng.NextBool(config.predicate_reuse_prob)) {
      // Zipf over the pool: recently popular predicates dominate.
      size_t idx = rng.NextZipf(predicate_pool.size(), 1.1);
      return predicate_pool[idx];
    }
    std::string atom = FreshAtom(config, schema, &rng);
    predicate_pool.insert(predicate_pool.begin(), atom);
    if (predicate_pool.size() > config.predicate_pool_capacity) {
      predicate_pool.pop_back();
    }
    return atom;
  };

  for (size_t i = 0; i < config.num_queries; ++i) {
    TraceQuery query;
    query.timestamp = static_cast<SimTime>(
        rng.NextUint64(static_cast<uint64_t>(config.duration)));

    std::string where = draw_atom();
    if (rng.NextBool(config.second_predicate_prob)) {
      std::string second = draw_atom();
      if (rng.NextBool(config.not_prob)) second = "NOT (" + second + ")";
      where += rng.NextBool(config.or_prob) ? " OR " : " AND ";
      where += second;
    }

    bool is_join = !config.join_table.empty() &&
                   rng.NextBool(config.join_prob);
    bool is_aggregate = rng.NextBool(config.aggregate_prob);
    std::string sql;
    if (is_join) {
      sql = "SELECT COUNT(*) FROM " + config.table + " JOIN " +
            config.join_table + " ON " + config.table + ".c0 = " +
            config.join_table + ".c0 WHERE " + where;
    } else if (is_aggregate) {
      double which = rng.NextDouble();
      std::string agg;
      if (which < 0.6) {
        agg = "COUNT(*)";
      } else if (which < 0.8) {
        agg = "SUM(" + NumericColumn(config, schema, &rng) + ")";
      } else if (which < 0.9) {
        agg = "MAX(" + NumericColumn(config, schema, &rng) + ")";
      } else {
        agg = "AVG(" + NumericColumn(config, schema, &rng) + ")";
      }
      if (rng.NextBool(config.group_by_prob)) {
        std::string key = AnyColumn(config, schema, &rng);
        sql = "SELECT " + key + ", " + agg + " FROM " + config.table +
              " WHERE " + where + " GROUP BY " + key;
      } else {
        sql = "SELECT " + agg + " FROM " + config.table + " WHERE " + where;
      }
    } else {
      std::string projection = AnyColumn(config, schema, &rng);
      sql = "SELECT " + projection + " FROM " + config.table + " WHERE " +
            where;
      if (rng.NextBool(config.order_by_prob)) {
        sql += " ORDER BY " + projection + " LIMIT 100";
      } else {
        sql += " LIMIT 1000";
      }
    }
    query.sql = std::move(sql);
    trace.push_back(std::move(query));
  }
  std::sort(trace.begin(), trace.end(),
            [](const TraceQuery& a, const TraceQuery& b) {
              return a.timestamp < b.timestamp;
            });
  return trace;
}

}  // namespace feisu
