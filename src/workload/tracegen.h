#ifndef FEISU_WORKLOAD_TRACEGEN_H_
#define FEISU_WORKLOAD_TRACEGEN_H_

#include <string>
#include <vector>

#include "columnar/schema.h"
#include "common/sim_clock.h"

namespace feisu {

/// One trace event: a query arriving at a simulated timestamp.
struct TraceQuery {
  SimTime timestamp = 0;
  std::string sql;
};

/// Knobs reproducing the statistical structure the paper measured in
/// Baidu's two-month production log (§IV-A): a Zipf-hot set of queried
/// columns (data locality) and heavy exact reuse of query predicates in
/// short time spans (query similarity).
struct TraceConfig {
  std::string table = "t1";
  size_t num_queries = 2000;
  SimTime duration = 60LL * 24 * kSimHour;  ///< two months
  uint64_t seed = 7;

  /// Column popularity skew: higher => a smaller hot set is reused more.
  double column_zipf = 1.2;
  /// Probability that a predicate atom is drawn from the recent-predicate
  /// pool instead of freshly generated — the query-similarity knob.
  double predicate_reuse_prob = 0.6;
  size_t predicate_pool_capacity = 400;
  /// Upper bound of fresh numeric predicate literals. A small domain makes
  /// even independently random parameters collide, as in production logs.
  int64_t value_domain = 100;
  /// Probability that a numeric atom is a point predicate (=). Debugging /
  /// case-tracking workloads are point-heavy and highly selective.
  double eq_prob = 1.0 / 6.0;

  /// Query shape mix (Fig. 8: scan/aggregation > 99%).
  double aggregate_prob = 0.55;
  double second_predicate_prob = 0.5;
  double or_prob = 0.15;
  double not_prob = 0.1;        ///< wraps the second atom in NOT(...)
  double group_by_prob = 0.15;  ///< only for aggregate queries
  double order_by_prob = 0.004;
  double join_prob = 0.002;
  std::string join_table;       ///< required if join_prob > 0
};

/// Generates a timestamp-sorted synthetic query trace over `schema`.
std::vector<TraceQuery> GenerateTrace(const TraceConfig& config,
                                      const Schema& schema);

}  // namespace feisu

#endif  // FEISU_WORKLOAD_TRACEGEN_H_
