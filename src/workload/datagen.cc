#include "workload/datagen.h"

namespace feisu {

const std::vector<PaperDataset>& PaperTableI() {
  static const std::vector<PaperDataset> kDatasets{
      {"T1", 30.0, "62 TB", 200, "A"},
      {"T2", 130.0, "200 TB", 200, "B"},
      {"T3", 10.0, "7 TB", 57, "A"},
  };
  return kDatasets;
}

Schema MakeLogSchema(size_t num_fields) {
  std::vector<Field> fields;
  fields.reserve(num_fields);
  for (size_t i = 0; i < num_fields; ++i) {
    std::string name = "c" + std::to_string(i);
    if (i % 7 == 1) {
      fields.push_back({name, DataType::kString, true});   // URL / keyword
    } else if (i % 11 == 3) {
      fields.push_back({name, DataType::kDouble, true});   // latency et al.
    } else {
      fields.push_back({name, DataType::kInt64, true});    // counters/flags
    }
  }
  return Schema(std::move(fields));
}

Schema MakeWebpageSchema(size_t num_fields) {
  // T3's attributes are a subset of T1's (paper §VI-A): reuse the first
  // `num_fields` fields of the log schema.
  Schema log_schema = MakeLogSchema();
  std::vector<Field> fields(log_schema.fields().begin(),
                            log_schema.fields().begin() +
                                static_cast<long>(num_fields));
  return Schema(std::move(fields));
}

RecordBatch GenerateRows(const Schema& schema, size_t n, Rng* rng) {
  RecordBatch batch(schema);
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    batch.mutable_column(c)->Reserve(n);
  }
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    ColumnVector* col = batch.mutable_column(c);
    for (size_t row = 0; row < n; ++row) {
      if (rng->NextBool(0.01)) {
        col->AppendNull();
        continue;
      }
      switch (schema.field(c).type) {
        case DataType::kInt64:
          if (c % 3 == 0) {
            // Flag/status-like attributes: tiny skewed domain, long runs —
            // this is what makes the columnar format compression-friendly.
            col->AppendInt64(static_cast<int64_t>(rng->NextZipf(4, 2.0)));
          } else {
            // Small domain so repeated point/range predicates select real
            // subsets (paper workloads filter on columnar attributes).
            col->AppendInt64(static_cast<int64_t>(rng->NextZipf(101, 0.8)));
          }
          break;
        case DataType::kDouble:
          col->AppendDouble(rng->NextDouble() * 1000.0);
          break;
        case DataType::kString:
          if (c % 2 == 0) {
            // Category-like strings: low cardinality, dictionary-friendly.
            col->AppendString("cat_" + std::to_string(rng->NextZipf(40, 1.0)));
          } else {
            col->AppendString("kw_" +
                              std::to_string(rng->NextZipf(5000, 1.1)));
          }
          break;
        case DataType::kBool:
          col->AppendBool(rng->NextBool(0.5));
          break;
      }
    }
  }
  return batch;
}

}  // namespace feisu
