#include "client/client.h"

#include <algorithm>
#include <map>

#include "expr/normalize.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace feisu {

Status FeisuClient::CheckSyntax(const std::string& sql) const {
  Result<SelectStatement> parsed = ParseSql(sql);
  return parsed.ok() ? Status::OK() : parsed.status();
}

Status FeisuClient::Verify(const std::string& sql) const {
  FEISU_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  std::vector<std::string> tables;
  for (const auto& ref : stmt.from) tables.push_back(ref.name);
  for (const auto& join : stmt.joins) tables.push_back(join.table.name);
  for (const auto& table : tables) {
    const TableMeta* meta = engine_->catalog().Find(table);
    if (meta == nullptr) return Status::NotFound("table " + table);
    if (!meta->UserMayRead(user_)) {
      return Status::PermissionDenied("user " + user_ +
                                      " may not read table " + table);
    }
  }
  return Status::OK();
}

Result<std::string> FeisuClient::Explain(const std::string& sql) const {
  FEISU_RETURN_IF_ERROR(Verify(sql));
  FEISU_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));
  FEISU_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(stmt, engine_->catalog()));
  plan = OptimizePlan(std::move(plan), engine_->catalog());
  return plan->ToString();
}

Result<QueryResult> FeisuClient::Query(const std::string& sql) {
  HistoryEntry entry;
  entry.timestamp = engine_->clock().Now();
  entry.sql = sql;
  FEISU_RETURN_IF_ERROR(Verify(sql));
  Result<QueryResult> result = engine_->Query(user_, sql);
  entry.succeeded = result.ok();
  if (result.ok()) entry.response_time = result->stats.response_time;
  history_.push_back(std::move(entry));
  return result;
}

std::vector<std::pair<std::string, size_t>> FeisuClient::FrequentPredicates(
    size_t top_k) const {
  std::map<std::string, size_t> counts;
  for (const auto& entry : history_) {
    Result<SelectStatement> parsed = ParseSql(entry.sql);
    if (!parsed.ok() || parsed->where == nullptr) continue;
    for (const auto& conjunct : NormalizePredicate(parsed->where)) {
      ++counts[PredicateKey(conjunct)];
    }
  }
  std::vector<std::pair<std::string, size_t>> sorted(counts.begin(),
                                                     counts.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted.size() > top_k) sorted.resize(top_k);
  return sorted;
}

void FeisuClient::PinFrequentPredicates(size_t top_k) {
  for (const auto& [predicate, count] : FrequentPredicates(top_k)) {
    for (size_t i = 0; i < engine_->num_leaves(); ++i) {
      engine_->leaf(i).index_cache().SetPreference(predicate, true);
    }
  }
}

}  // namespace feisu
