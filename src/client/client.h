#ifndef FEISU_CLIENT_CLIENT_H_
#define FEISU_CLIENT_CLIENT_H_

#include <string>
#include <vector>

#include "core/engine.h"

namespace feisu {

/// One entry of the client-side query history (paper §III-C: "The
/// client-end also collects user query histories to personalize data
/// indexing and caching").
struct HistoryEntry {
  SimTime timestamp = 0;
  std::string sql;
  bool succeeded = false;
  SimTime response_time = 0;
};

/// The versatile client end: query syntax checking, access-right
/// verification before submission, and query-history collection that feeds
/// SmartIndex personalization (pinning a user's hottest predicates).
class FeisuClient {
 public:
  FeisuClient(FeisuEngine* engine, std::string user)
      : engine_(engine), user_(std::move(user)) {}

  const std::string& user() const { return user_; }

  /// Syntax check only — does not touch the servers. Returns the parse
  /// error, if any, so the client can guide the user.
  Status CheckSyntax(const std::string& sql) const;

  /// Pre-submission verification: syntax plus access rights on every
  /// referenced table (saving a master round trip on doomed queries).
  Status Verify(const std::string& sql) const;

  /// Verifies, submits, records history.
  Result<QueryResult> Query(const std::string& sql);

  /// EXPLAIN-style helper: plans and optimizes the query without executing
  /// it, returning the rendered physical plan tree.
  Result<std::string> Explain(const std::string& sql) const;

  const std::vector<HistoryEntry>& history() const { return history_; }

  /// The user's most frequent normalized predicates (descending count).
  std::vector<std::pair<std::string, size_t>> FrequentPredicates(
      size_t top_k) const;

  /// SmartIndex personalization: marks the user's `top_k` hottest
  /// predicates as preferred in every leaf index cache, so their indices
  /// outlive the TTL under low memory pressure.
  void PinFrequentPredicates(size_t top_k);

 private:
  FeisuEngine* engine_;
  std::string user_;
  std::vector<HistoryEntry> history_;
};

}  // namespace feisu

#endif  // FEISU_CLIENT_CLIENT_H_
