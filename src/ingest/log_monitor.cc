#include "ingest/log_monitor.h"

#include <cerrno>
#include <cstdlib>

#include "columnar/json_flatten.h"
#include "common/hash.h"

namespace feisu {

namespace {

Result<Value> ParseTsvField(const std::string& text, const Field& field) {
  if (text == "\\N") return Value::Null();
  switch (field.type) {
    case DataType::kInt64: {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad INT64 field: " + text);
      }
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad DOUBLE field: " + text);
      }
      return Value::Double(v);
    }
    case DataType::kBool:
      if (text == "1" || text == "true") return Value::Bool(true);
      if (text == "0" || text == "false") return Value::Bool(false);
      return Status::InvalidArgument("bad BOOL field: " + text);
    case DataType::kString:
      return Value::String(text);
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<std::vector<Value>> ParseLogLine(const std::string& line,
                                        const Schema& schema) {
  std::vector<Value> row(schema.num_fields());
  if (!line.empty() && line[0] == '{') {
    FEISU_ASSIGN_OR_RETURN(std::vector<FlatAttribute> attrs,
                           FlattenJson(line));
    for (auto& attr : attrs) {
      int idx = schema.FieldIndex(attr.path);
      if (idx < 0) {
        return Status::InvalidArgument("unknown attribute " + attr.path);
      }
      Value v = std::move(attr.value);
      if (!v.is_null() &&
          schema.field(idx).type == DataType::kDouble &&
          v.type() == DataType::kInt64) {
        v = Value::Double(v.AsDouble());
      }
      if (!v.is_null() && v.type() != schema.field(idx).type) {
        return Status::InvalidArgument("type mismatch for " + attr.path);
      }
      row[static_cast<size_t>(idx)] = std::move(v);
    }
    return row;
  }
  // TSV: exactly one field per schema column.
  std::vector<std::string> parts;
  size_t start = 0;
  for (;;) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      parts.push_back(line.substr(start));
      break;
    }
    parts.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
  if (parts.size() != schema.num_fields()) {
    return Status::InvalidArgument("TSV arity mismatch: got " +
                                   std::to_string(parts.size()) + " of " +
                                   std::to_string(schema.num_fields()));
  }
  for (size_t i = 0; i < parts.size(); ++i) {
    FEISU_ASSIGN_OR_RETURN(Value v, ParseTsvField(parts[i], schema.field(i)));
    row[i] = std::move(v);
  }
  return row;
}

LogMonitor::LogMonitor(uint32_t node_id, StorageSystem* storage,
                       Catalog* catalog, std::string table,
                       std::string path_prefix, LogMonitorConfig config)
    : node_id_(node_id),
      storage_(storage),
      catalog_(catalog),
      table_(std::move(table)),
      path_prefix_(std::move(path_prefix)),
      config_(config) {
  const TableMeta* meta = catalog_->Find(table_);
  if (meta != nullptr) pending_ = RecordBatch(meta->schema());
}

Status LogMonitor::OnLogLine(const std::string& line, SimTime now) {
  TableMeta* meta = catalog_->FindMutable(table_);
  if (meta == nullptr) return Status::NotFound("table " + table_);
  ++stats_.lines_seen;
  stats_.cpu_time += static_cast<SimTime>(line.size()) * config_.cpu_per_byte;
  Result<std::vector<Value>> row = ParseLogLine(line, meta->schema());
  if (!row.ok()) {
    ++stats_.lines_rejected;
    return Status::OK();  // tolerate dirty lines; keep ingesting
  }
  if (pending_.num_rows() == 0) oldest_buffered_ = now;
  FEISU_RETURN_IF_ERROR(pending_.AppendRow(*row));
  ++stats_.rows_ingested;
  if (pending_.num_rows() >= config_.rows_per_block) return CutBlock(now);
  return Status::OK();
}

Status LogMonitor::Tick(SimTime now) {
  if (pending_.num_rows() > 0 &&
      now - oldest_buffered_ >= config_.max_buffer_age) {
    return CutBlock(now);
  }
  return Status::OK();
}

Status LogMonitor::Flush(SimTime now) {
  if (pending_.num_rows() == 0) return Status::OK();
  return CutBlock(now);
}

Status LogMonitor::CutBlock(SimTime now) {
  (void)now;
  TableMeta* meta = catalog_->FindMutable(table_);
  if (meta == nullptr) return Status::NotFound("table " + table_);
  std::string path = path_prefix_ + "/node" + std::to_string(node_id_) +
                     "_blk_" + std::to_string(next_block_seq_++);
  // Block ids must be unique catalog-wide (SmartIndex keys on them); a
  // path hash avoids coordinating with the engine's sequential ids.
  int64_t block_id = static_cast<int64_t>(HashString(path) >> 1);
  ColumnarBlock block = ColumnarBlock::FromBatch(block_id, pending_);
  std::string payload = block.Serialize();

  TableBlockMeta block_meta;
  block_meta.block_id = block_id;
  block_meta.path = path;
  block_meta.num_rows = block.num_rows();
  block_meta.bytes = payload.size();
  for (size_t c = 0; c < block.schema().num_fields(); ++c) {
    block_meta.stats.push_back(block.stats(c));
    block_meta.stats_columns.push_back(block.schema().field(c).name);
  }
  stats_.bytes_written += payload.size();
  stats_.cpu_time +=
      static_cast<SimTime>(payload.size()) * config_.cpu_per_byte;
  // Log blocks live where they were generated: pinned, unreplicated.
  FEISU_RETURN_IF_ERROR(
      storage_->WriteToNode(path, std::move(payload), node_id_));
  meta->AddBlock(std::move(block_meta));
  ++stats_.blocks_written;
  pending_ = RecordBatch(meta->schema());
  return Status::OK();
}

}  // namespace feisu
