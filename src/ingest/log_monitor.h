#ifndef FEISU_INGEST_LOG_MONITOR_H_
#define FEISU_INGEST_LOG_MONITOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/sim_clock.h"
#include "plan/catalog.h"
#include "storage/path_router.h"

namespace feisu {

/// Parses one raw log line into a row of `schema`. Two formats:
///  * TSV — one value per schema field, '\t'-separated, "\\N" = NULL;
///  * JSON — an object whose flattened attribute paths name schema fields
///    (missing attributes become NULL).
/// The format is auto-detected per line ('{' prefix = JSON).
Result<std::vector<Value>> ParseLogLine(const std::string& line,
                                        const Schema& schema);

/// Configuration of the per-node ingestion process.
struct LogMonitorConfig {
  /// Rows buffered before a columnar block is cut.
  uint32_t rows_per_block = 4096;
  /// Maximum time rows may sit buffered before being flushed anyway, so
  /// analytics see fresh data (paper §II: "data freshness is very
  /// important").
  SimTime max_buffer_age = 5 * kSimMinute;
  /// Simulated conversion cost per ingested byte (the "light-weight"
  /// process shares the node with the business service).
  SimTime cpu_per_byte = 2;
};

struct LogMonitorStats {
  uint64_t lines_seen = 0;
  uint64_t lines_rejected = 0;
  uint64_t rows_ingested = 0;
  uint64_t blocks_written = 0;
  uint64_t bytes_written = 0;
  SimTime cpu_time = 0;
};

/// The light-weight process Feisu deploys on every storage node (paper
/// §III-B): it monitors newly generated raw data (e.g. service logs) and
/// converts it into Feisu's columnar format in place — blocks are written
/// to the node's own storage (pinned, unreplicated local FS) and
/// registered in the catalog so the node doubles as the leaf server that
/// will later scan them.
class LogMonitor {
 public:
  /// `table` must already exist in `catalog`; new blocks are appended to
  /// it at `path_prefix` on `storage`, pinned to `node_id`.
  LogMonitor(uint32_t node_id, StorageSystem* storage, Catalog* catalog,
             std::string table, std::string path_prefix,
             LogMonitorConfig config = {});

  LogMonitor(const LogMonitor&) = delete;
  LogMonitor& operator=(const LogMonitor&) = delete;

  /// Offers one newly observed raw log line at simulated time `now`.
  /// Malformed lines are counted and skipped (production log streams are
  /// never perfectly clean). Cuts a block when the buffer fills.
  Status OnLogLine(const std::string& line, SimTime now);

  /// Periodic tick: flushes the buffer if it exceeded max_buffer_age.
  Status Tick(SimTime now);

  /// Force-flushes buffered rows into a final block.
  Status Flush(SimTime now);

  size_t buffered_rows() const { return pending_.num_rows(); }
  const LogMonitorStats& stats() const { return stats_; }

 private:
  Status CutBlock(SimTime now);

  uint32_t node_id_;
  StorageSystem* storage_;
  Catalog* catalog_;
  std::string table_;
  std::string path_prefix_;
  LogMonitorConfig config_;
  RecordBatch pending_;
  SimTime oldest_buffered_ = 0;
  int64_t next_block_seq_ = 0;
  LogMonitorStats stats_;
};

}  // namespace feisu

#endif  // FEISU_INGEST_LOG_MONITOR_H_
