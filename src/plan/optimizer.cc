#include "plan/optimizer.h"

#include <algorithm>
#include <set>

#include "expr/normalize.h"

namespace feisu {

namespace {

/// Applies a binary arithmetic/comparison op to literal values; returns
/// nullptr when not foldable.
ExprPtr TryFoldBinary(const Expr& expr, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Expr::Literal(Value::Null());
  if (expr.kind() == ExprKind::kArithmetic) {
    if (!lhs.is_numeric() || !rhs.is_numeric()) return nullptr;
    double a = lhs.AsDouble();
    double b = rhs.AsDouble();
    bool both_int = lhs.type() == DataType::kInt64 &&
                    rhs.type() == DataType::kInt64 &&
                    expr.arith_op() != ArithOp::kDiv;
    double v = 0;
    switch (expr.arith_op()) {
      case ArithOp::kAdd:
        v = a + b;
        break;
      case ArithOp::kSub:
        v = a - b;
        break;
      case ArithOp::kMul:
        v = a * b;
        break;
      case ArithOp::kDiv:
        if (b == 0) return Expr::Literal(Value::Null());
        v = a / b;
        break;
      case ArithOp::kMod:
        if (static_cast<int64_t>(b) == 0) return Expr::Literal(Value::Null());
        v = static_cast<double>(static_cast<int64_t>(a) %
                                static_cast<int64_t>(b));
        break;
    }
    return both_int ? Expr::Literal(Value::Int64(static_cast<int64_t>(v)))
                    : Expr::Literal(Value::Double(v));
  }
  if (expr.kind() == ExprKind::kComparison) {
    if (expr.compare_op() == CompareOp::kContains) {
      if (lhs.type() != DataType::kString || rhs.type() != DataType::kString) {
        return nullptr;
      }
      return Expr::Literal(Value::Bool(
          lhs.string_value().find(rhs.string_value()) != std::string::npos));
    }
    int cmp = lhs.Compare(rhs);
    bool result = false;
    switch (expr.compare_op()) {
      case CompareOp::kEq:
        result = cmp == 0;
        break;
      case CompareOp::kNe:
        result = cmp != 0;
        break;
      case CompareOp::kLt:
        result = cmp < 0;
        break;
      case CompareOp::kLe:
        result = cmp <= 0;
        break;
      case CompareOp::kGt:
        result = cmp > 0;
        break;
      case CompareOp::kGe:
        result = cmp >= 0;
        break;
      case CompareOp::kContains:
        break;
    }
    return Expr::Literal(Value::Bool(result));
  }
  return nullptr;
}

/// Column refs used by an expression, with qualification.
void CollectQualifiedRefs(const ExprPtr& expr,
                          std::vector<const Expr*>* refs) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kColumnRef) {
    refs->push_back(expr.get());
    return;
  }
  for (const auto& child : expr->children()) {
    CollectQualifiedRefs(child, refs);
  }
  if (expr->within() != nullptr) CollectQualifiedRefs(expr->within(), refs);
}

/// Collects all scan nodes under `plan`.
void CollectScans(const PlanPtr& plan, std::vector<PlanNode*>* scans) {
  if (plan->kind == PlanKind::kScan) {
    scans->push_back(plan.get());
    return;
  }
  for (const auto& child : plan->children) CollectScans(child, scans);
}

bool SubtreeHasAggregate(const PlanPtr& plan) {
  if (plan->kind == PlanKind::kAggregate) return true;
  for (const auto& child : plan->children) {
    if (SubtreeHasAggregate(child)) return true;
  }
  return false;
}

void CollectExprColumns(const ExprPtr& expr, std::set<std::string>* out) {
  if (expr == nullptr) return;
  std::vector<std::string> cols;
  expr->CollectColumns(&cols);
  out->insert(cols.begin(), cols.end());
}

/// Gathers every column name any node above the scans needs.
void CollectNeededColumns(const PlanPtr& plan, std::set<std::string>* out) {
  switch (plan->kind) {
    case PlanKind::kScan:
      CollectExprColumns(plan->scan_predicate, out);
      break;
    case PlanKind::kFilter:
      CollectExprColumns(plan->predicate, out);
      break;
    case PlanKind::kProject:
      for (const auto& item : plan->projections) {
        CollectExprColumns(item.expr, out);
      }
      break;
    case PlanKind::kAggregate:
      for (const auto& g : plan->group_by) CollectExprColumns(g, out);
      for (const auto& spec : plan->aggregates) {
        CollectExprColumns(spec.arg, out);
        CollectExprColumns(spec.within, out);
      }
      break;
    case PlanKind::kJoin:
      CollectExprColumns(plan->join_condition, out);
      break;
    case PlanKind::kSort:
      for (const auto& item : plan->order_by) {
        CollectExprColumns(item.expr, out);
      }
      break;
    case PlanKind::kLimit:
      break;
  }
  for (const auto& child : plan->children) CollectNeededColumns(child, out);
}

uint64_t EstimateRows(const PlanPtr& plan, const Catalog& catalog) {
  switch (plan->kind) {
    case PlanKind::kScan: {
      const TableMeta* meta = catalog.Find(plan->table);
      uint64_t rows = meta == nullptr ? 1000 : meta->TotalRows();
      // Crude selectivity for a pushed predicate.
      if (plan->scan_predicate != nullptr) rows /= 3;
      return rows;
    }
    case PlanKind::kFilter:
      return EstimateRows(plan->children[0], catalog) / 3;
    case PlanKind::kJoin:
      return EstimateRows(plan->children[0], catalog) +
             EstimateRows(plan->children[1], catalog);
    case PlanKind::kLimit: {
      uint64_t child = EstimateRows(plan->children[0], catalog);
      return std::min<uint64_t>(child, static_cast<uint64_t>(plan->limit));
    }
    default:
      return plan->children.empty()
                 ? 1000
                 : EstimateRows(plan->children[0], catalog);
  }
}

}  // namespace

ExprPtr FoldConstantExpr(const ExprPtr& expr) {
  if (expr == nullptr) return nullptr;
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& child : expr->children()) {
    ExprPtr folded = FoldConstantExpr(child);
    changed |= (folded != child);
    kids.push_back(std::move(folded));
  }
  bool all_literal =
      std::all_of(kids.begin(), kids.end(), [](const ExprPtr& e) {
        return e->kind() == ExprKind::kLiteral;
      });
  if (all_literal && kids.size() == 2 &&
      (expr->kind() == ExprKind::kArithmetic ||
       expr->kind() == ExprKind::kComparison)) {
    ExprPtr folded = TryFoldBinary(*expr, kids[0]->value(), kids[1]->value());
    if (folded != nullptr) return folded;
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(expr->compare_op(), kids[0], kids[1]);
    case ExprKind::kLogical:
      if (expr->logical_op() == LogicalOp::kNot) return Expr::Not(kids[0]);
      return expr->logical_op() == LogicalOp::kAnd
                 ? Expr::And(kids[0], kids[1])
                 : Expr::Or(kids[0], kids[1]);
    case ExprKind::kArithmetic:
      return Expr::Arith(expr->arith_op(), kids[0], kids[1]);
    default:
      return expr;
  }
}

PlanPtr FoldConstants(PlanPtr plan) {
  for (auto& child : plan->children) child = FoldConstants(child);
  if (plan->predicate != nullptr) {
    plan->predicate = FoldConstantExpr(plan->predicate);
  }
  if (plan->scan_predicate != nullptr) {
    plan->scan_predicate = FoldConstantExpr(plan->scan_predicate);
  }
  if (plan->join_condition != nullptr) {
    plan->join_condition = FoldConstantExpr(plan->join_condition);
  }
  for (auto& item : plan->projections) {
    item.expr = FoldConstantExpr(item.expr);
  }
  return plan;
}

PlanPtr PushDownPredicates(PlanPtr plan) {
  for (auto& child : plan->children) child = PushDownPredicates(child);
  if (plan->kind != PlanKind::kFilter) return plan;
  // A HAVING-style filter above an Aggregate references aggregate outputs
  // (and group keys); pushing it below the aggregation would change
  // semantics, so leave it in place.
  if (SubtreeHasAggregate(plan->children[0])) return plan;

  // Split the filter into conjuncts, sort each into the deepest scan it
  // fully references.
  std::vector<ExprPtr> conjuncts;
  std::vector<ExprPtr> stack = {plan->predicate};
  while (!stack.empty()) {
    ExprPtr e = stack.back();
    stack.pop_back();
    if (e->kind() == ExprKind::kLogical &&
        e->logical_op() == LogicalOp::kAnd) {
      stack.push_back(e->child(0));
      stack.push_back(e->child(1));
    } else {
      conjuncts.push_back(e);
    }
  }
  std::vector<PlanNode*> scans;
  CollectScans(plan->children[0], &scans);
  // The scan schema is unknown here without the catalog; rely on the
  // table's alias qualification plus an over-approximation: a conjunct is
  // pushable if it references exactly one scan's alias or, unqualified,
  // if there is exactly one scan (single-table query).
  std::vector<ExprPtr> remaining;
  for (const auto& conjunct : conjuncts) {
    if (conjunct->ContainsAggregate()) {
      remaining.push_back(conjunct);
      continue;
    }
    PlanNode* target = nullptr;
    if (scans.size() == 1) {
      target = scans[0];
    } else {
      std::vector<const Expr*> refs;
      CollectQualifiedRefs(conjunct, &refs);
      std::set<std::string> aliases;
      bool all_qualified = !refs.empty();
      for (const Expr* ref : refs) {
        if (ref->table().empty()) {
          all_qualified = false;
          break;
        }
        aliases.insert(ref->table());
      }
      if (all_qualified && aliases.size() == 1) {
        for (PlanNode* scan : scans) {
          if (scan->table_alias == *aliases.begin() ||
              scan->table == *aliases.begin()) {
            target = scan;
            break;
          }
        }
      }
    }
    if (target != nullptr) {
      target->scan_predicate =
          target->scan_predicate == nullptr
              ? conjunct
              : Expr::And(target->scan_predicate, conjunct);
    } else {
      remaining.push_back(conjunct);
    }
  }
  if (remaining.empty()) return plan->children[0];
  ExprPtr residual = remaining[0];
  for (size_t i = 1; i < remaining.size(); ++i) {
    residual = Expr::And(residual, remaining[i]);
  }
  plan->predicate = residual;
  return plan;
}

PlanPtr PruneColumns(PlanPtr plan, const Catalog& catalog) {
  std::set<std::string> needed;
  CollectNeededColumns(plan, &needed);
  std::vector<PlanNode*> scans;
  CollectScans(plan, &scans);
  for (PlanNode* scan : scans) {
    const TableMeta* meta = catalog.Find(scan->table);
    if (meta == nullptr) continue;
    scan->columns.clear();
    for (const auto& field : meta->schema().fields()) {
      if (needed.contains(field.name)) scan->columns.push_back(field.name);
    }
    // A scan that feeds COUNT(*) with no referenced columns still needs
    // row counts; an empty column list means "no data columns".
  }
  return plan;
}

PlanPtr PushDownLimits(PlanPtr plan, const Catalog& catalog) {
  for (auto& child : plan->children) child = PushDownLimits(child, catalog);
  if (plan->kind != PlanKind::kLimit || plan->limit < 0) return plan;
  // Walk down through row-preserving nodes. A Project neither reorders nor
  // filters rows, so a row cap stays valid; the scan_predicate is applied
  // BEFORE the cap at the leaf, so pushed filters are safe too.
  const PlanNode* node = plan->children[0].get();
  std::vector<OrderByItem> order;
  if (node->kind == PlanKind::kSort) {
    // Ordered limit: pushable as a per-leaf top-k iff every sort key is a
    // plain table column (alias-of-computed-projection keys must stay at
    // the master). The union of local top-ks contains the global top-k.
    order = node->order_by;
    node = node->children[0].get();
  }
  while (node->kind == PlanKind::kProject) node = node->children[0].get();
  if (node->kind != PlanKind::kScan) return plan;
  auto* scan = const_cast<PlanNode*>(node);
  if (!order.empty()) {
    // Every sort key must be a real column of the scanned table — aliases
    // of computed projections only exist above the Project.
    const TableMeta* meta = catalog.Find(scan->table);
    if (meta == nullptr) return plan;
    for (const auto& item : order) {
      if (item.expr->kind() != ExprKind::kColumnRef ||
          !meta->schema().HasField(item.expr->column())) {
        return plan;
      }
    }
  }
  scan->limit_hint = plan->limit;
  scan->order_hint = order;
  return plan;
}

PlanPtr ReorderJoins(PlanPtr plan, const Catalog& catalog) {
  for (auto& child : plan->children) child = ReorderJoins(child, catalog);
  if (plan->kind != PlanKind::kJoin) return plan;
  // Only commutative joins may swap.
  if (plan->join_type != JoinType::kInner &&
      plan->join_type != JoinType::kCross) {
    return plan;
  }
  uint64_t left = EstimateRows(plan->children[0], catalog);
  uint64_t right = EstimateRows(plan->children[1], catalog);
  // Hash join builds on the right input; put the smaller one there.
  if (right > left) std::swap(plan->children[0], plan->children[1]);
  return plan;
}

PlanPtr OptimizePlan(PlanPtr plan, const Catalog& catalog) {
  plan = FoldConstants(std::move(plan));
  plan = PushDownPredicates(std::move(plan));
  plan = PushDownLimits(std::move(plan), catalog);
  plan = ReorderJoins(std::move(plan), catalog);
  plan = PruneColumns(std::move(plan), catalog);
  return plan;
}

}  // namespace feisu
