#ifndef FEISU_PLAN_OPTIMIZER_H_
#define FEISU_PLAN_OPTIMIZER_H_

#include "plan/catalog.h"
#include "plan/logical_plan.h"

namespace feisu {

/// Cost-based/heuristic plan rewriting performed by the master's job
/// manager before dissection (paper §III-B "generates optimized query
/// execution plans using a cost-based approach"). Rules applied:
///
///  1. constant folding inside predicates and projections;
///  2. predicate pushdown — filter conjuncts referencing a single table
///     move into that table's Scan node (where SmartIndex serves them);
///  3. column pruning — each Scan lists exactly the columns the rest of
///     the plan touches (Feisu's columnar I/O then reads only those);
///  4. join reordering — commutative inner/cross joins put the smaller
///     estimated input on the build side.
PlanPtr OptimizePlan(PlanPtr plan, const Catalog& catalog);

/// Individual rules, exposed for tests and ablation benchmarks.
PlanPtr FoldConstants(PlanPtr plan);
PlanPtr PushDownPredicates(PlanPtr plan);
/// Annotates scans under an unordered LIMIT with a per-leaf row cap
/// (distributed limit: each leaf returns at most N rows, the master trims
/// the union). Never crosses Sort/Aggregate/Join nodes.
PlanPtr PushDownLimits(PlanPtr plan, const Catalog& catalog);
PlanPtr PruneColumns(PlanPtr plan, const Catalog& catalog);
PlanPtr ReorderJoins(PlanPtr plan, const Catalog& catalog);

/// Folds literal-only subtrees of an expression (e.g. 1+2 -> 3).
ExprPtr FoldConstantExpr(const ExprPtr& expr);

}  // namespace feisu

#endif  // FEISU_PLAN_OPTIMIZER_H_
