#ifndef FEISU_PLAN_CATALOG_H_
#define FEISU_PLAN_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/table.h"

namespace feisu {

/// The master's table catalog: name → TableMeta. In production Feisu this
/// metadata is shared cross-domain by the common storage layer; here it is
/// the single source of schema and block-placement truth for planning.
class Catalog {
 public:
  Status RegisterTable(TableMeta table);
  Status DropTable(const std::string& name);

  const TableMeta* Find(const std::string& name) const;
  Result<const TableMeta*> Get(const std::string& name) const;
  TableMeta* FindMutable(const std::string& name);

  std::vector<std::string> TableNames() const;
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, TableMeta> tables_;
};

}  // namespace feisu

#endif  // FEISU_PLAN_CATALOG_H_
