#ifndef FEISU_PLAN_PLANNER_H_
#define FEISU_PLAN_PLANNER_H_

#include "common/result.h"
#include "plan/catalog.h"
#include "plan/logical_plan.h"

namespace feisu {

/// Turns a parsed SELECT statement into a (pre-optimization) logical plan:
///
///   Scan → [Filter] → [Aggregate] → [Filter(HAVING)] → Project →
///   [Sort] → [Limit]
///
/// with Join nodes chaining multiple FROM/JOIN tables. Aggregate calls
/// embedded in projections/HAVING are extracted into the Aggregate node and
/// replaced by references to their output columns. Validates table and
/// column references against the catalog.
Result<PlanPtr> PlanQuery(const SelectStatement& stmt, const Catalog& catalog);

}  // namespace feisu

#endif  // FEISU_PLAN_PLANNER_H_
