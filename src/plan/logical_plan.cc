#include "plan/logical_plan.h"

#include <sstream>

namespace feisu {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kScan:
      return "Scan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kAggregate:
      return "Aggregate";
    case PlanKind::kJoin:
      return "Join";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kLimit:
      return "Limit";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  std::string out = AggFuncName(func);
  out += "(";
  out += arg == nullptr ? "*" : arg->ToString();
  out += ")";
  if (within != nullptr) out += " WITHIN " + within->ToString();
  out += " AS " + output_name;
  return out;
}

PlanPtr PlanNode::Scan(std::string table, std::string alias) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kScan;
  node->table = std::move(table);
  node->table_alias = std::move(alias);
  return node;
}

PlanPtr PlanNode::Filter(ExprPtr predicate, PlanPtr input) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kFilter;
  node->predicate = std::move(predicate);
  node->children = {std::move(input)};
  return node;
}

PlanPtr PlanNode::Project(std::vector<SelectItem> items, PlanPtr input) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kProject;
  node->projections = std::move(items);
  node->children = {std::move(input)};
  return node;
}

PlanPtr PlanNode::Aggregate(std::vector<ExprPtr> group_by,
                            std::vector<AggSpec> aggregates, PlanPtr input) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kAggregate;
  node->group_by = std::move(group_by);
  node->aggregates = std::move(aggregates);
  node->children = {std::move(input)};
  return node;
}

PlanPtr PlanNode::Join(JoinType type, ExprPtr condition, PlanPtr left,
                       PlanPtr right) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kJoin;
  node->join_type = type;
  node->join_condition = std::move(condition);
  node->children = {std::move(left), std::move(right)};
  return node;
}

PlanPtr PlanNode::Sort(std::vector<OrderByItem> order_by, PlanPtr input) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kSort;
  node->order_by = std::move(order_by);
  node->children = {std::move(input)};
  return node;
}

PlanPtr PlanNode::Limit(int64_t n, PlanPtr input) {
  auto node = std::make_shared<PlanNode>();
  node->kind = PlanKind::kLimit;
  node->limit = n;
  node->children = {std::move(input)};
  return node;
}

std::string PlanNode::ToString(int indent) const {
  std::ostringstream os;
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  os << pad << PlanKindName(kind);
  switch (kind) {
    case PlanKind::kScan:
      os << " " << table;
      if (!table_alias.empty() && table_alias != table) {
        os << " AS " << table_alias;
      }
      if (!columns.empty()) {
        os << " [";
        for (size_t i = 0; i < columns.size(); ++i) {
          if (i > 0) os << ", ";
          os << columns[i];
        }
        os << "]";
      }
      if (scan_predicate != nullptr) {
        os << " WHERE " << scan_predicate->ToString();
      }
      break;
    case PlanKind::kFilter:
      os << " " << predicate->ToString();
      break;
    case PlanKind::kProject:
      os << " [";
      for (size_t i = 0; i < projections.size(); ++i) {
        if (i > 0) os << ", ";
        os << projections[i].expr->ToString();
        if (!projections[i].alias.empty()) {
          os << " AS " << projections[i].alias;
        }
      }
      os << "]";
      break;
    case PlanKind::kAggregate:
      os << " groups=[";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) os << ", ";
        os << group_by[i]->ToString();
      }
      os << "] aggs=[";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) os << ", ";
        os << aggregates[i].ToString();
      }
      os << "]";
      break;
    case PlanKind::kJoin:
      os << " " << JoinTypeName(join_type);
      if (join_condition != nullptr) {
        os << " ON " << join_condition->ToString();
      }
      break;
    case PlanKind::kSort:
      os << " [";
      for (size_t i = 0; i < order_by.size(); ++i) {
        if (i > 0) os << ", ";
        os << order_by[i].expr->ToString()
           << (order_by[i].descending ? " DESC" : " ASC");
      }
      os << "]";
      break;
    case PlanKind::kLimit:
      os << " " << limit;
      break;
  }
  os << "\n";
  for (const auto& child : children) os << child->ToString(indent + 1);
  return os.str();
}

}  // namespace feisu
