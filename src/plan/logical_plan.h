#ifndef FEISU_PLAN_LOGICAL_PLAN_H_
#define FEISU_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/ast.h"

namespace feisu {

enum class PlanKind {
  kScan,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
};

const char* PlanKindName(PlanKind kind);

struct PlanNode;
using PlanPtr = std::shared_ptr<PlanNode>;

/// One aggregate computation in an Aggregate node.
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  ExprPtr arg;      ///< null for COUNT(*)
  ExprPtr within;   ///< optional WITHIN scope expression (parsed, carried)
  std::string output_name;

  std::string ToString() const;
};

/// A node of the logical plan tree. A single tagged struct (rather than a
/// class hierarchy) keeps plan rewriting simple.
struct PlanNode {
  PlanKind kind = PlanKind::kScan;
  std::vector<PlanPtr> children;

  // kScan
  std::string table;
  std::string table_alias;
  std::vector<std::string> columns;  ///< pruned column set (empty = all)
  ExprPtr scan_predicate;            ///< pushed-down filter (may be null)
  /// When a LIMIT sits above this scan, each leaf needs to return at most
  /// this many rows (the master still applies the global limit). -1 = none.
  int64_t limit_hint = -1;
  /// For ORDER BY ... LIMIT over plain table columns, each leaf returns its
  /// local top-k under this ordering (the union contains the global top-k).
  /// Empty = unordered head.
  std::vector<OrderByItem> order_hint;

  // kFilter
  ExprPtr predicate;

  // kProject
  std::vector<SelectItem> projections;

  // kAggregate
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggregates;

  // kJoin
  JoinType join_type = JoinType::kInner;
  ExprPtr join_condition;

  // kSort
  std::vector<OrderByItem> order_by;

  // kLimit
  int64_t limit = -1;

  static PlanPtr Scan(std::string table, std::string alias);
  static PlanPtr Filter(ExprPtr predicate, PlanPtr input);
  static PlanPtr Project(std::vector<SelectItem> items, PlanPtr input);
  static PlanPtr Aggregate(std::vector<ExprPtr> group_by,
                           std::vector<AggSpec> aggregates, PlanPtr input);
  static PlanPtr Join(JoinType type, ExprPtr condition, PlanPtr left,
                      PlanPtr right);
  static PlanPtr Sort(std::vector<OrderByItem> order_by, PlanPtr input);
  static PlanPtr Limit(int64_t n, PlanPtr input);

  /// Indented multi-line rendering for tests and EXPLAIN-style output.
  std::string ToString(int indent = 0) const;
};

}  // namespace feisu

#endif  // FEISU_PLAN_LOGICAL_PLAN_H_
