#include "plan/catalog.h"

namespace feisu {

Status Catalog::RegisterTable(TableMeta table) {
  std::string name = table.name();
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    return Status::AlreadyExists("table " + name + " already registered");
  }
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name + " not found");
  }
  return Status::OK();
}

const TableMeta* Catalog::Find(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const TableMeta*> Catalog::Get(const std::string& name) const {
  const TableMeta* table = Find(name);
  if (table == nullptr) return Status::NotFound("table " + name + " not found");
  return table;
}

TableMeta* Catalog::FindMutable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

}  // namespace feisu
