#include "plan/planner.h"

#include <algorithm>
#include <set>

namespace feisu {

namespace {

/// Tracks the tables visible to name resolution, with aliases.
struct Scope {
  // (effective name, table meta)
  std::vector<std::pair<std::string, const TableMeta*>> tables;

  /// Resolves a column reference; errors on unknown or ambiguous names.
  Status ResolveColumn(const Expr& ref) const {
    if (!ref.table().empty()) {
      for (const auto& [alias, meta] : tables) {
        if (alias == ref.table()) {
          if (!meta->schema().HasField(ref.column())) {
            return Status::NotFound("column " + ref.QualifiedName() +
                                    " not found");
          }
          return Status::OK();
        }
      }
      return Status::NotFound("table alias " + ref.table() + " not found");
    }
    int matches = 0;
    for (const auto& [alias, meta] : tables) {
      if (meta->schema().HasField(ref.column())) ++matches;
    }
    if (matches == 0) {
      return Status::NotFound("column " + ref.column() + " not found");
    }
    if (matches > 1) {
      return Status::InvalidArgument("ambiguous column " + ref.column());
    }
    return Status::OK();
  }
};

/// Validates every column reference in an expression subtree.
Status ValidateColumns(const ExprPtr& expr, const Scope& scope) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind() == ExprKind::kColumnRef) {
    return scope.ResolveColumn(*expr);
  }
  for (const auto& child : expr->children()) {
    FEISU_RETURN_IF_ERROR(ValidateColumns(child, scope));
  }
  if (expr->within() != nullptr) {
    FEISU_RETURN_IF_ERROR(ValidateColumns(expr->within(), scope));
  }
  return Status::OK();
}

/// Extracts aggregate calls out of `expr`, appending AggSpecs to `specs`
/// (reusing an existing equal spec), and returns the expression with each
/// aggregate replaced by a ColumnRef to its output column.
ExprPtr ExtractAggregates(const ExprPtr& expr, std::vector<AggSpec>* specs) {
  if (expr == nullptr) return nullptr;
  if (expr->kind() == ExprKind::kAggregate) {
    // Reuse an identical aggregate if present.
    for (const auto& spec : *specs) {
      ExprPtr existing = Expr::Aggregate(spec.func, spec.arg, spec.within);
      if (existing->Equals(*expr)) {
        return Expr::ColumnRef(spec.output_name);
      }
    }
    AggSpec spec;
    spec.func = expr->agg_func();
    spec.arg = expr->children().empty() ? nullptr : expr->child(0);
    spec.within = expr->within();
    spec.output_name = "__agg" + std::to_string(specs->size());
    specs->push_back(spec);
    return Expr::ColumnRef(specs->back().output_name);
  }
  if (expr->children().empty()) return expr;
  // Rebuild the node with transformed children.
  std::vector<ExprPtr> kids;
  kids.reserve(expr->children().size());
  bool changed = false;
  for (const auto& child : expr->children()) {
    ExprPtr t = ExtractAggregates(child, specs);
    changed |= (t != child);
    kids.push_back(std::move(t));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(expr->compare_op(), kids[0], kids[1]);
    case ExprKind::kLogical:
      if (expr->logical_op() == LogicalOp::kNot) return Expr::Not(kids[0]);
      return expr->logical_op() == LogicalOp::kAnd
                 ? Expr::And(kids[0], kids[1])
                 : Expr::Or(kids[0], kids[1]);
    case ExprKind::kArithmetic:
      return Expr::Arith(expr->arith_op(), kids[0], kids[1]);
    default:
      return expr;
  }
}

/// Replaces any subtree structurally equal to a GROUP BY expression with a
/// reference to that group key's output column (named like the Aggregator
/// names it: the column itself, or the rendered expression). This is what
/// lets `SELECT day / 90 AS quarter ... GROUP BY day / 90` project the
/// aggregate's key column instead of re-evaluating `day` post-aggregation.
ExprPtr ReplaceGroupRefs(const ExprPtr& expr,
                         const std::vector<ExprPtr>& group_by) {
  if (expr == nullptr) return nullptr;
  for (const auto& g : group_by) {
    if (expr->Equals(*g)) {
      std::string name =
          g->kind() == ExprKind::kColumnRef ? g->column() : g->ToString();
      return Expr::ColumnRef(name);
    }
  }
  if (expr->children().empty()) return expr;
  std::vector<ExprPtr> kids;
  bool changed = false;
  for (const auto& child : expr->children()) {
    ExprPtr t = ReplaceGroupRefs(child, group_by);
    changed |= (t != child);
    kids.push_back(std::move(t));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ExprKind::kComparison:
      return Expr::Compare(expr->compare_op(), kids[0], kids[1]);
    case ExprKind::kLogical:
      if (expr->logical_op() == LogicalOp::kNot) return Expr::Not(kids[0]);
      return expr->logical_op() == LogicalOp::kAnd
                 ? Expr::And(kids[0], kids[1])
                 : Expr::Or(kids[0], kids[1]);
    case ExprKind::kArithmetic:
      return Expr::Arith(expr->arith_op(), kids[0], kids[1]);
    default:
      return expr;
  }
}

}  // namespace

Result<PlanPtr> PlanQuery(const SelectStatement& stmt,
                          const Catalog& catalog) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("query has no FROM clause");
  }

  // Resolve tables and build the scan/join tree. Comma-separated FROM
  // tables are cross joins; explicit JOIN clauses chain on the right.
  Scope scope;
  PlanPtr root;
  auto add_table = [&](const TableRef& ref, JoinType type,
                       const ExprPtr& condition) -> Status {
    FEISU_ASSIGN_OR_RETURN(const TableMeta* meta, catalog.Get(ref.name));
    for (const auto& [alias, existing] : scope.tables) {
      if (alias == ref.EffectiveName()) {
        return Status::InvalidArgument("duplicate table alias " + alias);
      }
    }
    scope.tables.emplace_back(ref.EffectiveName(), meta);
    PlanPtr scan = PlanNode::Scan(ref.name, ref.EffectiveName());
    if (root == nullptr) {
      root = std::move(scan);
    } else {
      root = PlanNode::Join(type, condition, root, std::move(scan));
    }
    return Status::OK();
  };

  FEISU_RETURN_IF_ERROR(add_table(stmt.from[0], JoinType::kCross, nullptr));
  for (size_t i = 1; i < stmt.from.size(); ++i) {
    FEISU_RETURN_IF_ERROR(add_table(stmt.from[i], JoinType::kCross, nullptr));
  }
  for (const auto& join : stmt.joins) {
    FEISU_RETURN_IF_ERROR(
        add_table(join.table, join.type, join.condition));
    if (join.condition != nullptr) {
      FEISU_RETURN_IF_ERROR(ValidateColumns(join.condition, scope));
    }
  }

  // WHERE.
  if (stmt.where != nullptr) {
    if (stmt.where->ContainsAggregate()) {
      return Status::InvalidArgument("aggregate not allowed in WHERE");
    }
    FEISU_RETURN_IF_ERROR(ValidateColumns(stmt.where, scope));
    root = PlanNode::Filter(stmt.where, root);
  }

  // SELECT list. Expand '*' against the scope.
  std::vector<SelectItem> items;
  if (stmt.select_star) {
    for (const auto& [alias, meta] : scope.tables) {
      for (const auto& field : meta->schema().fields()) {
        SelectItem item;
        item.expr = scope.tables.size() > 1
                        ? Expr::ColumnRef(alias, field.name)
                        : Expr::ColumnRef(field.name);
        items.push_back(std::move(item));
      }
    }
  } else {
    items = stmt.items;
  }

  // Aggregate extraction across SELECT items and HAVING.
  std::vector<AggSpec> agg_specs;
  bool has_group_by = !stmt.group_by.empty();
  std::vector<SelectItem> final_items;
  for (const auto& item : items) {
    FEISU_RETURN_IF_ERROR(ValidateColumns(item.expr, scope));
    SelectItem rewritten;
    rewritten.alias = item.alias.empty() ? item.OutputName() : item.alias;
    rewritten.expr = ExtractAggregates(item.expr, &agg_specs);
    final_items.push_back(std::move(rewritten));
  }
  ExprPtr having = stmt.having;
  if (having != nullptr) {
    FEISU_RETURN_IF_ERROR(ValidateColumns(having, scope));
    having = ExtractAggregates(having, &agg_specs);
  }

  bool has_aggregate = !agg_specs.empty() || has_group_by;
  if (has_aggregate) {
    for (const auto& g : stmt.group_by) {
      FEISU_RETURN_IF_ERROR(ValidateColumns(g, scope));
    }
    // Expression-valued group keys: select items that repeat the group
    // expression project the aggregate's key column.
    for (auto& item : final_items) {
      item.expr = ReplaceGroupRefs(item.expr, stmt.group_by);
    }
    if (having != nullptr) having = ReplaceGroupRefs(having, stmt.group_by);
    // Non-aggregate select expressions must be functions of group keys.
    for (size_t i = 0; i < final_items.size(); ++i) {
      const ExprPtr& e = final_items[i].expr;
      if (e->kind() == ExprKind::kColumnRef &&
          e->column().rfind("__agg", 0) == 0) {
        continue;  // rewritten aggregate
      }
      std::vector<std::string> used;
      e->CollectColumns(&used);
      for (const auto& col : used) {
        if (col.rfind("__agg", 0) == 0) continue;
        bool in_group = std::any_of(
            stmt.group_by.begin(), stmt.group_by.end(),
            [&col](const ExprPtr& g) {
              if (g->kind() == ExprKind::kColumnRef) {
                return g->column() == col;
              }
              // Expression group key: its output column is its rendering.
              return g->ToString() == col;
            });
        if (!in_group) {
          return Status::InvalidArgument(
              "column " + col + " must appear in GROUP BY or an aggregate");
        }
      }
    }
    root = PlanNode::Aggregate(stmt.group_by, agg_specs, root);
    if (having != nullptr) root = PlanNode::Filter(having, root);
  } else if (stmt.having != nullptr) {
    return Status::InvalidArgument("HAVING without aggregation");
  }

  // Rename group-key outputs: aggregate output schema uses the group
  // expressions' rendered names; the projection refers to them directly.
  root = PlanNode::Project(final_items, root);

  if (!stmt.order_by.empty()) {
    // ORDER BY runs over the projected schema; alias references resolve
    // naturally. Column references not in the projection are rejected at
    // execution time.
    root = PlanNode::Sort(stmt.order_by, root);
  }
  if (stmt.limit >= 0) {
    root = PlanNode::Limit(stmt.limit, root);
  }
  return root;
}

}  // namespace feisu
