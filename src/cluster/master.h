#ifndef FEISU_CLUSTER_MASTER_H_
#define FEISU_CLUSTER_MASTER_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/entry_guard.h"
#include "cluster/job_manager.h"
#include "cluster/leaf_server.h"
#include "cluster/network.h"
#include "cluster/scheduler.h"
#include "cluster/stem_server.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "plan/catalog.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "storage/path_router.h"
#include "storage/sso.h"

namespace feisu {

/// Master-level configuration.
struct MasterConfig {
  size_t stem_fanout = 50;  ///< leaf servers per stem server
  NetworkModel network;
  ScheduleConfig schedule;
  /// Interactive-response knobs (paper §III-C): return once this fraction
  /// of tasks has finished (1.0 = all), and/or once the deadline elapses
  /// (0 = none). Unfinished tasks are abandoned.
  double processed_ratio = 1.0;
  SimTime response_deadline = 0;
  /// Honesty floor for deadline termination: the deadline may not cut the
  /// result below this fraction of tasks — the master keeps waiting past
  /// the deadline until the floor is met. 0 = the deadline always wins.
  double min_processed_ratio = 0.0;
  bool enable_task_result_reuse = true;
  size_t task_result_cache_capacity = 4096;
  /// Read-data-flow management (paper §V-C): an intermediate result larger
  /// than this is dumped to global storage over the write flow and only
  /// its location travels up the tree; the consumer then fetches it over
  /// the read flow at global-storage bandwidth. 0 disables spilling.
  uint64_t result_spill_threshold_bytes = 4ULL * 1024 * 1024;
  /// Optimizer-rule toggles (design-choice ablations; production = on).
  bool enable_predicate_pushdown = true;
  bool enable_limit_pushdown = true;
  uint64_t daily_query_quota = 10'000;
  SimTime cpu_per_row_master = 8;  ///< final-operator per-row cost
  uint64_t seed = 42;
  /// Failure-driven recovery: a failed or orphaned task is retried on a
  /// different replica up to this many extra times, with capped
  /// exponential backoff between attempts. When every attempt fails the
  /// block is declared lost and the job degrades to a partial result
  /// (processed_ratio < 1) instead of failing outright.
  int max_task_retries = 3;
  SimTime retry_backoff_base = 100 * kSimMillisecond;
  SimTime retry_backoff_cap = 5 * kSimSecond;
  /// Width of the parallel leaf path: how many leaf sub-plans the master
  /// executes concurrently on host threads. 1 = the classic sequential
  /// path; > 1 fans block tasks across a fixed thread pool while keeping
  /// scheduling, SimTime accounting and result merging in deterministic
  /// block order. With fault injection disabled the result batches are
  /// byte-identical to the sequential path's; timing statistics may differ
  /// between the two modes (each mode is deterministic run-to-run).
  size_t leaf_parallelism = 1;
  /// --- Multi-query pipeline. ---
  /// > 1 turns ExecuteQuery into thin submit-and-wait over an async job
  /// pipeline: that many coordinator threads drain the priority admission
  /// queue concurrently, fair-sharing the leaf pool. 1 = the classic
  /// serial master (everything inline, zero behavior change).
  size_t max_concurrent_jobs = 1;
  /// Bound of the admission queue. A submission arriving with this many
  /// jobs already waiting is rejected (ResourceExhausted) instead of
  /// queued — backpressure, not unbounded latency. 0 = unbounded.
  size_t admission_queue_capacity = 64;
  /// Priority band for submissions that don't specify one (0 = lowest).
  int default_priority = 1;
  /// Every Nth queue pop serves the globally oldest waiting job whatever
  /// its band (anti-starvation aging). 0 disables the boost.
  size_t starvation_boost_interval = 8;
  /// Tenant admission quotas (see entry_guard.h); the per-user entries
  /// override the default.
  TenantQuota default_tenant_quota;
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Host wall clock (ns) for queue-wait observability. SimTime cannot
  /// measure host queueing and raw clocks are banned in src/cluster, so
  /// the embedder injects one (FeisuEngine installs a steady_clock by
  /// default). Null = queue_wait_ms reported as 0.
  std::function<uint64_t()> host_clock_ns;
};

/// End-to-end accounting for one query.
struct QueryStats {
  SimTime response_time = 0;
  SimTime leaf_finish_time = 0;
  SimTime stem_finish_time = 0;
  uint64_t total_tasks = 0;
  uint64_t reused_tasks = 0;
  /// Speculation accounting: backups launched for detected stragglers, and
  /// how many of them beat the original copy (first-commit-wins).
  uint64_t backup_tasks_launched = 0;
  uint64_t backup_tasks_won = 0;
  uint64_t straggler_tasks = 0;
  uint64_t abandoned_tasks = 0;
  /// Subset of abandoned_tasks cut specifically by the response deadline
  /// (as opposed to the planned processed_ratio target).
  uint64_t tasks_terminated_early = 0;
  uint64_t skipped_blocks = 0;
  uint64_t remote_tasks = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t spilled_results = 0;   ///< oversized results routed via global storage
  uint64_t spilled_bytes = 0;
  // Failure-driven recovery accounting.
  uint64_t task_retries = 0;    ///< failed attempts that were re-placed
  uint64_t corrupt_blocks = 0;  ///< reads rejected by the block checksum
  uint64_t io_errors = 0;       ///< transient read errors observed
  uint64_t failed_nodes = 0;    ///< leaf crashes detected mid-query
  uint64_t lost_blocks = 0;     ///< blocks with no healthy replica left
  uint64_t partitioned_tasks = 0;  ///< tasks cut off by a network partition
  uint64_t stem_failures = 0;   ///< stem servers that died mid-merge
  uint64_t stem_retries = 0;    ///< partial merges reassigned to a new stem
  /// Fraction of tasks whose results made it into the answer; < 1 when
  /// early termination abandoned tasks or replicas were lost.
  double processed_ratio = 1.0;
  bool partial = false;  ///< result is knowingly incomplete
  // Admission observability (multi-query master; zeros on the serial
  // path, which never queues).
  double queue_wait_ms = 0;        ///< host wall-clock wait in the queue
  uint64_t jobs_admitted = 0;      ///< master-lifetime jobs accepted
  uint64_t jobs_rejected = 0;      ///< master-lifetime jobs bounced
  uint64_t jobs_queued = 0;        ///< queue depth when this job finished
  uint64_t tenant_quota_hits = 0;  ///< this tenant's quota deferrals+rejections
  TaskStats leaf;  ///< accumulated leaf-side stats
  std::string plan_text;

  double ResponseSeconds() const {
    return static_cast<double>(response_time) / kSimSecond;
  }
};

struct QueryResult {
  RecordBatch batch;
  QueryStats stats;
};

/// Renders QueryStats as a human-readable EXPLAIN ANALYZE-style report
/// (used by the client tooling and examples).
std::string FormatQueryStats(const QueryStats& stats);

/// Per-submission knobs of MasterServer::SubmitQuery.
struct SubmitOptions {
  int priority = -1;  ///< band (higher first); -1 = config default
};

/// Snapshot shipped to the backup master (checkpoint + operations log in
/// the paper's primary/backup design); enough to resume service, including
/// re-running jobs that were in flight when the primary died.
struct MasterCheckpoint {
  std::vector<std::string> tables;
  int64_t jobs_created = 0;
  std::vector<JobInfo> jobs;
};

/// The root of Feisu's execution tree. Hosts the separated services (job
/// manager, cluster manager via pointer, job scheduler, entry guard),
/// creates execution plans from ad-hoc queries, dissects them into leaf
/// tasks, schedules them with locality/load awareness, and merges results
/// bottom-up through simulated stem servers.
class MasterServer {
 public:
  MasterServer(Catalog* catalog, PathRouter* router, ClusterManager* cluster,
               SsoAuthenticator* sso,
               std::vector<std::unique_ptr<LeafServer>>* leaves,
               MasterConfig config);

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  /// Joins the coordinator pool (draining in-flight jobs) before the leaf
  /// pool. Out of line: PendingJob is complete only in master.cc.
  ~MasterServer();

  /// Parses, admits, plans, optimizes, schedules and executes one query at
  /// simulated time `now`. With max_concurrent_jobs > 1 this is a thin
  /// submit-and-wait over the async pipeline (safe to call from many
  /// client threads); otherwise the classic inline serial path.
  Result<QueryResult> ExecuteQuery(const std::string& user,
                                   const std::string& sql, SimTime now);

  /// Asynchronous submission (requires max_concurrent_jobs > 1): parses,
  /// admits against quotas and the bounded queue, enqueues, and returns
  /// the job id immediately. Rejections (backpressure, tenant backlog)
  /// surface here as ResourceExhausted.
  Result<int64_t> SubmitQuery(const std::string& user, const std::string& sql,
                              SimTime now, const SubmitOptions& options = {});
  /// Blocks until the submitted job finishes and returns its result.
  /// Each job id may be waited on exactly once.
  Result<QueryResult> WaitQuery(int64_t job_id);

  JobManager& job_manager() { return job_manager_; }
  EntryGuard& entry_guard() { return entry_guard_; }
  JobScheduler& scheduler() { return scheduler_; }
  const MasterConfig& config() const { return config_; }
  MasterConfig& mutable_config() { return config_; }

  /// Primary/backup support: the primary periodically checkpoints; a
  /// promoted backup restores and continues serving.
  MasterCheckpoint Checkpoint() const;
  static Status RestoreFromCheckpoint(const MasterCheckpoint& checkpoint,
                                      const Catalog& catalog);

  /// Adopts a primary's checkpoint into this (backup) master: validates it
  /// against the local catalog and restores the job table so in-flight
  /// jobs can be resumed with ResumeJob.
  Status Restore(const MasterCheckpoint& checkpoint);

  /// Re-runs a job that was interrupted by a master failover (state still
  /// kRunning/kQueued/kFailed in the restored job table). The job keeps
  /// its id; execution restarts from the recorded SQL — the engine's
  /// determinism makes the resumed run equal the uninterrupted one.
  Result<QueryResult> ResumeJob(int64_t job_id, SimTime now);

 private:
  struct Staged {
    RecordBatch batch;
    SimTime finish_time = 0;
  };

  /// One block's leaf task plus everything the commit phase needs; defined
  /// in master.cc.
  struct PendingLeafTask;

  /// Everything a job's execution chain needs to know about which job it
  /// is serving: the id, the per-job scheduling ledger (null on the serial
  /// path — the scheduler then books on its internal state, preserving the
  /// classic behavior bit-for-bit), whether leaf fan-out must go through
  /// the fair-share gate, and admission observability carried into the
  /// job's QueryStats.
  struct JobContext {
    int64_t job_id = 0;
    SlotLedger* ledger = nullptr;
    bool concurrent = false;  ///< run by a coordinator on job_pool_
    std::string tenant;
    double queue_wait_ms = 0;
  };

  /// One parsed submission waiting in the admission queue; defined in
  /// master.cc.
  struct PendingJob;

  /// Coordinator body: repeatedly pops runnable jobs from the priority
  /// queue (quota-eligible only) and executes each to completion,
  /// fulfilling its promise. Runs on job_pool_; loops until no queued job
  /// is eligible so no submission is stranded without a wakeup.
  void DrainJobs();

  /// Runs one admitted pending job end to end on the calling coordinator
  /// thread (fair-share registration, ledger setup, RunPlannedQuery,
  /// admission bookkeeping) and fulfills its promise.
  void RunAdmittedJob(int64_t job_id, PendingJob&& pending);

  /// Shared admission front of both master modes: parse, authenticate,
  /// per-table ACLs and cross-domain authorization. Also reports the
  /// first table's storage domain and that system's concurrent-job
  /// agreement (0 = unlimited) for the admission queue.
  Result<SelectStatement> AdmitStatement(const std::string& user,
                                         const std::string& sql, SimTime now,
                                         std::string* domain,
                                         int* domain_job_limit);

  /// Plans, optimizes and executes an admitted statement under `ctx`
  /// (shared tail of ExecuteQuery, the job coordinators and ResumeJob);
  /// finalizes job state and recovery accounting.
  Result<QueryResult> RunPlannedQuery(const SelectStatement& stmt,
                                      const JobContext& ctx, SimTime now);

  /// Recursively executes a plan subtree, distributing scan/aggregate
  /// frontiers across leaf and stem servers and applying the remaining
  /// operators at the master.
  Result<Staged> ExecutePlanNode(const PlanPtr& node, const JobContext& ctx,
                                 SimTime now, QueryStats* stats);

  /// Distributed scan (optionally with partial-aggregation pushdown).
  /// `agg` == nullptr => plain filtered scan returning concatenated rows.
  Result<Staged> RunDistributedScan(const PlanNode& scan,
                                    const PlanNode* agg,
                                    const JobContext& ctx, SimTime now,
                                    QueryStats* stats);

  /// Sequential failure-driven recovery for one task: place, execute, and
  /// on a retryable failure re-place on a different replica with capped
  /// exponential backoff. Returns true when the task completed (placement,
  /// result, duration filled in and booked with the scheduler), false when
  /// every eligible replica failed (the caller declares the block lost),
  /// and an error for non-retryable failures.
  Result<bool> ExecuteTaskWithRecovery(int max_tasks_per_node,
                                       SimTime start_time,
                                       const std::set<uint32_t>& pre_excluded,
                                       const JobContext& ctx,
                                       QueryStats* stats, PendingLeafTask* p);

  /// Pool-worker body of the parallel leaf path: executes one task on a
  /// deterministically chosen leaf (first alive replica, then any alive
  /// leaf), retrying on retryable failures, and records the outcome in the
  /// task's slot. Touches no scheduler or stats state — those are applied
  /// by the job's coordinator thread in its commit phase, in block order.
  void ExecuteLeafTaskParallel(PendingLeafTask* p, SimTime now);

  /// Speculative execution (paper §1 item 3): detects stragglers among the
  /// committed placements (runtime quantile vs. peers), launches a real
  /// backup copy of each on a different replica, and resolves
  /// first-commit-wins through the ordered slots — the earlier finisher's
  /// result stays in the slot, so result bytes are independent of the
  /// winner. Runs in the job coordinator's commit phase (one thread per
  /// job; concurrent jobs book on their own ledgers).
  void LaunchSpeculativeBackups(std::vector<PendingLeafTask>* pending,
                                int max_tasks_per_node,
                                const JobContext& ctx, SimTime now,
                                QueryStats* stats);

  /// Stem-level merge with death recovery: when the stem-death schedule
  /// kills `stem_id` inside its merge window (start_time, finish_time],
  /// the partial merge is reassigned to a replacement stem — the children
  /// resend their partials one heartbeat interval after the crash — up to
  /// max_task_retries times. Returns nullopt (not an error) when every
  /// replacement dies too; the caller abandons the subtree honestly.
  Result<std::optional<StemResult>> MergeWithStemRecovery(
      uint32_t stem_id, const std::vector<RecordBatch>& batches,
      std::vector<SimTime> times, bool has_aggregate,
      const std::vector<ExprPtr>& group_by,
      const std::vector<AggSpec>& aggregates, const Schema& schema,
      uint32_t* next_replacement_id, QueryStats* stats);

  SimTime ChargeMasterRows(uint64_t rows) const {
    return static_cast<SimTime>(rows) * config_.cpu_per_row_master;
  }

  Catalog* catalog_;
  PathRouter* router_;
  ClusterManager* cluster_;
  std::vector<std::unique_ptr<LeafServer>>* leaves_;
  MasterConfig config_;
  JobManager job_manager_;
  EntryGuard entry_guard_;
  JobScheduler scheduler_;
  /// Workers for the parallel leaf path; null when both leaf_parallelism
  /// and max_concurrent_jobs are <= 1. Shared-state discipline: pool
  /// workers may touch only (a) their own PendingLeafTask slot, (b) the
  /// internally synchronized leaf-server caches, and (c) read-only master
  /// state (cluster_, leaves_, config_). job_manager_, scheduler_ booking
  /// and QueryStats are per-job: each job's coordinator commits its
  /// workers' outcomes in block order against its own SlotLedger, so jobs
  /// never contend on scheduling state (annotated Mutexes guard the few
  /// genuinely shared pieces: the admission queue, the entry guard and
  /// the fair-share gate).
  std::unique_ptr<ThreadPool> pool_;

  /// --- Async multi-query pipeline (null / empty in serial mode). ---
  /// Lock order: admission_mutex_ -> JobManager::mutex_ ->
  /// EntryGuard::mutex_. JobScheduler::share_mutex_ is a leaf acquired on
  /// its own. Coordinators hold admission_mutex_ only for queue pops and
  /// bookkeeping, never across query execution.
  Mutex admission_mutex_;
  std::map<int64_t, PendingJob> pending_jobs_
      FEISU_GUARDED_BY(admission_mutex_);
  std::map<int64_t, std::future<Result<QueryResult>>> job_futures_
      FEISU_GUARDED_BY(admission_mutex_);
  /// Coordinator threads draining the admission queue; declared after
  /// pool_ so coordinators (which submit into pool_) are joined first.
  std::unique_ptr<ThreadPool> job_pool_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_MASTER_H_
