#ifndef FEISU_CLUSTER_MASTER_H_
#define FEISU_CLUSTER_MASTER_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/entry_guard.h"
#include "cluster/job_manager.h"
#include "cluster/leaf_server.h"
#include "cluster/network.h"
#include "cluster/scheduler.h"
#include "cluster/stem_server.h"
#include "common/result.h"
#include "plan/catalog.h"
#include "plan/logical_plan.h"
#include "storage/path_router.h"
#include "storage/sso.h"

namespace feisu {

/// Master-level configuration.
struct MasterConfig {
  size_t stem_fanout = 50;  ///< leaf servers per stem server
  NetworkModel network;
  ScheduleConfig schedule;
  /// Interactive-response knobs (paper §III-C): return once this fraction
  /// of tasks has finished (1.0 = all), and/or once the deadline elapses
  /// (0 = none). Unfinished tasks are abandoned.
  double processed_ratio = 1.0;
  SimTime response_deadline = 0;
  bool enable_task_result_reuse = true;
  size_t task_result_cache_capacity = 4096;
  /// Read-data-flow management (paper §V-C): an intermediate result larger
  /// than this is dumped to global storage over the write flow and only
  /// its location travels up the tree; the consumer then fetches it over
  /// the read flow at global-storage bandwidth. 0 disables spilling.
  uint64_t result_spill_threshold_bytes = 4ULL * 1024 * 1024;
  /// Optimizer-rule toggles (design-choice ablations; production = on).
  bool enable_predicate_pushdown = true;
  bool enable_limit_pushdown = true;
  uint64_t daily_query_quota = 10'000;
  SimTime cpu_per_row_master = 8;  ///< final-operator per-row cost
  uint64_t seed = 42;
};

/// End-to-end accounting for one query.
struct QueryStats {
  SimTime response_time = 0;
  SimTime leaf_finish_time = 0;
  SimTime stem_finish_time = 0;
  uint64_t total_tasks = 0;
  uint64_t reused_tasks = 0;
  uint64_t backup_tasks = 0;
  uint64_t straggler_tasks = 0;
  uint64_t abandoned_tasks = 0;
  uint64_t skipped_blocks = 0;
  uint64_t remote_tasks = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t spilled_results = 0;   ///< oversized results routed via global storage
  uint64_t spilled_bytes = 0;
  TaskStats leaf;  ///< accumulated leaf-side stats
  std::string plan_text;

  double ResponseSeconds() const {
    return static_cast<double>(response_time) / kSimSecond;
  }
};

struct QueryResult {
  RecordBatch batch;
  QueryStats stats;
};

/// Renders QueryStats as a human-readable EXPLAIN ANALYZE-style report
/// (used by the client tooling and examples).
std::string FormatQueryStats(const QueryStats& stats);

/// Snapshot shipped to the backup master (checkpoint + operations log in
/// the paper's primary/backup design); enough to resume service.
struct MasterCheckpoint {
  std::vector<std::string> tables;
  int64_t jobs_created = 0;
};

/// The root of Feisu's execution tree. Hosts the separated services (job
/// manager, cluster manager via pointer, job scheduler, entry guard),
/// creates execution plans from ad-hoc queries, dissects them into leaf
/// tasks, schedules them with locality/load awareness, and merges results
/// bottom-up through simulated stem servers.
class MasterServer {
 public:
  MasterServer(Catalog* catalog, PathRouter* router, ClusterManager* cluster,
               SsoAuthenticator* sso,
               std::vector<std::unique_ptr<LeafServer>>* leaves,
               MasterConfig config);

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  /// Parses, admits, plans, optimizes, schedules and executes one query at
  /// simulated time `now`.
  Result<QueryResult> ExecuteQuery(const std::string& user,
                                   const std::string& sql, SimTime now);

  JobManager& job_manager() { return job_manager_; }
  EntryGuard& entry_guard() { return entry_guard_; }
  JobScheduler& scheduler() { return scheduler_; }
  const MasterConfig& config() const { return config_; }
  MasterConfig& mutable_config() { return config_; }

  /// Primary/backup support: the primary periodically checkpoints; a
  /// promoted backup restores and continues serving.
  MasterCheckpoint Checkpoint() const;
  static Status RestoreFromCheckpoint(const MasterCheckpoint& checkpoint,
                                      const Catalog& catalog);

 private:
  struct Staged {
    RecordBatch batch;
    SimTime finish_time = 0;
  };

  /// Recursively executes a plan subtree, distributing scan/aggregate
  /// frontiers across leaf and stem servers and applying the remaining
  /// operators at the master.
  Result<Staged> ExecutePlanNode(const PlanPtr& node, int64_t job_id,
                                 SimTime now, QueryStats* stats);

  /// Distributed scan (optionally with partial-aggregation pushdown).
  /// `agg` == nullptr => plain filtered scan returning concatenated rows.
  Result<Staged> RunDistributedScan(const PlanNode& scan,
                                    const PlanNode* agg, int64_t job_id,
                                    SimTime now, QueryStats* stats);

  SimTime ChargeMasterRows(uint64_t rows) const {
    return static_cast<SimTime>(rows) * config_.cpu_per_row_master;
  }

  Catalog* catalog_;
  PathRouter* router_;
  ClusterManager* cluster_;
  std::vector<std::unique_ptr<LeafServer>>* leaves_;
  MasterConfig config_;
  JobManager job_manager_;
  EntryGuard entry_guard_;
  JobScheduler scheduler_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_MASTER_H_
