#ifndef FEISU_CLUSTER_MASTER_H_
#define FEISU_CLUSTER_MASTER_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/entry_guard.h"
#include "cluster/job_manager.h"
#include "cluster/leaf_server.h"
#include "cluster/network.h"
#include "cluster/scheduler.h"
#include "cluster/stem_server.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "plan/catalog.h"
#include "plan/logical_plan.h"
#include "sql/ast.h"
#include "storage/path_router.h"
#include "storage/sso.h"

namespace feisu {

/// Master-level configuration.
struct MasterConfig {
  size_t stem_fanout = 50;  ///< leaf servers per stem server
  NetworkModel network;
  ScheduleConfig schedule;
  /// Interactive-response knobs (paper §III-C): return once this fraction
  /// of tasks has finished (1.0 = all), and/or once the deadline elapses
  /// (0 = none). Unfinished tasks are abandoned.
  double processed_ratio = 1.0;
  SimTime response_deadline = 0;
  /// Honesty floor for deadline termination: the deadline may not cut the
  /// result below this fraction of tasks — the master keeps waiting past
  /// the deadline until the floor is met. 0 = the deadline always wins.
  double min_processed_ratio = 0.0;
  bool enable_task_result_reuse = true;
  size_t task_result_cache_capacity = 4096;
  /// Read-data-flow management (paper §V-C): an intermediate result larger
  /// than this is dumped to global storage over the write flow and only
  /// its location travels up the tree; the consumer then fetches it over
  /// the read flow at global-storage bandwidth. 0 disables spilling.
  uint64_t result_spill_threshold_bytes = 4ULL * 1024 * 1024;
  /// Optimizer-rule toggles (design-choice ablations; production = on).
  bool enable_predicate_pushdown = true;
  bool enable_limit_pushdown = true;
  uint64_t daily_query_quota = 10'000;
  SimTime cpu_per_row_master = 8;  ///< final-operator per-row cost
  uint64_t seed = 42;
  /// Failure-driven recovery: a failed or orphaned task is retried on a
  /// different replica up to this many extra times, with capped
  /// exponential backoff between attempts. When every attempt fails the
  /// block is declared lost and the job degrades to a partial result
  /// (processed_ratio < 1) instead of failing outright.
  int max_task_retries = 3;
  SimTime retry_backoff_base = 100 * kSimMillisecond;
  SimTime retry_backoff_cap = 5 * kSimSecond;
  /// Width of the parallel leaf path: how many leaf sub-plans the master
  /// executes concurrently on host threads. 1 = the classic sequential
  /// path; > 1 fans block tasks across a fixed thread pool while keeping
  /// scheduling, SimTime accounting and result merging in deterministic
  /// block order. With fault injection disabled the result batches are
  /// byte-identical to the sequential path's; timing statistics may differ
  /// between the two modes (each mode is deterministic run-to-run).
  size_t leaf_parallelism = 1;
};

/// End-to-end accounting for one query.
struct QueryStats {
  SimTime response_time = 0;
  SimTime leaf_finish_time = 0;
  SimTime stem_finish_time = 0;
  uint64_t total_tasks = 0;
  uint64_t reused_tasks = 0;
  /// Speculation accounting: backups launched for detected stragglers, and
  /// how many of them beat the original copy (first-commit-wins).
  uint64_t backup_tasks_launched = 0;
  uint64_t backup_tasks_won = 0;
  uint64_t straggler_tasks = 0;
  uint64_t abandoned_tasks = 0;
  /// Subset of abandoned_tasks cut specifically by the response deadline
  /// (as opposed to the planned processed_ratio target).
  uint64_t tasks_terminated_early = 0;
  uint64_t skipped_blocks = 0;
  uint64_t remote_tasks = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t spilled_results = 0;   ///< oversized results routed via global storage
  uint64_t spilled_bytes = 0;
  // Failure-driven recovery accounting.
  uint64_t task_retries = 0;    ///< failed attempts that were re-placed
  uint64_t corrupt_blocks = 0;  ///< reads rejected by the block checksum
  uint64_t io_errors = 0;       ///< transient read errors observed
  uint64_t failed_nodes = 0;    ///< leaf crashes detected mid-query
  uint64_t lost_blocks = 0;     ///< blocks with no healthy replica left
  uint64_t partitioned_tasks = 0;  ///< tasks cut off by a network partition
  uint64_t stem_failures = 0;   ///< stem servers that died mid-merge
  uint64_t stem_retries = 0;    ///< partial merges reassigned to a new stem
  /// Fraction of tasks whose results made it into the answer; < 1 when
  /// early termination abandoned tasks or replicas were lost.
  double processed_ratio = 1.0;
  bool partial = false;  ///< result is knowingly incomplete
  TaskStats leaf;  ///< accumulated leaf-side stats
  std::string plan_text;

  double ResponseSeconds() const {
    return static_cast<double>(response_time) / kSimSecond;
  }
};

struct QueryResult {
  RecordBatch batch;
  QueryStats stats;
};

/// Renders QueryStats as a human-readable EXPLAIN ANALYZE-style report
/// (used by the client tooling and examples).
std::string FormatQueryStats(const QueryStats& stats);

/// Snapshot shipped to the backup master (checkpoint + operations log in
/// the paper's primary/backup design); enough to resume service, including
/// re-running jobs that were in flight when the primary died.
struct MasterCheckpoint {
  std::vector<std::string> tables;
  int64_t jobs_created = 0;
  std::vector<JobInfo> jobs;
};

/// The root of Feisu's execution tree. Hosts the separated services (job
/// manager, cluster manager via pointer, job scheduler, entry guard),
/// creates execution plans from ad-hoc queries, dissects them into leaf
/// tasks, schedules them with locality/load awareness, and merges results
/// bottom-up through simulated stem servers.
class MasterServer {
 public:
  MasterServer(Catalog* catalog, PathRouter* router, ClusterManager* cluster,
               SsoAuthenticator* sso,
               std::vector<std::unique_ptr<LeafServer>>* leaves,
               MasterConfig config);

  MasterServer(const MasterServer&) = delete;
  MasterServer& operator=(const MasterServer&) = delete;

  /// Parses, admits, plans, optimizes, schedules and executes one query at
  /// simulated time `now`.
  Result<QueryResult> ExecuteQuery(const std::string& user,
                                   const std::string& sql, SimTime now);

  JobManager& job_manager() { return job_manager_; }
  EntryGuard& entry_guard() { return entry_guard_; }
  JobScheduler& scheduler() { return scheduler_; }
  const MasterConfig& config() const { return config_; }
  MasterConfig& mutable_config() { return config_; }

  /// Primary/backup support: the primary periodically checkpoints; a
  /// promoted backup restores and continues serving.
  MasterCheckpoint Checkpoint() const;
  static Status RestoreFromCheckpoint(const MasterCheckpoint& checkpoint,
                                      const Catalog& catalog);

  /// Adopts a primary's checkpoint into this (backup) master: validates it
  /// against the local catalog and restores the job table so in-flight
  /// jobs can be resumed with ResumeJob.
  Status Restore(const MasterCheckpoint& checkpoint);

  /// Re-runs a job that was interrupted by a master failover (state still
  /// kRunning/kQueued/kFailed in the restored job table). The job keeps
  /// its id; execution restarts from the recorded SQL — the engine's
  /// determinism makes the resumed run equal the uninterrupted one.
  Result<QueryResult> ResumeJob(int64_t job_id, SimTime now);

 private:
  struct Staged {
    RecordBatch batch;
    SimTime finish_time = 0;
  };

  /// One block's leaf task plus everything the commit phase needs; defined
  /// in master.cc.
  struct PendingLeafTask;

  /// Plans, optimizes and executes an admitted statement under `job_id`
  /// (shared tail of ExecuteQuery and ResumeJob); finalizes job state and
  /// recovery accounting.
  Result<QueryResult> RunPlannedQuery(const SelectStatement& stmt,
                                      int64_t job_id, SimTime now);

  /// Recursively executes a plan subtree, distributing scan/aggregate
  /// frontiers across leaf and stem servers and applying the remaining
  /// operators at the master.
  Result<Staged> ExecutePlanNode(const PlanPtr& node, int64_t job_id,
                                 SimTime now, QueryStats* stats);

  /// Distributed scan (optionally with partial-aggregation pushdown).
  /// `agg` == nullptr => plain filtered scan returning concatenated rows.
  Result<Staged> RunDistributedScan(const PlanNode& scan,
                                    const PlanNode* agg, int64_t job_id,
                                    SimTime now, QueryStats* stats);

  /// Sequential failure-driven recovery for one task: place, execute, and
  /// on a retryable failure re-place on a different replica with capped
  /// exponential backoff. Returns true when the task completed (placement,
  /// result, duration filled in and booked with the scheduler), false when
  /// every eligible replica failed (the caller declares the block lost),
  /// and an error for non-retryable failures.
  Result<bool> ExecuteTaskWithRecovery(int max_tasks_per_node,
                                       SimTime start_time,
                                       const std::set<uint32_t>& pre_excluded,
                                       QueryStats* stats, PendingLeafTask* p);

  /// Pool-worker body of the parallel leaf path: executes one task on a
  /// deterministically chosen leaf (first alive replica, then any alive
  /// leaf), retrying on retryable failures, and records the outcome in the
  /// task's slot. Touches no scheduler or stats state — those are applied
  /// by the single-threaded commit phase, in block order.
  void ExecuteLeafTaskParallel(PendingLeafTask* p, SimTime now);

  /// Speculative execution (paper §1 item 3): detects stragglers among the
  /// committed placements (runtime quantile vs. peers), launches a real
  /// backup copy of each on a different replica, and resolves
  /// first-commit-wins through the ordered slots — the earlier finisher's
  /// result stays in the slot, so result bytes are independent of the
  /// winner. Runs in the single-threaded commit phase.
  void LaunchSpeculativeBackups(std::vector<PendingLeafTask>* pending,
                                int max_tasks_per_node, SimTime now,
                                QueryStats* stats);

  /// Stem-level merge with death recovery: when the stem-death schedule
  /// kills `stem_id` inside its merge window (start_time, finish_time],
  /// the partial merge is reassigned to a replacement stem — the children
  /// resend their partials one heartbeat interval after the crash — up to
  /// max_task_retries times. Returns nullopt (not an error) when every
  /// replacement dies too; the caller abandons the subtree honestly.
  Result<std::optional<StemResult>> MergeWithStemRecovery(
      uint32_t stem_id, const std::vector<RecordBatch>& batches,
      std::vector<SimTime> times, bool has_aggregate,
      const std::vector<ExprPtr>& group_by,
      const std::vector<AggSpec>& aggregates, const Schema& schema,
      uint32_t* next_replacement_id, QueryStats* stats);

  SimTime ChargeMasterRows(uint64_t rows) const {
    return static_cast<SimTime>(rows) * config_.cpu_per_row_master;
  }

  Catalog* catalog_;
  PathRouter* router_;
  ClusterManager* cluster_;
  std::vector<std::unique_ptr<LeafServer>>* leaves_;
  MasterConfig config_;
  JobManager job_manager_;
  EntryGuard entry_guard_;
  JobScheduler scheduler_;
  /// Workers for the parallel leaf path; null when leaf_parallelism <= 1.
  /// Shared-state discipline: pool workers may touch only (a) their own
  /// PendingLeafTask slot, (b) the internally synchronized leaf-server
  /// caches, and (c) read-only master state (cluster_, leaves_, config_).
  /// job_manager_, scheduler_ and QueryStats stay single-threaded — the
  /// commit phase applies the workers' outcomes in block order.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_MASTER_H_
