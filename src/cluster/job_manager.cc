#include "cluster/job_manager.h"

#include <algorithm>

namespace feisu {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kFinished:
      return "FINISHED";
    case JobState::kFailed:
      return "FAILED";
  }
  return "?";
}

int64_t JobManager::CreateJob(const std::string& user, const std::string& sql,
                              SimTime now, int priority) {
  MutexLock lock(mutex_);
  JobInfo job;
  job.job_id = next_job_id_++;
  job.user = user;
  job.sql = sql;
  job.submit_time = now;
  job.priority = priority;
  int64_t id = job.job_id;
  jobs_.emplace(id, std::move(job));
  return id;
}

void JobManager::SetState(int64_t job_id, JobState state, SimTime now,
                          const std::string& error) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.state = state;
  if (state == JobState::kFinished || state == JobState::kFailed) {
    it->second.finish_time = now;
  }
  it->second.error = error;
}

std::optional<JobInfo> JobManager::Find(int64_t job_id) const {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second;
}

size_t JobManager::NumJobs() const {
  MutexLock lock(mutex_);
  return jobs_.size();
}

void JobManager::SetAdmissionInfo(int64_t job_id, const std::string& domain,
                                  int domain_job_limit) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.domain = domain;
  it->second.domain_job_limit = domain_job_limit;
}

void JobManager::SetQueueWait(int64_t job_id, double queue_wait_ms) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.queue_wait_ms = queue_wait_ms;
}

void JobManager::EnqueueJob(int64_t job_id) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  queue_[it->second.priority].push_back(job_id);
}

std::optional<int64_t> JobManager::PopRunnable(
    const std::function<bool(const JobInfo&)>& eligible) {
  MutexLock lock(mutex_);
  // Aging: every starvation_boost_interval-th pop serves the globally
  // oldest eligible job (smallest id = earliest submission), whatever its
  // band. Deterministic, so starvation tests can assert the exact bound.
  bool boost = starvation_boost_interval_ > 0 &&
               (pop_count_ + 1) % starvation_boost_interval_ == 0;
  if (boost) {
    bool found = false;
    int64_t best_id = 0;
    int best_band = 0;
    size_t best_pos = 0;
    for (const auto& [band, fifo] : queue_) {
      for (size_t pos = 0; pos < fifo.size(); ++pos) {
        const JobInfo& job = jobs_.at(fifo[pos]);
        if (!eligible(job)) continue;
        if (!found || fifo[pos] < best_id) {
          found = true;
          best_id = fifo[pos];
          best_band = band;
          best_pos = pos;
        }
        break;  // FIFO within a band: only its oldest entry can win
      }
    }
    if (found) return PopAt(best_band, best_pos);
    return std::nullopt;
  }
  for (auto band_it = queue_.rbegin(); band_it != queue_.rend(); ++band_it) {
    const std::deque<int64_t>& fifo = band_it->second;
    for (size_t pos = 0; pos < fifo.size(); ++pos) {
      const JobInfo& job = jobs_.at(fifo[pos]);
      if (eligible(job)) return PopAt(band_it->first, pos);
    }
  }
  return std::nullopt;
}

int64_t JobManager::PopAt(int band, size_t pos) {
  auto band_it = queue_.find(band);
  int64_t id = band_it->second[pos];
  band_it->second.erase(band_it->second.begin() + static_cast<long>(pos));
  if (band_it->second.empty()) queue_.erase(band_it);
  ++pop_count_;
  return id;
}

size_t JobManager::QueueDepth() const {
  MutexLock lock(mutex_);
  size_t depth = 0;
  for (const auto& [band, fifo] : queue_) depth += fifo.size();
  return depth;
}

void JobManager::set_starvation_boost_interval(size_t interval) {
  MutexLock lock(mutex_);
  starvation_boost_interval_ = interval;
}

void JobManager::RecordRecovery(int64_t job_id,
                                const JobRecoveryRecord& record) {
  MutexLock lock(mutex_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.recovery = record;
}

std::vector<JobInfo> JobManager::SnapshotJobs() const {
  MutexLock lock(mutex_);
  std::vector<JobInfo> jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) jobs.push_back(job);
  return jobs;
}

void JobManager::RestoreJobs(const std::vector<JobInfo>& jobs) {
  MutexLock lock(mutex_);
  jobs_.clear();
  queue_.clear();
  next_job_id_ = 1;
  for (const JobInfo& job : jobs) {
    jobs_.emplace(job.job_id, job);
    next_job_id_ = std::max(next_job_id_, job.job_id + 1);
  }
}

std::vector<int64_t> JobManager::UnfinishedJobs() const {
  MutexLock lock(mutex_);
  std::vector<int64_t> ids;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool JobManager::TryReuse(const std::string& signature, TaskResult* out) {
  MutexLock lock(mutex_);
  auto it = reuse_cache_.find(signature);
  if (it == reuse_cache_.end()) {
    ++reuse_misses_;
    return false;
  }
  ++reuse_hits_;
  reuse_lru_.erase(it->second.lru_it);
  reuse_lru_.push_front(signature);
  it->second.lru_it = reuse_lru_.begin();
  *out = it->second.result;
  // A reused result costs nothing to recompute; the stats of the original
  // execution must not be double counted.
  out->stats = TaskStats();
  return true;
}

void JobManager::CacheResult(const std::string& signature,
                             const TaskResult& result) {
  if (reuse_capacity_ == 0) return;
  MutexLock lock(mutex_);
  auto it = reuse_cache_.find(signature);
  if (it != reuse_cache_.end()) {
    reuse_lru_.erase(it->second.lru_it);
    reuse_cache_.erase(it);
  }
  while (reuse_cache_.size() >= reuse_capacity_) {
    reuse_cache_.erase(reuse_lru_.back());
    reuse_lru_.pop_back();
  }
  reuse_lru_.push_front(signature);
  reuse_cache_.emplace(signature, ReuseEntry{result, reuse_lru_.begin()});
}

void JobManager::InvalidateReuseCache() {
  MutexLock lock(mutex_);
  reuse_cache_.clear();
  reuse_lru_.clear();
}

uint64_t JobManager::reuse_hits() const {
  MutexLock lock(mutex_);
  return reuse_hits_;
}

uint64_t JobManager::reuse_misses() const {
  MutexLock lock(mutex_);
  return reuse_misses_;
}

}  // namespace feisu
