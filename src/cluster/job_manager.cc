#include "cluster/job_manager.h"

#include <algorithm>

namespace feisu {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "QUEUED";
    case JobState::kRunning:
      return "RUNNING";
    case JobState::kFinished:
      return "FINISHED";
    case JobState::kFailed:
      return "FAILED";
  }
  return "?";
}

int64_t JobManager::CreateJob(const std::string& user, const std::string& sql,
                              SimTime now) {
  JobInfo job;
  job.job_id = next_job_id_++;
  job.user = user;
  job.sql = sql;
  job.submit_time = now;
  jobs_.emplace(job.job_id, job);
  return job.job_id;
}

void JobManager::SetState(int64_t job_id, JobState state, SimTime now,
                          const std::string& error) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.state = state;
  if (state == JobState::kFinished || state == JobState::kFailed) {
    it->second.finish_time = now;
  }
  it->second.error = error;
}

const JobInfo* JobManager::Find(int64_t job_id) const {
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? nullptr : &it->second;
}

void JobManager::RecordRecovery(int64_t job_id,
                                const JobRecoveryRecord& record) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.recovery = record;
}

std::vector<JobInfo> JobManager::SnapshotJobs() const {
  std::vector<JobInfo> jobs;
  jobs.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) jobs.push_back(job);
  return jobs;
}

void JobManager::RestoreJobs(const std::vector<JobInfo>& jobs) {
  jobs_.clear();
  next_job_id_ = 1;
  for (const JobInfo& job : jobs) {
    jobs_.emplace(job.job_id, job);
    next_job_id_ = std::max(next_job_id_, job.job_id + 1);
  }
}

std::vector<int64_t> JobManager::UnfinishedJobs() const {
  std::vector<int64_t> ids;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kQueued || job.state == JobState::kRunning) {
      ids.push_back(id);
    }
  }
  return ids;
}

bool JobManager::TryReuse(const std::string& signature, TaskResult* out) {
  auto it = reuse_cache_.find(signature);
  if (it == reuse_cache_.end()) {
    ++reuse_misses_;
    return false;
  }
  ++reuse_hits_;
  reuse_lru_.erase(it->second.lru_it);
  reuse_lru_.push_front(signature);
  it->second.lru_it = reuse_lru_.begin();
  *out = it->second.result;
  // A reused result costs nothing to recompute; the stats of the original
  // execution must not be double counted.
  out->stats = TaskStats();
  return true;
}

void JobManager::CacheResult(const std::string& signature,
                             const TaskResult& result) {
  if (reuse_capacity_ == 0) return;
  auto it = reuse_cache_.find(signature);
  if (it != reuse_cache_.end()) {
    reuse_lru_.erase(it->second.lru_it);
    reuse_cache_.erase(it);
  }
  while (reuse_cache_.size() >= reuse_capacity_) {
    reuse_cache_.erase(reuse_lru_.back());
    reuse_lru_.pop_back();
  }
  reuse_lru_.push_front(signature);
  reuse_cache_.emplace(signature, ReuseEntry{result, reuse_lru_.begin()});
}

}  // namespace feisu
