#ifndef FEISU_CLUSTER_SCHEDULER_H_
#define FEISU_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/network.h"
#include "common/annotations.h"
#include "common/rng.h"
#include "storage/path_router.h"

namespace feisu {

/// Scheduling policy knobs.
struct ScheduleConfig {
  bool prefer_data_locality = true;
  bool enable_backup_tasks = true;
  /// Straggler detection is quantile-based (paper: task runtime vs. peers):
  /// a task whose elapsed runtime exceeds `backup_threshold` x the
  /// `backup_quantile`-quantile of its peers' runtimes gets a speculative
  /// copy on another replica.
  double backup_threshold = 2.0;
  double backup_quantile = 0.5;
  /// Fault/performance injection: fraction of task executions hit by a
  /// transient slowdown of `straggler_slowdown`.
  double straggler_probability = 0.0;
  double straggler_slowdown = 5.0;
};

/// Where and when one task runs.
struct Placement {
  uint32_t node_id = 0;
  bool local = true;        ///< node holds a replica of the block
  SimTime start_time = 0;
  SimTime finish_time = 0;
  bool straggled = false;
  bool backup_launched = false;
};

/// One straggler identified by DetectStragglers: which placement, and the
/// simulated instant the master notices it (the moment the task's elapsed
/// runtime crosses the detection horizon).
struct StragglerVerdict {
  size_t index = 0;
  SimTime detect_time = 0;
};

/// Per-job scheduling state: the slot-booking table and the straggler-
/// injection RNG for one job's placements. Each concurrent job books on
/// its own ledger, so a query's simulated placements — and therefore its
/// result bytes under early termination and stem grouping — are identical
/// to a solo run no matter what else is in flight. Owned by the job's
/// coordinator; never shared across threads.
struct SlotLedger {
  explicit SlotLedger(uint64_t seed) : rng(seed) {}
  // node -> finish times of booked tasks (bounded multiset per node).
  std::map<uint32_t, std::vector<SimTime>> node_slots;
  Rng rng;
};

/// Creates scheduling plans for candidate jobs (paper §III-C "Job
/// Scheduler"): always prefer a leaf holding the data; otherwise a replica
/// holder; otherwise the least-loaded alive server (paying a network
/// transfer). Tracks per-node slot availability so concurrent tasks queue,
/// honoring each storage system's resource agreement.
///
/// Concurrency: placement and booking are per-job. PlaceTask/CommitTask
/// take an optional SlotLedger — concurrent job coordinators each pass
/// their own (obtained from MakeJobLedger) and may call in from any
/// thread; with no ledger the calls fall back to the internal serial-path
/// ledger, which retains the single-caller contract of the serial master.
/// The fair-share leaf gate (RegisterJobShare/AcquireLeafSlot/...) is the
/// one genuinely shared piece of state and is guarded by the annotated
/// `share_mutex_`; it is a leaf of the master's lock order (nothing is
/// acquired while it is held) so coordinators may block on its CondVar
/// without deadlock risk.
class JobScheduler {
 public:
  JobScheduler(ClusterManager* cluster, PathRouter* router,
               NetworkModel network, ScheduleConfig config, uint64_t seed);

  const ScheduleConfig& config() const { return config_; }
  void set_config(const ScheduleConfig& config) { config_ = config; }

  /// A fresh per-job ledger whose straggler RNG is derived from the
  /// scheduler seed and the job id (deterministic per job).
  SlotLedger MakeJobLedger(int64_t job_id) const;

  /// Picks the execution node for a block's task. `replicas` are the nodes
  /// holding the block. Returns the chosen node and whether it is local.
  /// `excluded` (optional) lists nodes that must not be chosen — the
  /// master's failure-driven recovery passes the nodes where this task
  /// already failed so a retry lands on a different replica. `ledger`
  /// (optional) books against a per-job ledger instead of the internal
  /// serial-path one.
  Placement PlaceTask(const std::vector<uint32_t>& replicas,
                      int max_tasks_per_node, SimTime now,
                      const std::set<uint32_t>* excluded = nullptr,
                      SlotLedger* ledger = nullptr);

  /// Books `duration` of work on `placement`'s node starting no earlier
  /// than `placement.start_time`; fills start/finish, applying the node's
  /// slowdown factor, the injector's slow-node profile (latency multiplier
  /// plus fixed stall) and probabilistic straggler injection.
  void CommitTask(Placement* placement, SimTime duration,
                  int max_tasks_per_node, SimTime now,
                  SlotLedger* ledger = nullptr);

  /// Quantile-based straggler detection over one job's committed
  /// placements: a task whose elapsed runtime exceeds backup_threshold x
  /// the backup_quantile-quantile of peer runtimes is a straggler, noticed
  /// at start + horizon. Pure query — launching the backup copy (real
  /// execution, first-commit-wins) is the master's job. Verdicts come back
  /// in placement order, so replays are deterministic.
  std::vector<StragglerVerdict> DetectStragglers(
      const std::vector<Placement>& placements) const;

  /// Picks the host for a straggler's backup copy: an alive, reachable
  /// replica other than `original`, else any alive reachable leaf. Returns
  /// nullopt when the cluster has no candidate (backup not launched).
  std::optional<uint32_t> PickBackupNode(
      const std::vector<uint32_t>& replicas, uint32_t original,
      SimTime now) const;

  /// Clears per-node booking state and fair-share peaks between benchmark
  /// phases.
  void ResetLoad() FEISU_EXCLUDES(share_mutex_);

  /// --- Fair leaf sharing across in-flight jobs. ---
  /// Each registered job gets a cap of outstanding leaf tasks
  /// proportional to its weight (priority + 1): cap = max(1, width *
  /// weight / total_weight). A huge scan therefore cannot monopolize the
  /// leaf pool while a point query waits. Total pool width is set once by
  /// the master (its leaf pool's thread count).
  void SetLeafPoolWidth(size_t width) FEISU_EXCLUDES(share_mutex_);
  void RegisterJobShare(int64_t job_id, int weight)
      FEISU_EXCLUDES(share_mutex_);
  void UnregisterJobShare(int64_t job_id) FEISU_EXCLUDES(share_mutex_);
  /// Blocks until the job is under its outstanding-task cap, then takes a
  /// slot. Caps shrink and grow as jobs register/unregister; every
  /// release/unregister wakes all waiters so nobody sleeps through a cap
  /// increase.
  void AcquireLeafSlot(int64_t job_id) FEISU_EXCLUDES(share_mutex_);
  void ReleaseLeafSlot(int64_t job_id) FEISU_EXCLUDES(share_mutex_);
  /// Highest number of leaf tasks the job had in flight at once (retained
  /// after UnregisterJobShare; fairness tests assert against the cap).
  size_t PeakLeafTasks(int64_t job_id) const FEISU_EXCLUDES(share_mutex_);
  /// Times AcquireLeafSlot had to wait because a job sat at its cap.
  uint64_t leaf_slot_waits() const FEISU_EXCLUDES(share_mutex_);

 private:
  /// Earliest available slot time on a node with `slots` parallel slots.
  static SimTime EarliestSlot(
      const std::map<uint32_t, std::vector<SimTime>>& node_slots,
      uint32_t node_id, int slots, SimTime now);
  static void BookSlot(std::map<uint32_t, std::vector<SimTime>>* node_slots,
                       uint32_t node_id, SimTime finish);

  struct JobShare {
    int weight = 1;
    size_t in_flight = 0;
  };
  size_t CapFor(const JobShare& share) const FEISU_REQUIRES(share_mutex_);

  ClusterManager* cluster_;
  PathRouter* router_;
  NetworkModel network_;
  ScheduleConfig config_;
  uint64_t seed_;
  /// Serial-path booking state (used when no per-job ledger is passed).
  Rng rng_;
  std::map<uint32_t, std::vector<SimTime>> node_slots_;

  mutable Mutex share_mutex_;
  CondVar share_cv_;
  size_t leaf_pool_width_ FEISU_GUARDED_BY(share_mutex_) = 0;
  int total_weight_ FEISU_GUARDED_BY(share_mutex_) = 0;
  std::map<int64_t, JobShare> shares_ FEISU_GUARDED_BY(share_mutex_);
  std::map<int64_t, size_t> peak_in_flight_ FEISU_GUARDED_BY(share_mutex_);
  uint64_t leaf_slot_waits_ FEISU_GUARDED_BY(share_mutex_) = 0;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_SCHEDULER_H_
