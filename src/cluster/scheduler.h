#ifndef FEISU_CLUSTER_SCHEDULER_H_
#define FEISU_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_manager.h"
#include "cluster/network.h"
#include "common/rng.h"
#include "storage/path_router.h"

namespace feisu {

/// Scheduling policy knobs.
struct ScheduleConfig {
  bool prefer_data_locality = true;
  bool enable_backup_tasks = true;
  /// Straggler detection is quantile-based (paper: task runtime vs. peers):
  /// a task whose elapsed runtime exceeds `backup_threshold` x the
  /// `backup_quantile`-quantile of its peers' runtimes gets a speculative
  /// copy on another replica.
  double backup_threshold = 2.0;
  double backup_quantile = 0.5;
  /// Fault/performance injection: fraction of task executions hit by a
  /// transient slowdown of `straggler_slowdown`.
  double straggler_probability = 0.0;
  double straggler_slowdown = 5.0;
};

/// Where and when one task runs.
struct Placement {
  uint32_t node_id = 0;
  bool local = true;        ///< node holds a replica of the block
  SimTime start_time = 0;
  SimTime finish_time = 0;
  bool straggled = false;
  bool backup_launched = false;
};

/// One straggler identified by DetectStragglers: which placement, and the
/// simulated instant the master notices it (the moment the task's elapsed
/// runtime crosses the detection horizon).
struct StragglerVerdict {
  size_t index = 0;
  SimTime detect_time = 0;
};

/// Creates scheduling plans for candidate jobs (paper §III-C "Job
/// Scheduler"): always prefer a leaf holding the data; otherwise a replica
/// holder; otherwise the least-loaded alive server (paying a network
/// transfer). Tracks per-node slot availability so concurrent tasks queue,
/// honoring each storage system's resource agreement.
///
/// Concurrency: deliberately unsynchronized, like JobManager. Placement and
/// slot bookkeeping run only in the master's single-threaded commit phase;
/// pool workers must never call into the scheduler (compile-time locking
/// cannot see this phase discipline, so it is enforced by code review and
/// the comment on MasterServer::ExecuteLeafTaskParallel).
class JobScheduler {
 public:
  JobScheduler(ClusterManager* cluster, PathRouter* router,
               NetworkModel network, ScheduleConfig config, uint64_t seed);

  const ScheduleConfig& config() const { return config_; }
  void set_config(const ScheduleConfig& config) { config_ = config; }

  /// Picks the execution node for a block's task. `replicas` are the nodes
  /// holding the block. Returns the chosen node and whether it is local.
  /// `excluded` (optional) lists nodes that must not be chosen — the
  /// master's failure-driven recovery passes the nodes where this task
  /// already failed so a retry lands on a different replica.
  Placement PlaceTask(const std::vector<uint32_t>& replicas,
                      int max_tasks_per_node, SimTime now,
                      const std::set<uint32_t>* excluded = nullptr);

  /// Books `duration` of work on `placement`'s node starting no earlier
  /// than `placement.start_time`; fills start/finish, applying the node's
  /// slowdown factor, the injector's slow-node profile (latency multiplier
  /// plus fixed stall) and probabilistic straggler injection.
  void CommitTask(Placement* placement, SimTime duration,
                  int max_tasks_per_node, SimTime now);

  /// Quantile-based straggler detection over one job's committed
  /// placements: a task whose elapsed runtime exceeds backup_threshold x
  /// the backup_quantile-quantile of peer runtimes is a straggler, noticed
  /// at start + horizon. Pure query — launching the backup copy (real
  /// execution, first-commit-wins) is the master's job. Verdicts come back
  /// in placement order, so replays are deterministic.
  std::vector<StragglerVerdict> DetectStragglers(
      const std::vector<Placement>& placements) const;

  /// Picks the host for a straggler's backup copy: an alive, reachable
  /// replica other than `original`, else any alive reachable leaf. Returns
  /// nullopt when the cluster has no candidate (backup not launched).
  std::optional<uint32_t> PickBackupNode(
      const std::vector<uint32_t>& replicas, uint32_t original,
      SimTime now) const;

  /// Clears per-node booking state between benchmark phases.
  void ResetLoad() { node_slots_.clear(); }

 private:
  /// Earliest available slot time on a node with `slots` parallel slots.
  SimTime EarliestSlot(uint32_t node_id, int slots, SimTime now) const;
  void BookSlot(uint32_t node_id, int slots, SimTime start, SimTime finish);

  ClusterManager* cluster_;
  PathRouter* router_;
  NetworkModel network_;
  ScheduleConfig config_;
  Rng rng_;
  // node -> finish times of booked tasks (bounded multiset per node).
  std::map<uint32_t, std::vector<SimTime>> node_slots_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_SCHEDULER_H_
