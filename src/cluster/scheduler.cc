#include "cluster/scheduler.h"

#include <algorithm>
#include <numeric>

namespace feisu {

JobScheduler::JobScheduler(ClusterManager* cluster, PathRouter* router,
                           NetworkModel network, ScheduleConfig config,
                           uint64_t seed)
    : cluster_(cluster),
      router_(router),
      network_(network),
      config_(config),
      rng_(seed) {}

SimTime JobScheduler::EarliestSlot(uint32_t node_id, int slots,
                                   SimTime now) const {
  auto it = node_slots_.find(node_id);
  if (it == node_slots_.end()) return now;
  const std::vector<SimTime>& booked = it->second;
  if (booked.size() < static_cast<size_t>(slots)) return now;
  // With all slots busy, the earliest start is the smallest of the `slots`
  // latest finish times; keep it simple: sort a copy of the tail.
  std::vector<SimTime> copy = booked;
  std::sort(copy.begin(), copy.end());
  // Occupancy at time t = number of bookings finishing after t. A new task
  // can start when occupancy < slots, i.e. after the (n - slots)-th finish.
  size_t idx = copy.size() - static_cast<size_t>(slots);
  return std::max(now, copy[idx]);
}

void JobScheduler::BookSlot(uint32_t node_id, int slots, SimTime start,
                            SimTime finish) {
  (void)slots;
  (void)start;
  std::vector<SimTime>& booked = node_slots_[node_id];
  booked.push_back(finish);
  // Bound growth: drop bookings that can no longer constrain anything
  // (older than the 64 most recent).
  if (booked.size() > 256) {
    std::sort(booked.begin(), booked.end());
    booked.erase(booked.begin(), booked.end() - 64);
  }
}

Placement JobScheduler::PlaceTask(const std::vector<uint32_t>& replicas,
                                  int max_tasks_per_node, SimTime now,
                                  const std::set<uint32_t>* excluded) {
  auto is_excluded = [excluded](uint32_t node_id) {
    return excluded != nullptr && excluded->count(node_id) > 0;
  };
  Placement placement;
  // 1. Prefer the replica whose slots free up earliest.
  if (config_.prefer_data_locality) {
    uint32_t best_node = 0;
    SimTime best_start = 0;
    bool found = false;
    for (uint32_t node_id : replicas) {
      if (is_excluded(node_id)) continue;
      const NodeInfo* node = cluster_->Node(node_id);
      if (node == nullptr || !node->alive) continue;
      int slots = std::min(node->task_slots, max_tasks_per_node);
      SimTime start = EarliestSlot(node_id, slots, now);
      if (!found || start < best_start) {
        found = true;
        best_node = node_id;
        best_start = start;
      }
    }
    if (found) {
      placement.node_id = best_node;
      placement.local = true;
      placement.start_time = best_start;
      return placement;
    }
  }
  // 2. Fall back: least-loaded alive leaf (remote read).
  uint32_t best_node = 0;
  SimTime best_start = 0;
  bool found = false;
  for (uint32_t node_id : cluster_->AliveLeafNodes()) {
    if (is_excluded(node_id)) continue;
    const NodeInfo* node = cluster_->Node(node_id);
    int slots = std::min(node->task_slots, max_tasks_per_node);
    SimTime start = EarliestSlot(node_id, slots, now);
    if (!found || start < best_start) {
      found = true;
      best_node = node_id;
      best_start = start;
    }
  }
  placement.node_id = found ? best_node : 0;
  placement.local = false;
  placement.start_time = best_start;
  return placement;
}

void JobScheduler::CommitTask(Placement* placement, SimTime duration,
                              int max_tasks_per_node, SimTime now) {
  const NodeInfo* node = cluster_->Node(placement->node_id);
  double factor = node != nullptr ? node->slowdown_factor : 1.0;
  if (config_.straggler_probability > 0 &&
      rng_.NextBool(config_.straggler_probability)) {
    factor *= config_.straggler_slowdown;
    placement->straggled = true;
  }
  SimTime effective =
      static_cast<SimTime>(static_cast<double>(duration) * factor);
  // Dispatch costs one control round trip.
  SimTime start =
      std::max(placement->start_time, now + network_.ControlRoundTrip());
  placement->start_time = start;
  placement->finish_time = start + effective;
  int slots = node != nullptr
                  ? std::min(node->task_slots, max_tasks_per_node)
                  : max_tasks_per_node;
  BookSlot(placement->node_id, slots, start, placement->finish_time);
}

size_t JobScheduler::ApplyBackupTasks(
    std::vector<Placement>* placements, const std::vector<SimTime>& durations,
    const std::vector<std::vector<uint32_t>>& replicas, SimTime now) {
  if (!config_.enable_backup_tasks || placements->empty()) return 0;
  // Mean *intended* duration defines the straggler detection horizon.
  double mean = 0;
  for (SimTime d : durations) mean += static_cast<double>(d);
  mean /= static_cast<double>(durations.size());
  SimTime detect_after =
      static_cast<SimTime>(mean * config_.backup_threshold);
  size_t backups = 0;
  for (size_t i = 0; i < placements->size(); ++i) {
    Placement& p = (*placements)[i];
    SimTime elapsed = p.finish_time - p.start_time;
    if (elapsed <= detect_after) continue;
    // Find an alternative alive replica.
    uint32_t alt = p.node_id;
    bool found = false;
    for (uint32_t node_id : replicas[i]) {
      const NodeInfo* node = cluster_->Node(node_id);
      if (node_id != p.node_id && node != nullptr && node->alive) {
        alt = node_id;
        found = true;
        break;
      }
    }
    if (!found) {
      // Any alive leaf will do (remote read implied).
      for (uint32_t node_id : cluster_->AliveLeafNodes()) {
        if (node_id != p.node_id) {
          alt = node_id;
          found = true;
          break;
        }
      }
    }
    if (!found) continue;
    const NodeInfo* alt_node = cluster_->Node(alt);
    double alt_factor = alt_node != nullptr ? alt_node->slowdown_factor : 1.0;
    SimTime backup_start = std::max(p.start_time + detect_after, now);
    SimTime backup_finish =
        backup_start + static_cast<SimTime>(
                           static_cast<double>(durations[i]) * alt_factor);
    if (backup_finish < p.finish_time) {
      p.finish_time = backup_finish;
      p.backup_launched = true;
      ++backups;
    }
  }
  return backups;
}

}  // namespace feisu
