#include "cluster/scheduler.h"

#include <algorithm>
#include <numeric>

#include "common/fault_injector.h"

namespace feisu {

JobScheduler::JobScheduler(ClusterManager* cluster, PathRouter* router,
                           NetworkModel network, ScheduleConfig config,
                           uint64_t seed)
    : cluster_(cluster),
      router_(router),
      network_(network),
      config_(config),
      seed_(seed),
      rng_(seed) {}

SlotLedger JobScheduler::MakeJobLedger(int64_t job_id) const {
  // Same splitmix-style derivation the fault injector uses for per-entity
  // streams: the job's straggler draws are independent of sibling jobs
  // and stable run-to-run.
  uint64_t mixed = seed_ ^ (0x9E3779B97F4A7C15ULL *
                            static_cast<uint64_t>(job_id + 1));
  return SlotLedger(mixed);
}

SimTime JobScheduler::EarliestSlot(
    const std::map<uint32_t, std::vector<SimTime>>& node_slots,
    uint32_t node_id, int slots, SimTime now) {
  auto it = node_slots.find(node_id);
  if (it == node_slots.end()) return now;
  const std::vector<SimTime>& booked = it->second;
  if (booked.size() < static_cast<size_t>(slots)) return now;
  // With all slots busy, the earliest start is the smallest of the `slots`
  // latest finish times; keep it simple: sort a copy of the tail.
  std::vector<SimTime> copy = booked;
  std::sort(copy.begin(), copy.end());
  // Occupancy at time t = number of bookings finishing after t. A new task
  // can start when occupancy < slots, i.e. after the (n - slots)-th finish.
  size_t idx = copy.size() - static_cast<size_t>(slots);
  return std::max(now, copy[idx]);
}

void JobScheduler::BookSlot(
    std::map<uint32_t, std::vector<SimTime>>* node_slots, uint32_t node_id,
    SimTime finish) {
  std::vector<SimTime>& booked = (*node_slots)[node_id];
  booked.push_back(finish);
  // Bound growth: drop bookings that can no longer constrain anything
  // (older than the 64 most recent).
  if (booked.size() > 256) {
    std::sort(booked.begin(), booked.end());
    booked.erase(booked.begin(), booked.end() - 64);
  }
}

Placement JobScheduler::PlaceTask(const std::vector<uint32_t>& replicas,
                                  int max_tasks_per_node, SimTime now,
                                  const std::set<uint32_t>* excluded,
                                  SlotLedger* ledger) {
  const std::map<uint32_t, std::vector<SimTime>>& node_slots =
      ledger != nullptr ? ledger->node_slots : node_slots_;
  // A partitioned node is alive but cannot receive a dispatch right now,
  // so placement treats it exactly like an excluded one.
  Reachability reach(router_->fault_injector());
  auto is_excluded = [excluded, &reach, now](uint32_t node_id) {
    if (excluded != nullptr && excluded->count(node_id) > 0) return true;
    return !reach.Reachable(node_id, now);
  };
  Placement placement;
  // 1. Prefer the replica whose slots free up earliest.
  if (config_.prefer_data_locality) {
    uint32_t best_node = 0;
    SimTime best_start = 0;
    bool found = false;
    for (uint32_t node_id : replicas) {
      if (is_excluded(node_id)) continue;
      const NodeInfo* node = cluster_->Node(node_id);
      if (node == nullptr || !node->alive) continue;
      int slots = std::min(node->task_slots, max_tasks_per_node);
      SimTime start = EarliestSlot(node_slots, node_id, slots, now);
      if (!found || start < best_start) {
        found = true;
        best_node = node_id;
        best_start = start;
      }
    }
    if (found) {
      placement.node_id = best_node;
      placement.local = true;
      placement.start_time = best_start;
      return placement;
    }
  }
  // 2. Fall back: least-loaded alive leaf (remote read).
  uint32_t best_node = 0;
  SimTime best_start = 0;
  bool found = false;
  for (uint32_t node_id : cluster_->AliveLeafNodes()) {
    if (is_excluded(node_id)) continue;
    const NodeInfo* node = cluster_->Node(node_id);
    int slots = std::min(node->task_slots, max_tasks_per_node);
    SimTime start = EarliestSlot(node_slots, node_id, slots, now);
    if (!found || start < best_start) {
      found = true;
      best_node = node_id;
      best_start = start;
    }
  }
  placement.node_id = found ? best_node : 0;
  placement.local = false;
  placement.start_time = best_start;
  return placement;
}

void JobScheduler::CommitTask(Placement* placement, SimTime duration,
                              int max_tasks_per_node, SimTime now,
                              SlotLedger* ledger) {
  const NodeInfo* node = cluster_->Node(placement->node_id);
  double factor = node != nullptr ? node->slowdown_factor : 1.0;
  Rng& rng = ledger != nullptr ? ledger->rng : rng_;
  if (config_.straggler_probability > 0 &&
      rng.NextBool(config_.straggler_probability)) {
    factor *= config_.straggler_slowdown;
    placement->straggled = true;
  }
  // Injected slow-node personality (contended host / sick disk): every
  // task committed to the node runs slower and pays a fixed stall.
  SimTime stall = 0;
  if (FaultInjector* faults = router_->fault_injector()) {
    SlowNodeProfile slow =
        faults->NodeSlowProfile(placement->node_id, /*count=*/true);
    if (slow.latency_multiplier > 1.0 || slow.stall > 0) {
      factor *= std::max(1.0, slow.latency_multiplier);
      stall = slow.stall;
      placement->straggled = true;
    }
  }
  SimTime effective =
      static_cast<SimTime>(static_cast<double>(duration) * factor) + stall;
  // Dispatch costs one control round trip.
  SimTime start =
      std::max(placement->start_time, now + network_.ControlRoundTrip());
  placement->start_time = start;
  placement->finish_time = start + effective;
  BookSlot(ledger != nullptr ? &ledger->node_slots : &node_slots_,
           placement->node_id, placement->finish_time);
  (void)max_tasks_per_node;
}

std::vector<StragglerVerdict> JobScheduler::DetectStragglers(
    const std::vector<Placement>& placements) const {
  std::vector<StragglerVerdict> verdicts;
  if (!config_.enable_backup_tasks || placements.size() < 2) return verdicts;
  // The typical runtime is the backup_quantile-quantile of the peers'
  // elapsed times; a straggler is anything beyond threshold x typical.
  std::vector<SimTime> elapsed;
  elapsed.reserve(placements.size());
  for (const Placement& p : placements) {
    elapsed.push_back(p.finish_time - p.start_time);
  }
  std::vector<SimTime> sorted = elapsed;
  std::sort(sorted.begin(), sorted.end());
  double q = std::clamp(config_.backup_quantile, 0.0, 1.0);
  size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1));
  SimTime typical = sorted[idx];
  if (typical <= 0) return verdicts;
  SimTime horizon = static_cast<SimTime>(
      static_cast<double>(typical) * std::max(1.0, config_.backup_threshold));
  for (size_t i = 0; i < placements.size(); ++i) {
    if (elapsed[i] <= horizon) continue;
    verdicts.push_back(
        StragglerVerdict{i, placements[i].start_time + horizon});
  }
  return verdicts;
}

std::optional<uint32_t> JobScheduler::PickBackupNode(
    const std::vector<uint32_t>& replicas, uint32_t original,
    SimTime now) const {
  Reachability reach(router_->fault_injector());
  auto usable = [&](uint32_t node_id) {
    if (node_id == original) return false;
    const NodeInfo* node = cluster_->Node(node_id);
    return node != nullptr && node->alive && reach.Reachable(node_id, now);
  };
  // Prefer another replica holder (local read); otherwise any alive
  // reachable leaf pays a remote read.
  for (uint32_t node_id : replicas) {
    if (usable(node_id)) return node_id;
  }
  for (uint32_t node_id : cluster_->AliveLeafNodes()) {
    if (usable(node_id)) return node_id;
  }
  return std::nullopt;
}

void JobScheduler::ResetLoad() {
  node_slots_.clear();
  MutexLock lock(share_mutex_);
  peak_in_flight_.clear();
  leaf_slot_waits_ = 0;
}

size_t JobScheduler::CapFor(const JobShare& share) const {
  if (leaf_pool_width_ == 0 || total_weight_ <= 0) return SIZE_MAX;
  size_t cap = leaf_pool_width_ * static_cast<size_t>(share.weight) /
               static_cast<size_t>(total_weight_);
  return std::max<size_t>(1, cap);
}

void JobScheduler::SetLeafPoolWidth(size_t width) {
  MutexLock lock(share_mutex_);
  leaf_pool_width_ = width;
}

void JobScheduler::RegisterJobShare(int64_t job_id, int weight) {
  MutexLock lock(share_mutex_);
  JobShare share;
  share.weight = std::max(1, weight);
  total_weight_ += share.weight;
  shares_[job_id] = share;
  // Existing waiters' caps just shrank — they re-check and keep waiting;
  // no wakeup needed for shrink, but one is harmless and keeps the gate
  // simple.
  share_cv_.NotifyAll();
}

void JobScheduler::UnregisterJobShare(int64_t job_id) {
  MutexLock lock(share_mutex_);
  auto it = shares_.find(job_id);
  if (it == shares_.end()) return;
  total_weight_ -= it->second.weight;
  shares_.erase(it);
  // Remaining jobs' caps grew: wake every waiter to re-check.
  share_cv_.NotifyAll();
}

void JobScheduler::AcquireLeafSlot(int64_t job_id) {
  MutexLock lock(share_mutex_);
  auto it = shares_.find(job_id);
  if (it == shares_.end()) return;  // unregistered job: no gating
  bool waited = false;
  while (it->second.in_flight >= CapFor(it->second)) {
    waited = true;
    share_cv_.Wait(lock);
    it = shares_.find(job_id);
    if (it == shares_.end()) return;
  }
  if (waited) ++leaf_slot_waits_;
  ++it->second.in_flight;
  size_t& peak = peak_in_flight_[job_id];
  peak = std::max(peak, it->second.in_flight);
}

void JobScheduler::ReleaseLeafSlot(int64_t job_id) {
  MutexLock lock(share_mutex_);
  auto it = shares_.find(job_id);
  if (it == shares_.end()) return;
  if (it->second.in_flight > 0) --it->second.in_flight;
  share_cv_.NotifyAll();
}

size_t JobScheduler::PeakLeafTasks(int64_t job_id) const {
  MutexLock lock(share_mutex_);
  auto it = peak_in_flight_.find(job_id);
  return it == peak_in_flight_.end() ? 0 : it->second;
}

uint64_t JobScheduler::leaf_slot_waits() const {
  MutexLock lock(share_mutex_);
  return leaf_slot_waits_;
}

}  // namespace feisu
