#ifndef FEISU_CLUSTER_STEM_SERVER_H_
#define FEISU_CLUSTER_STEM_SERVER_H_

#include <vector>

#include "cluster/network.h"
#include "cluster/task.h"
#include "common/result.h"
#include "exec/aggregate.h"

namespace feisu {

/// Result of one stem-level merge: the merged batch plus the simulated
/// window over which this stem worked — `start_time` is the arrival of the
/// first child partial (the stem holds state from then on, so a crash
/// inside (start_time, finish_time] loses the partial merge),
/// `finish_time` is input arrival + transfer + combine.
struct StemResult {
  RecordBatch batch;
  SimTime start_time = 0;
  SimTime finish_time = 0;
  uint64_t bytes_received = 0;
};

/// A stem server aggregates task results from leaf servers (or from other
/// stems) on the way up the execution tree (paper Fig. 3). For aggregation
/// queries it merges partial states; for plain scans it concatenates rows.
class StemServer {
 public:
  StemServer(uint32_t node_id, NetworkModel network,
             SimTime cpu_per_row_merge = 8);

  uint32_t node_id() const { return node_id_; }

  /// Merges child outputs. `child_batches[i]` arrives at simulated time
  /// `child_finish_times[i]`; the stem starts combining when the last
  /// input has been transferred (read traffic class).
  ///
  /// `aggregator` non-null => partial-state merge; null => concatenation.
  Result<StemResult> Merge(const std::vector<RecordBatch>& child_batches,
                           const std::vector<SimTime>& child_finish_times,
                           Aggregator* aggregator);

 private:
  uint32_t node_id_;
  NetworkModel network_;
  SimTime cpu_per_row_merge_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_STEM_SERVER_H_
