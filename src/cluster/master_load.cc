#include "cluster/master_load.h"

#include <algorithm>

namespace feisu {

double MasterLoadModel::InternalMessageRate(size_t workers) const {
  double period_s =
      static_cast<double>(params_.heartbeat_interval) / kSimSecond;
  // One heartbeat plus ancillary traffic per worker per period.
  return static_cast<double>(workers) *
         (1.0 + params_.internal_messages_per_worker) / period_s;
}

double MasterLoadModel::ExternalServiceUtilization(
    size_t workers, double external_qps) const {
  double instances = static_cast<double>(
      std::max(1, layout_.instances_per_service));
  double external_cost_s =
      static_cast<double>(params_.cost_per_external_request) / kSimSecond;
  double rho = external_qps * external_cost_s / instances;
  if (!layout_.separate_cluster_manager) {
    // Heartbeats/dispatch share the external-facing service. (The paper's
    // step-2 split moved the job manager's bookkeeping out, which relieves
    // memory, not this message load — so only step 3 helps here.)
    double internal_cost_s =
        static_cast<double>(params_.cost_per_internal_message) / kSimSecond;
    rho += InternalMessageRate(workers) * internal_cost_s / instances;
  }
  return rho;
}

double MasterLoadModel::BottleneckUtilization(size_t workers,
                                              double external_qps) const {
  double instances = static_cast<double>(
      std::max(1, layout_.instances_per_service));
  double internal_cost_s =
      static_cast<double>(params_.cost_per_internal_message) / kSimSecond;
  double internal_rho =
      InternalMessageRate(workers) * internal_cost_s / instances;
  double external_rho = ExternalServiceUtilization(workers, external_qps);
  return std::max(internal_rho, external_rho);
}

SimTime MasterLoadModel::ExternalRequestOverhead(
    size_t workers, double external_qps, SimTime inter_service_rtt) const {
  double rho = ExternalServiceUtilization(workers, external_qps);
  if (rho >= 1.0) return -1;  // saturated: unbounded queueing delay
  // M/M/1 sojourn time: service / (1 - rho).
  double service_s =
      static_cast<double>(params_.cost_per_external_request) / kSimSecond;
  SimTime sojourn =
      static_cast<SimTime>(service_s / (1.0 - rho) * kSimSecond);
  // Each separated service adds one internal RPC hop to answer a request
  // (e.g. the entry point consulting the split job manager).
  int hops = (layout_.separate_job_manager ? 1 : 0) +
             (layout_.separate_cluster_manager ? 1 : 0);
  return sojourn + hops * inter_service_rtt;
}

}  // namespace feisu
