#ifndef FEISU_CLUSTER_MASTER_LOAD_H_
#define FEISU_CLUSTER_MASTER_LOAD_H_

#include <cstddef>

#include "common/sim_clock.h"

namespace feisu {

/// How the master's components are deployed (paper §VII). Production Feisu
/// evolved through exactly these steps as worker counts grew:
///  1. monolithic master;
///  2. job manager separated once ~5,000 workers starved it of memory;
///  3. scheduler + cluster manager separated once ~8,000 workers' internal
///     traffic (heartbeats, task dispatch) began hurting external user
///     experience (job submission, monitoring);
///  4. horizontal scaling of the separated services.
struct MasterServiceLayout {
  bool separate_job_manager = false;
  bool separate_cluster_manager = false;  ///< includes the scheduler
  int instances_per_service = 1;

  static MasterServiceLayout Monolithic() { return {}; }
  static MasterServiceLayout JobManagerSplit() {
    return {true, false, 1};
  }
  static MasterServiceLayout FullySeparated(int instances = 1) {
    return {true, true, instances};
  }
};

/// Control-plane cost parameters.
struct MasterLoadParams {
  SimTime heartbeat_interval = 5 * kSimSecond;
  /// Internal messages per worker per heartbeat period beyond the
  /// heartbeat itself (task dispatch acks, monitoring, state sync).
  double internal_messages_per_worker = 3.0;
  /// Service time per internal control message.
  SimTime cost_per_internal_message = 120 * kSimMicrosecond;
  /// Service time per external request (job submission, monitoring query).
  SimTime cost_per_external_request = 2 * kSimMillisecond;
};

/// An analytical queueing model of the master stack: predicts the
/// bottleneck utilization and the latency overhead external requests see,
/// for a given worker count, external request rate and service layout.
/// Used by the §VII ablation benchmark; not on the query hot path.
class MasterLoadModel {
 public:
  MasterLoadModel(MasterServiceLayout layout, MasterLoadParams params = {})
      : layout_(layout), params_(params) {}

  const MasterServiceLayout& layout() const { return layout_; }

  /// Internal control messages per simulated second for `workers` workers.
  double InternalMessageRate(size_t workers) const;

  /// Utilization (0..1+) of the service that handles external requests.
  /// In the monolithic layout internal traffic shares that service; in
  /// separated layouts it doesn't. >= 1 means saturation.
  double ExternalServiceUtilization(size_t workers,
                                    double external_qps) const;

  /// Utilization of the busiest service in the stack.
  double BottleneckUtilization(size_t workers, double external_qps) const;

  /// Mean added latency for one external request (M/M/1 waiting + service
  /// + one extra control RTT per separated service hop). Returns -1 when
  /// the serving component is saturated.
  SimTime ExternalRequestOverhead(size_t workers, double external_qps,
                                  SimTime inter_service_rtt) const;

 private:
  MasterServiceLayout layout_;
  MasterLoadParams params_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_MASTER_LOAD_H_
