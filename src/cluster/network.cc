#include "cluster/network.h"

#include "common/fault_injector.h"

namespace feisu {

bool Reachability::Reachable(uint32_t node_id, SimTime now) const {
  if (injector_ == nullptr) return true;
  return !injector_->IsPartitioned(node_id, now);
}

const char* TrafficClassName(TrafficClass traffic_class) {
  switch (traffic_class) {
    case TrafficClass::kControl:
      return "control";
    case TrafficClass::kWrite:
      return "write";
    case TrafficClass::kRead:
      return "read";
  }
  return "?";
}

SimTime NetworkModel::Transfer(uint64_t bytes,
                               TrafficClass traffic_class) const {
  double fraction = 1.0;
  switch (traffic_class) {
    case TrafficClass::kControl:
      fraction = control_fraction;
      break;
    case TrafficClass::kWrite:
      fraction = write_fraction;
      break;
    case TrafficClass::kRead:
      fraction = read_fraction;
      break;
  }
  if (fraction <= 0.0) fraction = 0.05;
  return rtt + static_cast<SimTime>(
                   static_cast<double>(bytes) /
                   (bandwidth_bytes_per_sec * fraction) * kSimSecond);
}

}  // namespace feisu
