#include "cluster/entry_guard.h"

namespace feisu {

EntryGuard::EntryGuard(SsoAuthenticator* sso, const Catalog* catalog,
                       uint64_t daily_query_quota)
    : sso_(sso), catalog_(catalog), daily_query_quota_(daily_query_quota) {}

Result<JobCredential> EntryGuard::Admit(const std::string& user,
                                        const std::string& table,
                                        SimTime now) {
  // Phase 1, under mutex_: quota and ACL checks. The quota slot is
  // reserved here so racing admits for the same user cannot overshoot the
  // daily limit while an authentication round trip is in flight.
  {
    MutexLock lock(mutex_);
    // Quota: count queries per simulated day.
    int64_t day = now / (24 * kSimHour);
    auto& [last_day, count] = usage_[user];
    if (last_day != day) {
      last_day = day;
      count = 0;
    }
    if (count >= daily_query_quota_) {
      ++rejected_;
      return Status::ResourceExhausted("user " + user +
                                       " exceeded daily query quota");
    }

    const TableMeta* meta = catalog_->Find(table);
    if (meta == nullptr) {
      ++rejected_;
      return Status::NotFound("table " + table + " not found");
    }
    if (!meta->UserMayRead(user)) {
      ++rejected_;
      return Status::PermissionDenied("user " + user +
                                      " may not read table " + table);
    }
    ++count;
  }

  // Phase 2, no lock held: the certification-system round trip. Holding
  // mutex_ across it would stall every admission and job-accounting path
  // behind the authenticator.
  Result<JobCredential> credential = sso_->Authenticate(user);

  // Phase 3, under mutex_: commit, or roll the reservation back so a
  // failed authentication does not consume quota.
  MutexLock lock(mutex_);
  if (!credential.ok()) {
    auto it = usage_.find(user);
    if (it != usage_.end() && it->second.second > 0) --it->second.second;
    ++rejected_;
    return credential.status();
  }
  ++admitted_;
  return credential;
}

bool EntryGuard::AuthorizeDomain(const JobCredential& credential,
                                 const std::string& domain) const {
  // The authenticator synchronizes itself; per-task authorization must
  // not contend with admission accounting under mutex_.
  return sso_->Authorize(credential, domain);
}

void EntryGuard::set_default_tenant_quota(const TenantQuota& quota) {
  MutexLock lock(mutex_);
  default_tenant_quota_ = quota;
}

void EntryGuard::SetTenantQuota(const std::string& user,
                                const TenantQuota& quota) {
  MutexLock lock(mutex_);
  tenant_quotas_[user] = quota;
}

const TenantQuota& EntryGuard::QuotaFor(const std::string& user) const {
  auto it = tenant_quotas_.find(user);
  return it == tenant_quotas_.end() ? default_tenant_quota_ : it->second;
}

Status EntryGuard::EnqueueJob(const std::string& user,
                              size_t queue_capacity) {
  MutexLock lock(mutex_);
  if (queue_capacity > 0 && jobs_queued_ >= queue_capacity) {
    ++jobs_rejected_;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(queue_capacity) +
        " jobs waiting); retry later");
  }
  const TenantQuota& quota = QuotaFor(user);
  if (quota.max_queued_jobs > 0 &&
      tenant_queued_[user] >= quota.max_queued_jobs) {
    ++jobs_rejected_;
    ++tenant_quota_hits_[user];
    return Status::ResourceExhausted(
        "tenant " + user + " exceeded queued-job quota (" +
        std::to_string(quota.max_queued_jobs) + ")");
  }
  ++tenant_queued_[user];
  ++jobs_queued_;
  ++jobs_admitted_;
  return Status::OK();
}

bool EntryGuard::MayStartJob(const std::string& user,
                             const std::string& domain,
                             int domain_job_limit) {
  MutexLock lock(mutex_);
  const TenantQuota& quota = QuotaFor(user);
  if (quota.max_concurrent_jobs > 0 &&
      tenant_running_[user] >= quota.max_concurrent_jobs) {
    ++tenant_quota_hits_[user];
    return false;
  }
  if (domain_job_limit > 0 && !domain.empty() &&
      domain_running_[domain] >= static_cast<uint64_t>(domain_job_limit)) {
    return false;
  }
  return true;
}

void EntryGuard::StartJob(const std::string& user,
                          const std::string& domain) {
  MutexLock lock(mutex_);
  if (tenant_queued_[user] > 0) --tenant_queued_[user];
  if (jobs_queued_ > 0) --jobs_queued_;
  ++tenant_running_[user];
  ++jobs_running_;
  if (!domain.empty()) ++domain_running_[domain];
}

void EntryGuard::FinishJob(const std::string& user,
                           const std::string& domain) {
  MutexLock lock(mutex_);
  if (tenant_running_[user] > 0) --tenant_running_[user];
  if (jobs_running_ > 0) --jobs_running_;
  if (!domain.empty() && domain_running_[domain] > 0) {
    --domain_running_[domain];
  }
}

void EntryGuard::CountImmediateJob() {
  MutexLock lock(mutex_);
  ++jobs_admitted_;
}

AdmissionSnapshot EntryGuard::admission_snapshot() const {
  MutexLock lock(mutex_);
  AdmissionSnapshot snapshot;
  snapshot.jobs_admitted = jobs_admitted_;
  snapshot.jobs_rejected = jobs_rejected_;
  snapshot.jobs_queued = jobs_queued_;
  snapshot.jobs_running = jobs_running_;
  snapshot.tenant_quota_hits = tenant_quota_hits_;
  return snapshot;
}

uint64_t EntryGuard::rejected_count() const {
  MutexLock lock(mutex_);
  return rejected_;
}

uint64_t EntryGuard::admitted_count() const {
  MutexLock lock(mutex_);
  return admitted_;
}

}  // namespace feisu
