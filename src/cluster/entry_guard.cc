#include "cluster/entry_guard.h"

namespace feisu {

EntryGuard::EntryGuard(SsoAuthenticator* sso, const Catalog* catalog,
                       uint64_t daily_query_quota)
    : sso_(sso), catalog_(catalog), daily_query_quota_(daily_query_quota) {}

Result<JobCredential> EntryGuard::Admit(const std::string& user,
                                        const std::string& table,
                                        SimTime now) {
  // Quota: count queries per simulated day.
  int64_t day = now / (24 * kSimHour);
  auto& [last_day, count] = usage_[user];
  if (last_day != day) {
    last_day = day;
    count = 0;
  }
  if (count >= daily_query_quota_) {
    ++rejected_;
    return Status::ResourceExhausted("user " + user +
                                     " exceeded daily query quota");
  }

  const TableMeta* meta = catalog_->Find(table);
  if (meta == nullptr) {
    ++rejected_;
    return Status::NotFound("table " + table + " not found");
  }
  if (!meta->UserMayRead(user)) {
    ++rejected_;
    return Status::PermissionDenied("user " + user +
                                    " may not read table " + table);
  }
  Result<JobCredential> credential = sso_->Authenticate(user);
  if (!credential.ok()) {
    ++rejected_;
    return credential.status();
  }
  ++count;
  ++admitted_;
  return credential;
}

bool EntryGuard::AuthorizeDomain(const JobCredential& credential,
                                 const std::string& domain) const {
  return sso_->Authorize(credential, domain);
}

}  // namespace feisu
