#ifndef FEISU_CLUSTER_JOB_MANAGER_H_
#define FEISU_CLUSTER_JOB_MANAGER_H_

#include <cstdint>
#include <list>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/task.h"
#include "common/sim_clock.h"

namespace feisu {

enum class JobState { kQueued, kRunning, kFinished, kFailed };

const char* JobStateName(JobState state);

/// Per-job recovery/speculation accounting, mirrored from QueryStats so a
/// checkpoint/monitoring view carries the job's fault history.
struct JobRecoveryRecord {
  uint64_t task_retries = 0;
  uint64_t corrupt_blocks = 0;
  uint64_t failed_nodes = 0;
  uint64_t lost_blocks = 0;
  uint64_t backup_tasks_launched = 0;
  uint64_t backup_tasks_won = 0;
  uint64_t tasks_terminated_early = 0;
  uint64_t partitioned_tasks = 0;
  uint64_t stem_retries = 0;
  double processed_ratio = 1.0;
};

struct JobInfo {
  int64_t job_id = 0;
  std::string user;
  std::string sql;
  JobState state = JobState::kQueued;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  std::string error;
  JobRecoveryRecord recovery;
};

/// Maintains running job information (paper §III-C "Job manager") and the
/// identical-task result-reuse cache: before a new job's tasks enter the
/// candidate queue, tasks whose signature matches a recently computed task
/// reuse that result instead of executing.
///
/// Concurrency: deliberately unsynchronized. The job table and reuse cache
/// are only ever touched from the master's single-threaded control path —
/// the parallel leaf pool's workers write exclusively to their own result
/// slot (see MasterServer::ExecuteLeafTaskParallel) and never reach this
/// class. Any future cross-thread access must migrate it to the annotated
/// lock wrappers in common/annotations.h first.
class JobManager {
 public:
  explicit JobManager(size_t reuse_cache_capacity = 4096)
      : reuse_capacity_(reuse_cache_capacity) {}

  int64_t CreateJob(const std::string& user, const std::string& sql,
                    SimTime now);
  void SetState(int64_t job_id, JobState state, SimTime now,
                const std::string& error = "");
  const JobInfo* Find(int64_t job_id) const;
  size_t NumJobs() const { return jobs_.size(); }

  /// Mirrors a finished query's recovery counters onto its job record.
  void RecordRecovery(int64_t job_id, const JobRecoveryRecord& record);

  /// Primary/backup support: the job table travels with the master
  /// checkpoint so a promoted backup can resume in-flight jobs.
  std::vector<JobInfo> SnapshotJobs() const;
  void RestoreJobs(const std::vector<JobInfo>& jobs);
  /// Ids of jobs that were queued or running (i.e. interrupted when the
  /// primary died), in submission order.
  std::vector<int64_t> UnfinishedJobs() const;

  /// Task-result reuse. TryReuse copies a cached result for an identical
  /// task; CacheResult publishes a fresh one (LRU-bounded).
  bool TryReuse(const std::string& signature, TaskResult* out);
  void CacheResult(const std::string& signature, const TaskResult& result);
  void InvalidateReuseCache() { reuse_cache_.clear(); reuse_lru_.clear(); }

  uint64_t reuse_hits() const { return reuse_hits_; }
  uint64_t reuse_misses() const { return reuse_misses_; }

 private:
  std::map<int64_t, JobInfo> jobs_;
  int64_t next_job_id_ = 1;

  size_t reuse_capacity_;
  struct ReuseEntry {
    TaskResult result;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, ReuseEntry> reuse_cache_;
  std::list<std::string> reuse_lru_;
  uint64_t reuse_hits_ = 0;
  uint64_t reuse_misses_ = 0;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_JOB_MANAGER_H_
