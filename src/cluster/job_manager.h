#ifndef FEISU_CLUSTER_JOB_MANAGER_H_
#define FEISU_CLUSTER_JOB_MANAGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/task.h"
#include "common/annotations.h"
#include "common/sim_clock.h"

namespace feisu {

enum class JobState { kQueued, kRunning, kFinished, kFailed };

const char* JobStateName(JobState state);

/// Per-job recovery/speculation accounting, mirrored from QueryStats so a
/// checkpoint/monitoring view carries the job's fault history.
struct JobRecoveryRecord {
  uint64_t task_retries = 0;
  uint64_t corrupt_blocks = 0;
  uint64_t failed_nodes = 0;
  uint64_t lost_blocks = 0;
  uint64_t backup_tasks_launched = 0;
  uint64_t backup_tasks_won = 0;
  uint64_t tasks_terminated_early = 0;
  uint64_t partitioned_tasks = 0;
  uint64_t stem_retries = 0;
  double processed_ratio = 1.0;
};

struct JobInfo {
  int64_t job_id = 0;
  std::string user;
  std::string sql;
  JobState state = JobState::kQueued;
  SimTime submit_time = 0;
  SimTime finish_time = 0;
  std::string error;
  JobRecoveryRecord recovery;
  /// Priority band (higher runs first; FIFO within a band). Set at
  /// submission from MasterConfig::default_priority or SubmitOptions.
  int priority = 1;
  /// Storage domain of the job's first table plus that storage system's
  /// resource-consumption agreement on concurrent jobs (0 = unlimited);
  /// the admission drain loop checks both against EntryGuard.
  std::string domain;
  int domain_job_limit = 0;
  /// Host wall-clock time spent queued before a coordinator picked the
  /// job up (observability only; never part of simulated response time).
  double queue_wait_ms = 0;
};

/// Maintains running job information (paper §III-C "Job manager"), the
/// priority admission queue of the multi-query master, and the
/// identical-task result-reuse cache: before a new job's tasks enter the
/// candidate queue, tasks whose signature matches a recently computed task
/// reuse that result instead of executing.
///
/// Concurrency: every member is guarded by `mutex_` — job coordinators on
/// the master's job pool create, pop, finish and cache concurrently, so
/// the PR 5 "single-threaded commit phase" contract no longer applies
/// here. Accessors return snapshots by value, never pointers into the
/// guarded tables. Lock order: callers holding the master's admission
/// mutex may call in (admission -> job-manager -> entry-guard); this
/// class never calls back out into master or EntryGuard except through
/// the caller-supplied PopRunnable predicate, which keeps that edge
/// explicit at the single call site.
class JobManager {
 public:
  explicit JobManager(size_t reuse_cache_capacity = 4096)
      : reuse_capacity_(reuse_cache_capacity) {}

  int64_t CreateJob(const std::string& user, const std::string& sql,
                    SimTime now, int priority = 1)
      FEISU_EXCLUDES(mutex_);
  void SetState(int64_t job_id, JobState state, SimTime now,
                const std::string& error = "") FEISU_EXCLUDES(mutex_);
  /// Snapshot of one job's record; nullopt for unknown ids.
  std::optional<JobInfo> Find(int64_t job_id) const FEISU_EXCLUDES(mutex_);
  size_t NumJobs() const FEISU_EXCLUDES(mutex_);

  /// Sets the job's admission metadata (storage domain + per-storage job
  /// agreement) consulted by the PopRunnable eligibility check.
  void SetAdmissionInfo(int64_t job_id, const std::string& domain,
                        int domain_job_limit) FEISU_EXCLUDES(mutex_);
  void SetQueueWait(int64_t job_id, double queue_wait_ms)
      FEISU_EXCLUDES(mutex_);

  /// --- Priority admission queue (multi-query master). ---
  /// Appends a created job to its priority band's FIFO.
  void EnqueueJob(int64_t job_id) FEISU_EXCLUDES(mutex_);
  /// Pops the next runnable job: highest priority band first, FIFO within
  /// a band, restricted to jobs `eligible` accepts (tenant/storage quota
  /// checks). Anti-starvation aging: every `starvation_boost_interval`-th
  /// successful pop takes the globally oldest eligible job regardless of
  /// band, so sustained high-priority load cannot starve a low band.
  /// Returns nullopt when no queued job is eligible.
  std::optional<int64_t> PopRunnable(
      const std::function<bool(const JobInfo&)>& eligible)
      FEISU_EXCLUDES(mutex_);
  size_t QueueDepth() const FEISU_EXCLUDES(mutex_);
  void set_starvation_boost_interval(size_t interval)
      FEISU_EXCLUDES(mutex_);

  /// Mirrors a finished query's recovery counters onto its job record.
  void RecordRecovery(int64_t job_id, const JobRecoveryRecord& record)
      FEISU_EXCLUDES(mutex_);

  /// Primary/backup support: the job table travels with the master
  /// checkpoint so a promoted backup can resume in-flight jobs.
  std::vector<JobInfo> SnapshotJobs() const FEISU_EXCLUDES(mutex_);
  void RestoreJobs(const std::vector<JobInfo>& jobs) FEISU_EXCLUDES(mutex_);
  /// Ids of jobs that were queued or running (i.e. interrupted when the
  /// primary died), in submission order.
  std::vector<int64_t> UnfinishedJobs() const FEISU_EXCLUDES(mutex_);

  /// Task-result reuse. TryReuse copies a cached result for an identical
  /// task; CacheResult publishes a fresh one (LRU-bounded). Safe to call
  /// from concurrent job coordinators.
  bool TryReuse(const std::string& signature, TaskResult* out)
      FEISU_EXCLUDES(mutex_);
  void CacheResult(const std::string& signature, const TaskResult& result)
      FEISU_EXCLUDES(mutex_);
  void InvalidateReuseCache() FEISU_EXCLUDES(mutex_);

  uint64_t reuse_hits() const FEISU_EXCLUDES(mutex_);
  uint64_t reuse_misses() const FEISU_EXCLUDES(mutex_);

 private:
  /// Removes and returns queue_[band][pos], maintaining the pop counter
  /// the aging boost keys off.
  int64_t PopAt(int band, size_t pos) FEISU_REQUIRES(mutex_);

  mutable Mutex mutex_;

  std::map<int64_t, JobInfo> jobs_ FEISU_GUARDED_BY(mutex_);
  int64_t next_job_id_ FEISU_GUARDED_BY(mutex_) = 1;

  // Priority queue: band -> FIFO of queued job ids (higher band first).
  std::map<int, std::deque<int64_t>> queue_ FEISU_GUARDED_BY(mutex_);
  size_t starvation_boost_interval_ FEISU_GUARDED_BY(mutex_) = 8;
  uint64_t pop_count_ FEISU_GUARDED_BY(mutex_) = 0;

  size_t reuse_capacity_;
  struct ReuseEntry {
    TaskResult result;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, ReuseEntry> reuse_cache_
      FEISU_GUARDED_BY(mutex_);
  std::list<std::string> reuse_lru_ FEISU_GUARDED_BY(mutex_);
  uint64_t reuse_hits_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t reuse_misses_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_JOB_MANAGER_H_
