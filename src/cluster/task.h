#ifndef FEISU_CLUSTER_TASK_H_
#define FEISU_CLUSTER_TASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columnar/record_batch.h"
#include "columnar/table.h"
#include "common/sim_clock.h"
#include "plan/logical_plan.h"

namespace feisu {

struct AggStats;  // exec/aggregate.h

/// The unit of work a leaf server executes: one block of one table, with
/// the pushed-down predicate, the pruned column set and (optionally) a
/// partial-aggregation spec. Sub-plans are dissected into these by the
/// master (paper Fig. 3, steps 1-2).
struct LeafTask {
  int64_t job_id = 0;
  int64_t task_id = 0;
  std::string table;
  TableBlockMeta block;
  std::vector<std::string> columns;  ///< data columns the output needs
  ExprPtr predicate;                 ///< pushed filter; may be null
  bool has_aggregate = false;
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggregates;
  /// Per-leaf row cap for LIMIT queries (-1 = none). With `order_by` set,
  /// the leaf returns its local top-`limit` under that ordering.
  int64_t limit = -1;
  std::vector<OrderByItem> order_by;

  /// Stable identity of the computation (independent of job), used by the
  /// job manager to reuse results across identical concurrent tasks.
  std::string Signature() const;
};

/// Per-task accounting; aggregated into QueryStats.
struct TaskStats {
  uint64_t bytes_read = 0;
  uint64_t rows_scanned = 0;           ///< rows whose predicate was evaluated
  uint64_t rows_matched = 0;
  /// Values actually materialized for the output projection. With selection
  /// pushdown this counts only selected rows × projected columns, so the
  /// ratio to rows_scanned × columns shows the late-materialization win.
  uint64_t values_decoded = 0;
  /// Values whose predicate was answered in the compressed domain (dict
  /// codes / RLE runs / bit-packed words) and therefore never decoded for
  /// filtering: rows × conjuncts served by an encoded kernel.
  uint64_t values_skipped_encoded = 0;
  uint64_t index_direct_hits = 0;
  uint64_t index_composed_hits = 0;
  uint64_t index_misses = 0;
  uint64_t btree_probes = 0;
  uint64_t btree_builds = 0;
  // Hash-aggregation counters (leaf Consume plus stem/master partial
  // merges): distinct groups created, hash-table slot inspections, growth
  // events, and batches that took the null-free kernel fast path.
  uint64_t agg_groups = 0;
  uint64_t agg_hash_probes = 0;
  uint64_t agg_rehashes = 0;
  uint64_t agg_null_fast_batches = 0;
  /// Groups created via the dictionary-code group-by path (key string
  /// hashed once per distinct code per batch instead of once per row).
  uint64_t agg_code_domain_groups = 0;
  bool block_skipped = false;          ///< zone-map pruned
  SimTime io_time = 0;
  SimTime cpu_time = 0;

  SimTime TotalTime() const { return io_time + cpu_time; }
  void Accumulate(const TaskStats& other);
  /// Folds one Aggregator's hot-path counters into this task's stats.
  void AccumulateAgg(const AggStats& agg);
};

struct TaskResult {
  RecordBatch batch;  ///< partial-aggregate state or filtered projection
  TaskStats stats;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_TASK_H_
