#ifndef FEISU_CLUSTER_NETWORK_H_
#define FEISU_CLUSTER_NETWORK_H_

#include <cstdint>

#include "common/sim_clock.h"

namespace feisu {

class FaultInjector;

/// Feisu's three traffic classes, in descending priority (paper §V-C):
/// control/state flow (cluster commands, heartbeats) reserves bandwidth via
/// switch TOS flags; write data flow (intermediate results to global
/// storage) travels a bypass channel; read data flow (collecting analyzed
/// data) has the lowest priority and tolerates retries.
enum class TrafficClass { kControl, kWrite, kRead };

const char* TrafficClassName(TrafficClass traffic_class);

/// Cost model of the cluster fabric (defaults: 1 Gbps full-duplex Ethernet
/// as in the paper's testbed).
struct NetworkModel {
  SimTime rtt = 300 * kSimMicrosecond;
  double bandwidth_bytes_per_sec = 125.0 * 1024 * 1024;  // 1 Gbps
  /// Effective bandwidth fraction per class; control is reserved and always
  /// gets its share, read competes with business traffic.
  double control_fraction = 1.0;
  double write_fraction = 0.8;
  double read_fraction = 0.6;

  /// Simulated time for one `bytes`-sized transfer of the given class.
  SimTime Transfer(uint64_t bytes, TrafficClass traffic_class) const;

  /// One control round trip (heartbeat, task dispatch ack).
  SimTime ControlRoundTrip() const { return rtt; }
};

/// Connectivity view of the fabric: a node can be alive (its process keeps
/// running, its disks keep serving local reads) yet unreachable from the
/// master's side of a network partition. Crash state lives in the
/// ClusterManager; partition state is injected, so this wrapper folds the
/// FaultInjector's partition schedule into one "can I talk to this node
/// right now?" query that the scheduler and master share.
class Reachability {
 public:
  /// `injector` may be null (no injection configured): every node is
  /// reachable then. Does not take ownership.
  explicit Reachability(const FaultInjector* injector) : injector_(injector) {}

  /// True when the master can reach `node_id` at simulated time `now`.
  /// Only consults the partition schedule; liveness is a separate axis.
  bool Reachable(uint32_t node_id, SimTime now) const;

 private:
  const FaultInjector* injector_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_NETWORK_H_
