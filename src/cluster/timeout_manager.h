#ifndef FEISU_CLUSTER_TIMEOUT_MANAGER_H_
#define FEISU_CLUSTER_TIMEOUT_MANAGER_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "common/sim_clock.h"

namespace feisu {

/// Deterministic deadline bookkeeping for the master's control loop
/// (prun's TimeoutManager idiom, re-keyed to simulated time). Callers
/// arm a deadline per token (task index, query id, ...) and later drain
/// everything that has expired at the current simulated instant. All
/// ordering is (deadline, token) — no wall clock, no timer threads —
/// so a replay with the same schedule pops the same tokens in the same
/// order, which the chaos determinism property depends on.
///
/// Not thread-safe by design: each job's coordinator creates its own
/// instance inside its commit phase, the same place the ordered-slot
/// commit lives. Pool workers never touch it, and concurrent jobs never
/// share one.
class TimeoutManager {
 public:
  /// Arms (or re-arms) `token` to fire at `deadline`. Re-arming does not
  /// remove the older entry; stale pops are filtered against the latest
  /// armed deadline, so the most recent Arm always wins.
  void Arm(uint64_t token, SimTime deadline);

  /// Disarms `token`; a pending entry for it will be skipped on pop.
  void Cancel(uint64_t token);

  /// Pops every token whose deadline is <= `now`, in (deadline, token)
  /// order. Each token fires at most once per Arm.
  std::vector<uint64_t> PopDue(SimTime now);

  /// Earliest armed deadline still pending, if any — the control loop's
  /// next wake-up instant.
  std::optional<SimTime> NextDeadline() const;

  size_t armed() const { return armed_.size(); }

 private:
  struct Entry {
    SimTime deadline;
    uint64_t token;
    bool operator>(const Entry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return token > other.token;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  /// token -> currently armed deadline; entries in queue_ that disagree
  /// are stale and get dropped lazily.
  std::vector<std::pair<uint64_t, SimTime>> armed_;

  std::optional<SimTime> ArmedDeadline(uint64_t token) const;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_TIMEOUT_MANAGER_H_
