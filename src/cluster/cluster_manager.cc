#include "cluster/cluster_manager.h"

namespace feisu {

ClusterManager::ClusterManager(SimTime heartbeat_interval, SimTime dead_after)
    : heartbeat_interval_(heartbeat_interval), dead_after_(dead_after) {}

uint32_t ClusterManager::AddNode(bool is_stem, int cores, int task_slots) {
  NodeInfo& node = nodes_.emplace_back();
  node.node_id = static_cast<uint32_t>(nodes_.size() - 1);
  node.is_stem = is_stem;
  node.cores = cores;
  node.task_slots = task_slots;
  return node.node_id;
}

NodeInfo* ClusterManager::Node(uint32_t node_id) {
  if (node_id >= nodes_.size()) return nullptr;
  return &nodes_[node_id];
}

const NodeInfo* ClusterManager::Node(uint32_t node_id) const {
  if (node_id >= nodes_.size()) return nullptr;
  return &nodes_[node_id];
}

void ClusterManager::Heartbeat(uint32_t node_id, SimTime now) {
  NodeInfo* node = Node(node_id);
  if (node == nullptr) return;
  node->last_heartbeat = now;
  node->alive = true;
}

size_t ClusterManager::SweepLiveness(SimTime now) {
  size_t died = 0;
  for (NodeInfo& node : nodes_) {
    if (node.alive && now - node.last_heartbeat > dead_after_) {
      node.alive = false;
      ++died;
    }
  }
  return died;
}

void ClusterManager::MarkDead(uint32_t node_id) {
  NodeInfo* node = Node(node_id);
  if (node != nullptr) node->alive = false;
}

void ClusterManager::MarkAlive(uint32_t node_id, SimTime now) {
  NodeInfo* node = Node(node_id);
  if (node != nullptr) {
    node->alive = true;
    node->last_heartbeat = now;
  }
}

void ClusterManager::SetSlowdown(uint32_t node_id, double factor) {
  NodeInfo* node = Node(node_id);
  if (node != nullptr) node->slowdown_factor = factor;
}

std::vector<uint32_t> ClusterManager::AliveLeafNodes() const {
  std::vector<uint32_t> out;
  for (const NodeInfo& node : nodes_) {
    if (node.alive && !node.is_stem) out.push_back(node.node_id);
  }
  return out;
}

size_t ClusterManager::AliveCount() const {
  size_t count = 0;
  for (const NodeInfo& node : nodes_) {
    if (node.alive) ++count;
  }
  return count;
}

}  // namespace feisu
