#include "cluster/leaf_server.h"

#include <algorithm>
#include <set>

#include "exec/aggregate.h"
#include "exec/operators.h"
#include "expr/evaluator.h"
#include "expr/normalize.h"
#include "storage/storage_factory.h"

namespace feisu {

namespace {

/// True for an atom of the form <column> OP <literal> (the shape zone maps
/// and B-tree probes can serve); extracts the pieces.
bool MatchColumnOpLiteral(const Expr& expr, std::string* column,
                          CompareOp* op, const Value** literal) {
  if (expr.kind() != ExprKind::kComparison) return false;
  const ExprPtr& l = expr.child(0);
  const ExprPtr& r = expr.child(1);
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kLiteral) {
    return false;
  }
  *column = l->column();
  *op = expr.compare_op();
  *literal = &r->value();
  return true;
}

std::vector<std::string> ExprColumns(const ExprPtr& expr) {
  std::vector<std::string> cols;
  if (expr != nullptr) expr->CollectColumns(&cols);
  return cols;
}

/// Decodes the task's data columns, pushing `selection` (may be null: all
/// rows) down into the column decoders. When the task needs no data columns
/// (e.g. `SELECT 1 FROM t WHERE ...`), a synthetic row-id column keeps the
/// row count flowing through downstream operators — built only for the
/// selected rows, not all num_rows of the block.
Result<RecordBatch> DecodeDataBatch(const ColumnarBlock& block,
                                    const std::vector<std::string>& columns,
                                    const BitVector* selection = nullptr) {
  if (!columns.empty()) return block.DecodeBatch(columns, selection);
  ColumnVector rowid(DataType::kInt64);
  if (selection != nullptr) {
    rowid.Reserve(selection->CountOnes());
    selection->ForEachSetBit([&rowid](size_t i) {
      rowid.AppendInt64(static_cast<int64_t>(i));
    });
  } else {
    rowid.Reserve(block.num_rows());
    for (uint32_t i = 0; i < block.num_rows(); ++i) {
      rowid.AppendInt64(static_cast<int64_t>(i));
    }
  }
  std::vector<ColumnVector> cols;
  cols.push_back(std::move(rowid));
  return RecordBatch(Schema({{"__rowid", DataType::kInt64, false}}),
                     std::move(cols));
}

}  // namespace

LeafServer::LeafServer(uint32_t node_id, PathRouter* router,
                       LeafServerConfig config)
    : node_id_(node_id),
      router_(router),
      config_(config),
      index_cache_(config.index_cache) {
  if (config_.ssd_capacity_bytes > 0) {
    ssd_cache_ = std::make_unique<SsdCache>(config_.ssd_capacity_bytes,
                                            config_.ssd_policy,
                                            SsdCostModel());
  }
}

uint32_t LeafServer::PickSourceReplica(const std::string& path) const {
  std::vector<uint32_t> replicas = router_->ReplicaNodes(path);
  if (replicas.empty()) return node_id_;
  for (uint32_t r : replicas) {
    if (r == node_id_) return node_id_;  // local read: our own copy
  }
  // Remote read: fetch from the first replica whose copy is intact, the
  // way a real DFS client falls through its replica list.
  FaultInjector* faults = router_->fault_injector();
  if (faults != nullptr && faults->enabled()) {
    for (uint32_t r : replicas) {
      if (!faults->IsReplicaCorrupted(path, r)) return r;
    }
  }
  return replicas[0];
}

ResolverStats LeafServer::resolver_stats() const {
  MutexLock lock(resolver_stats_mutex_);
  return resolver_stats_;
}

void LeafServer::MergeResolverStats(const ResolverStats& stats) {
  MutexLock lock(resolver_stats_mutex_);
  resolver_stats_ += stats;
}

Result<const ColumnarBlock*> LeafServer::LoadBlock(
    const TableBlockMeta& meta) {
  {
    MutexLock lock(decoded_mutex_);
    auto it = decoded_blocks_.find(meta.path);
    if (it != decoded_blocks_.end()) return &it->second;
  }
  FEISU_ASSIGN_OR_RETURN(const std::string* payload, router_->Get(meta.path));
  FaultInjector* faults = router_->fault_injector();
  if (faults != nullptr && faults->enabled()) {
    switch (faults->OnBlockRead(meta.path, PickSourceReplica(meta.path))) {
      case FaultKind::kNone:
        break;
      case FaultKind::kIoError:
        return Status::Unavailable("injected I/O error reading " + meta.path);
      case FaultKind::kCorruption: {
        // Damage one byte of a copy and run the real deserializer so the
        // block checksum — not a simulated shortcut — detects the fault.
        std::string damaged = *payload;
        if (!damaged.empty()) damaged[damaged.size() / 2] ^= 0x40;
        Result<ColumnarBlock> bad = ColumnarBlock::Deserialize(damaged);
        if (bad.ok()) {
          return Status::Corruption("injected corruption escaped checksum: " +
                                    meta.path);
        }
        // Cached column reads of this path came from the damaged replica;
        // drop them so a later retry re-reads from storage.
        if (ssd_cache_ != nullptr) {
          ssd_cache_->InvalidatePrefix(meta.path + "#");
        }
        return bad.status();
      }
    }
  }
  FEISU_ASSIGN_OR_RETURN(ColumnarBlock block,
                         ColumnarBlock::Deserialize(*payload));
  // Decode happened outside the lock; if a concurrent task decoded the same
  // path first, emplace keeps the winner and our copy is dropped.
  MutexLock lock(decoded_mutex_);
  auto [inserted, ok] = decoded_blocks_.emplace(meta.path, std::move(block));
  return &inserted->second;
}

SimTime LeafServer::ChargeColumnRead(const ColumnarBlock& block,
                                     const TableBlockMeta& meta,
                                     const std::vector<std::string>& columns,
                                     double fraction, TaskStats* stats) {
  if (fraction < config_.min_read_fraction) {
    fraction = config_.min_read_fraction;
  }
  if (fraction > 1.0) fraction = 1.0;
  SimTime io = 0;
  auto storage = router_->Resolve(meta.path);
  for (const auto& column : columns) {
    int idx = block.schema().FieldIndex(column);
    if (idx < 0) continue;
    uint64_t bytes = static_cast<uint64_t>(
        static_cast<double>(block.ColumnByteSize(static_cast<size_t>(idx))) *
        config_.sim_data_scale * fraction);
    stats->bytes_read += bytes;
    std::string ssd_key = meta.path + "#" + column;
    if (ssd_cache_ != nullptr && ssd_cache_->Lookup(ssd_key)) {
      io += ssd_cache_->ReadCost(bytes);
      continue;
    }
    io += storage.ok() ? (*storage)->ReadCost(bytes)
                       : kSimMillisecond;  // unroutable: nominal charge
    if (ssd_cache_ != nullptr) ssd_cache_->Admit(ssd_key, bytes);
  }
  return io;
}

Result<TaskResult> LeafServer::Execute(const LeafTask& task, SimTime now) {
  // Each task resolves through its own IndexResolver (the cache behind it
  // is shared and thread-safe); the per-task stats fold into the leaf-wide
  // aggregate on every exit path via this scope guard.
  IndexResolver resolver(&index_cache_);
  struct StatsMerger {
    LeafServer* leaf;
    IndexResolver* resolver;
    ~StatsMerger() { leaf->MergeResolverStats(resolver->stats()); }
  } stats_merger{this, &resolver};

  TaskResult result;
  TaskStats& stats = result.stats;
  // Every task pays a fixed dispatch/metadata overhead regardless of how
  // much it ends up reading.
  stats.cpu_time += config_.cpu_task_fixed;
  const uint32_t num_rows = task.block.num_rows;

  std::vector<ExprPtr> conjuncts = NormalizePredicate(task.predicate);

  // --- 1. Zone-map pruning over catalog block statistics. A conjunct of
  // the form <column> OP <literal> whose min/max excludes any match lets
  // the whole block be skipped without touching data. ---
  bool zone_prunable = false;
  if (config_.enable_zone_maps && !task.block.stats.empty() &&
      !conjuncts.empty()) {
    for (const auto& conjunct : conjuncts) {
      std::string column;
      CompareOp op;
      const Value* literal = nullptr;
      if (!MatchColumnOpLiteral(*conjunct, &column, &op, &literal)) continue;
      int idx = -1;
      for (size_t i = 0; i < task.block.stats_columns.size(); ++i) {
        if (task.block.stats_columns[i] == column) {
          idx = static_cast<int>(i);
          break;
        }
      }
      if (idx < 0 || static_cast<size_t>(idx) >= task.block.stats.size()) {
        continue;
      }
      stats.cpu_time += config_.cpu_per_bitmap_word;
      if (!StatsMayMatch(op, task.block.stats[idx], *literal)) {
        zone_prunable = true;
        break;
      }
    }
  }

  auto empty_output = [&]() -> Result<TaskResult> {
    FEISU_ASSIGN_OR_RETURN(const ColumnarBlock* block, LoadBlock(task.block));
    if (task.has_aggregate) {
      // Empty partial state: an Aggregator with no consumed rows.
      FEISU_ASSIGN_OR_RETURN(
          Aggregator agg,
          Aggregator::Make(task.group_by, task.aggregates, block->schema()));
      FEISU_ASSIGN_OR_RETURN(result.batch, agg.PartialResult());
      stats.AccumulateAgg(agg.stats());
      return result;
    }
    if (config_.enable_selection_pushdown) {
      // Selective decode against an all-false selection touches no row
      // data at all; only the schema comes out.
      BitVector none(block->num_rows(), false);
      FEISU_ASSIGN_OR_RETURN(result.batch,
                             DecodeDataBatch(*block, task.columns, &none));
      return result;
    }
    FEISU_ASSIGN_OR_RETURN(RecordBatch batch,
                           DecodeDataBatch(*block, task.columns));
    result.batch = batch.Filter(BitVector(batch.num_rows(), false));
    return result;
  };

  if (zone_prunable) {
    stats.block_skipped = true;
    return empty_output();
  }

  // --- 2. Resolve conjuncts: SmartIndex -> B-tree -> evaluation. ---
  std::vector<BitVector> bitmaps;
  std::vector<ExprPtr> missing;
  std::set<std::string> charged_columns;

  for (const auto& conjunct : conjuncts) {
    if (config_.enable_smart_index) {
      ResolverStats before = resolver.stats();
      std::optional<BitVector> bits =
          resolver.Resolve(task.block.block_id, conjunct, now);
      const ResolverStats& after = resolver.stats();
      stats.index_direct_hits += after.direct_hits - before.direct_hits;
      stats.index_composed_hits +=
          after.composed_hits - before.composed_hits;
      stats.index_misses += after.misses - before.misses;
      // RLE-domain combines charge per compressed token, word-array
      // inflation per word — the token charge is what makes conjunct
      // combination scale with run count instead of row count.
      stats.cpu_time += static_cast<SimTime>(
          static_cast<double>((after.bitmap_words - before.bitmap_words) +
                              (after.rle_tokens - before.rle_tokens)) *
          config_.sim_data_scale *
          static_cast<double>(config_.cpu_per_bitmap_word));
      if (bits.has_value()) {
        bitmaps.push_back(std::move(*bits));
        continue;
      }
    }
    if (config_.enable_btree_index) {
      std::string column;
      CompareOp op;
      const Value* literal = nullptr;
      if (MatchColumnOpLiteral(*conjunct, &column, &op, &literal)) {
        const ColumnBTreeIndex* index =
            btree_manager_.Find(task.block.block_id, column);
        if (index == nullptr) {
          // Build once: read the column and insert all rows.
          FEISU_ASSIGN_OR_RETURN(const ColumnarBlock* block,
                                 LoadBlock(task.block));
          stats.io_time +=
              ChargeColumnRead(*block, task.block, {column}, 1.0, &stats);
          charged_columns.insert(column);
          FEISU_ASSIGN_OR_RETURN(ColumnVector values,
                                 block->DecodeColumnByName(column));
          stats.cpu_time += RowCost(values.size(),
                                    config_.cpu_per_row_btree_build);
          index = btree_manager_.BuildAndStore(task.block.block_id, column,
                                               values);
          ++stats.btree_builds;
        }
        std::optional<BitVector> bits = index->Query(op, *literal);
        if (bits.has_value()) {
          ++stats.btree_probes;
          stats.cpu_time += config_.cpu_per_btree_probe;
          stats.cpu_time += RowCost(bits->CountOnes(),
                                    config_.cpu_per_row_btree_emit);
          bitmaps.push_back(std::move(*bits));
          continue;
        }
      }
    }
    missing.push_back(conjunct);
  }

  // --- 3. Evaluate unresolved conjuncts by scanning their columns. ---
  if (!missing.empty()) {
    std::set<std::string> needed;
    for (const auto& conjunct : missing) {
      for (const auto& col : ExprColumns(conjunct)) needed.insert(col);
    }
    std::vector<std::string> to_charge;
    for (const auto& col : needed) {
      if (charged_columns.insert(col).second) to_charge.push_back(col);
    }
    FEISU_ASSIGN_OR_RETURN(const ColumnarBlock* block, LoadBlock(task.block));
    // The columnar-I/O charge covers every scanned conjunct's columns
    // whether the compressed-domain kernels answer them or not: the leaf
    // still reads those bytes off storage, it just evaluates them without
    // decoding. Simulated costs stay identical to the decode path by
    // design — the compressed-domain win is host wall-clock, and keeping
    // the timing model unchanged keeps every seed-swept chaos/straggler
    // schedule byte-stable across the enable_compressed_eval ablation.
    stats.io_time +=
        ChargeColumnRead(*block, task.block, to_charge, 1.0, &stats);
    std::vector<std::optional<TriStateVector>> encoded(missing.size());
    if (config_.enable_compressed_eval) {
      for (size_t m = 0; m < missing.size(); ++m) {
        TriStateVector tri;
        FEISU_ASSIGN_OR_RETURN(
            bool handled,
            TryEvaluatePredicateEncoded(*missing[m], *block, &tri));
        if (handled) encoded[m] = std::move(tri);
      }
    }
    // Decode only what the fallback conjuncts actually reference; when
    // every conjunct was answered in the compressed domain, nothing
    // materializes at all.
    std::optional<RecordBatch> pred_batch;
    {
      std::set<std::string> decode_cols;
      bool any_fallback = false;
      for (size_t m = 0; m < missing.size(); ++m) {
        if (encoded[m].has_value()) continue;
        any_fallback = true;
        for (const auto& col : ExprColumns(missing[m])) {
          decode_cols.insert(col);
        }
      }
      if (any_fallback) {
        FEISU_ASSIGN_OR_RETURN(
            RecordBatch batch,
            block->DecodeBatch(std::vector<std::string>(decode_cols.begin(),
                                                        decode_cols.end())));
        pred_batch = std::move(batch);
      }
    }
    for (size_t m = 0; m < missing.size(); ++m) {
      const ExprPtr& conjunct = missing[m];
      TriStateVector tri;
      if (encoded[m].has_value()) {
        tri = std::move(*encoded[m]);
        stats.values_skipped_encoded += num_rows;
      } else {
        FEISU_ASSIGN_OR_RETURN(tri,
                               EvaluatePredicate3VL(*conjunct, *pred_batch));
      }
      stats.rows_scanned += num_rows;
      stats.cpu_time += RowCost(num_rows, config_.cpu_per_row_predicate);
      // Take our own copy of the TRUE bitmap before touching the cache:
      // IndexCache::Insert is a mutating call, and any pointer previously
      // obtained from the cache (Lookup/Peek) is invalidated by it. Pushing
      // first keeps this code correct even if the bitmap ever starts
      // flowing through a cache pointer instead of a local.
      bitmaps.push_back(tri.is_true);
      if (config_.enable_smart_index) {
        index_cache_.Insert({task.block.block_id, PredicateKey(conjunct)},
                            tri.is_true, now);
        // Materialize the negation's bitmap under the negated predicate's
        // key (paper Fig. 7: `!(c2 > 5)` reuses the work done for
        // `c2 <= 5`). Under three-valued logic the negation's TRUE set is
        // the original's FALSE set — NOT of the TRUE bitmap would wrongly
        // include rows with NULL operands. Only atoms get duals; a
        // disjunction's negation never matches a normalized lookup key.
        if (conjunct->kind() == ExprKind::kComparison ||
            (conjunct->kind() == ExprKind::kLogical &&
             conjunct->logical_op() == LogicalOp::kNot)) {
          ExprPtr dual = CanonicalizeAtoms(PushDownNot(Expr::Not(conjunct)));
          index_cache_.Insert({task.block.block_id, PredicateKey(dual)},
                              tri.is_false, now);
        }
      }
    }
  }

  // --- 4. Combine into the selection vector. ---
  BitVector selection(num_rows, true);
  for (const auto& bits : bitmaps) {
    selection.And(bits);
    stats.cpu_time += static_cast<SimTime>(
        static_cast<double>((num_rows + 63) / 64) * config_.sim_data_scale *
        static_cast<double>(config_.cpu_per_bitmap_word));
  }
  stats.rows_matched = selection.CountOnes();

  if (stats.rows_matched == 0 && !conjuncts.empty()) {
    return empty_output();
  }

  // --- 5. Produce output: partial aggregation or filtered projection. ---
  // Pure COUNT(*) with no grouping needs no data columns at all — the
  // paper's Fig. 7 case where everything happens in memory.
  bool pure_count_star =
      task.has_aggregate && task.group_by.empty() &&
      std::all_of(task.aggregates.begin(), task.aggregates.end(),
                  [](const AggSpec& s) {
                    return s.func == AggFunc::kCount && s.arg == nullptr;
                  });
  if (pure_count_star) {
    FEISU_ASSIGN_OR_RETURN(const ColumnarBlock* block, LoadBlock(task.block));
    FEISU_ASSIGN_OR_RETURN(
        Aggregator agg,
        Aggregator::Make(task.group_by, task.aggregates, block->schema()));
    FEISU_RETURN_IF_ERROR(agg.ConsumeCount(stats.rows_matched));
    FEISU_ASSIGN_OR_RETURN(result.batch, agg.PartialResult());
    stats.AccumulateAgg(agg.stats());
    return result;
  }

  std::vector<std::string> to_charge;
  for (const auto& col : task.columns) {
    if (charged_columns.insert(col).second) to_charge.push_back(col);
  }
  FEISU_ASSIGN_OR_RETURN(const ColumnarBlock* block, LoadBlock(task.block));
  // Late materialization: only the selected fraction of each data column
  // is actually fetched.
  double selectivity =
      conjuncts.empty()
          ? 1.0
          : static_cast<double>(stats.rows_matched) /
                static_cast<double>(num_rows == 0 ? 1 : num_rows);
  stats.io_time +=
      ChargeColumnRead(*block, task.block, to_charge, selectivity, &stats);
  // Selection pushdown: projection columns decode *through* the combined
  // predicate bitmap, so only matching rows ever materialize. The fallback
  // is the pre-pushdown path — full decode, then copy the survivors.
  const BitVector* decode_selection =
      !conjuncts.empty() && config_.enable_selection_pushdown ? &selection
                                                             : nullptr;
  FEISU_ASSIGN_OR_RETURN(
      RecordBatch data,
      DecodeDataBatch(*block, task.columns, decode_selection));
  stats.values_decoded +=
      static_cast<uint64_t>(data.num_rows()) * data.num_columns();
  RecordBatch filtered = conjuncts.empty() || decode_selection != nullptr
                             ? std::move(data)
                             : data.Filter(selection);
  stats.cpu_time +=
      RowCost(filtered.num_rows(), config_.cpu_per_row_materialize);

  if (!task.has_aggregate && task.limit >= 0 &&
      filtered.num_rows() > static_cast<size_t>(task.limit)) {
    // Distributed LIMIT: this leaf's contribution is capped; the master
    // trims the union to the global limit. With an order hint the cap is
    // the local top-k under that ordering (bounded heap).
    if (!task.order_by.empty()) {
      FEISU_ASSIGN_OR_RETURN(filtered,
                             TopNBatch(filtered, task.order_by, task.limit));
      stats.cpu_time +=
          RowCost(filtered.num_rows(), config_.cpu_per_row_materialize);
    } else {
      BitVector head(filtered.num_rows(), false);
      for (int64_t i = 0; i < task.limit; ++i) {
        head.Set(static_cast<size_t>(i), true);
      }
      filtered = filtered.Filter(head);
    }
  }

  if (task.has_aggregate) {
    FEISU_ASSIGN_OR_RETURN(
        Aggregator agg,
        Aggregator::Make(task.group_by, task.aggregates, block->schema()));
    // Code-domain group-by: a single dictionary-encoded group key feeds the
    // aggregator raw uint32 codes (through the same selection the batch
    // was filtered by), so no string is hashed or compared per row. Codes
    // stay leaf-local — the partial batch emitted below carries the
    // materialized strings, byte-identical to the decode path.
    bool dict_keyed = false;
    if (config_.enable_compressed_eval && task.group_by.size() == 1 &&
        task.group_by[0]->kind() == ExprKind::kColumnRef) {
      const Expr& key = *task.group_by[0];
      int idx = -1;
      if (!key.table().empty()) {
        idx = block->schema().FieldIndex(key.QualifiedName());
      }
      if (idx < 0) idx = block->schema().FieldIndex(key.column());
      if (idx >= 0 && block->ColumnEncoding(static_cast<size_t>(idx)) ==
                          Encoding::kDict) {
        DictColumnCodes codes;
        FEISU_ASSIGN_OR_RETURN(
            bool ok,
            TryExtractDictCodes(
                block->encoded_column(static_cast<size_t>(idx)),
                conjuncts.empty() ? nullptr : &selection, &codes));
        if (ok && codes.codes.size() == filtered.num_rows()) {
          FEISU_RETURN_IF_ERROR(agg.ConsumeDictKeyed(filtered, codes));
          dict_keyed = true;
        }
      }
    }
    if (!dict_keyed) {
      FEISU_RETURN_IF_ERROR(agg.Consume(filtered));
    }
    stats.cpu_time +=
        RowCost(filtered.num_rows(), config_.cpu_per_row_aggregate);
    FEISU_ASSIGN_OR_RETURN(result.batch, agg.PartialResult());
    stats.AccumulateAgg(agg.stats());
  } else {
    result.batch = std::move(filtered);
  }
  return result;
}

}  // namespace feisu
