#include "cluster/master.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <set>

#include "cluster/timeout_manager.h"
#include "exec/operators.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "sql/parser.h"

namespace feisu {

namespace {

/// Collects the alias of the single scan under a subtree (for join column
/// qualification); empty when the subtree has several scans.
std::string SubtreeAlias(const PlanPtr& node) {
  if (node->kind == PlanKind::kScan) {
    return node->table_alias.empty() ? node->table : node->table_alias;
  }
  if (node->children.size() == 1) return SubtreeAlias(node->children[0]);
  return "";
}

/// Task failures worth a retry on another replica; anything else (parse,
/// planning, schema errors...) fails the whole job immediately.
bool IsRetryableTaskFailure(const Status& status) {
  return status.code() == StatusCode::kCorruption ||
         status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kTimedOut;
}

}  // namespace

/// One block's leaf task plus the outcome slot the parallel path fills:
/// pool workers write only their own slot; the job coordinator's commit
/// phase folds the slots into scheduler/stats state in block order.
struct MasterServer::PendingLeafTask {
  LeafTask task;
  std::string signature;
  std::vector<uint32_t> replicas;
  TaskResult result;
  Placement placement;
  SimTime duration = 0;
  bool reused = false;
  // Parallel-phase outcome (written by a pool worker).
  Status exec_status;          ///< terminal (non-retryable) failure, if any
  bool completed = false;
  int retries = 0;             ///< failed attempts that were retried
  SimTime backoff_total = 0;   ///< accumulated retry backoff
  uint64_t corrupt_reads = 0;
  uint64_t io_errors = 0;
};

/// One admitted submission parked in the admission queue until a
/// coordinator pops it. Owned by pending_jobs_ (guarded by
/// admission_mutex_) until popped, then exclusively by the popping
/// coordinator.
struct MasterServer::PendingJob {
  SelectStatement stmt;
  std::string user;
  std::string domain;
  int domain_job_limit = 0;
  SimTime now = 0;
  uint64_t enqueue_ns = 0;     ///< host clock at submission (0 = no clock)
  double queue_wait_ms = 0;    ///< filled when popped
  std::promise<Result<QueryResult>> promise;
};

std::string FormatQueryStats(const QueryStats& stats) {
  std::ostringstream os;
  os << "response time: "
     << static_cast<double>(stats.response_time) / kSimMillisecond
     << " ms (leaves "
     << static_cast<double>(stats.leaf_finish_time) / kSimMillisecond
     << " ms, stems "
     << static_cast<double>(stats.stem_finish_time) / kSimMillisecond
     << " ms)\n";
  os << "tasks: " << stats.total_tasks << " total, " << stats.reused_tasks
     << " reused, " << stats.skipped_blocks << " zone-map skipped, "
     << stats.abandoned_tasks << " abandoned ("
     << stats.tasks_terminated_early << " by deadline), "
     << stats.remote_tasks << " remote\n";
  os << "speculation: " << stats.straggler_tasks << " stragglers, "
     << stats.backup_tasks_launched << " backups launched, "
     << stats.backup_tasks_won << " won\n";
  os << "leaf I/O: " << stats.leaf.bytes_read << " bytes read, "
     << stats.leaf.rows_scanned << " rows scanned, " << stats.leaf.rows_matched
     << " matched, " << stats.leaf.values_decoded << " values decoded, "
     << stats.leaf.values_skipped_encoded
     << " values filtered without decode\n";
  os << "aggregation: " << stats.leaf.agg_groups << " groups ("
     << stats.leaf.agg_code_domain_groups << " via dict codes), "
     << stats.leaf.agg_hash_probes << " hash probes, "
     << stats.leaf.agg_rehashes << " rehashes, "
     << stats.leaf.agg_null_fast_batches << " null-fast-path batches\n";
  os << "SmartIndex: " << stats.leaf.index_direct_hits << " direct + "
     << stats.leaf.index_composed_hits << " composed hits, "
     << stats.leaf.index_misses << " misses\n";
  os << "shuffle: " << stats.bytes_shuffled << " bytes ("
     << stats.spilled_results << " results spilled, " << stats.spilled_bytes
     << " bytes via global storage)\n";
  os << "recovery: " << stats.task_retries << " retries, "
     << stats.corrupt_blocks << " corrupt reads, " << stats.io_errors
     << " I/O errors, " << stats.failed_nodes << " nodes failed, "
     << stats.partitioned_tasks << " partition-hit tasks, "
     << stats.lost_blocks << " blocks lost, " << stats.stem_failures
     << " stem deaths (" << stats.stem_retries
     << " merges reassigned); processed "
     << stats.processed_ratio * 100.0 << "%"
     << (stats.partial ? " (PARTIAL result)" : "") << "\n";
  os << "admission: " << stats.queue_wait_ms << " ms queue wait; "
     << stats.jobs_admitted << " jobs admitted, " << stats.jobs_rejected
     << " rejected, " << stats.jobs_queued << " queued; "
     << stats.tenant_quota_hits << " tenant quota hits\n";
  os << "plan:\n" << stats.plan_text;
  return os.str();
}

MasterServer::MasterServer(Catalog* catalog, PathRouter* router,
                           ClusterManager* cluster, SsoAuthenticator* sso,
                           std::vector<std::unique_ptr<LeafServer>>* leaves,
                           MasterConfig config)
    : catalog_(catalog),
      router_(router),
      cluster_(cluster),
      leaves_(leaves),
      config_(config),
      job_manager_(config.task_result_cache_capacity),
      entry_guard_(sso, catalog, config.daily_query_quota),
      scheduler_(cluster, router, config.network, config.schedule,
                 config.seed) {
  if (config_.leaf_parallelism > 1 || config_.max_concurrent_jobs > 1) {
    pool_ = std::make_unique<ThreadPool>(
        std::max<size_t>(config_.leaf_parallelism, 1));
  }
  entry_guard_.set_default_tenant_quota(config_.default_tenant_quota);
  for (const auto& [user, quota] : config_.tenant_quotas) {
    entry_guard_.SetTenantQuota(user, quota);
  }
  job_manager_.set_starvation_boost_interval(
      config_.starvation_boost_interval);
  if (config_.max_concurrent_jobs > 1) {
    scheduler_.SetLeafPoolWidth(pool_->num_threads());
    job_pool_ = std::make_unique<ThreadPool>(config_.max_concurrent_jobs);
  }
}

MasterServer::~MasterServer() {
  // Coordinators must finish before the leaf pool they submit into dies;
  // member order (job_pool_ declared last) already guarantees it, the
  // explicit destructor only anchors PendingJob's completeness.
  job_pool_.reset();
}

Result<SelectStatement> MasterServer::AdmitStatement(const std::string& user,
                                                     const std::string& sql,
                                                     SimTime now,
                                                     std::string* domain,
                                                     int* domain_job_limit) {
  FEISU_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(sql));

  // Admission: authenticate once, verify ACL on every referenced table.
  std::vector<std::string> tables;
  for (const auto& ref : stmt.from) tables.push_back(ref.name);
  for (const auto& join : stmt.joins) tables.push_back(join.table.name);
  if (tables.empty()) return Status::InvalidArgument("no tables referenced");
  JobCredential credential;
  for (size_t i = 0; i < tables.size(); ++i) {
    FEISU_ASSIGN_OR_RETURN(JobCredential c,
                           entry_guard_.Admit(user, tables[i], now));
    if (i == 0) credential = c;
  }
  // Cross-domain authorization: the job credential must cover the storage
  // domain of every block it will read. The first table's storage system
  // also sets the job-level resource agreement the admission queue
  // enforces.
  bool first_table = true;
  for (const auto& table : tables) {
    FEISU_ASSIGN_OR_RETURN(const TableMeta* meta, catalog_->Get(table));
    for (const auto& block : meta->blocks()) {
      auto storage = router_->Resolve(block.path);
      if (storage.ok()) {
        if (!entry_guard_.AuthorizeDomain(credential, (*storage)->domain())) {
          return Status::PermissionDenied("user " + user + " lacks domain " +
                                          (*storage)->domain());
        }
        if (first_table) {
          *domain = (*storage)->domain();
          *domain_job_limit = (*storage)->agreement().max_concurrent_jobs;
        }
      }
      break;  // all blocks of a table share one storage system
    }
    first_table = false;
  }
  return stmt;
}

Result<QueryResult> MasterServer::ExecuteQuery(const std::string& user,
                                               const std::string& sql,
                                               SimTime now) {
  if (job_pool_ == nullptr) {
    // Serial master: everything inline on the caller's thread, exactly the
    // classic single-query path.
    std::string domain;
    int domain_job_limit = 0;
    FEISU_ASSIGN_OR_RETURN(
        SelectStatement stmt,
        AdmitStatement(user, sql, now, &domain, &domain_job_limit));
    entry_guard_.CountImmediateJob();
    int64_t job_id =
        job_manager_.CreateJob(user, sql, now, config_.default_priority);
    JobContext ctx;
    ctx.job_id = job_id;
    ctx.tenant = user;
    return RunPlannedQuery(stmt, ctx, now);
  }
  FEISU_ASSIGN_OR_RETURN(int64_t job_id, SubmitQuery(user, sql, now));
  return WaitQuery(job_id);
}

Result<int64_t> MasterServer::SubmitQuery(const std::string& user,
                                          const std::string& sql, SimTime now,
                                          const SubmitOptions& options) {
  if (job_pool_ == nullptr) {
    return Status::InvalidArgument(
        "async submission requires max_concurrent_jobs > 1");
  }
  std::string domain;
  int domain_job_limit = 0;
  FEISU_ASSIGN_OR_RETURN(
      SelectStatement stmt,
      AdmitStatement(user, sql, now, &domain, &domain_job_limit));
  int priority =
      options.priority >= 0 ? options.priority : config_.default_priority;
  int64_t job_id = 0;
  {
    MutexLock lock(admission_mutex_);
    // Apply chaos node events admission-serialized so every coordinator
    // sees a consistent cluster view; coordinators themselves skip this
    // (NodeInfo's non-atomic control fields are single-writer).
    if (FaultInjector* faults = router_->fault_injector()) {
      for (const NodeFaultEvent& event : faults->TakeDueNodeEvents(now)) {
        if (event.crash) {
          cluster_->MarkDead(event.node_id);
        } else {
          cluster_->MarkAlive(event.node_id, now);
        }
      }
    }
    // Backpressure + tenant backlog quotas; a bounce never creates a job.
    FEISU_RETURN_IF_ERROR(
        entry_guard_.EnqueueJob(user, config_.admission_queue_capacity));
    job_id = job_manager_.CreateJob(user, sql, now, priority);
    job_manager_.SetAdmissionInfo(job_id, domain, domain_job_limit);
    PendingJob pending;
    pending.stmt = std::move(stmt);
    pending.user = user;
    pending.domain = domain;
    pending.domain_job_limit = domain_job_limit;
    pending.now = now;
    pending.enqueue_ns = config_.host_clock_ns ? config_.host_clock_ns() : 0;
    job_futures_[job_id] = pending.promise.get_future();
    pending_jobs_.emplace(job_id, std::move(pending));
    job_manager_.EnqueueJob(job_id);
  }
  // One drain pass per submission guarantees a coordinator looks at the
  // queue; completing coordinators re-loop, so quota-deferred jobs are
  // picked up when capacity frees without any further wakeup.
  job_pool_->Submit([this]() { DrainJobs(); });
  return job_id;
}

Result<QueryResult> MasterServer::WaitQuery(int64_t job_id) {
  std::future<Result<QueryResult>> future;
  {
    MutexLock lock(admission_mutex_);
    auto it = job_futures_.find(job_id);
    if (it == job_futures_.end()) {
      return Status::NotFound("no waitable job " + std::to_string(job_id));
    }
    future = std::move(it->second);
    job_futures_.erase(it);
  }
  return future.get();
}

void MasterServer::DrainJobs() {
  for (;;) {
    int64_t job_id = 0;
    PendingJob pending;
    {
      MutexLock lock(admission_mutex_);
      // Highest band first, FIFO within, aged every Nth pop; eligibility
      // = tenant concurrency quota + per-storage job agreement. The
      // predicate only consults the entry guard (admission -> job-manager
      // -> entry-guard lock order).
      std::optional<int64_t> popped =
          job_manager_.PopRunnable([this](const JobInfo& job) {
            return entry_guard_.MayStartJob(job.user, job.domain,
                                            job.domain_job_limit);
          });
      if (!popped.has_value()) return;
      job_id = *popped;
      auto it = pending_jobs_.find(job_id);
      if (it == pending_jobs_.end()) continue;
      pending = std::move(it->second);
      pending_jobs_.erase(it);
      entry_guard_.StartJob(pending.user, pending.domain);
      if (config_.host_clock_ns && pending.enqueue_ns > 0) {
        uint64_t now_ns = config_.host_clock_ns();
        pending.queue_wait_ms =
            static_cast<double>(now_ns - pending.enqueue_ns) / 1e6;
      }
      job_manager_.SetQueueWait(job_id, pending.queue_wait_ms);
    }
    RunAdmittedJob(job_id, std::move(pending));
    // Finishing this job may have freed tenant/storage quota: loop and
    // pop the next runnable job instead of relying on a fresh submission.
  }
}

void MasterServer::RunAdmittedJob(int64_t job_id, PendingJob&& pending) {
  std::optional<JobInfo> info = job_manager_.Find(job_id);
  int priority =
      info.has_value() ? info->priority : config_.default_priority;
  // Fair leaf sharing: weight = priority + 1, so a band-2 job may keep
  // 3x the outstanding leaf tasks of a band-0 one.
  scheduler_.RegisterJobShare(job_id, priority + 1);
  SlotLedger ledger = scheduler_.MakeJobLedger(job_id);
  JobContext ctx;
  ctx.job_id = job_id;
  ctx.ledger = &ledger;
  ctx.concurrent = true;
  ctx.tenant = pending.user;
  ctx.queue_wait_ms = pending.queue_wait_ms;
  Result<QueryResult> result = RunPlannedQuery(pending.stmt, ctx, pending.now);
  scheduler_.UnregisterJobShare(job_id);
  entry_guard_.FinishJob(pending.user, pending.domain);
  pending.promise.set_value(std::move(result));
}

Result<QueryResult> MasterServer::RunPlannedQuery(const SelectStatement& stmt,
                                                  const JobContext& ctx,
                                                  SimTime now) {
  const int64_t job_id = ctx.job_id;
  job_manager_.SetState(job_id, JobState::kRunning, now);

  // Apply any chaos-schedule node events already due: a node that crashed
  // before this query must not receive placements even if the maintenance
  // loop has not run since. Concurrent coordinators skip this — SubmitQuery
  // already applied due events under the admission mutex (NodeInfo's
  // non-atomic control fields are single-writer).
  if (!ctx.concurrent) {
    if (FaultInjector* faults = router_->fault_injector()) {
      for (const NodeFaultEvent& event : faults->TakeDueNodeEvents(now)) {
        if (event.crash) {
          cluster_->MarkDead(event.node_id);
        } else {
          cluster_->MarkAlive(event.node_id, now);
        }
      }
    }
  }

  FEISU_ASSIGN_OR_RETURN(PlanPtr plan, PlanQuery(stmt, *catalog_));
  // The standard rule pipeline, with per-rule ablation toggles.
  plan = FoldConstants(std::move(plan));
  if (config_.enable_predicate_pushdown) {
    plan = PushDownPredicates(std::move(plan));
  }
  if (config_.enable_limit_pushdown) {
    plan = PushDownLimits(std::move(plan), *catalog_);
  }
  plan = ReorderJoins(std::move(plan), *catalog_);
  plan = PruneColumns(std::move(plan), *catalog_);

  QueryStats stats;
  stats.plan_text = plan->ToString();

  Result<Staged> staged = ExecutePlanNode(plan, ctx, now, &stats);
  if (!staged.ok()) {
    job_manager_.SetState(job_id, JobState::kFailed, now,
                          staged.status().ToString());
    return staged.status();
  }
  // Recovery accounting: the fraction of tasks whose results actually
  // contribute. Abandoned (early termination) and lost (no healthy
  // replica) tasks both reduce it; the report never claims completeness
  // it does not have.
  stats.processed_ratio =
      stats.total_tasks == 0
          ? 1.0
          : 1.0 - static_cast<double>(stats.abandoned_tasks +
                                      stats.lost_blocks) /
                      static_cast<double>(stats.total_tasks);
  stats.partial = stats.processed_ratio < 1.0;
  JobRecoveryRecord record;
  record.task_retries = stats.task_retries;
  record.corrupt_blocks = stats.corrupt_blocks;
  record.failed_nodes = stats.failed_nodes;
  record.lost_blocks = stats.lost_blocks;
  record.backup_tasks_launched = stats.backup_tasks_launched;
  record.backup_tasks_won = stats.backup_tasks_won;
  record.tasks_terminated_early = stats.tasks_terminated_early;
  record.partitioned_tasks = stats.partitioned_tasks;
  record.stem_retries = stats.stem_retries;
  record.processed_ratio = stats.processed_ratio;
  job_manager_.RecordRecovery(job_id, record);
  stats.response_time = staged->finish_time - now;
  job_manager_.SetState(job_id, JobState::kFinished, staged->finish_time);

  // Admission observability: the master-lifetime counters plus this job's
  // own queue wait and its tenant's quota hits.
  stats.queue_wait_ms = ctx.queue_wait_ms;
  AdmissionSnapshot admission = entry_guard_.admission_snapshot();
  stats.jobs_admitted = admission.jobs_admitted;
  stats.jobs_rejected = admission.jobs_rejected;
  stats.jobs_queued = admission.jobs_queued;
  auto hits = admission.tenant_quota_hits.find(ctx.tenant);
  stats.tenant_quota_hits =
      hits != admission.tenant_quota_hits.end() ? hits->second : 0;

  QueryResult result;
  result.batch = std::move(staged->batch);
  result.stats = std::move(stats);
  return result;
}

Result<MasterServer::Staged> MasterServer::ExecutePlanNode(
    const PlanPtr& node, const JobContext& ctx, SimTime now,
    QueryStats* stats) {
  switch (node->kind) {
    case PlanKind::kScan:
      return RunDistributedScan(*node, nullptr, ctx, now, stats);

    case PlanKind::kAggregate:
      if (node->children[0]->kind == PlanKind::kScan) {
        return RunDistributedScan(*node->children[0], node.get(), ctx,
                                  now, stats);
      } else {
        FEISU_ASSIGN_OR_RETURN(
            Staged input,
            ExecutePlanNode(node->children[0], ctx, now, stats));
        FEISU_ASSIGN_OR_RETURN(
            Aggregator agg,
            Aggregator::Make(node->group_by, node->aggregates,
                             input.batch.schema()));
        FEISU_RETURN_IF_ERROR(agg.Consume(input.batch));
        FEISU_ASSIGN_OR_RETURN(RecordBatch out, agg.FinalResult());
        input.finish_time += ChargeMasterRows(input.batch.num_rows());
        return Staged{std::move(out), input.finish_time};
      }

    case PlanKind::kFilter: {
      FEISU_ASSIGN_OR_RETURN(
          Staged input, ExecutePlanNode(node->children[0], ctx, now,
                                        stats));
      FEISU_ASSIGN_OR_RETURN(RecordBatch out,
                             FilterBatch(input.batch, node->predicate));
      input.finish_time += ChargeMasterRows(input.batch.num_rows());
      return Staged{std::move(out), input.finish_time};
    }

    case PlanKind::kProject: {
      FEISU_ASSIGN_OR_RETURN(
          Staged input, ExecutePlanNode(node->children[0], ctx, now,
                                        stats));
      FEISU_ASSIGN_OR_RETURN(RecordBatch out,
                             ProjectBatch(input.batch, node->projections));
      input.finish_time += ChargeMasterRows(input.batch.num_rows());
      return Staged{std::move(out), input.finish_time};
    }

    case PlanKind::kSort: {
      FEISU_ASSIGN_OR_RETURN(
          Staged input, ExecutePlanNode(node->children[0], ctx, now,
                                        stats));
      FEISU_ASSIGN_OR_RETURN(RecordBatch out,
                             SortBatch(input.batch, node->order_by));
      input.finish_time += ChargeMasterRows(input.batch.num_rows() * 2);
      return Staged{std::move(out), input.finish_time};
    }

    case PlanKind::kLimit: {
      // Fuse Limit(Sort(x)) into a bounded-heap TopN: O(n log k) and no
      // full materialized ordering.
      if (node->children[0]->kind == PlanKind::kSort && node->limit >= 0) {
        const PlanPtr& sort = node->children[0];
        FEISU_ASSIGN_OR_RETURN(
            Staged input,
            ExecutePlanNode(sort->children[0], ctx, now, stats));
        FEISU_ASSIGN_OR_RETURN(
            RecordBatch out,
            TopNBatch(input.batch, sort->order_by, node->limit));
        input.finish_time += ChargeMasterRows(input.batch.num_rows());
        return Staged{std::move(out), input.finish_time};
      }
      FEISU_ASSIGN_OR_RETURN(
          Staged input, ExecutePlanNode(node->children[0], ctx, now,
                                        stats));
      RecordBatch out = LimitBatch(input.batch, node->limit);
      return Staged{std::move(out), input.finish_time};
    }

    case PlanKind::kJoin: {
      FEISU_ASSIGN_OR_RETURN(
          Staged left, ExecutePlanNode(node->children[0], ctx, now,
                                       stats));
      FEISU_ASSIGN_OR_RETURN(
          Staged right, ExecutePlanNode(node->children[1], ctx, now,
                                        stats));
      HashJoinOptions options;
      options.type = node->join_type;
      options.condition = node->join_condition;
      options.left_prefix = SubtreeAlias(node->children[0]);
      options.right_prefix = SubtreeAlias(node->children[1]);
      FEISU_ASSIGN_OR_RETURN(RecordBatch out,
                             HashJoinBatches(left.batch, right.batch,
                                             options));
      SimTime finish = std::max(left.finish_time, right.finish_time);
      finish += ChargeMasterRows(left.batch.num_rows() +
                                 right.batch.num_rows() + out.num_rows());
      return Staged{std::move(out), finish};
    }
  }
  return Status::Internal("unknown plan node");
}

Result<MasterServer::Staged> MasterServer::RunDistributedScan(
    const PlanNode& scan, const PlanNode* agg, const JobContext& ctx,
    SimTime now, QueryStats* stats) {
  FEISU_ASSIGN_OR_RETURN(const TableMeta* meta, catalog_->Get(scan.table));
  const std::vector<TableBlockMeta>& blocks = meta->blocks();

  // Column set: scan.columns already pruned by the optimizer; when the
  // aggregation is pushed down, restrict further to group keys + agg args.
  std::vector<std::string> columns = scan.columns;
  bool has_aggregate = agg != nullptr;
  std::vector<ExprPtr> group_by;
  std::vector<AggSpec> aggregates;
  if (has_aggregate) {
    group_by = agg->group_by;
    aggregates = agg->aggregates;
    std::set<std::string> needed;
    for (const auto& g : group_by) {
      std::vector<std::string> cols;
      g->CollectColumns(&cols);
      needed.insert(cols.begin(), cols.end());
    }
    for (const auto& spec : aggregates) {
      if (spec.arg != nullptr) {
        std::vector<std::string> cols;
        spec.arg->CollectColumns(&cols);
        needed.insert(cols.begin(), cols.end());
      }
    }
    columns.assign(needed.begin(), needed.end());
  }

  // Storage agreement of the system holding this table's blocks.
  int max_tasks_per_node = 4;
  if (!blocks.empty()) {
    auto storage = router_->Resolve(blocks[0].path);
    if (storage.ok()) {
      max_tasks_per_node = (*storage)->agreement().max_concurrent_tasks;
    }
  }

  // --- Create, reuse, place and execute leaf tasks. ---
  std::vector<PendingLeafTask> slots;
  slots.reserve(blocks.size());
  int64_t task_id = 0;
  for (const auto& block : blocks) {
    PendingLeafTask p;
    p.task.job_id = ctx.job_id;
    p.task.task_id = task_id++;
    p.task.table = scan.table;
    p.task.block = block;
    p.task.columns = columns;
    p.task.predicate = scan.scan_predicate;
    p.task.has_aggregate = has_aggregate;
    p.task.group_by = group_by;
    p.task.aggregates = aggregates;
    if (!has_aggregate) {
      p.task.limit = scan.limit_hint;
      p.task.order_by = scan.order_hint;
    }
    ++stats->total_tasks;

    p.replicas = router_->ReplicaNodes(block.path);
    p.signature = p.task.Signature();
    if (config_.enable_task_result_reuse &&
        job_manager_.TryReuse(p.signature, &p.result)) {
      p.reused = true;
      ++stats->reused_tasks;
      p.placement.start_time = now;
      p.placement.finish_time = now + config_.network.ControlRoundTrip();
    }
    slots.push_back(std::move(p));
  }

  // Parallel leaf path: fan the non-reused sub-plans across the pool.
  // Host-level concurrency only — every worker computes its slot's result
  // and outcome flags; all scheduler bookings, SimTime accounting and
  // stats updates happen afterwards, on this job's coordinator thread and
  // in block order, so the commit sequence matches what the sequential
  // path produces. Concurrent jobs go through the fair-share gate: each
  // task holds one of the job's leaf slots, capping any job's outstanding
  // leaf tasks at its weighted share of the pool.
  const bool gated = ctx.concurrent && pool_ != nullptr;
  const bool parallel = !gated && pool_ != nullptr;
  if (parallel) {
    pool_->ParallelFor(slots.size(), [&](size_t i) {
      if (!slots[i].reused) ExecuteLeafTaskParallel(&slots[i], now);
    });
  } else if (gated) {
    std::vector<std::future<void>> outstanding;
    outstanding.reserve(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].reused) continue;
      scheduler_.AcquireLeafSlot(ctx.job_id);
      PendingLeafTask* slot = &slots[i];
      outstanding.push_back(pool_->Submit([this, slot, now, &ctx]() {
        ExecuteLeafTaskParallel(slot, now);
        scheduler_.ReleaseLeafSlot(ctx.job_id);
      }));
    }
    for (std::future<void>& f : outstanding) f.get();
  }

  std::vector<PendingLeafTask> pending;
  pending.reserve(slots.size());
  FaultInjector* faults = router_->fault_injector();
  for (PendingLeafTask& p : slots) {
    if (p.reused) {
      pending.push_back(std::move(p));
      continue;
    }
    if (!parallel && !gated) {
      // --- Failure-driven recovery: place, execute, and on a retryable
      // failure (checksum corruption, transient I/O error, mid-task crash)
      // re-place on a different replica with capped exponential backoff.
      // When every attempt fails, the block is declared lost and the job
      // degrades to a partial result instead of failing outright. ---
      FEISU_ASSIGN_OR_RETURN(
          bool completed,
          ExecuteTaskWithRecovery(max_tasks_per_node, now, {}, ctx, stats,
                                  &p));
      if (!completed) {
        ++stats->lost_blocks;
        continue;
      }
      pending.push_back(std::move(p));
      continue;
    }
    // --- Commit phase of the parallel path: account the pool's outcome
    // and book it with the scheduler, as the sequential path would. ---
    if (!p.exec_status.ok()) return p.exec_status;
    stats->task_retries += static_cast<uint64_t>(p.retries);
    stats->corrupt_blocks += p.corrupt_reads;
    stats->io_errors += p.io_errors;
    if (!p.completed) {
      // No replica of this block survived: degrade gracefully and let the
      // processed-ratio accounting report the loss honestly.
      ++stats->lost_blocks;
      continue;
    }
    if (cluster_->AliveLeafNodes().empty()) {
      return Status::Unavailable("no alive leaf server for task");
    }
    SimTime attempt_time = now + p.backoff_total;
    p.placement = scheduler_.PlaceTask(p.replicas, max_tasks_per_node,
                                       attempt_time, nullptr, ctx.ledger);
    const NodeInfo* node = cluster_->Node(p.placement.node_id);
    if (p.placement.node_id >= leaves_->size() || node == nullptr ||
        !node->alive) {
      ++stats->lost_blocks;
      continue;
    }
    if (faults != nullptr &&
        faults->IsPartitioned(p.placement.node_id, attempt_time)) {
      // PlaceTask avoids partitioned hosts, so landing on one means no
      // reachable candidate existed; wait out a heartbeat interval for a
      // heal and run the recovery loop.
      ++stats->partitioned_tasks;
      FEISU_ASSIGN_OR_RETURN(
          bool recovered,
          ExecuteTaskWithRecovery(max_tasks_per_node,
                                  attempt_time + cluster_->heartbeat_interval(),
                                  {}, ctx, stats, &p));
      if (!recovered) {
        ++stats->lost_blocks;
        continue;
      }
      pending.push_back(std::move(p));
      continue;
    }
    p.duration = p.result.stats.TotalTime();
    if (!p.placement.local) {
      // Remote read: the block bytes cross the network on the read flow.
      p.duration += config_.network.Transfer(p.result.stats.bytes_read,
                                             TrafficClass::kRead);
      ++stats->remote_tasks;
    }
    scheduler_.CommitTask(&p.placement, p.duration, max_tasks_per_node,
                          attempt_time, ctx.ledger);
    if (faults != nullptr) {
      // Orphaned-task detection: the booked host crashed while the task
      // ran, so its result never comes back. The master notices about one
      // heartbeat interval after the crash and falls back to the
      // sequential recovery loop, excluding the dead node.
      std::optional<SimTime> crash = faults->CrashWithin(
          p.placement.node_id, p.placement.start_time,
          p.placement.finish_time);
      if (crash.has_value()) {
        if (node->alive) {
          cluster_->MarkDead(p.placement.node_id);
          ++stats->failed_nodes;
        }
        SimTime resume =
            std::max(attempt_time, *crash + cluster_->heartbeat_interval());
        std::set<uint32_t> excluded{p.placement.node_id};
        FEISU_ASSIGN_OR_RETURN(
            bool recovered,
            ExecuteTaskWithRecovery(max_tasks_per_node, resume, excluded,
                                    ctx, stats, &p));
        if (!recovered) {
          ++stats->lost_blocks;
          continue;
        }
        pending.push_back(std::move(p));
        continue;
      }
      // Partition mid-task: the host stays alive (no MarkDead) but its
      // result cannot reach the master; reschedule elsewhere after one
      // heartbeat interval, like an orphaned task.
      std::optional<SimTime> cut = faults->PartitionedWithin(
          p.placement.node_id, p.placement.start_time,
          p.placement.finish_time);
      if (cut.has_value()) {
        ++stats->partitioned_tasks;
        SimTime resume =
            std::max(attempt_time, *cut + cluster_->heartbeat_interval());
        std::set<uint32_t> excluded{p.placement.node_id};
        FEISU_ASSIGN_OR_RETURN(
            bool recovered,
            ExecuteTaskWithRecovery(max_tasks_per_node, resume, excluded,
                                    ctx, stats, &p));
        if (!recovered) {
          ++stats->lost_blocks;
          continue;
        }
        pending.push_back(std::move(p));
        continue;
      }
    }
    if (p.placement.straggled) ++stats->straggler_tasks;
    if (p.result.stats.block_skipped) ++stats->skipped_blocks;
    stats->leaf.Accumulate(p.result.stats);
    if (config_.enable_task_result_reuse) {
      job_manager_.CacheResult(p.signature, p.result);
    }
    pending.push_back(std::move(p));
  }

  // --- Speculative backup tasks for stragglers (first-commit-wins). ---
  LaunchSpeculativeBackups(&pending, max_tasks_per_node, ctx, now, stats);

  // --- Early termination: processed-ratio / deadline knobs. ---
  // Deadline bookkeeping goes through the TimeoutManager (deterministic,
  // SimTime-keyed): every task's projected finish is armed as a deadline,
  // and the tokens popped at the cutoff instant form the survivor set.
  TimeoutManager timeouts;
  std::vector<SimTime> sorted;
  sorted.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    timeouts.Arm(i, pending[i].placement.finish_time);
    sorted.push_back(pending[i].placement.finish_time);
  }
  std::sort(sorted.begin(), sorted.end());
  SimTime cutoff = sorted.empty() ? now : sorted.back();
  if (config_.processed_ratio < 1.0 && !sorted.empty()) {
    size_t keep = static_cast<size_t>(
        std::max(1.0, config_.processed_ratio *
                          static_cast<double>(sorted.size())));
    keep = std::min(keep, sorted.size());
    cutoff = sorted[keep - 1];
  }
  // The deadline cuts whatever has not finished — but never below the
  // min_processed_ratio floor: the master keeps waiting past the deadline
  // until enough tasks are in to honor the floor.
  SimTime deadline_cutoff = sorted.empty() ? now : sorted.back();
  if (config_.response_deadline > 0 && !sorted.empty()) {
    deadline_cutoff = now + config_.response_deadline;
    if (config_.min_processed_ratio > 0.0) {
      size_t floor_keep = static_cast<size_t>(
          std::ceil(config_.min_processed_ratio *
                    static_cast<double>(sorted.size())));
      floor_keep = std::min(floor_keep, sorted.size());
      if (floor_keep > 0) {
        deadline_cutoff = std::max(deadline_cutoff, sorted[floor_keep - 1]);
      }
    }
    cutoff = std::min(cutoff, deadline_cutoff);
  }
  std::vector<uint64_t> due = timeouts.PopDue(cutoff);
  std::set<uint64_t> survivors(due.begin(), due.end());

  // --- Stem merge. Leaves are grouped into stems by node id; surviving
  // tasks keep block order inside each group so the concatenated bytes
  // never depend on which timeout token popped first. ---
  std::map<uint32_t, std::vector<size_t>> by_stem;
  for (size_t i = 0; i < pending.size(); ++i) {
    if (!survivors.contains(i)) {
      ++stats->abandoned_tasks;
      if (config_.response_deadline > 0 &&
          pending[i].placement.finish_time > deadline_cutoff) {
        ++stats->tasks_terminated_early;
      }
      continue;
    }
    uint32_t stem_id = static_cast<uint32_t>(
        pending[i].placement.node_id / std::max<size_t>(1,
                                                        config_.stem_fanout));
    by_stem[stem_id].push_back(i);
  }

  // Replacement stems for mid-merge deaths get ids from a reserved range,
  // handed out in (deterministic) merge order.
  uint32_t next_replacement_id = 0xC0000000u;
  std::vector<RecordBatch> stem_batches;
  std::vector<SimTime> stem_finishes;
  std::vector<uint64_t> stem_task_counts;
  for (const auto& [stem_id, task_indices] : by_stem) {
    std::vector<RecordBatch> batches;
    std::vector<SimTime> times;
    for (size_t idx : task_indices) {
      batches.push_back(pending[idx].result.batch);
      times.push_back(pending[idx].placement.finish_time);
    }
    FEISU_ASSIGN_OR_RETURN(
        std::optional<StemResult> merged,
        MergeWithStemRecovery(stem_id, batches, times, has_aggregate,
                              group_by, aggregates, meta->schema(),
                              &next_replacement_id, stats));
    if (!merged.has_value()) {
      // The stem and every replacement died: the subtree's results are
      // gone; degrade to an honest partial.
      stats->abandoned_tasks += task_indices.size();
      continue;
    }
    stem_batches.push_back(std::move(merged->batch));
    stem_finishes.push_back(merged->finish_time);
    stem_task_counts.push_back(task_indices.size());
  }

  // Very large clusters need more than one stem level: keep collapsing
  // groups of `stem_fanout` stems into higher-level stems until the root
  // fan-in is manageable (paper Fig. 3's tree generalizes to any depth).
  uint32_t next_stem_id = 1u << 20;  // distinct ids for upper levels
  // A collapse fan-in below 2 would never converge.
  const size_t collapse_fanout = std::max<size_t>(2, config_.stem_fanout);
  while (stem_batches.size() > collapse_fanout) {
    std::vector<RecordBatch> upper_batches;
    std::vector<SimTime> upper_finishes;
    std::vector<uint64_t> upper_task_counts;
    for (size_t start = 0; start < stem_batches.size();
         start += collapse_fanout) {
      size_t stop = std::min(stem_batches.size(),
                             start + collapse_fanout);
      std::vector<RecordBatch> batches(
          stem_batches.begin() + static_cast<long>(start),
          stem_batches.begin() + static_cast<long>(stop));
      std::vector<SimTime> times(
          stem_finishes.begin() + static_cast<long>(start),
          stem_finishes.begin() + static_cast<long>(stop));
      uint64_t group_tasks = 0;
      for (size_t i = start; i < stop; ++i) group_tasks += stem_task_counts[i];
      FEISU_ASSIGN_OR_RETURN(
          std::optional<StemResult> merged,
          MergeWithStemRecovery(next_stem_id++, batches, times,
                                has_aggregate, group_by, aggregates,
                                meta->schema(), &next_replacement_id,
                                stats));
      if (!merged.has_value()) {
        stats->abandoned_tasks += group_tasks;
        continue;
      }
      upper_batches.push_back(std::move(merged->batch));
      upper_finishes.push_back(merged->finish_time);
      upper_task_counts.push_back(group_tasks);
    }
    stem_batches = std::move(upper_batches);
    stem_finishes = std::move(upper_finishes);
    stem_task_counts = std::move(upper_task_counts);
  }

  // --- Master-level final merge. ---
  Staged staged;
  SimTime ready = now;
  uint64_t rows = 0;
  for (size_t i = 0; i < stem_batches.size(); ++i) {
    uint64_t bytes = stem_batches[i].ByteSize();
    stats->bytes_shuffled += bytes;
    SimTime transfer;
    if (config_.result_spill_threshold_bytes > 0 &&
        bytes > config_.result_spill_threshold_bytes) {
      // §V-C: too big to stream to the caller — the stem dumps the result
      // to global storage on the (bypass) write flow and passes only the
      // location; the master pulls it on the read flow.
      transfer = config_.network.Transfer(bytes, TrafficClass::kWrite) +
                 config_.network.ControlRoundTrip() +
                 config_.network.Transfer(bytes, TrafficClass::kRead);
      ++stats->spilled_results;
      stats->spilled_bytes += bytes;
    } else {
      transfer = config_.network.Transfer(bytes, TrafficClass::kRead);
    }
    ready = std::max(ready, stem_finishes[i] + transfer);
    rows += stem_batches[i].num_rows();
  }
  stats->leaf_finish_time = sorted.empty() ? now : std::min(cutoff,
                                                            sorted.back());
  stats->stem_finish_time = ready;

  if (has_aggregate) {
    FEISU_ASSIGN_OR_RETURN(
        Aggregator final_agg,
        Aggregator::Make(group_by, aggregates, meta->schema()));
    for (const auto& batch : stem_batches) {
      FEISU_RETURN_IF_ERROR(final_agg.ConsumePartial(batch));
    }
    FEISU_ASSIGN_OR_RETURN(staged.batch, final_agg.FinalResult());
    stats->leaf.AccumulateAgg(final_agg.stats());
  } else {
    if (stem_batches.empty()) {
      // All tasks abandoned or table empty: synthesize an empty batch with
      // the pruned scan schema.
      Schema schema = meta->schema().Select(columns);
      staged.batch = RecordBatch(schema);
    } else {
      RecordBatch merged(stem_batches[0].schema());
      size_t total_rows = 0;
      for (const auto& batch : stem_batches) total_rows += batch.num_rows();
      merged.Reserve(total_rows);
      for (const auto& batch : stem_batches) {
        FEISU_RETURN_IF_ERROR(merged.Append(batch));
      }
      staged.batch = std::move(merged);
    }
  }
  staged.finish_time = ready + ChargeMasterRows(rows);
  return staged;
}

Result<bool> MasterServer::ExecuteTaskWithRecovery(
    int max_tasks_per_node, SimTime start_time,
    const std::set<uint32_t>& pre_excluded, const JobContext& ctx,
    QueryStats* stats, PendingLeafTask* p) {
  FaultInjector* faults = router_->fault_injector();
  std::set<uint32_t> excluded = pre_excluded;
  SimTime attempt_time = start_time;
  for (int attempt = 0; attempt <= config_.max_task_retries; ++attempt) {
    if (cluster_->AliveLeafNodes().empty()) {
      return Status::Unavailable("no alive leaf server for task");
    }
    p->placement = scheduler_.PlaceTask(
        p->replicas, max_tasks_per_node, attempt_time,
        excluded.empty() ? nullptr : &excluded, ctx.ledger);
    const NodeInfo* node = cluster_->Node(p->placement.node_id);
    if (p->placement.node_id >= leaves_->size() || node == nullptr ||
        !node->alive || excluded.contains(p->placement.node_id)) {
      break;  // every eligible node has already failed this task
    }
    if (faults != nullptr &&
        faults->IsPartitioned(p->placement.node_id, attempt_time)) {
      // PlaceTask avoids partitioned hosts, so landing on one means no
      // reachable candidate exists right now. Wait out one heartbeat
      // interval for a heal, burning a retry so the loop stays bounded.
      ++stats->partitioned_tasks;
      if (attempt >= config_.max_task_retries) break;
      ++stats->task_retries;
      attempt_time += cluster_->heartbeat_interval();
      continue;
    }
    LeafServer* leaf = (*leaves_)[p->placement.node_id].get();
    Result<TaskResult> executed = leaf->Execute(p->task, attempt_time);
    Status failure = executed.ok() ? Status::OK() : executed.status();
    if (failure.ok()) {
      p->result = std::move(*executed);
      p->duration = p->result.stats.TotalTime();
      if (!p->placement.local) {
        // Remote read: the block bytes cross the network on the read flow.
        p->duration += config_.network.Transfer(p->result.stats.bytes_read,
                                                TrafficClass::kRead);
        ++stats->remote_tasks;
      }
      scheduler_.CommitTask(&p->placement, p->duration, max_tasks_per_node,
                            attempt_time, ctx.ledger);
      if (faults != nullptr) {
        // Orphaned-task detection: the host crashed while the task ran,
        // so its result never comes back. The master notices about one
        // heartbeat interval after the crash and reschedules.
        std::optional<SimTime> crash = faults->CrashWithin(
            p->placement.node_id, p->placement.start_time,
            p->placement.finish_time);
        if (crash.has_value()) {
          if (node->alive) {
            cluster_->MarkDead(p->placement.node_id);
            ++stats->failed_nodes;
          }
          attempt_time = std::max(
              attempt_time, *crash + cluster_->heartbeat_interval());
          failure = Status::Unavailable("leaf crashed mid-task");
        } else {
          // Partition mid-task: the host stays alive (no MarkDead) but
          // its result cannot reach the master; reschedule elsewhere
          // after one heartbeat interval, like an orphaned task.
          std::optional<SimTime> cut = faults->PartitionedWithin(
              p->placement.node_id, p->placement.start_time,
              p->placement.finish_time);
          if (cut.has_value()) {
            ++stats->partitioned_tasks;
            attempt_time = std::max(
                attempt_time, *cut + cluster_->heartbeat_interval());
            failure = Status::Unavailable("leaf partitioned mid-task");
          }
        }
      }
    }
    if (failure.ok()) {
      if (p->placement.straggled) ++stats->straggler_tasks;
      if (p->result.stats.block_skipped) ++stats->skipped_blocks;
      stats->leaf.Accumulate(p->result.stats);
      if (config_.enable_task_result_reuse) {
        job_manager_.CacheResult(p->signature, p->result);
      }
      return true;
    }
    if (!IsRetryableTaskFailure(failure)) return failure;
    if (executed.ok()) {
      // Crash- or partition-induced: counted above.
    } else if (failure.code() == StatusCode::kCorruption) {
      ++stats->corrupt_blocks;
    } else {
      ++stats->io_errors;
    }
    excluded.insert(p->placement.node_id);
    if (attempt < config_.max_task_retries) {
      ++stats->task_retries;
      SimTime backoff = config_.retry_backoff_base;
      for (int i = 0; i < attempt; ++i) {
        backoff = std::min(config_.retry_backoff_cap, backoff * 2);
      }
      attempt_time += backoff;
    }
  }
  return false;
}

void MasterServer::ExecuteLeafTaskParallel(PendingLeafTask* p, SimTime now) {
  // Deterministic node choice independent of scheduler state (which only
  // the commit phase may touch): the first alive replica, then any alive
  // leaf in id order. The executing node affects cache warmth and fault
  // draws, never result bytes — every leaf reads the same blocks through
  // the router.
  std::set<uint32_t> excluded;
  auto pick_node = [&]() -> int64_t {
    for (uint32_t r : p->replicas) {
      const NodeInfo* node = cluster_->Node(r);
      if (r < leaves_->size() && node != nullptr && node->alive &&
          !excluded.contains(r)) {
        return static_cast<int64_t>(r);
      }
    }
    for (uint32_t id = 0; id < leaves_->size(); ++id) {
      const NodeInfo* node = cluster_->Node(id);
      if (node != nullptr && node->alive && !excluded.contains(id)) {
        return static_cast<int64_t>(id);
      }
    }
    return -1;
  };
  for (int attempt = 0; attempt <= config_.max_task_retries; ++attempt) {
    int64_t node_id = pick_node();
    if (node_id < 0) return;  // no candidate left: the block is lost
    LeafServer* leaf = (*leaves_)[static_cast<size_t>(node_id)].get();
    Result<TaskResult> executed = leaf->Execute(p->task, now);
    if (executed.ok()) {
      p->result = std::move(*executed);
      p->completed = true;
      return;
    }
    const Status& failure = executed.status();
    if (!IsRetryableTaskFailure(failure)) {
      p->exec_status = failure;
      return;
    }
    if (failure.code() == StatusCode::kCorruption) {
      ++p->corrupt_reads;
    } else {
      ++p->io_errors;
    }
    excluded.insert(static_cast<uint32_t>(node_id));
    if (attempt < config_.max_task_retries) {
      ++p->retries;
      SimTime backoff = config_.retry_backoff_base;
      for (int i = 0; i < attempt; ++i) {
        backoff = std::min(config_.retry_backoff_cap, backoff * 2);
      }
      p->backoff_total += backoff;
    }
  }
}

void MasterServer::LaunchSpeculativeBackups(
    std::vector<PendingLeafTask>* pending, int max_tasks_per_node,
    const JobContext& ctx, SimTime now, QueryStats* stats) {
  (void)now;
  if (!scheduler_.config().enable_backup_tasks) return;
  // Detect over the non-reused placements only: reused tasks cost one
  // control round trip and would drag the typical runtime toward zero.
  std::vector<size_t> candidates;
  std::vector<Placement> placements;
  for (size_t i = 0; i < pending->size(); ++i) {
    if ((*pending)[i].reused) continue;
    candidates.push_back(i);
    placements.push_back((*pending)[i].placement);
  }
  FaultInjector* faults = router_->fault_injector();
  for (const StragglerVerdict& v : scheduler_.DetectStragglers(placements)) {
    PendingLeafTask& p = (*pending)[candidates[v.index]];
    std::optional<uint32_t> alt = scheduler_.PickBackupNode(
        p.replicas, p.placement.node_id, v.detect_time);
    if (!alt.has_value() || *alt >= leaves_->size()) continue;
    ++stats->backup_tasks_launched;
    p.placement.backup_launched = true;
    LeafServer* leaf = (*leaves_)[*alt].get();
    Result<TaskResult> executed = leaf->Execute(p.task, v.detect_time);
    if (!executed.ok()) continue;  // backup hit a fault; original stands
    Placement backup;
    backup.node_id = *alt;
    backup.local = std::find(p.replicas.begin(), p.replicas.end(), *alt) !=
                   p.replicas.end();
    backup.start_time = v.detect_time;
    backup.backup_launched = true;
    SimTime duration = executed->stats.TotalTime();
    if (!backup.local) {
      duration += config_.network.Transfer(executed->stats.bytes_read,
                                           TrafficClass::kRead);
    }
    scheduler_.CommitTask(&backup, duration, max_tasks_per_node,
                          v.detect_time, ctx.ledger);
    if (faults != nullptr) {
      // A backup whose host dies or partitions away mid-run never reports
      // back; the original copy simply stands.
      if (faults
              ->CrashWithin(backup.node_id, backup.start_time,
                            backup.finish_time)
              .has_value() ||
          faults
              ->PartitionedWithin(backup.node_id, backup.start_time,
                                  backup.finish_time)
              .has_value()) {
        continue;
      }
    }
    // First-commit-wins through the ordered slot: the earlier finisher's
    // result occupies it. Every leaf reads the same blocks through the
    // router, so the bytes are identical regardless of the winner.
    if (backup.finish_time < p.placement.finish_time) {
      ++stats->backup_tasks_won;
      if (!backup.local) ++stats->remote_tasks;
      p.placement = backup;
      p.result = std::move(*executed);
      p.duration = duration;
    }
  }
}

Result<std::optional<StemResult>> MasterServer::MergeWithStemRecovery(
    uint32_t stem_id, const std::vector<RecordBatch>& batches,
    std::vector<SimTime> times, bool has_aggregate,
    const std::vector<ExprPtr>& group_by,
    const std::vector<AggSpec>& aggregates, const Schema& schema,
    uint32_t* next_replacement_id, QueryStats* stats) {
  FaultInjector* faults = router_->fault_injector();
  uint32_t current_id = stem_id;
  for (int attempt = 0; attempt <= config_.max_task_retries; ++attempt) {
    // A fresh aggregator per attempt: a replacement stem restarts the
    // partial merge from the children's resent partials.
    StemServer stem(current_id, config_.network);
    std::unique_ptr<Aggregator> stem_agg;
    if (has_aggregate) {
      FEISU_ASSIGN_OR_RETURN(Aggregator a,
                             Aggregator::Make(group_by, aggregates, schema));
      stem_agg = std::make_unique<Aggregator>(std::move(a));
    }
    FEISU_ASSIGN_OR_RETURN(StemResult merged,
                           stem.Merge(batches, times, stem_agg.get()));
    if (faults != nullptr) {
      std::optional<SimTime> crash = faults->StemCrashWithin(
          current_id, merged.start_time, merged.finish_time);
      if (crash.has_value()) {
        // The stem died holding the partial merge. A replacement takes
        // over one heartbeat interval later; the children resend their
        // partials then (modeled by bumping their ready times).
        ++stats->stem_failures;
        if (attempt >= config_.max_task_retries) break;
        ++stats->stem_retries;
        SimTime resume = *crash + cluster_->heartbeat_interval();
        for (SimTime& t : times) t = std::max(t, resume);
        current_id = (*next_replacement_id)++;
        continue;
      }
    }
    if (stem_agg != nullptr) stats->leaf.AccumulateAgg(stem_agg->stats());
    stats->bytes_shuffled += merged.bytes_received;
    return std::optional<StemResult>(std::move(merged));
  }
  // Every replacement died too: the subtree's partials are lost.
  return std::optional<StemResult>();
}

MasterCheckpoint MasterServer::Checkpoint() const {
  MasterCheckpoint checkpoint;
  checkpoint.tables = catalog_->TableNames();
  checkpoint.jobs_created = static_cast<int64_t>(job_manager_.NumJobs());
  checkpoint.jobs = job_manager_.SnapshotJobs();
  return checkpoint;
}

Status MasterServer::RestoreFromCheckpoint(const MasterCheckpoint& checkpoint,
                                           const Catalog& catalog) {
  for (const auto& table : checkpoint.tables) {
    if (catalog.Find(table) == nullptr) {
      return Status::Corruption("checkpoint references missing table " +
                                table);
    }
  }
  return Status::OK();
}

Status MasterServer::Restore(const MasterCheckpoint& checkpoint) {
  FEISU_RETURN_IF_ERROR(RestoreFromCheckpoint(checkpoint, *catalog_));
  job_manager_.RestoreJobs(checkpoint.jobs);
  return Status::OK();
}

Result<QueryResult> MasterServer::ResumeJob(int64_t job_id, SimTime now) {
  std::optional<JobInfo> job = job_manager_.Find(job_id);
  if (!job.has_value()) {
    return Status::NotFound("no such job: " + std::to_string(job_id));
  }
  if (job->state == JobState::kFinished) {
    return Status::InvalidArgument("job already finished: " +
                                   std::to_string(job_id));
  }
  // Admission already happened on the failed primary; re-run from the
  // recorded SQL under the same job id on the serial path (a promoted
  // backup resumes jobs one at a time).
  FEISU_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSql(job->sql));
  JobContext ctx;
  ctx.job_id = job_id;
  ctx.tenant = job->user;
  return RunPlannedQuery(stmt, ctx, now);
}

}  // namespace feisu
