#include "cluster/stem_server.h"

#include <algorithm>

namespace feisu {

StemServer::StemServer(uint32_t node_id, NetworkModel network,
                       SimTime cpu_per_row_merge)
    : node_id_(node_id),
      network_(network),
      cpu_per_row_merge_(cpu_per_row_merge) {}

Result<StemResult> StemServer::Merge(
    const std::vector<RecordBatch>& child_batches,
    const std::vector<SimTime>& child_finish_times, Aggregator* aggregator) {
  StemResult result;
  SimTime ready = 0;
  SimTime first_arrival = 0;
  bool any_child = false;
  uint64_t rows = 0;
  for (size_t i = 0; i < child_batches.size(); ++i) {
    uint64_t bytes = child_batches[i].ByteSize();
    result.bytes_received += bytes;
    SimTime finish = i < child_finish_times.size() ? child_finish_times[i] : 0;
    // Each child's partial result travels on the read data flow.
    SimTime arrival = finish + network_.Transfer(bytes, TrafficClass::kRead);
    ready = std::max(ready, arrival);
    if (!any_child || arrival < first_arrival) first_arrival = arrival;
    any_child = true;
    rows += child_batches[i].num_rows();
  }
  SimTime combine = static_cast<SimTime>(rows) * cpu_per_row_merge_;
  result.start_time = any_child ? first_arrival : 0;
  result.finish_time = ready + combine;

  if (aggregator != nullptr) {
    for (const auto& batch : child_batches) {
      FEISU_RETURN_IF_ERROR(aggregator->ConsumePartial(batch));
    }
    FEISU_ASSIGN_OR_RETURN(result.batch, aggregator->PartialResult());
    return result;
  }
  // Row concatenation for non-aggregate sub-plans.
  if (child_batches.empty()) return result;
  RecordBatch merged(child_batches[0].schema());
  merged.Reserve(rows);
  for (const auto& batch : child_batches) {
    FEISU_RETURN_IF_ERROR(merged.Append(batch));
  }
  result.batch = std::move(merged);
  return result;
}

}  // namespace feisu
