#ifndef FEISU_CLUSTER_LEAF_SERVER_H_
#define FEISU_CLUSTER_LEAF_SERVER_H_

#include <memory>
#include <unordered_map>

#include "cluster/task.h"
#include "common/annotations.h"
#include "common/result.h"
#include "index/btree_index.h"
#include "index/index_cache.h"
#include "index/index_resolver.h"
#include "storage/path_router.h"
#include "storage/ssd_cache.h"

namespace feisu {

/// Execution-mode and cost knobs for one leaf server.
struct LeafServerConfig {
  IndexCacheConfig index_cache;
  bool enable_smart_index = true;
  bool enable_btree_index = false;  ///< Fig. 9b baseline mode
  bool enable_zone_maps = true;     ///< min/max block skipping
  /// Late materialization: resolve the predicate bitmap first, then decode
  /// projection columns through it (selective decode) instead of decoding
  /// every row and filtering the survivors. Off = the pre-pushdown
  /// decode-then-Filter path (ablations; results are byte-identical).
  bool enable_selection_pushdown = true;
  /// Compressed-domain execution: answer predicate conjuncts directly over
  /// encoded columns (dict codes / RLE runs / bit-packed words) and key
  /// single-column dictionary group-bys on codes, falling back to
  /// decode-then-evaluate per conjunct when no kernel applies. Results and
  /// *simulated* costs are byte-identical either way (the win is host
  /// wall-clock; see docs/PERFORMANCE.md); off = always decode (ablations).
  bool enable_compressed_eval = true;

  /// Optional SSD column cache; 0 disables it.
  uint64_t ssd_capacity_bytes = 0;
  CachePolicy ssd_policy = CachePolicy::kManual;

  /// Paper-scale multiplier: every synthetic row stands for this many
  /// production rows. Scales simulated I/O bytes and per-row CPU charges
  /// (not results), so laptop-sized blocks exercise the cost regime of the
  /// paper's terabyte tables. 1.0 = charge exactly what is stored.
  double sim_data_scale = 1.0;

  /// Floor on the fraction of a data column charged after bitmap
  /// filtering (late materialization reads whole pages, not single rows).
  double min_read_fraction = 1.0 / 64.0;

  // CPU cost constants (per-row / per-word simulated charges).
  SimTime cpu_task_fixed = 20 * kSimMicrosecond;  ///< per-task overhead
  SimTime cpu_per_row_predicate = 12;   ///< evaluate one predicate on one row
  SimTime cpu_per_row_aggregate = 8;
  SimTime cpu_per_row_materialize = 6;
  SimTime cpu_per_bitmap_word = 1;      ///< SmartIndex combine cost
  SimTime cpu_per_byte_decode = 0;      ///< charged per 16 bytes below
  SimTime cpu_per_btree_probe = 250;    ///< one tree descent
  SimTime cpu_per_row_btree_build = 40;
  SimTime cpu_per_row_btree_emit = 2;   ///< materializing matching row ids
};

/// A leaf server: the light-weight Feisu process deployed on each storage
/// node. It executes scan sub-plans over local blocks, maintains the
/// SmartIndex cache (and optionally the B-tree baseline), and charges all
/// I/O and CPU against simulated time.
///
/// Execute() is safe to call concurrently: the paper's leaf processes run
/// several sub-plans at once next to the storage node, and the parallel
/// leaf path fans block tasks across a thread pool. All shared leaf state
/// (SmartIndex cache, B-tree manager, SSD cache, decoded-block memo,
/// resolver statistics) is internally synchronized; everything else in
/// Execute is per-task local.
class LeafServer {
 public:
  LeafServer(uint32_t node_id, PathRouter* router, LeafServerConfig config);

  LeafServer(const LeafServer&) = delete;
  LeafServer& operator=(const LeafServer&) = delete;

  uint32_t node_id() const { return node_id_; }
  const LeafServerConfig& config() const { return config_; }

  /// Executes one task at simulated time `now`. The returned stats carry
  /// the simulated io/cpu cost of the task; the caller (scheduler) turns
  /// that into completion times.
  Result<TaskResult> Execute(const LeafTask& task, SimTime now);

  IndexCache& index_cache() { return index_cache_; }
  /// Aggregated over every finished Execute call (snapshot by value; a
  /// per-task resolver merges into this under a mutex when the task ends).
  ResolverStats resolver_stats() const FEISU_EXCLUDES(resolver_stats_mutex_);
  BTreeIndexManager& btree_manager() { return btree_manager_; }
  SsdCache* ssd_cache() { return ssd_cache_.get(); }

  /// Drops cached decoded blocks (host-memory optimization, not simulated
  /// state).
  void DropDecodedBlocks() FEISU_EXCLUDES(decoded_mutex_) {
    MutexLock lock(decoded_mutex_);
    decoded_blocks_.clear();
  }

 private:
  /// Loads + decodes a block, charging `io` for the given columns only
  /// (columnar read). The decoded block is memoized in host memory to keep
  /// wall-clock benches fast; simulated I/O is charged on every call. When
  /// a FaultInjector is attached to the router, the read may fail with
  /// Unavailable (transient I/O error) or Corruption (checksum mismatch on
  /// a damaged replica).
  Result<const ColumnarBlock*> LoadBlock(const TableBlockMeta& meta);

  /// The replica node this leaf's reads of `path` come from: itself when it
  /// holds a copy, otherwise the first intact remote replica.
  uint32_t PickSourceReplica(const std::string& path) const;

  /// Charges the I/O for reading a `fraction` of each of `columns` of
  /// `block` (late materialization), via the SSD cache when enabled.
  SimTime ChargeColumnRead(const ColumnarBlock& block,
                           const TableBlockMeta& meta,
                           const std::vector<std::string>& columns,
                           double fraction, TaskStats* stats);

  /// Per-row CPU charge helper honoring sim_data_scale.
  SimTime RowCost(uint64_t rows, SimTime per_row) const {
    return static_cast<SimTime>(static_cast<double>(rows) *
                                config_.sim_data_scale *
                                static_cast<double>(per_row));
  }

  /// Folds one finished task's resolver statistics into the aggregate.
  void MergeResolverStats(const ResolverStats& stats)
      FEISU_EXCLUDES(resolver_stats_mutex_);

  // node_id_, router_ and config_ are immutable after construction; the
  // caches are internally synchronized (their own annotated mutexes).
  uint32_t node_id_;
  PathRouter* router_;
  LeafServerConfig config_;
  IndexCache index_cache_;
  BTreeIndexManager btree_manager_;
  std::unique_ptr<SsdCache> ssd_cache_;
  /// Aggregate of per-task resolver stats, guarded by its own mutex.
  mutable Mutex resolver_stats_mutex_;
  ResolverStats resolver_stats_ FEISU_GUARDED_BY(resolver_stats_mutex_);
  /// Host-memory memo of decoded blocks; pointer-stable (node-based map),
  /// so a reference handed out under the lock stays valid afterwards.
  mutable Mutex decoded_mutex_;
  std::unordered_map<std::string, ColumnarBlock> decoded_blocks_
      FEISU_GUARDED_BY(decoded_mutex_);
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_LEAF_SERVER_H_
