#include "cluster/task.h"

#include <sstream>

#include "exec/aggregate.h"

namespace feisu {

std::string LeafTask::Signature() const {
  std::ostringstream os;
  os << table << "#" << block.block_id << "|";
  for (const auto& col : columns) os << col << ",";
  os << "|";
  if (predicate != nullptr) os << predicate->ToString();
  os << "|";
  for (const auto& g : group_by) os << g->ToString() << ",";
  os << "|";
  for (const auto& spec : aggregates) os << spec.ToString() << ",";
  os << "|limit=" << limit << "|order=";
  for (const auto& item : order_by) {
    os << item.expr->ToString() << (item.descending ? " DESC" : " ASC")
       << ",";
  }
  return os.str();
}

void TaskStats::Accumulate(const TaskStats& other) {
  bytes_read += other.bytes_read;
  rows_scanned += other.rows_scanned;
  rows_matched += other.rows_matched;
  values_decoded += other.values_decoded;
  values_skipped_encoded += other.values_skipped_encoded;
  index_direct_hits += other.index_direct_hits;
  index_composed_hits += other.index_composed_hits;
  index_misses += other.index_misses;
  btree_probes += other.btree_probes;
  btree_builds += other.btree_builds;
  agg_groups += other.agg_groups;
  agg_hash_probes += other.agg_hash_probes;
  agg_rehashes += other.agg_rehashes;
  agg_null_fast_batches += other.agg_null_fast_batches;
  agg_code_domain_groups += other.agg_code_domain_groups;
  io_time += other.io_time;
  cpu_time += other.cpu_time;
}

void TaskStats::AccumulateAgg(const AggStats& agg) {
  agg_groups += agg.groups_created;
  agg_hash_probes += agg.hash_probes;
  agg_rehashes += agg.rehashes;
  agg_null_fast_batches += agg.null_fast_path_batches;
  agg_code_domain_groups += agg.code_domain_groups;
}

}  // namespace feisu
