#ifndef FEISU_CLUSTER_CLUSTER_MANAGER_H_
#define FEISU_CLUSTER_CLUSTER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sim_clock.h"

namespace feisu {

/// Per-node runtime information tracked by the cluster manager.
///
/// Field discipline under the multi-query master: `alive` is atomic —
/// crash detection flips it from any job coordinator and placement reads
/// it from all of them. The remaining mutable fields (`last_heartbeat`,
/// `slowdown_factor`, `tasks_executed`) are written only by the
/// single-threaded control plane (engine maintenance, test setup, and the
/// master's admission path, which serializes fault-event application
/// under its admission mutex) and read by coordinators; `node_id`,
/// `is_stem`, `cores` and `task_slots` are set at AddNode and immutable
/// afterwards.
struct NodeInfo {
  uint32_t node_id = 0;
  bool is_stem = false;
  std::atomic<bool> alive{true};
  int cores = 4;
  int task_slots = 4;             ///< concurrent Feisu tasks allowed
  double slowdown_factor = 1.0;   ///< >1 models a degraded/contended node
  SimTime last_heartbeat = 0;
  uint64_t tasks_executed = 0;
};

/// Manages worker runtime state (paper §III-C "Cluster manager"). Feisu
/// deliberately does not use ZooKeeper — workers are too many and
/// geo-distributed — so liveness comes from periodic heartbeats over the
/// control traffic class and nodes missing `dead_after` are treated as
/// crashed until they report again.
///
/// Nodes live in a deque so NodeInfo pointers stay stable across AddNode;
/// AddNode itself is a setup-time operation (before queries run).
class ClusterManager {
 public:
  explicit ClusterManager(SimTime heartbeat_interval = 5 * kSimSecond,
                          SimTime dead_after = 30 * kSimSecond);

  uint32_t AddNode(bool is_stem, int cores = 4, int task_slots = 4);
  size_t NumNodes() const { return nodes_.size(); }

  NodeInfo* Node(uint32_t node_id);
  const NodeInfo* Node(uint32_t node_id) const;

  /// Processes one heartbeat from a node.
  void Heartbeat(uint32_t node_id, SimTime now);

  /// Sweeps liveness: nodes silent past `dead_after` are marked dead.
  /// Returns how many nodes changed to dead.
  size_t SweepLiveness(SimTime now);

  /// Fault injection for tests and ablations.
  void MarkDead(uint32_t node_id);
  void MarkAlive(uint32_t node_id, SimTime now);
  void SetSlowdown(uint32_t node_id, double factor);

  std::vector<uint32_t> AliveLeafNodes() const;
  size_t AliveCount() const;

  SimTime heartbeat_interval() const { return heartbeat_interval_; }

  /// Simulated control-plane load of one heartbeat sweep: one control
  /// round trip per alive node. The master scalability discussion in paper
  /// §VII is driven by this growing with the worker count.
  uint64_t HeartbeatMessagesPerSweep() const { return AliveCount(); }

 private:
  SimTime heartbeat_interval_;
  SimTime dead_after_;
  std::deque<NodeInfo> nodes_;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_CLUSTER_MANAGER_H_
