#ifndef FEISU_CLUSTER_ENTRY_GUARD_H_
#define FEISU_CLUSTER_ENTRY_GUARD_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/annotations.h"
#include "common/result.h"
#include "common/sim_clock.h"
#include "plan/catalog.h"
#include "storage/sso.h"

namespace feisu {

/// Per-tenant admission quota (0 = unlimited). `max_concurrent_jobs`
/// queues — not rejects — a job that would exceed it; `max_queued_jobs`
/// rejects outright once the tenant's backlog is that deep. This is the
/// explicit rejection-vs-queueing split of the paper's entry guard:
/// concurrency pressure waits, backlog pressure bounces.
struct TenantQuota {
  uint32_t max_concurrent_jobs = 0;
  uint32_t max_queued_jobs = 0;
};

/// Snapshot of job-level admission accounting, surfaced through
/// QueryStats / FormatQueryStats.
struct AdmissionSnapshot {
  uint64_t jobs_admitted = 0;   ///< accepted into the admission queue
  uint64_t jobs_rejected = 0;   ///< bounced (backpressure or tenant backlog)
  uint64_t jobs_queued = 0;     ///< waiting for a coordinator right now
  uint64_t jobs_running = 0;    ///< executing right now
  /// Times a tenant's quota gated a job: backlog rejections plus start
  /// deferrals while the tenant sat at max_concurrent_jobs.
  std::map<std::string, uint64_t> tenant_quota_hits;
};

/// The entry point of the system (paper §III-C): security checking of
/// access flows, dispatch of incoming traffic, and capability protection
/// against malicious/runaway clients via per-user daily query quotas,
/// per-tenant concurrency/backlog quotas and per-storage
/// resource-consumption agreements on concurrent jobs.
///
/// Concurrency: quota and accounting state is serialized under `mutex_`;
/// the SsoAuthenticator synchronizes itself, and Admit never holds
/// `mutex_` across the authentication round trip (the daily-quota slot is
/// reserved first and rolled back if authentication fails). Concurrent
/// job coordinators and submitting clients may call in freely. Never
/// calls out into JobManager or MasterServer (leaf of the admission lock
/// order).
class EntryGuard {
 public:
  EntryGuard(SsoAuthenticator* sso, const Catalog* catalog,
             uint64_t daily_query_quota = 10'000);

  /// Admits a query: authenticates the user (minting a job credential),
  /// verifies the user may read `table`, and enforces the quota. Returns
  /// the credential attached to the job on success.
  Result<JobCredential> Admit(const std::string& user,
                              const std::string& table, SimTime now)
      FEISU_EXCLUDES(mutex_);

  /// Authorizes a job credential against the storage domain owning `path`
  /// (called per-task by workers).
  bool AuthorizeDomain(const JobCredential& credential,
                       const std::string& domain) const
      FEISU_EXCLUDES(mutex_);

  /// --- Job-level admission (multi-query master). ---
  void set_default_tenant_quota(const TenantQuota& quota)
      FEISU_EXCLUDES(mutex_);
  void SetTenantQuota(const std::string& user, const TenantQuota& quota)
      FEISU_EXCLUDES(mutex_);

  /// Accepts a job into the admission queue, or rejects it: when the
  /// master's bounded queue is full (`queue_capacity` > 0 and that many
  /// jobs already queued) or the tenant's backlog quota is exhausted the
  /// job bounces with ResourceExhausted and the counters say so honestly.
  Status EnqueueJob(const std::string& user, size_t queue_capacity)
      FEISU_EXCLUDES(mutex_);

  /// Whether `user` may start a job now under its concurrency quota and
  /// the storage system's job agreement (`domain_job_limit`, 0 =
  /// unlimited). Counts a tenant quota hit on each concurrency deferral.
  bool MayStartJob(const std::string& user, const std::string& domain,
                   int domain_job_limit) FEISU_EXCLUDES(mutex_);

  /// Transitions an enqueued job to running / releases a finished one.
  void StartJob(const std::string& user, const std::string& domain)
      FEISU_EXCLUDES(mutex_);
  void FinishJob(const std::string& user, const std::string& domain)
      FEISU_EXCLUDES(mutex_);

  /// Counts a job served directly by the serial (single-query) master
  /// path, so admission totals stay honest in both modes.
  void CountImmediateJob() FEISU_EXCLUDES(mutex_);

  AdmissionSnapshot admission_snapshot() const FEISU_EXCLUDES(mutex_);

  uint64_t rejected_count() const FEISU_EXCLUDES(mutex_);
  uint64_t admitted_count() const FEISU_EXCLUDES(mutex_);

 private:
  const TenantQuota& QuotaFor(const std::string& user) const
      FEISU_REQUIRES(mutex_);

  SsoAuthenticator* sso_;  // internally synchronized
  const Catalog* catalog_;
  uint64_t daily_query_quota_;

  mutable Mutex mutex_;
  // user -> (day, count) of the per-day query quota.
  std::map<std::string, std::pair<int64_t, uint64_t>> usage_
      FEISU_GUARDED_BY(mutex_);
  uint64_t rejected_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t admitted_ FEISU_GUARDED_BY(mutex_) = 0;

  TenantQuota default_tenant_quota_ FEISU_GUARDED_BY(mutex_);
  std::map<std::string, TenantQuota> tenant_quotas_ FEISU_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t> tenant_queued_ FEISU_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t> tenant_running_ FEISU_GUARDED_BY(mutex_);
  std::map<std::string, uint64_t> domain_running_ FEISU_GUARDED_BY(mutex_);
  uint64_t jobs_admitted_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t jobs_rejected_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t jobs_queued_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t jobs_running_ FEISU_GUARDED_BY(mutex_) = 0;
  std::map<std::string, uint64_t> tenant_quota_hits_
      FEISU_GUARDED_BY(mutex_);
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_ENTRY_GUARD_H_
