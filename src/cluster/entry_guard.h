#ifndef FEISU_CLUSTER_ENTRY_GUARD_H_
#define FEISU_CLUSTER_ENTRY_GUARD_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/sim_clock.h"
#include "plan/catalog.h"
#include "storage/sso.h"

namespace feisu {

/// The entry point of the system (paper §III-C): security checking of
/// access flows, dispatch of incoming traffic, and capability protection
/// against malicious/runaway clients via per-user daily query quotas.
class EntryGuard {
 public:
  EntryGuard(SsoAuthenticator* sso, const Catalog* catalog,
             uint64_t daily_query_quota = 10'000);

  /// Admits a query: authenticates the user (minting a job credential),
  /// verifies the user may read `table`, and enforces the quota. Returns
  /// the credential attached to the job on success.
  Result<JobCredential> Admit(const std::string& user,
                              const std::string& table, SimTime now);

  /// Authorizes a job credential against the storage domain owning `path`
  /// (called per-task by workers).
  bool AuthorizeDomain(const JobCredential& credential,
                       const std::string& domain) const;

  uint64_t rejected_count() const { return rejected_; }
  uint64_t admitted_count() const { return admitted_; }

 private:
  SsoAuthenticator* sso_;
  const Catalog* catalog_;
  uint64_t daily_query_quota_;
  std::map<std::string, std::pair<int64_t, uint64_t>> usage_;  // user -> (day, count)
  uint64_t rejected_ = 0;
  uint64_t admitted_ = 0;
};

}  // namespace feisu

#endif  // FEISU_CLUSTER_ENTRY_GUARD_H_
