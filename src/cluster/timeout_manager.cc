#include "cluster/timeout_manager.h"

#include <algorithm>

namespace feisu {

std::optional<SimTime> TimeoutManager::ArmedDeadline(uint64_t token) const {
  for (const auto& [armed_token, deadline] : armed_) {
    if (armed_token == token) return deadline;
  }
  return std::nullopt;
}

void TimeoutManager::Arm(uint64_t token, SimTime deadline) {
  queue_.push(Entry{deadline, token});
  for (auto& [armed_token, armed_deadline] : armed_) {
    if (armed_token == token) {
      armed_deadline = deadline;
      return;
    }
  }
  armed_.emplace_back(token, deadline);
}

void TimeoutManager::Cancel(uint64_t token) {
  armed_.erase(std::remove_if(armed_.begin(), armed_.end(),
                              [token](const auto& entry) {
                                return entry.first == token;
                              }),
               armed_.end());
}

std::vector<uint64_t> TimeoutManager::PopDue(SimTime now) {
  std::vector<uint64_t> due;
  while (!queue_.empty() && queue_.top().deadline <= now) {
    Entry entry = queue_.top();
    queue_.pop();
    // Stale if the token was cancelled or re-armed to another deadline.
    std::optional<SimTime> armed = ArmedDeadline(entry.token);
    if (!armed || *armed != entry.deadline) continue;
    Cancel(entry.token);
    due.push_back(entry.token);
  }
  return due;
}

std::optional<SimTime> TimeoutManager::NextDeadline() const {
  std::optional<SimTime> next;
  for (const auto& [token, deadline] : armed_) {
    if (!next || deadline < *next) next = deadline;
  }
  return next;
}

}  // namespace feisu
