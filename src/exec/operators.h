#ifndef FEISU_EXEC_OPERATORS_H_
#define FEISU_EXEC_OPERATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/record_batch.h"
#include "sql/ast.h"

namespace feisu {

/// Vectorized single-batch operators used above the leaf level (the leaf's
/// scan path lives in cluster/leaf_server; joins/sorts/limits execute at
/// the master after stem aggregation).

/// Keeps rows satisfying `predicate`.
Result<RecordBatch> FilterBatch(const RecordBatch& input,
                                const ExprPtr& predicate);

/// Evaluates the projection list into a new batch; output columns take the
/// items' output names.
Result<RecordBatch> ProjectBatch(const RecordBatch& input,
                                 const std::vector<SelectItem>& items);

/// Stable multi-key sort honoring ASC/DESC; NULLs sort first.
Result<RecordBatch> SortBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by);

/// First `limit` rows (whole batch if limit < 0).
RecordBatch LimitBatch(const RecordBatch& input, int64_t limit);

/// Fused ORDER BY + LIMIT: selects the `limit` smallest rows under the
/// ordering with a bounded heap (O(n log k)) instead of sorting everything
/// (O(n log n)). Equivalent to SortBatch followed by LimitBatch, including
/// stability (ties keep input order).
Result<RecordBatch> TopNBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by,
                              int64_t limit);

struct HashJoinOptions {
  JoinType type = JoinType::kInner;
  ExprPtr condition;           ///< null only for CROSS
  std::string left_prefix;     ///< alias used to qualify colliding names
  std::string right_prefix;
};

/// Hash join of two materialized batches. Equi-conjuncts (left.col =
/// right.col) drive the hash table; remaining condition conjuncts are
/// applied as a residual filter. Name collisions between the two sides are
/// disambiguated as "<prefix>.<column>".
Result<RecordBatch> HashJoinBatches(const RecordBatch& left,
                                    const RecordBatch& right,
                                    const HashJoinOptions& options);

}  // namespace feisu

#endif  // FEISU_EXEC_OPERATORS_H_
