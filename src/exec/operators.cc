#include "exec/operators.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "columnar/block.h"
#include "expr/evaluator.h"

namespace feisu {

Result<RecordBatch> FilterBatch(const RecordBatch& input,
                                const ExprPtr& predicate) {
  if (predicate == nullptr) return input;
  FEISU_ASSIGN_OR_RETURN(BitVector selection,
                         EvaluatePredicate(*predicate, input));
  return input.Filter(selection);
}

Result<RecordBatch> ProjectBatch(const RecordBatch& input,
                                 const std::vector<SelectItem>& items) {
  std::vector<Field> fields;
  std::vector<ColumnVector> columns;
  for (const auto& item : items) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*item.expr, input));
    fields.push_back({item.OutputName(), col.type(), true});
    columns.push_back(std::move(col));
  }
  return RecordBatch(Schema(std::move(fields)), std::move(columns));
}

Result<RecordBatch> SortBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by) {
  if (order_by.empty()) return input;
  std::vector<ColumnVector> keys;
  keys.reserve(order_by.size());
  for (const auto& item : order_by) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*item.expr, input));
    keys.push_back(std::move(col));
  }
  std::vector<uint32_t> indices(input.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       int cmp = keys[k].GetValue(a).Compare(
                           keys[k].GetValue(b));
                       if (cmp == 0) continue;
                       return order_by[k].descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  return input.Take(indices);
}

RecordBatch LimitBatch(const RecordBatch& input, int64_t limit) {
  if (limit < 0 || static_cast<uint64_t>(limit) >= input.num_rows()) {
    return input;
  }
  std::vector<uint32_t> indices(static_cast<size_t>(limit));
  std::iota(indices.begin(), indices.end(), 0);
  return input.Take(indices);
}

Result<RecordBatch> TopNBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by,
                              int64_t limit) {
  if (limit < 0 || order_by.empty()) {
    FEISU_ASSIGN_OR_RETURN(RecordBatch sorted, SortBatch(input, order_by));
    return LimitBatch(sorted, limit);
  }
  if (limit == 0) return input.Filter(BitVector(input.num_rows(), false));
  std::vector<ColumnVector> keys;
  keys.reserve(order_by.size());
  for (const auto& item : order_by) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*item.expr, input));
    keys.push_back(std::move(col));
  }
  // less(a, b): a orders strictly before b; ties break on input position
  // for stability.
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int cmp = keys[k].GetValue(a).Compare(keys[k].GetValue(b));
      if (cmp == 0) continue;
      return order_by[k].descending ? cmp > 0 : cmp < 0;
    }
    return a < b;
  };
  // Max-heap of the current best `limit` rows (heap top = worst kept row).
  std::vector<uint32_t> heap;
  heap.reserve(static_cast<size_t>(limit));
  for (uint32_t row = 0; row < input.num_rows(); ++row) {
    if (heap.size() < static_cast<size_t>(limit)) {
      heap.push_back(row);
      std::push_heap(heap.begin(), heap.end(), less);
    } else if (less(row, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.back() = row;
      std::push_heap(heap.begin(), heap.end(), less);
    }
  }
  std::sort(heap.begin(), heap.end(), less);
  return input.Take(heap);
}

namespace {

/// Splits a condition into conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kLogical &&
      expr->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(expr->child(0), out);
    SplitConjuncts(expr->child(1), out);
    return;
  }
  out->push_back(expr);
}

/// Builds the join output schema, qualifying collided names with prefixes,
/// and returns per-side output field names.
Schema JoinOutputSchema(const RecordBatch& left, const RecordBatch& right,
                        const std::string& left_prefix,
                        const std::string& right_prefix,
                        std::vector<std::string>* left_names,
                        std::vector<std::string>* right_names) {
  std::vector<Field> fields;
  auto collides = [&](const std::string& name, const Schema& other) {
    return other.HasField(name);
  };
  for (const auto& f : left.schema().fields()) {
    Field out = f;
    if (collides(f.name, right.schema()) && !left_prefix.empty()) {
      out.name = left_prefix + "." + f.name;
    }
    out.nullable = true;
    left_names->push_back(out.name);
    fields.push_back(out);
  }
  for (const auto& f : right.schema().fields()) {
    Field out = f;
    if (collides(f.name, left.schema()) && !right_prefix.empty()) {
      out.name = right_prefix + "." + f.name;
    }
    out.nullable = true;
    right_names->push_back(out.name);
    fields.push_back(out);
  }
  return Schema(std::move(fields));
}

struct EquiKey {
  ExprPtr left_expr;   // evaluated against the left batch
  ExprPtr right_expr;  // evaluated against the right batch
};

/// Classifies condition conjuncts into equi-join keys and residuals.
void ClassifyConjuncts(const std::vector<ExprPtr>& conjuncts,
                       const RecordBatch& left, const RecordBatch& right,
                       std::vector<EquiKey>* keys,
                       std::vector<ExprPtr>* residual) {
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kComparison &&
        c->compare_op() == CompareOp::kEq &&
        c->child(0)->kind() == ExprKind::kColumnRef &&
        c->child(1)->kind() == ExprKind::kColumnRef) {
      const ExprPtr& a = c->child(0);
      const ExprPtr& b = c->child(1);
      bool a_left = LookupColumn(*a, left) != nullptr;
      bool a_right = LookupColumn(*a, right) != nullptr;
      bool b_left = LookupColumn(*b, left) != nullptr;
      bool b_right = LookupColumn(*b, right) != nullptr;
      // Qualified refs bind unambiguously; prefer (left, right) pairing.
      if (a_left && b_right && !(a_right && b_left)) {
        keys->push_back({a, b});
        continue;
      }
      if (a_right && b_left && !(a_left && b_right)) {
        keys->push_back({b, a});
        continue;
      }
      if (a_left && b_right) {  // ambiguous both ways: pick (a,b)
        keys->push_back({a, b});
        continue;
      }
    }
    residual->push_back(c);
  }
}

std::string RowKey(const std::vector<ColumnVector>& cols, size_t row,
                   bool* has_null) {
  std::string out;
  *has_null = false;
  for (const auto& col : cols) {
    Value v = col.GetValue(row);
    if (v.is_null()) *has_null = true;
    SerializeValue(&out, v);
  }
  return out;
}

}  // namespace

Result<RecordBatch> HashJoinBatches(const RecordBatch& left,
                                    const RecordBatch& right,
                                    const HashJoinOptions& options) {
  std::vector<std::string> left_names;
  std::vector<std::string> right_names;
  Schema out_schema =
      JoinOutputSchema(left, right, options.left_prefix, options.right_prefix,
                       &left_names, &right_names);
  RecordBatch out(out_schema);

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(options.condition, &conjuncts);
  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual;
  ClassifyConjuncts(conjuncts, left, right, &keys, &residual);

  // Evaluate key expressions.
  std::vector<ColumnVector> left_keys;
  std::vector<ColumnVector> right_keys;
  for (const auto& key : keys) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector lcol,
                           EvaluateExpr(*key.left_expr, left));
    FEISU_ASSIGN_OR_RETURN(ColumnVector rcol,
                           EvaluateExpr(*key.right_expr, right));
    left_keys.push_back(std::move(lcol));
    right_keys.push_back(std::move(rcol));
  }

  // Build side: right.
  std::unordered_map<std::string, std::vector<uint32_t>> build;
  if (!keys.empty()) {
    for (size_t row = 0; row < right.num_rows(); ++row) {
      bool has_null = false;
      std::string key = RowKey(right_keys, row, &has_null);
      if (has_null) continue;  // NULL keys never match
      build[key].push_back(static_cast<uint32_t>(row));
    }
  }

  auto emit = [&](int64_t lrow, int64_t rrow) -> Status {
    std::vector<Value> row;
    row.reserve(out_schema.num_fields());
    for (size_t c = 0; c < left.num_columns(); ++c) {
      row.push_back(lrow < 0 ? Value::Null()
                             : left.column(c).GetValue(
                                   static_cast<size_t>(lrow)));
    }
    for (size_t c = 0; c < right.num_columns(); ++c) {
      row.push_back(rrow < 0 ? Value::Null()
                             : right.column(c).GetValue(
                                   static_cast<size_t>(rrow)));
    }
    return out.AppendRow(row);
  };

  // Residual evaluation happens on a single combined row; build a one-row
  // batch lazily only when residuals exist.
  auto residual_ok = [&](size_t lrow, size_t rrow) -> Result<bool> {
    if (residual.empty()) return true;
    RecordBatch pair(out_schema);
    std::vector<Value> row;
    for (size_t c = 0; c < left.num_columns(); ++c) {
      row.push_back(left.column(c).GetValue(lrow));
    }
    for (size_t c = 0; c < right.num_columns(); ++c) {
      row.push_back(right.column(c).GetValue(rrow));
    }
    FEISU_RETURN_IF_ERROR(pair.AppendRow(row));
    for (const auto& r : residual) {
      FEISU_ASSIGN_OR_RETURN(BitVector bits, EvaluatePredicate(*r, pair));
      if (!bits.Get(0)) return false;
    }
    return true;
  };

  std::vector<bool> right_matched(right.num_rows(), false);

  if (options.type == JoinType::kCross ||
      (keys.empty() && options.type == JoinType::kInner)) {
    for (size_t l = 0; l < left.num_rows(); ++l) {
      for (size_t r = 0; r < right.num_rows(); ++r) {
        FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
        if (ok) FEISU_RETURN_IF_ERROR(emit(static_cast<int64_t>(l),
                                          static_cast<int64_t>(r)));
      }
    }
    return out;
  }

  for (size_t l = 0; l < left.num_rows(); ++l) {
    bool matched = false;
    if (!keys.empty()) {
      bool has_null = false;
      std::string key = RowKey(left_keys, l, &has_null);
      if (!has_null) {
        auto it = build.find(key);
        if (it != build.end()) {
          for (uint32_t r : it->second) {
            FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
            if (!ok) continue;
            matched = true;
            right_matched[r] = true;
            FEISU_RETURN_IF_ERROR(emit(static_cast<int64_t>(l), r));
          }
        }
      }
    } else {
      // No equi keys (e.g. pure range condition): nested loop.
      for (size_t r = 0; r < right.num_rows(); ++r) {
        FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
        if (!ok) continue;
        matched = true;
        right_matched[r] = true;
        FEISU_RETURN_IF_ERROR(emit(static_cast<int64_t>(l),
                                   static_cast<int64_t>(r)));
      }
    }
    if (!matched && options.type == JoinType::kLeftOuter) {
      FEISU_RETURN_IF_ERROR(emit(static_cast<int64_t>(l), -1));
    }
  }
  if (options.type == JoinType::kRightOuter) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (!right_matched[r]) {
        FEISU_RETURN_IF_ERROR(emit(-1, static_cast<int64_t>(r)));
      }
    }
  }
  return out;
}

}  // namespace feisu
