#include "exec/operators.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <unordered_map>

#include "common/hash.h"
#include "expr/evaluator.h"

namespace feisu {

namespace {

/// Precomputed, type-specialized key for one ORDER BY expression. Ordering
/// matches Value::Compare exactly — NULLs sort before everything, numeric
/// columns (bool/int64/double) compare through the same double conversion
/// the boxed path used, strings lexicographically — without constructing a
/// Value per comparison.
class SortKey {
 public:
  explicit SortKey(ColumnVector col) : col_(std::move(col)) {
    if (col_.type() == DataType::kString) return;
    nums_.reserve(col_.size());
    for (size_t i = 0; i < col_.size(); ++i) {
      double v = 0.0;
      if (!col_.IsNull(i)) {
        switch (col_.type()) {
          case DataType::kBool:
            v = col_.GetBool(i) ? 1.0 : 0.0;
            break;
          case DataType::kInt64:
            v = static_cast<double>(col_.GetInt64(i));
            break;
          case DataType::kDouble:
            v = col_.GetDouble(i);
            break;
          case DataType::kString:
            break;
        }
      }
      nums_.push_back(v);
    }
  }

  int Compare(uint32_t a, uint32_t b) const {
    bool a_null = col_.IsNull(a);
    bool b_null = col_.IsNull(b);
    if (a_null || b_null) {
      if (a_null && b_null) return 0;
      return a_null ? -1 : 1;
    }
    if (col_.type() == DataType::kString) {
      int cmp = col_.GetString(a).compare(col_.GetString(b));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    if (nums_[a] < nums_[b]) return -1;
    if (nums_[a] > nums_[b]) return 1;
    return 0;
  }

 private:
  ColumnVector col_;
  std::vector<double> nums_;  ///< unused for string columns
};

Result<std::vector<SortKey>> MakeSortKeys(
    const RecordBatch& input, const std::vector<OrderByItem>& order_by) {
  std::vector<SortKey> keys;
  keys.reserve(order_by.size());
  for (const auto& item : order_by) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*item.expr, input));
    keys.emplace_back(std::move(col));
  }
  return keys;
}

}  // namespace

Result<RecordBatch> FilterBatch(const RecordBatch& input,
                                const ExprPtr& predicate) {
  if (predicate == nullptr) return input;
  FEISU_ASSIGN_OR_RETURN(BitVector selection,
                         EvaluatePredicate(*predicate, input));
  return input.Filter(selection);
}

Result<RecordBatch> ProjectBatch(const RecordBatch& input,
                                 const std::vector<SelectItem>& items) {
  std::vector<Field> fields;
  std::vector<ColumnVector> columns;
  for (const auto& item : items) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*item.expr, input));
    fields.push_back({item.OutputName(), col.type(), true});
    columns.push_back(std::move(col));
  }
  return RecordBatch(Schema(std::move(fields)), std::move(columns));
}

Result<RecordBatch> SortBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by) {
  if (order_by.empty()) return input;
  FEISU_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                         MakeSortKeys(input, order_by));
  std::vector<uint32_t> indices(input.num_rows());
  std::iota(indices.begin(), indices.end(), 0);
  std::stable_sort(indices.begin(), indices.end(),
                   [&](uint32_t a, uint32_t b) {
                     for (size_t k = 0; k < keys.size(); ++k) {
                       int cmp = keys[k].Compare(a, b);
                       if (cmp == 0) continue;
                       return order_by[k].descending ? cmp > 0 : cmp < 0;
                     }
                     return false;
                   });
  return input.Take(indices);
}

RecordBatch LimitBatch(const RecordBatch& input, int64_t limit) {
  if (limit < 0 || static_cast<uint64_t>(limit) >= input.num_rows()) {
    return input;
  }
  std::vector<uint32_t> indices(static_cast<size_t>(limit));
  std::iota(indices.begin(), indices.end(), 0);
  return input.Take(indices);
}

Result<RecordBatch> TopNBatch(const RecordBatch& input,
                              const std::vector<OrderByItem>& order_by,
                              int64_t limit) {
  if (limit < 0 || order_by.empty()) {
    FEISU_ASSIGN_OR_RETURN(RecordBatch sorted, SortBatch(input, order_by));
    return LimitBatch(sorted, limit);
  }
  if (limit == 0) return input.Filter(BitVector(input.num_rows(), false));
  FEISU_ASSIGN_OR_RETURN(std::vector<SortKey> keys,
                         MakeSortKeys(input, order_by));
  // less(a, b): a orders strictly before b; ties break on input position
  // for stability.
  auto less = [&](uint32_t a, uint32_t b) {
    for (size_t k = 0; k < keys.size(); ++k) {
      int cmp = keys[k].Compare(a, b);
      if (cmp == 0) continue;
      return order_by[k].descending ? cmp > 0 : cmp < 0;
    }
    return a < b;
  };
  // Max-heap of the current best `limit` rows (heap top = worst kept row).
  std::vector<uint32_t> heap;
  heap.reserve(static_cast<size_t>(limit));
  for (uint32_t row = 0; row < input.num_rows(); ++row) {
    if (heap.size() < static_cast<size_t>(limit)) {
      heap.push_back(row);
      std::push_heap(heap.begin(), heap.end(), less);
    } else if (less(row, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.back() = row;
      std::push_heap(heap.begin(), heap.end(), less);
    }
  }
  std::sort(heap.begin(), heap.end(), less);
  return input.Take(heap);
}

namespace {

/// Splits a condition into conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == ExprKind::kLogical &&
      expr->logical_op() == LogicalOp::kAnd) {
    SplitConjuncts(expr->child(0), out);
    SplitConjuncts(expr->child(1), out);
    return;
  }
  out->push_back(expr);
}

/// Builds the join output schema, qualifying collided names with prefixes,
/// and returns per-side output field names.
Schema JoinOutputSchema(const RecordBatch& left, const RecordBatch& right,
                        const std::string& left_prefix,
                        const std::string& right_prefix,
                        std::vector<std::string>* left_names,
                        std::vector<std::string>* right_names) {
  std::vector<Field> fields;
  auto collides = [&](const std::string& name, const Schema& other) {
    return other.HasField(name);
  };
  for (const auto& f : left.schema().fields()) {
    Field out = f;
    if (collides(f.name, right.schema()) && !left_prefix.empty()) {
      out.name = left_prefix + "." + f.name;
    }
    out.nullable = true;
    left_names->push_back(out.name);
    fields.push_back(out);
  }
  for (const auto& f : right.schema().fields()) {
    Field out = f;
    if (collides(f.name, left.schema()) && !right_prefix.empty()) {
      out.name = right_prefix + "." + f.name;
    }
    out.nullable = true;
    right_names->push_back(out.name);
    fields.push_back(out);
  }
  return Schema(std::move(fields));
}

struct EquiKey {
  ExprPtr left_expr;   // evaluated against the left batch
  ExprPtr right_expr;  // evaluated against the right batch
};

/// Classifies condition conjuncts into equi-join keys and residuals.
void ClassifyConjuncts(const std::vector<ExprPtr>& conjuncts,
                       const RecordBatch& left, const RecordBatch& right,
                       std::vector<EquiKey>* keys,
                       std::vector<ExprPtr>* residual) {
  for (const auto& c : conjuncts) {
    if (c->kind() == ExprKind::kComparison &&
        c->compare_op() == CompareOp::kEq &&
        c->child(0)->kind() == ExprKind::kColumnRef &&
        c->child(1)->kind() == ExprKind::kColumnRef) {
      const ExprPtr& a = c->child(0);
      const ExprPtr& b = c->child(1);
      bool a_left = LookupColumn(*a, left) != nullptr;
      bool a_right = LookupColumn(*a, right) != nullptr;
      bool b_left = LookupColumn(*b, left) != nullptr;
      bool b_right = LookupColumn(*b, right) != nullptr;
      // Qualified refs bind unambiguously; prefer (left, right) pairing.
      if (a_left && b_right && !(a_right && b_left)) {
        keys->push_back({a, b});
        continue;
      }
      if (a_right && b_left && !(a_left && b_right)) {
        keys->push_back({b, a});
        continue;
      }
      if (a_left && b_right) {  // ambiguous both ways: pick (a,b)
        keys->push_back({a, b});
        continue;
      }
    }
    residual->push_back(c);
  }
}

/// Type-specialized equi-join key columns for one side of a hash join.
/// Each cell collapses to one 64-bit word (type switch hoisted out of the
/// row loop); equality keeps the old serialized-Value byte-key semantics:
/// the column type participates (an int64 key never matches a double key,
/// even at the same numeric value), doubles compare bitwise, strings by
/// content, and a NULL in any key column disqualifies the row.
class JoinKeys {
 public:
  explicit JoinKeys(std::vector<ColumnVector> cols) : cols_(std::move(cols)) {
    num_rows_ = cols_.empty() ? 0 : cols_[0].size();
    words_.resize(cols_.size());
    interned_.assign(cols_.size(), 0);
    for (size_t c = 0; c < cols_.size(); ++c) {
      const ColumnVector& col = cols_[c];
      std::vector<uint64_t>& w = words_[c];
      w.reserve(num_rows_);
      switch (col.type()) {
        case DataType::kBool:
          for (size_t i = 0; i < num_rows_; ++i) {
            w.push_back(col.GetBool(i) ? 1 : 0);
          }
          break;
        case DataType::kInt64:
          for (size_t i = 0; i < num_rows_; ++i) {
            w.push_back(static_cast<uint64_t>(col.GetInt64(i)));
          }
          break;
        case DataType::kDouble:
          for (size_t i = 0; i < num_rows_; ++i) {
            w.push_back(std::bit_cast<uint64_t>(col.GetDouble(i)));
          }
          break;
        case DataType::kString:
          for (size_t i = 0; i < num_rows_; ++i) {
            w.push_back(HashString(col.GetString(i)));
          }
          break;
      }
    }
    hashes_.reserve(num_rows_);
    has_null_.reserve(num_rows_);
    for (size_t i = 0; i < num_rows_; ++i) {
      bool has_null = false;
      uint64_t h = 0x9E3779B97F4A7C15ULL;
      for (size_t c = 0; c < cols_.size(); ++c) {
        if (cols_[c].IsNull(i)) {
          has_null = true;
          break;
        }
        h = HashCombine(h, static_cast<uint64_t>(cols_[c].type()));
        h = HashCombine(h, words_[c][i]);
      }
      has_null_.push_back(has_null ? 1 : 0);
      hashes_.push_back(has_null ? 0 : h);
    }
  }

  bool HasNull(size_t row) const { return has_null_[row] != 0; }
  uint64_t Hash(size_t row) const { return hashes_[row]; }

  /// Dictionary-style interning of string key columns shared by both
  /// sides: every distinct build-side string gets a code (the build row of
  /// its first occurrence), assigned with one content comparison per
  /// distinct value; probe-side strings resolve to the matching code or a
  /// never-matching sentinel. RowsEqual then compares codes and skips the
  /// per-candidate byte comparison entirely — the same code-domain trick
  /// the dict predicate kernels use. Bucket hashes are computed before the
  /// rewrite and left untouched, so candidate visit order — and therefore
  /// output row order — is byte-identical to the uninterned path.
  static void InternStringColumns(JoinKeys* build, JoinKeys* probe) {
    constexpr uint64_t kMiss = ~0ULL;
    for (size_t c = 0; c < build->cols_.size(); ++c) {
      if (build->cols_[c].type() != DataType::kString ||
          probe->cols_[c].type() != DataType::kString) {
        continue;
      }
      size_t cap = 16;
      while (cap < build->num_rows_ * 2) cap <<= 1;
      std::vector<uint32_t> slot_row(cap, UINT32_MAX);
      const ColumnVector& bcol = build->cols_[c];
      const std::vector<uint64_t>& bw = build->words_[c];
      // Linear probe over the precomputed content-hash words; `insert`
      // claims the first empty slot for the build row, lookups return the
      // owning row's code (its row id) or kMiss.
      auto intern = [&](uint64_t word, const std::string& s, bool insert,
                        uint32_t row) -> uint64_t {
        size_t idx = word & (cap - 1);
        while (true) {
          uint32_t owner = slot_row[idx];
          if (owner == UINT32_MAX) {
            if (!insert) return kMiss;
            slot_row[idx] = row;
            return row;
          }
          if (bw[owner] == word && bcol.GetString(owner) == s) return owner;
          idx = (idx + 1) & (cap - 1);
        }
      };
      std::vector<uint64_t> new_bw(build->num_rows_);
      for (size_t i = 0; i < build->num_rows_; ++i) {
        new_bw[i] =
            intern(bw[i], bcol.GetString(i), true, static_cast<uint32_t>(i));
      }
      const ColumnVector& pcol = probe->cols_[c];
      std::vector<uint64_t>& pw = probe->words_[c];
      for (size_t i = 0; i < probe->num_rows_; ++i) {
        pw[i] = intern(pw[i], pcol.GetString(i), false, 0);
      }
      build->words_[c] = std::move(new_bw);
      build->interned_[c] = 1;
      probe->interned_[c] = 1;
    }
  }

  /// True iff the old byte keys would have been equal. The hash is only a
  /// bucket address; candidates verify here (strings by actual content —
  /// their word is just a content hash).
  static bool RowsEqual(const JoinKeys& a, size_t ar, const JoinKeys& b,
                        size_t br) {
    for (size_t c = 0; c < a.cols_.size(); ++c) {
      const ColumnVector& ac = a.cols_[c];
      const ColumnVector& bc = b.cols_[c];
      if (ac.type() != bc.type()) return false;
      if (a.words_[c][ar] != b.words_[c][br]) return false;
      // Interned string cells carry a code as their word: equal codes mean
      // equal content, no byte comparison needed.
      if (ac.type() == DataType::kString &&
          !(a.interned_[c] != 0 && b.interned_[c] != 0) &&
          ac.GetString(ar) != bc.GetString(br)) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<ColumnVector> cols_;
  std::vector<std::vector<uint64_t>> words_;  ///< one word per cell
  std::vector<uint64_t> hashes_;              ///< 0 for NULL-key rows
  std::vector<uint8_t> has_null_;
  std::vector<uint8_t> interned_;  ///< per column: words are dict codes
  size_t num_rows_ = 0;
};

}  // namespace

Result<RecordBatch> HashJoinBatches(const RecordBatch& left,
                                    const RecordBatch& right,
                                    const HashJoinOptions& options) {
  std::vector<std::string> left_names;
  std::vector<std::string> right_names;
  Schema out_schema =
      JoinOutputSchema(left, right, options.left_prefix, options.right_prefix,
                       &left_names, &right_names);

  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(options.condition, &conjuncts);
  std::vector<EquiKey> keys;
  std::vector<ExprPtr> residual;
  ClassifyConjuncts(conjuncts, left, right, &keys, &residual);

  // Evaluate key expressions and collapse them into typed per-row words.
  std::vector<ColumnVector> left_key_cols;
  std::vector<ColumnVector> right_key_cols;
  for (const auto& key : keys) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector lcol,
                           EvaluateExpr(*key.left_expr, left));
    FEISU_ASSIGN_OR_RETURN(ColumnVector rcol,
                           EvaluateExpr(*key.right_expr, right));
    left_key_cols.push_back(std::move(lcol));
    right_key_cols.push_back(std::move(rcol));
  }
  JoinKeys left_keys(std::move(left_key_cols));
  JoinKeys right_keys(std::move(right_key_cols));
  if (!keys.empty()) {
    // Right is the build side, left probes it.
    JoinKeys::InternStringColumns(&right_keys, &left_keys);
  }

  // Build side: right, bucketed by key hash (candidates verify with
  // RowsEqual at probe time).
  std::unordered_map<uint64_t, std::vector<uint32_t>> build;
  if (!keys.empty()) {
    build.reserve(right.num_rows());
    for (size_t row = 0; row < right.num_rows(); ++row) {
      if (right_keys.HasNull(row)) continue;  // NULL keys never match
      build[right_keys.Hash(row)].push_back(static_cast<uint32_t>(row));
    }
  }

  // Matches accumulate as row-id pairs (-1 = outer-join NULL padding);
  // output columns materialize once at the end with a typed gather instead
  // of boxing every cell through AppendRow.
  std::vector<int64_t> left_rows;
  std::vector<int64_t> right_rows;
  auto emit = [&](int64_t lrow, int64_t rrow) {
    left_rows.push_back(lrow);
    right_rows.push_back(rrow);
  };
  auto materialize = [&]() -> RecordBatch {
    std::vector<ColumnVector> out_cols;
    out_cols.reserve(left.num_columns() + right.num_columns());
    for (size_t c = 0; c < left.num_columns(); ++c) {
      out_cols.push_back(left.column(c).GatherOrNull(left_rows));
    }
    for (size_t c = 0; c < right.num_columns(); ++c) {
      out_cols.push_back(right.column(c).GatherOrNull(right_rows));
    }
    return RecordBatch(out_schema, std::move(out_cols));
  };

  // Residual evaluation happens on a single combined row; build a one-row
  // batch lazily only when residuals exist.
  auto residual_ok = [&](size_t lrow, size_t rrow) -> Result<bool> {
    if (residual.empty()) return true;
    RecordBatch pair(out_schema);
    std::vector<Value> row;
    for (size_t c = 0; c < left.num_columns(); ++c) {
      // Builds one single-row batch for residual evaluation, not a
      // per-row input scan. feisu-lint: allow(per-row-getvalue)
      row.push_back(left.column(c).GetValue(lrow));
    }
    for (size_t c = 0; c < right.num_columns(); ++c) {
      // feisu-lint: allow(per-row-getvalue): single-row residual batch.
      row.push_back(right.column(c).GetValue(rrow));
    }
    FEISU_RETURN_IF_ERROR(pair.AppendRow(row));
    for (const auto& r : residual) {
      FEISU_ASSIGN_OR_RETURN(BitVector bits, EvaluatePredicate(*r, pair));
      if (!bits.Get(0)) return false;
    }
    return true;
  };

  std::vector<bool> right_matched(right.num_rows(), false);

  if (options.type == JoinType::kCross ||
      (keys.empty() && options.type == JoinType::kInner)) {
    for (size_t l = 0; l < left.num_rows(); ++l) {
      for (size_t r = 0; r < right.num_rows(); ++r) {
        FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
        if (ok) emit(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
    }
    return materialize();
  }

  for (size_t l = 0; l < left.num_rows(); ++l) {
    bool matched = false;
    if (!keys.empty()) {
      if (!left_keys.HasNull(l)) {
        auto it = build.find(left_keys.Hash(l));
        if (it != build.end()) {
          for (uint32_t r : it->second) {
            if (!JoinKeys::RowsEqual(left_keys, l, right_keys, r)) continue;
            FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
            if (!ok) continue;
            matched = true;
            right_matched[r] = true;
            emit(static_cast<int64_t>(l), r);
          }
        }
      }
    } else {
      // No equi keys (e.g. pure range condition): nested loop.
      for (size_t r = 0; r < right.num_rows(); ++r) {
        FEISU_ASSIGN_OR_RETURN(bool ok, residual_ok(l, r));
        if (!ok) continue;
        matched = true;
        right_matched[r] = true;
        emit(static_cast<int64_t>(l), static_cast<int64_t>(r));
      }
    }
    if (!matched && options.type == JoinType::kLeftOuter) {
      emit(static_cast<int64_t>(l), -1);
    }
  }
  if (options.type == JoinType::kRightOuter) {
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (!right_matched[r]) {
        emit(-1, static_cast<int64_t>(r));
      }
    }
  }
  return materialize();
}

}  // namespace feisu
