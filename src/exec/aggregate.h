#ifndef FEISU_EXEC_AGGREGATE_H_
#define FEISU_EXEC_AGGREGATE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/record_batch.h"
#include "plan/logical_plan.h"

namespace feisu {

/// Distributed-friendly hash aggregation. Leaf servers Consume() raw rows
/// and emit PartialResult() batches; stem servers ConsumePartial() those
/// batches to merge them (possibly over several tree levels); the master
/// calls FinalResult() to finalize values (AVG = sum/count etc.).
///
/// Partial exchange schema: one column per group key (named by the group
/// expression), then per aggregate spec `<name>#count` (INT64),
/// `<name>#sum` (DOUBLE, numeric aggs only) and `<name>#min` / `<name>#max`
/// (arg type, MIN/MAX only).
///
/// The parsed WITHIN scope of an aggregate is accepted and carried but — as
/// ingested data is already flattened to columns — aggregation within a
/// record collapses to ordinary per-group aggregation here.
class Aggregator {
 public:
  /// `input_schema` is the schema of raw batches fed to Consume (used to
  /// type MIN/MAX/SUM outputs). Group expressions must be scalar.
  static Result<Aggregator> Make(std::vector<ExprPtr> group_by,
                                 std::vector<AggSpec> specs,
                                 const Schema& input_schema);

  /// Accumulates raw input rows.
  Status Consume(const RecordBatch& batch);

  /// Accumulates `rows` matched rows without materializing any column —
  /// only valid for an ungrouped aggregation whose specs are all COUNT(*).
  /// This is the paper's Fig. 7 fast path: a fully index-served COUNT(*)
  /// never touches the data.
  Status ConsumeCount(size_t rows);

  /// Accumulates a partial-state batch produced by another Aggregator.
  Status ConsumePartial(const RecordBatch& batch);

  /// Emits the current groups as partial state.
  Result<RecordBatch> PartialResult() const;

  /// Emits finalized per-group values: group keys then one column per spec
  /// named spec.output_name.
  Result<RecordBatch> FinalResult() const;

  /// Schema of PartialResult batches.
  const Schema& partial_schema() const { return partial_schema_; }
  /// Schema of FinalResult batches.
  const Schema& final_schema() const { return final_schema_; }

  size_t num_groups() const { return groups_.size(); }

 private:
  struct AggState {
    int64_t count = 0;
    double sum = 0;
    Value min;
    Value max;
  };
  struct Group {
    std::vector<Value> keys;
    std::vector<AggState> states;
  };

  Aggregator() = default;

  Group& GroupFor(const std::vector<Value>& keys);

  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> specs_;
  std::vector<DataType> arg_types_;   // per spec (kInt64 for COUNT(*))
  std::vector<std::string> group_names_;
  Schema partial_schema_;
  Schema final_schema_;
  std::map<std::string, Group> groups_;  // serialized key -> group
};

}  // namespace feisu

#endif  // FEISU_EXEC_AGGREGATE_H_
