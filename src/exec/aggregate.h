#ifndef FEISU_EXEC_AGGREGATE_H_
#define FEISU_EXEC_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "columnar/encoding.h"
#include "columnar/record_batch.h"
#include "plan/logical_plan.h"

namespace feisu {

/// Hot-path counters for one Aggregator instance; folded into
/// TaskStats/QueryStats so FormatQueryStats can report them alongside the
/// decode counters.
struct AggStats {
  uint64_t groups_created = 0;
  /// Slot inspections during find-or-insert (collisions show up as
  /// probes > rows consumed).
  uint64_t hash_probes = 0;
  /// Table growth events that re-slotted existing groups.
  uint64_t rehashes = 0;
  /// Batches whose key and argument columns were all null-free, so every
  /// kernel ran without per-row validity checks.
  uint64_t null_fast_path_batches = 0;
  /// Groups created through the dictionary-code path (ConsumeDictKeyed):
  /// their key string was touched once, at insertion, instead of once per
  /// input row.
  uint64_t code_domain_groups = 0;
};

/// Distributed-friendly hash aggregation. Leaf servers Consume() raw rows
/// and emit PartialResult() batches; stem servers ConsumePartial() those
/// batches to merge them (possibly over several tree levels); the master
/// calls FinalResult() to finalize values (AVG = sum/count etc.).
///
/// Partial exchange schema: one column per group key (named by the group
/// expression), then per aggregate spec `<name>#count` (INT64),
/// `<name>#sum` (DOUBLE, numeric aggs only) and `<name>#min` / `<name>#max`
/// (arg type, MIN/MAX only).
///
/// Internally groups live in a flat open-addressing hash table keyed by
/// typed per-row key words (one 64-bit word per key cell, string cells
/// verified by content), and aggregate state is columnar: one
/// count/sum/min/max array per spec, accumulated by batch-at-a-time typed
/// kernels. Emission sorts groups by their serialized key bytes, which is
/// exactly the iteration order of the ordered-map implementation this
/// replaced — partial and final batches are byte-identical to it, and the
/// output never depends on hash-table iteration order.
///
/// The parsed WITHIN scope of an aggregate is accepted and carried but — as
/// ingested data is already flattened to columns — aggregation within a
/// record collapses to ordinary per-group aggregation here.
class Aggregator {
 public:
  /// `input_schema` is the schema of raw batches fed to Consume (used to
  /// type MIN/MAX/SUM outputs). Group expressions must be scalar.
  static Result<Aggregator> Make(std::vector<ExprPtr> group_by,
                                 std::vector<AggSpec> specs,
                                 const Schema& input_schema);

  /// Accumulates raw input rows.
  Status Consume(const RecordBatch& batch);

  /// Compressed-domain variant of Consume for a single dictionary-encoded
  /// string group key: `codes` carries the row's dict code per row of
  /// `batch` (kNullCode for NULL rows) plus the dictionary itself, as
  /// extracted by TryExtractDictCodes. Each distinct code hashes its key
  /// string into the group table once per batch; every repeat resolves
  /// through a code -> group memo without touching string bytes. Aggregate
  /// arguments are still evaluated from `batch`. Groups, emission order and
  /// result bytes are identical to Consume over the decoded key column.
  Status ConsumeDictKeyed(const RecordBatch& batch,
                          const DictColumnCodes& codes);

  /// Accumulates `rows` matched rows without materializing any column —
  /// only valid for an ungrouped aggregation whose specs are all COUNT(*).
  /// This is the paper's Fig. 7 fast path: a fully index-served COUNT(*)
  /// never touches the data.
  Status ConsumeCount(size_t rows);

  /// Accumulates a partial-state batch produced by another Aggregator.
  Status ConsumePartial(const RecordBatch& batch);

  /// Emits the current groups as partial state.
  Result<RecordBatch> PartialResult() const;

  /// Emits finalized per-group values: group keys then one column per spec
  /// named spec.output_name.
  Result<RecordBatch> FinalResult() const;

  /// Schema of PartialResult batches.
  const Schema& partial_schema() const { return partial_schema_; }
  /// Schema of FinalResult batches.
  const Schema& final_schema() const { return final_schema_; }

  size_t num_groups() const { return num_groups_; }

  const AggStats& stats() const { return stats_; }

 private:
  /// Typed per-group key storage, struct-of-arrays: one KeyColumn per group
  /// expression, one entry per group. `words` collapses every cell to one
  /// 64-bit word (bool 0/1, int64 bits, double bit pattern, string content
  /// hash); equality additionally requires the runtime type to match and
  /// string content to compare equal, which reproduces the serialized-byte
  /// key equality of the previous implementation exactly.
  struct KeyColumn {
    std::vector<uint64_t> words;
    std::vector<uint8_t> nulls;
    std::vector<DataType> types;      ///< runtime type of the stored value
    std::vector<std::string> strings; ///< content for kString cells
  };

  /// Columnar accumulator arrays for one aggregate spec (indexed by group).
  /// min/max keep the authoritative boxed Value (so emission and
  /// cross-type ordering match Value::Compare bit for bit) plus a cached
  /// numeric view so the typed kernels compare doubles, not variants.
  struct SpecState {
    std::vector<int64_t> counts;
    std::vector<double> sums;       ///< NeedsSum specs only
    std::vector<Value> min_boxed;   ///< MIN/MAX specs only
    std::vector<Value> max_boxed;
    std::vector<double> min_num;    ///< AsDouble cache, valid when numeric
    std::vector<double> max_num;
  };

  /// Per-row typed key view of one input batch; defined in aggregate.cc.
  struct BatchKeys;

  Aggregator() = default;

  /// Builds words + combined hashes for the given key columns over `n`
  /// rows (`n` is explicit so a key-less global aggregation still gets one
  /// hash per input row).
  BatchKeys MakeBatchKeys(std::vector<const ColumnVector*> cols,
                          size_t n) const;

  /// Probes the flat table for the row's key; inserts a new group (typed
  /// key data, serialized key bytes, zeroed state slots) on miss.
  uint32_t FindOrInsert(const BatchKeys& keys, size_t row);

  /// Single-string-key find-or-insert for the dictionary-code path
  /// (`key == nullptr` is the NULL key). Hash chain, stored key cells and
  /// serialized key bytes replicate FindOrInsert over a string column
  /// exactly, so groups are shared freely between the two paths.
  uint32_t FindOrInsertDictKey(const std::string* key);

  bool GroupEquals(uint32_t group, const BatchKeys& keys, size_t row) const;

  /// Appends the row's key cells as a new group and its serialized bytes.
  void AppendGroupKeys(const BatchKeys& keys, size_t row);

  /// Appends one zeroed state slot to every spec's arrays.
  void AppendStateSlots();

  /// Creates (if needed) the single key-less group of a global aggregation.
  uint32_t EnsureGlobalGroup();

  /// Re-slots every group into a table of `capacity` slots (a power of 2).
  void Grow(size_t capacity);

  /// Typed accumulation of one spec over one batch. `arg` may be null for
  /// COUNT(*). `gids` maps batch row -> group id.
  void AccumulateSpec(size_t s, const ColumnVector* arg,
                      const std::vector<uint32_t>& gids);

  /// Merges one partial batch's state columns for spec `s`, starting at
  /// column index `*col` of `batch` (advanced past the consumed columns).
  void MergePartialSpec(size_t s, const RecordBatch& batch, size_t* col,
                        const std::vector<uint32_t>& gids);

  /// Group ids sorted by serialized key bytes — the deterministic emission
  /// order (identical to the ordered-map order this class replaced).
  std::vector<uint32_t> EmissionOrder() const;

  /// Emits the key columns for groups in `order` into `out` (columns
  /// [0, group_by_.size())), replicating AppendRow's type checking.
  Status EmitKeyColumns(const std::vector<uint32_t>& order,
                        RecordBatch* out) const;

  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> specs_;
  std::vector<DataType> arg_types_;   // per spec (kInt64 for COUNT(*))
  std::vector<std::string> group_names_;
  Schema partial_schema_;
  Schema final_schema_;

  // Flat open-addressing table (linear probing, power-of-two capacity).
  // slots_[i] holds group_id + 1; 0 means empty.
  std::vector<uint32_t> slots_;
  std::vector<uint64_t> slot_hashes_;
  size_t slot_mask_ = 0;
  size_t num_groups_ = 0;

  std::vector<KeyColumn> key_cols_;          // one per group expression
  std::vector<uint64_t> group_hashes_;       // per group, for re-slotting
  std::vector<std::string> serialized_keys_; // per group, emission ordering
  std::vector<SpecState> states_;            // one per spec

  AggStats stats_;
};

}  // namespace feisu

#endif  // FEISU_EXEC_AGGREGATE_H_
