#include "exec/aggregate.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/hash.h"
#include "columnar/block.h"
#include "expr/evaluator.h"

namespace feisu {

namespace {

constexpr uint64_t kKeyHashSeed = 0xCBF29CE484222325ULL;
constexpr size_t kInitialSlots = 16;

bool NeedsSum(AggFunc func) {
  return func == AggFunc::kSum || func == AggFunc::kAvg;
}
bool NeedsMinMax(AggFunc func) {
  return func == AggFunc::kMin || func == AggFunc::kMax;
}

DataType FinalType(AggFunc func, DataType arg_type) {
  switch (func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
      return arg_type == DataType::kDouble ? DataType::kDouble
                                           : DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
  }
  return DataType::kInt64;
}

/// One cell's numeric view, matching Value::AsDouble for the given type.
double NumericWord(DataType type, uint64_t word) {
  switch (type) {
    case DataType::kBool:
      return word != 0 ? 1.0 : 0.0;
    case DataType::kInt64:
      return static_cast<double>(static_cast<int64_t>(word));
    case DataType::kDouble:
      return std::bit_cast<double>(word);
    case DataType::kString:
      break;
  }
  return 0.0;
}

/// Replicates RecordBatch::AppendRow's per-cell type check (NULL always
/// accepted, exact type match otherwise, numeric widened into a double
/// column) so typed emission errors exactly where the row path did.
Status AppendCell(ColumnVector* col, const Value& v,
                  const std::string& field_name) {
  if (!v.is_null() && v.type() != col->type() &&
      !(v.is_numeric() && col->type() == DataType::kDouble)) {
    return Status::InvalidArgument("type mismatch for column " + field_name);
  }
  col->AppendValue(v);
  return Status::OK();
}

}  // namespace

/// Typed per-row view of one batch's key columns: one word per cell plus
/// one combined hash per row. Hash input covers the null flag, the runtime
/// type tag and the word, mirroring what the serialized key bytes encode.
struct Aggregator::BatchKeys {
  std::vector<const ColumnVector*> cols;
  std::vector<std::vector<uint64_t>> words;  ///< [col][row]
  std::vector<uint64_t> hashes;              ///< [row]
};

Result<Aggregator> Aggregator::Make(std::vector<ExprPtr> group_by,
                                    std::vector<AggSpec> specs,
                                    const Schema& input_schema) {
  Aggregator agg;
  agg.group_by_ = std::move(group_by);
  agg.specs_ = std::move(specs);

  std::vector<Field> partial_fields;
  std::vector<Field> final_fields;
  for (const auto& g : agg.group_by_) {
    std::string name =
        g->kind() == ExprKind::kColumnRef ? g->column() : g->ToString();
    agg.group_names_.push_back(name);
    FEISU_ASSIGN_OR_RETURN(DataType type, InferType(*g, input_schema));
    partial_fields.push_back({name, type, true});
    final_fields.push_back({name, type, true});
  }
  for (const auto& spec : agg.specs_) {
    DataType arg_type = DataType::kInt64;
    if (spec.arg != nullptr) {
      FEISU_ASSIGN_OR_RETURN(arg_type, InferType(*spec.arg, input_schema));
      if (arg_type == DataType::kString && NeedsSum(spec.func)) {
        return Status::InvalidArgument("SUM/AVG over string column");
      }
    } else if (spec.func != AggFunc::kCount) {
      return Status::InvalidArgument("'*' argument requires COUNT");
    }
    agg.arg_types_.push_back(arg_type);
    partial_fields.push_back(
        {spec.output_name + "#count", DataType::kInt64, false});
    if (NeedsSum(spec.func)) {
      partial_fields.push_back(
          {spec.output_name + "#sum", DataType::kDouble, false});
    }
    if (NeedsMinMax(spec.func)) {
      partial_fields.push_back({spec.output_name + "#min", arg_type, true});
      partial_fields.push_back({spec.output_name + "#max", arg_type, true});
    }
    final_fields.push_back(
        {spec.output_name, FinalType(spec.func, arg_type), true});
  }
  agg.partial_schema_ = Schema(std::move(partial_fields));
  agg.final_schema_ = Schema(std::move(final_fields));
  agg.key_cols_.resize(agg.group_by_.size());
  agg.states_.resize(agg.specs_.size());
  return agg;
}

Aggregator::BatchKeys Aggregator::MakeBatchKeys(
    std::vector<const ColumnVector*> cols, size_t n) const {
  BatchKeys keys;
  keys.cols = std::move(cols);
  keys.words.resize(keys.cols.size());
  for (size_t c = 0; c < keys.cols.size(); ++c) {
    const ColumnVector& col = *keys.cols[c];
    std::vector<uint64_t>& w = keys.words[c];
    w.resize(n, 0);
    switch (col.type()) {
      case DataType::kBool:
        for (size_t i = 0; i < n; ++i) w[i] = col.bools()[i] != 0 ? 1 : 0;
        break;
      case DataType::kInt64:
        for (size_t i = 0; i < n; ++i) {
          w[i] = static_cast<uint64_t>(col.ints()[i]);
        }
        break;
      case DataType::kDouble:
        for (size_t i = 0; i < n; ++i) {
          w[i] = std::bit_cast<uint64_t>(col.doubles()[i]);
        }
        break;
      case DataType::kString:
        for (size_t i = 0; i < n; ++i) {
          if (!col.IsNull(i)) w[i] = HashString(col.strings()[i]);
        }
        break;
    }
  }
  keys.hashes.assign(n, kKeyHashSeed);
  for (size_t c = 0; c < keys.cols.size(); ++c) {
    const ColumnVector& col = *keys.cols[c];
    uint64_t type_tag = static_cast<uint64_t>(col.type()) + 1;
    for (size_t i = 0; i < n; ++i) {
      if (col.IsNull(i)) {
        keys.hashes[i] = HashCombine(keys.hashes[i], 0);
      } else {
        keys.hashes[i] = HashCombine(keys.hashes[i], type_tag);
        keys.hashes[i] = HashCombine(keys.hashes[i], keys.words[c][i]);
      }
    }
  }
  return keys;
}

bool Aggregator::GroupEquals(uint32_t group, const BatchKeys& keys,
                             size_t row) const {
  for (size_t c = 0; c < keys.cols.size(); ++c) {
    const ColumnVector& col = *keys.cols[c];
    const KeyColumn& stored = key_cols_[c];
    bool row_null = col.IsNull(row);
    if (row_null != (stored.nulls[group] != 0)) return false;
    if (row_null) continue;
    if (col.type() != stored.types[group]) return false;
    if (keys.words[c][row] != stored.words[group]) return false;
    if (col.type() == DataType::kString &&
        col.strings()[row] != stored.strings[group]) {
      return false;
    }
  }
  return true;
}

void Aggregator::AppendGroupKeys(const BatchKeys& keys, size_t row) {
  std::string serialized;
  for (size_t c = 0; c < keys.cols.size(); ++c) {
    const ColumnVector& col = *keys.cols[c];
    KeyColumn& stored = key_cols_[c];
    bool row_null = col.IsNull(row);
    stored.nulls.push_back(row_null ? 1 : 0);
    stored.types.push_back(col.type());
    stored.words.push_back(row_null ? 0 : keys.words[c][row]);
    stored.strings.emplace_back(
        !row_null && col.type() == DataType::kString ? col.strings()[row]
                                                     : std::string());
    // Runs once per *group* insert, not per row, and serialization needs
    // the boxed value anyway. feisu-lint: allow(per-row-getvalue)
    SerializeValue(&serialized, col.GetValue(row));
  }
  serialized_keys_.push_back(std::move(serialized));
}

void Aggregator::AppendStateSlots() {
  for (size_t s = 0; s < specs_.size(); ++s) {
    SpecState& st = states_[s];
    st.counts.push_back(0);
    if (NeedsSum(specs_[s].func)) st.sums.push_back(0.0);
    if (NeedsMinMax(specs_[s].func)) {
      st.min_boxed.emplace_back();
      st.max_boxed.emplace_back();
      st.min_num.push_back(0.0);
      st.max_num.push_back(0.0);
    }
  }
}

void Aggregator::Grow(size_t capacity) {
  if (!slots_.empty()) ++stats_.rehashes;
  slots_.assign(capacity, 0);
  slot_hashes_.assign(capacity, 0);
  slot_mask_ = capacity - 1;
  for (size_t g = 0; g < num_groups_; ++g) {
    size_t idx = group_hashes_[g] & slot_mask_;
    while (slots_[idx] != 0) idx = (idx + 1) & slot_mask_;
    slots_[idx] = static_cast<uint32_t>(g) + 1;
    slot_hashes_[idx] = group_hashes_[g];
  }
}

uint32_t Aggregator::FindOrInsert(const BatchKeys& keys, size_t row) {
  if (slots_.empty()) Grow(kInitialSlots);
  uint64_t h = keys.hashes[row];
  size_t idx = h & slot_mask_;
  while (true) {
    ++stats_.hash_probes;
    uint32_t slot = slots_[idx];
    if (slot == 0) break;
    if (slot_hashes_[idx] == h && GroupEquals(slot - 1, keys, row)) {
      return slot - 1;
    }
    idx = (idx + 1) & slot_mask_;
  }
  uint32_t group = static_cast<uint32_t>(num_groups_++);
  ++stats_.groups_created;
  slots_[idx] = group + 1;
  slot_hashes_[idx] = h;
  group_hashes_.push_back(h);
  AppendGroupKeys(keys, row);
  AppendStateSlots();
  // Keep the load factor under 0.7 so probe chains stay short.
  if ((num_groups_ + 1) * 10 > slots_.size() * 7) Grow(slots_.size() * 2);
  return group;
}

uint32_t Aggregator::EnsureGlobalGroup() {
  if (num_groups_ == 0) {
    if (slots_.empty()) Grow(kInitialSlots);
    size_t idx = kKeyHashSeed & slot_mask_;
    ++stats_.hash_probes;
    slots_[idx] = 1;
    slot_hashes_[idx] = kKeyHashSeed;
    group_hashes_.push_back(kKeyHashSeed);
    serialized_keys_.emplace_back();
    AppendStateSlots();
    num_groups_ = 1;
    ++stats_.groups_created;
  }
  return 0;
}

namespace {

/// min/max update: replicates `if (state.min.is_null() ||
/// v.Compare(state.min) < 0) state.min = v;` with the Compare hoisted into
/// a double comparison whenever the stored value is numeric. `dir` is -1
/// for MIN, +1 for MAX.
template <int dir>
inline void UpdateMinMaxNumeric(std::vector<Value>& boxed,
                                std::vector<double>& num, uint32_t g,
                                double v_num, const Value& v_boxed) {
  if (boxed[g].is_null()) {
    boxed[g] = v_boxed;
    num[g] = v_num;
    return;
  }
  if (boxed[g].is_numeric()) {
    if (dir < 0 ? v_num < num[g] : v_num > num[g]) {
      boxed[g] = v_boxed;
      num[g] = v_num;
    }
    return;
  }
  // Stored value is a string (mixed runtime types): defer to Value::Compare
  // so the cross-type ordering matches the boxed path exactly.
  int cmp = v_boxed.Compare(boxed[g]);
  if (dir < 0 ? cmp < 0 : cmp > 0) {
    boxed[g] = v_boxed;
    num[g] = v_num;
  }
}

template <int dir>
inline void UpdateMinMaxString(std::vector<Value>& boxed,
                               std::vector<double>& num, uint32_t g,
                               const std::string& v) {
  if (boxed[g].is_null()) {
    boxed[g] = Value::String(v);
    return;
  }
  if (boxed[g].type() == DataType::kString) {
    int cmp = v.compare(boxed[g].string_value());
    if (dir < 0 ? cmp < 0 : cmp > 0) boxed[g] = Value::String(v);
    return;
  }
  Value v_boxed = Value::String(v);
  int cmp = v_boxed.Compare(boxed[g]);
  if (dir < 0 ? cmp < 0 : cmp > 0) {
    boxed[g] = std::move(v_boxed);
    num[g] = 0.0;
  }
}

}  // namespace

void Aggregator::AccumulateSpec(size_t s, const ColumnVector* arg,
                                const std::vector<uint32_t>& gids) {
  SpecState& st = states_[s];
  size_t n = gids.size();
  if (arg == nullptr) {  // COUNT(*)
    for (size_t i = 0; i < n; ++i) ++st.counts[gids[i]];
    return;
  }
  const AggFunc func = specs_[s].func;
  const bool needs_sum = NeedsSum(func);
  const bool needs_minmax = NeedsMinMax(func);
  const bool null_free = arg->NullCount() == 0;

  // SQL semantics: NULL arguments don't aggregate (skip count/sum/minmax).
  auto for_each_valid = [&](auto&& fn) {
    if (null_free) {
      for (size_t i = 0; i < n; ++i) fn(i);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (!arg->IsNull(i)) fn(i);
      }
    }
  };

  for_each_valid([&](size_t i) { ++st.counts[gids[i]]; });

  if (needs_sum) {
    switch (arg->type()) {
      case DataType::kBool: {
        const auto& v = arg->bools();
        for_each_valid(
            [&](size_t i) { st.sums[gids[i]] += v[i] != 0 ? 1.0 : 0.0; });
        break;
      }
      case DataType::kInt64: {
        const auto& v = arg->ints();
        for_each_valid(
            [&](size_t i) { st.sums[gids[i]] += static_cast<double>(v[i]); });
        break;
      }
      case DataType::kDouble: {
        const auto& v = arg->doubles();
        for_each_valid([&](size_t i) { st.sums[gids[i]] += v[i]; });
        break;
      }
      case DataType::kString:
        break;  // rejected at Make time
    }
  }

  if (needs_minmax) {
    switch (arg->type()) {
      case DataType::kBool: {
        const auto& v = arg->bools();
        for_each_valid([&](size_t i) {
          bool b = v[i] != 0;
          double d = b ? 1.0 : 0.0;
          UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i], d,
                                  Value::Bool(b));
          UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i], d,
                                  Value::Bool(b));
        });
        break;
      }
      case DataType::kInt64: {
        const auto& v = arg->ints();
        for_each_valid([&](size_t i) {
          double d = static_cast<double>(v[i]);
          UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i], d,
                                  Value::Int64(v[i]));
          UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i], d,
                                  Value::Int64(v[i]));
        });
        break;
      }
      case DataType::kDouble: {
        const auto& v = arg->doubles();
        for_each_valid([&](size_t i) {
          UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i], v[i],
                                  Value::Double(v[i]));
          UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i], v[i],
                                  Value::Double(v[i]));
        });
        break;
      }
      case DataType::kString: {
        const auto& v = arg->strings();
        for_each_valid([&](size_t i) {
          UpdateMinMaxString<-1>(st.min_boxed, st.min_num, gids[i], v[i]);
          UpdateMinMaxString<+1>(st.max_boxed, st.max_num, gids[i], v[i]);
        });
        break;
      }
    }
  }
}

Status Aggregator::Consume(const RecordBatch& batch) {
  size_t n = batch.num_rows();
  if (n == 0) return Status::OK();
  // Evaluate group keys and aggregate arguments once per batch.
  std::vector<ColumnVector> key_cols;
  key_cols.reserve(group_by_.size());
  for (const auto& g : group_by_) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*g, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<ColumnVector> arg_cols;
  arg_cols.reserve(specs_.size());
  std::vector<bool> has_arg(specs_.size(), false);
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].arg != nullptr) {
      FEISU_ASSIGN_OR_RETURN(ColumnVector col,
                             EvaluateExpr(*specs_[s].arg, batch));
      arg_cols.push_back(std::move(col));
      has_arg[s] = true;
    } else {
      arg_cols.emplace_back(DataType::kInt64);
    }
  }

  bool batch_null_free = true;
  for (const auto& col : key_cols) {
    if (col.NullCount() != 0) batch_null_free = false;
  }
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (has_arg[s] && arg_cols[s].NullCount() != 0) batch_null_free = false;
  }
  if (batch_null_free) ++stats_.null_fast_path_batches;

  // Vectorized grouping: typed key words + hashes, then one table probe
  // per row producing the row -> group mapping.
  std::vector<const ColumnVector*> key_ptrs;
  key_ptrs.reserve(key_cols.size());
  for (const auto& col : key_cols) key_ptrs.push_back(&col);
  BatchKeys keys = MakeBatchKeys(std::move(key_ptrs), n);
  std::vector<uint32_t> gids(n);
  for (size_t i = 0; i < n; ++i) gids[i] = FindOrInsert(keys, i);

  for (size_t s = 0; s < specs_.size(); ++s) {
    AccumulateSpec(s, has_arg[s] ? &arg_cols[s] : nullptr, gids);
  }
  return Status::OK();
}

uint32_t Aggregator::FindOrInsertDictKey(const std::string* key) {
  if (slots_.empty()) Grow(kInitialSlots);
  uint64_t word = 0;
  uint64_t h = kKeyHashSeed;
  if (key == nullptr) {
    h = HashCombine(h, 0);
  } else {
    word = HashString(*key);
    h = HashCombine(h, static_cast<uint64_t>(DataType::kString) + 1);
    h = HashCombine(h, word);
  }
  size_t idx = h & slot_mask_;
  while (true) {
    ++stats_.hash_probes;
    uint32_t slot = slots_[idx];
    if (slot == 0) break;
    if (slot_hashes_[idx] == h) {
      uint32_t g = slot - 1;
      const KeyColumn& stored = key_cols_[0];
      bool stored_null = stored.nulls[g] != 0;
      if (key == nullptr) {
        if (stored_null) return g;
      } else if (!stored_null && stored.types[g] == DataType::kString &&
                 stored.words[g] == word && stored.strings[g] == *key) {
        return g;
      }
    }
    idx = (idx + 1) & slot_mask_;
  }
  uint32_t group = static_cast<uint32_t>(num_groups_++);
  ++stats_.groups_created;
  ++stats_.code_domain_groups;
  slots_[idx] = group + 1;
  slot_hashes_[idx] = h;
  group_hashes_.push_back(h);
  KeyColumn& stored = key_cols_[0];
  stored.nulls.push_back(key == nullptr ? 1 : 0);
  stored.types.push_back(DataType::kString);
  stored.words.push_back(word);
  stored.strings.emplace_back(key == nullptr ? std::string() : *key);
  std::string serialized;
  SerializeValue(&serialized,
                 key == nullptr ? Value::Null() : Value::String(*key));
  serialized_keys_.push_back(std::move(serialized));
  AppendStateSlots();
  // Keep the load factor under 0.7 so probe chains stay short.
  if ((num_groups_ + 1) * 10 > slots_.size() * 7) Grow(slots_.size() * 2);
  return group;
}

Status Aggregator::ConsumeDictKeyed(const RecordBatch& batch,
                                    const DictColumnCodes& codes) {
  if (group_by_.size() != 1) {
    return Status::InvalidArgument(
        "ConsumeDictKeyed requires exactly one group key");
  }
  size_t n = batch.num_rows();
  if (codes.codes.size() != n) {
    return Status::InvalidArgument("dict code count != batch rows");
  }
  if (n == 0) return Status::OK();

  std::vector<ColumnVector> arg_cols;
  arg_cols.reserve(specs_.size());
  std::vector<bool> has_arg(specs_.size(), false);
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].arg != nullptr) {
      FEISU_ASSIGN_OR_RETURN(ColumnVector col,
                             EvaluateExpr(*specs_[s].arg, batch));
      arg_cols.push_back(std::move(col));
      has_arg[s] = true;
    } else {
      arg_cols.emplace_back(DataType::kInt64);
    }
  }

  bool batch_null_free = true;
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (has_arg[s] && arg_cols[s].NullCount() != 0) batch_null_free = false;
  }

  // Row -> group through the code domain: each distinct code resolves the
  // hash table once per batch, every repeat is a memo hit that never reads
  // the key string.
  std::vector<int64_t> memo(codes.entries.size(), -1);
  int64_t null_gid = -1;
  std::vector<uint32_t> gids(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t code = codes.codes[i];
    if (code == DictColumnCodes::kNullCode) {
      batch_null_free = false;
      if (null_gid < 0) null_gid = FindOrInsertDictKey(nullptr);
      gids[i] = static_cast<uint32_t>(null_gid);
      continue;
    }
    if (code >= codes.entries.size()) {
      return Status::Corruption("dict code out of range");
    }
    int64_t g = memo[code];
    if (g < 0) {
      g = FindOrInsertDictKey(&codes.entries[code]);
      memo[code] = g;
    }
    gids[i] = static_cast<uint32_t>(g);
  }
  if (batch_null_free) ++stats_.null_fast_path_batches;

  for (size_t s = 0; s < specs_.size(); ++s) {
    AccumulateSpec(s, has_arg[s] ? &arg_cols[s] : nullptr, gids);
  }
  return Status::OK();
}

Status Aggregator::ConsumeCount(size_t rows) {
  if (!group_by_.empty()) {
    return Status::InvalidArgument("ConsumeCount requires no GROUP BY");
  }
  for (const auto& spec : specs_) {
    if (spec.func != AggFunc::kCount || spec.arg != nullptr) {
      return Status::InvalidArgument("ConsumeCount requires COUNT(*) only");
    }
  }
  uint32_t group = EnsureGlobalGroup();
  for (auto& st : states_) {
    st.counts[group] += static_cast<int64_t>(rows);
  }
  return Status::OK();
}

void Aggregator::MergePartialSpec(size_t s, const RecordBatch& batch,
                                  size_t* col,
                                  const std::vector<uint32_t>& gids) {
  SpecState& st = states_[s];
  size_t n = gids.size();
  {
    const ColumnVector& counts = batch.column((*col)++);
    const auto& v = counts.ints();
    if (counts.NullCount() == 0) {
      for (size_t i = 0; i < n; ++i) st.counts[gids[i]] += v[i];
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (!counts.IsNull(i)) st.counts[gids[i]] += v[i];
      }
    }
  }
  if (NeedsSum(specs_[s].func)) {
    const ColumnVector& sums = batch.column((*col)++);
    const auto& v = sums.doubles();
    if (sums.NullCount() == 0) {
      for (size_t i = 0; i < n; ++i) st.sums[gids[i]] += v[i];
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (!sums.IsNull(i)) st.sums[gids[i]] += v[i];
      }
    }
  }
  if (NeedsMinMax(specs_[s].func)) {
    const ColumnVector& mins = batch.column((*col)++);
    const ColumnVector& maxs = batch.column((*col)++);
    // The partial min/max columns go through the same typed kernels as raw
    // arguments: merging partials is aggregation over the partials.
    auto merge = [&](const ColumnVector& arg, bool is_min) {
      size_t rows = arg.size();
      switch (arg.type()) {
        case DataType::kBool: {
          const auto& v = arg.bools();
          for (size_t i = 0; i < rows; ++i) {
            if (arg.IsNull(i)) continue;
            bool b = v[i] != 0;
            double d = b ? 1.0 : 0.0;
            if (is_min) {
              UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i], d,
                                      Value::Bool(b));
            } else {
              UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i], d,
                                      Value::Bool(b));
            }
          }
          break;
        }
        case DataType::kInt64: {
          const auto& v = arg.ints();
          for (size_t i = 0; i < rows; ++i) {
            if (arg.IsNull(i)) continue;
            double d = static_cast<double>(v[i]);
            if (is_min) {
              UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i], d,
                                      Value::Int64(v[i]));
            } else {
              UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i], d,
                                      Value::Int64(v[i]));
            }
          }
          break;
        }
        case DataType::kDouble: {
          const auto& v = arg.doubles();
          for (size_t i = 0; i < rows; ++i) {
            if (arg.IsNull(i)) continue;
            if (is_min) {
              UpdateMinMaxNumeric<-1>(st.min_boxed, st.min_num, gids[i],
                                      v[i], Value::Double(v[i]));
            } else {
              UpdateMinMaxNumeric<+1>(st.max_boxed, st.max_num, gids[i],
                                      v[i], Value::Double(v[i]));
            }
          }
          break;
        }
        case DataType::kString: {
          const auto& v = arg.strings();
          for (size_t i = 0; i < rows; ++i) {
            if (arg.IsNull(i)) continue;
            if (is_min) {
              UpdateMinMaxString<-1>(st.min_boxed, st.min_num, gids[i],
                                     v[i]);
            } else {
              UpdateMinMaxString<+1>(st.max_boxed, st.max_num, gids[i],
                                     v[i]);
            }
          }
          break;
        }
      }
    };
    merge(mins, /*is_min=*/true);
    merge(maxs, /*is_min=*/false);
  }
}

Status Aggregator::ConsumePartial(const RecordBatch& batch) {
  if (!(batch.schema() == partial_schema_)) {
    return Status::InvalidArgument("partial batch schema mismatch");
  }
  size_t n = batch.num_rows();
  if (n == 0) return Status::OK();

  bool batch_null_free = true;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    if (batch.column(c).NullCount() != 0) batch_null_free = false;
  }
  if (batch_null_free) ++stats_.null_fast_path_batches;

  std::vector<const ColumnVector*> key_ptrs;
  key_ptrs.reserve(group_by_.size());
  for (size_t k = 0; k < group_by_.size(); ++k) {
    key_ptrs.push_back(&batch.column(k));
  }
  BatchKeys keys = MakeBatchKeys(std::move(key_ptrs), n);
  std::vector<uint32_t> gids(n);
  for (size_t i = 0; i < n; ++i) gids[i] = FindOrInsert(keys, i);

  size_t col = group_by_.size();
  for (size_t s = 0; s < specs_.size(); ++s) {
    MergePartialSpec(s, batch, &col, gids);
  }
  return Status::OK();
}

std::vector<uint32_t> Aggregator::EmissionOrder() const {
  std::vector<uint32_t> order(num_groups_);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return serialized_keys_[a] < serialized_keys_[b];
  });
  return order;
}

Status Aggregator::EmitKeyColumns(const std::vector<uint32_t>& order,
                                  RecordBatch* out) const {
  for (size_t k = 0; k < group_by_.size(); ++k) {
    const KeyColumn& stored = key_cols_[k];
    ColumnVector* col = out->mutable_column(k);
    col->Reserve(order.size());
    DataType col_type = col->type();
    for (uint32_t g : order) {
      if (stored.nulls[g] != 0) {
        col->AppendNull();
        continue;
      }
      DataType t = stored.types[g];
      if (t == col_type) {
        switch (t) {
          case DataType::kBool:
            col->AppendBool(stored.words[g] != 0);
            break;
          case DataType::kInt64:
            col->AppendInt64(static_cast<int64_t>(stored.words[g]));
            break;
          case DataType::kDouble:
            col->AppendDouble(std::bit_cast<double>(stored.words[g]));
            break;
          case DataType::kString:
            col->AppendString(stored.strings[g]);
            break;
        }
        continue;
      }
      if (t != DataType::kString && col_type == DataType::kDouble) {
        col->AppendDouble(NumericWord(t, stored.words[g]));
        continue;
      }
      return Status::InvalidArgument("type mismatch for column " +
                                     group_names_[k]);
    }
  }
  return Status::OK();
}

Result<RecordBatch> Aggregator::PartialResult() const {
  RecordBatch out(partial_schema_);
  std::vector<uint32_t> order = EmissionOrder();
  FEISU_RETURN_IF_ERROR(EmitKeyColumns(order, &out));
  size_t col_idx = group_by_.size();
  for (size_t s = 0; s < specs_.size(); ++s) {
    const SpecState& st = states_[s];
    {
      ColumnVector* col = out.mutable_column(col_idx++);
      col->Reserve(order.size());
      for (uint32_t g : order) col->AppendInt64(st.counts[g]);
    }
    if (NeedsSum(specs_[s].func)) {
      ColumnVector* col = out.mutable_column(col_idx++);
      col->Reserve(order.size());
      for (uint32_t g : order) col->AppendDouble(st.sums[g]);
    }
    if (NeedsMinMax(specs_[s].func)) {
      ColumnVector* min_col = out.mutable_column(col_idx++);
      ColumnVector* max_col = out.mutable_column(col_idx++);
      min_col->Reserve(order.size());
      max_col->Reserve(order.size());
      const std::string& name = specs_[s].output_name;
      for (uint32_t g : order) {
        FEISU_RETURN_IF_ERROR(
            AppendCell(min_col, st.min_boxed[g], name + "#min"));
        FEISU_RETURN_IF_ERROR(
            AppendCell(max_col, st.max_boxed[g], name + "#max"));
      }
    }
  }
  return out;
}

Result<RecordBatch> Aggregator::FinalResult() const {
  RecordBatch out(final_schema_);
  // A global aggregation (no GROUP BY) over zero rows still yields one row.
  if (num_groups_ == 0 && group_by_.empty()) {
    std::vector<Value> row;
    for (size_t s = 0; s < specs_.size(); ++s) {
      row.push_back(specs_[s].func == AggFunc::kCount ? Value::Int64(0)
                                                      : Value::Null());
    }
    FEISU_RETURN_IF_ERROR(out.AppendRow(row));
    return out;
  }
  std::vector<uint32_t> order = EmissionOrder();
  FEISU_RETURN_IF_ERROR(EmitKeyColumns(order, &out));
  size_t col_idx = group_by_.size();
  for (size_t s = 0; s < specs_.size(); ++s) {
    const SpecState& st = states_[s];
    ColumnVector* col = out.mutable_column(col_idx++);
    col->Reserve(order.size());
    switch (specs_[s].func) {
      case AggFunc::kCount:
        for (uint32_t g : order) col->AppendInt64(st.counts[g]);
        break;
      case AggFunc::kSum:
        for (uint32_t g : order) {
          if (st.counts[g] == 0) {
            col->AppendNull();
          } else if (arg_types_[s] == DataType::kDouble) {
            col->AppendDouble(st.sums[g]);
          } else {
            col->AppendInt64(static_cast<int64_t>(st.sums[g]));
          }
        }
        break;
      case AggFunc::kAvg:
        for (uint32_t g : order) {
          if (st.counts[g] == 0) {
            col->AppendNull();
          } else {
            col->AppendDouble(st.sums[g] /
                              static_cast<double>(st.counts[g]));
          }
        }
        break;
      case AggFunc::kMin:
        for (uint32_t g : order) {
          FEISU_RETURN_IF_ERROR(
              AppendCell(col, st.min_boxed[g], specs_[s].output_name));
        }
        break;
      case AggFunc::kMax:
        for (uint32_t g : order) {
          FEISU_RETURN_IF_ERROR(
              AppendCell(col, st.max_boxed[g], specs_[s].output_name));
        }
        break;
    }
  }
  return out;
}

}  // namespace feisu
