#include "exec/aggregate.h"

#include "columnar/block.h"
#include "expr/evaluator.h"

namespace feisu {

namespace {

std::string SerializeKeys(const std::vector<Value>& keys) {
  std::string out;
  for (const Value& key : keys) SerializeValue(&out, key);
  return out;
}

bool NeedsSum(AggFunc func) {
  return func == AggFunc::kSum || func == AggFunc::kAvg;
}
bool NeedsMinMax(AggFunc func) {
  return func == AggFunc::kMin || func == AggFunc::kMax;
}

DataType FinalType(AggFunc func, DataType arg_type) {
  switch (func) {
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
      return arg_type == DataType::kDouble ? DataType::kDouble
                                           : DataType::kInt64;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg_type;
  }
  return DataType::kInt64;
}

}  // namespace

Result<Aggregator> Aggregator::Make(std::vector<ExprPtr> group_by,
                                    std::vector<AggSpec> specs,
                                    const Schema& input_schema) {
  Aggregator agg;
  agg.group_by_ = std::move(group_by);
  agg.specs_ = std::move(specs);

  std::vector<Field> partial_fields;
  std::vector<Field> final_fields;
  for (const auto& g : agg.group_by_) {
    std::string name =
        g->kind() == ExprKind::kColumnRef ? g->column() : g->ToString();
    agg.group_names_.push_back(name);
    FEISU_ASSIGN_OR_RETURN(DataType type, InferType(*g, input_schema));
    partial_fields.push_back({name, type, true});
    final_fields.push_back({name, type, true});
  }
  for (const auto& spec : agg.specs_) {
    DataType arg_type = DataType::kInt64;
    if (spec.arg != nullptr) {
      FEISU_ASSIGN_OR_RETURN(arg_type, InferType(*spec.arg, input_schema));
      if (arg_type == DataType::kString && NeedsSum(spec.func)) {
        return Status::InvalidArgument("SUM/AVG over string column");
      }
    } else if (spec.func != AggFunc::kCount) {
      return Status::InvalidArgument("'*' argument requires COUNT");
    }
    agg.arg_types_.push_back(arg_type);
    partial_fields.push_back(
        {spec.output_name + "#count", DataType::kInt64, false});
    if (NeedsSum(spec.func)) {
      partial_fields.push_back(
          {spec.output_name + "#sum", DataType::kDouble, false});
    }
    if (NeedsMinMax(spec.func)) {
      partial_fields.push_back({spec.output_name + "#min", arg_type, true});
      partial_fields.push_back({spec.output_name + "#max", arg_type, true});
    }
    final_fields.push_back(
        {spec.output_name, FinalType(spec.func, arg_type), true});
  }
  agg.partial_schema_ = Schema(std::move(partial_fields));
  agg.final_schema_ = Schema(std::move(final_fields));
  return agg;
}

Aggregator::Group& Aggregator::GroupFor(const std::vector<Value>& keys) {
  std::string serialized = SerializeKeys(keys);
  auto it = groups_.find(serialized);
  if (it == groups_.end()) {
    Group group;
    group.keys = keys;
    group.states.resize(specs_.size());
    it = groups_.emplace(std::move(serialized), std::move(group)).first;
  }
  return it->second;
}

Status Aggregator::Consume(const RecordBatch& batch) {
  size_t n = batch.num_rows();
  if (n == 0) return Status::OK();
  // Evaluate group keys and aggregate arguments once per batch.
  std::vector<ColumnVector> key_cols;
  for (const auto& g : group_by_) {
    FEISU_ASSIGN_OR_RETURN(ColumnVector col, EvaluateExpr(*g, batch));
    key_cols.push_back(std::move(col));
  }
  std::vector<ColumnVector> arg_cols;
  std::vector<bool> has_arg(specs_.size(), false);
  for (size_t s = 0; s < specs_.size(); ++s) {
    if (specs_[s].arg != nullptr) {
      FEISU_ASSIGN_OR_RETURN(ColumnVector col,
                             EvaluateExpr(*specs_[s].arg, batch));
      arg_cols.push_back(std::move(col));
      has_arg[s] = true;
    } else {
      arg_cols.emplace_back(DataType::kInt64);
    }
  }
  std::vector<Value> keys(group_by_.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = 0; k < key_cols.size(); ++k) {
      keys[k] = key_cols[k].GetValue(row);
    }
    Group& group = GroupFor(keys);
    for (size_t s = 0; s < specs_.size(); ++s) {
      AggState& state = group.states[s];
      if (!has_arg[s]) {  // COUNT(*)
        ++state.count;
        continue;
      }
      Value v = arg_cols[s].GetValue(row);
      if (v.is_null()) continue;  // SQL semantics: NULLs don't aggregate
      ++state.count;
      if (NeedsSum(specs_[s].func)) state.sum += v.AsDouble();
      if (NeedsMinMax(specs_[s].func)) {
        if (state.min.is_null() || v.Compare(state.min) < 0) state.min = v;
        if (state.max.is_null() || v.Compare(state.max) > 0) state.max = v;
      }
    }
  }
  return Status::OK();
}

Status Aggregator::ConsumeCount(size_t rows) {
  if (!group_by_.empty()) {
    return Status::InvalidArgument("ConsumeCount requires no GROUP BY");
  }
  for (const auto& spec : specs_) {
    if (spec.func != AggFunc::kCount || spec.arg != nullptr) {
      return Status::InvalidArgument("ConsumeCount requires COUNT(*) only");
    }
  }
  Group& group = GroupFor({});
  for (AggState& state : group.states) {
    state.count += static_cast<int64_t>(rows);
  }
  return Status::OK();
}

Status Aggregator::ConsumePartial(const RecordBatch& batch) {
  if (!(batch.schema() == partial_schema_)) {
    return Status::InvalidArgument("partial batch schema mismatch");
  }
  size_t n = batch.num_rows();
  std::vector<Value> keys(group_by_.size());
  for (size_t row = 0; row < n; ++row) {
    for (size_t k = 0; k < group_by_.size(); ++k) {
      keys[k] = batch.column(k).GetValue(row);
    }
    Group& group = GroupFor(keys);
    size_t col = group_by_.size();
    for (size_t s = 0; s < specs_.size(); ++s) {
      AggState& state = group.states[s];
      Value count = batch.column(col++).GetValue(row);
      state.count += count.is_null() ? 0 : count.int64_value();
      if (NeedsSum(specs_[s].func)) {
        Value sum = batch.column(col++).GetValue(row);
        state.sum += sum.is_null() ? 0 : sum.AsDouble();
      }
      if (NeedsMinMax(specs_[s].func)) {
        Value vmin = batch.column(col++).GetValue(row);
        Value vmax = batch.column(col++).GetValue(row);
        if (!vmin.is_null() &&
            (state.min.is_null() || vmin.Compare(state.min) < 0)) {
          state.min = vmin;
        }
        if (!vmax.is_null() &&
            (state.max.is_null() || vmax.Compare(state.max) > 0)) {
          state.max = vmax;
        }
      }
    }
  }
  return Status::OK();
}

Result<RecordBatch> Aggregator::PartialResult() const {
  RecordBatch out(partial_schema_);
  for (const auto& [key, group] : groups_) {
    std::vector<Value> row;
    row.reserve(partial_schema_.num_fields());
    for (const Value& v : group.keys) row.push_back(v);
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggState& state = group.states[s];
      row.push_back(Value::Int64(state.count));
      if (NeedsSum(specs_[s].func)) row.push_back(Value::Double(state.sum));
      if (NeedsMinMax(specs_[s].func)) {
        row.push_back(state.min);
        row.push_back(state.max);
      }
    }
    FEISU_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<RecordBatch> Aggregator::FinalResult() const {
  RecordBatch out(final_schema_);
  // A global aggregation (no GROUP BY) over zero rows still yields one row.
  if (groups_.empty() && group_by_.empty()) {
    std::vector<Value> row;
    for (size_t s = 0; s < specs_.size(); ++s) {
      row.push_back(specs_[s].func == AggFunc::kCount ? Value::Int64(0)
                                                      : Value::Null());
    }
    FEISU_RETURN_IF_ERROR(out.AppendRow(row));
    return out;
  }
  for (const auto& [key, group] : groups_) {
    std::vector<Value> row;
    row.reserve(final_schema_.num_fields());
    for (const Value& v : group.keys) row.push_back(v);
    for (size_t s = 0; s < specs_.size(); ++s) {
      const AggState& state = group.states[s];
      switch (specs_[s].func) {
        case AggFunc::kCount:
          row.push_back(Value::Int64(state.count));
          break;
        case AggFunc::kSum:
          if (state.count == 0) {
            row.push_back(Value::Null());
          } else if (arg_types_[s] == DataType::kDouble) {
            row.push_back(Value::Double(state.sum));
          } else {
            row.push_back(Value::Int64(static_cast<int64_t>(state.sum)));
          }
          break;
        case AggFunc::kAvg:
          row.push_back(state.count == 0
                            ? Value::Null()
                            : Value::Double(state.sum /
                                            static_cast<double>(state.count)));
          break;
        case AggFunc::kMin:
          row.push_back(state.min);
          break;
        case AggFunc::kMax:
          row.push_back(state.max);
          break;
      }
    }
    FEISU_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

}  // namespace feisu
