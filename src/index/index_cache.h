#ifndef FEISU_INDEX_INDEX_CACHE_H_
#define FEISU_INDEX_INDEX_CACHE_H_

#include <list>
#include <set>
#include <string>
#include <unordered_map>

#include "index/smart_index.h"

namespace feisu {

/// Index-cache tuning knobs (paper §IV-C.2: 512 MB default budget, 72 h
/// TTL, user preferences that may outlive the TTL while memory is free).
struct IndexCacheConfig {
  uint64_t capacity_bytes = 512ULL * 1024 * 1024;
  SimTime ttl = 72 * kSimHour;
};

struct IndexCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t lru_evictions = 0;
  uint64_t ttl_evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double MissRate() const { return 1.0 - HitRate(); }
};

/// The per-leaf-server SmartIndex store. An index is dropped when (1) the
/// memory budget is full (LRU order) or (2) it has been cached longer than
/// the TTL — except that preferred (pinned) indices survive TTL expiry as
/// long as memory is not under pressure.
class IndexCache {
 public:
  explicit IndexCache(IndexCacheConfig config = {});

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  const IndexCacheConfig& config() const { return config_; }
  void set_capacity_bytes(uint64_t bytes) { config_.capacity_bytes = bytes; }

  /// Looks up the index for (block, predicate) at simulated time `now`.
  /// Expired entries are treated as misses and removed. Returns nullptr on
  /// miss. The pointer stays valid until the next mutating call.
  const SmartIndex* Lookup(const SmartIndexKey& key, SimTime now);

  /// Same as Lookup but without touching the hit/miss statistics or LRU
  /// order (used by the resolver's compositional probes).
  const SmartIndex* Peek(const SmartIndexKey& key, SimTime now);

  /// Inserts (or replaces) the index for `key`. Evicts LRU entries as
  /// needed; an entry larger than the whole budget is not cached.
  void Insert(const SmartIndexKey& key, const BitVector& bits, SimTime now);

  /// User preference hook (paper: "interfaces for users to set preferences
  /// and retire strategies on indices"). Preferred predicates survive TTL
  /// expiry under low memory pressure and are evicted last.
  void SetPreference(const std::string& predicate, bool preferred);

  /// Drops every entry whose TTL expired at `now` (periodic maintenance).
  void EvictExpired(SimTime now);

  void Clear();

  uint64_t memory_bytes() const { return memory_bytes_; }
  size_t size() const { return entries_.size(); }
  const IndexCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IndexCacheStats(); }

 private:
  struct Entry {
    SmartIndex index;
    std::list<SmartIndexKey>::iterator lru_it;
  };

  bool IsExpired(const SmartIndex& index, SimTime now) const;
  bool IsPreferred(const SmartIndexKey& key) const {
    return preferred_predicates_.count(key.predicate) > 0;
  }
  void Remove(const SmartIndexKey& key);
  void EvictForSpace(uint64_t incoming_bytes);

  IndexCacheConfig config_;
  std::unordered_map<SmartIndexKey, Entry, SmartIndexKeyHash> entries_;
  std::list<SmartIndexKey> lru_;  // front = most recently used
  std::set<std::string> preferred_predicates_;
  uint64_t memory_bytes_ = 0;
  IndexCacheStats stats_;
};

}  // namespace feisu

#endif  // FEISU_INDEX_INDEX_CACHE_H_
