#ifndef FEISU_INDEX_INDEX_CACHE_H_
#define FEISU_INDEX_INDEX_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "index/smart_index.h"

namespace feisu {

/// Index-cache tuning knobs (paper §IV-C.2: 512 MB default budget, 72 h
/// TTL, user preferences that may outlive the TTL while memory is free).
struct IndexCacheConfig {
  uint64_t capacity_bytes = 512ULL * 1024 * 1024;
  SimTime ttl = 72 * kSimHour;
  /// Lock-striping width: keys hash onto `shards` independent LRU domains,
  /// each guarded by its own mutex and owning capacity_bytes / shards of
  /// the budget. 1 reproduces the pre-striping single-LRU semantics (tests
  /// that pin exact eviction order use it); the default spreads contention
  /// across concurrent leaf sub-plans.
  size_t shards = 8;
};

struct IndexCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t lru_evictions = 0;
  uint64_t ttl_evictions = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
  double MissRate() const { return 1.0 - HitRate(); }

  IndexCacheStats& operator+=(const IndexCacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    insertions += other.insertions;
    lru_evictions += other.lru_evictions;
    ttl_evictions += other.ttl_evictions;
    return *this;
  }
};

/// The per-leaf-server SmartIndex store. An index is dropped when (1) the
/// memory budget is full (LRU order) or (2) it has been cached longer than
/// the TTL — except that preferred (pinned) indices survive TTL expiry as
/// long as memory is not under pressure.
///
/// Thread safety (compile-time checked via the annotations below): every
/// public method is safe to call concurrently; the key space is striped
/// over independently locked shards. Lookup/Peek return a shared_ptr that
/// keeps the index alive even if a concurrent Insert evicts the entry —
/// the old "pointer valid until the next mutating call" contract is gone
/// (it was a dangling-pointer hazard under LRU eviction, and indefensible
/// once sub-plans run in parallel).
///
/// Handle/ownership contract, member by member:
///  - `config_` and `shards_` (the vector itself, not the Shards) are
///    immutable after construction — read freely from any thread.
///  - `capacity_bytes_` is an atomic: set_capacity_bytes may race with
///    readers by design (the budget is advisory between operations).
///  - Everything inside a `Shard` (entries, lru, memory_bytes, stats) is
///    guarded by that shard's own mutex.
///  - `preferred_predicates_` is guarded by `preferred_mutex_`, a
///    reader/writer lock: IsPreferred takes shared access on the hot
///    lookup/eviction paths, SetPreference takes exclusive access.
///  - The `SmartIndex` objects handed out by Lookup/Peek are immutable;
///    the shared_ptr is the lifetime token, valid for as long as the
///    caller holds it, no matter what the cache does afterwards.
class IndexCache {
 public:
  explicit IndexCache(IndexCacheConfig config = {});

  IndexCache(const IndexCache&) = delete;
  IndexCache& operator=(const IndexCache&) = delete;

  const IndexCacheConfig& config() const { return config_; }
  void set_capacity_bytes(uint64_t bytes) {
    capacity_bytes_.store(bytes, std::memory_order_relaxed);
  }
  uint64_t capacity_bytes() const {
    return capacity_bytes_.load(std::memory_order_relaxed);
  }

  /// Looks up the index for (block, predicate) at simulated time `now`.
  /// Expired entries are treated as misses and removed. Returns nullptr on
  /// miss. The returned pointer owns the index: it stays valid for as long
  /// as the caller holds it, no matter what the cache does afterwards.
  std::shared_ptr<const SmartIndex> Lookup(const SmartIndexKey& key,
                                           SimTime now);

  /// Same as Lookup but without touching the hit/miss statistics or LRU
  /// order (used by the resolver's compositional probes).
  std::shared_ptr<const SmartIndex> Peek(const SmartIndexKey& key,
                                         SimTime now);

  /// Inserts (or replaces) the index for `key`. Evicts LRU entries as
  /// needed; an entry larger than its shard's budget is not cached.
  void Insert(const SmartIndexKey& key, const BitVector& bits, SimTime now);

  /// User preference hook (paper: "interfaces for users to set preferences
  /// and retire strategies on indices"). Preferred predicates survive TTL
  /// expiry under low memory pressure and are evicted last.
  void SetPreference(const std::string& predicate, bool preferred)
      FEISU_EXCLUDES(preferred_mutex_);

  /// Drops every entry whose TTL expired at `now` (periodic maintenance).
  void EvictExpired(SimTime now);

  void Clear();

  uint64_t memory_bytes() const;
  size_t size() const;
  /// Aggregated over all shards (a coherent snapshot per shard; counters
  /// keep moving while concurrent callers run).
  IndexCacheStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    std::shared_ptr<const SmartIndex> index;
    std::list<SmartIndexKey>::iterator lru_it;
  };

  /// One independently locked LRU domain.
  struct Shard {
    mutable Mutex mutex;
    std::unordered_map<SmartIndexKey, Entry, SmartIndexKeyHash> entries
        FEISU_GUARDED_BY(mutex);
    std::list<SmartIndexKey> lru
        FEISU_GUARDED_BY(mutex);  // front = most recently used
    uint64_t memory_bytes FEISU_GUARDED_BY(mutex) = 0;
    IndexCacheStats stats FEISU_GUARDED_BY(mutex);
  };

  Shard& ShardFor(const SmartIndexKey& key);
  const Shard& ShardFor(const SmartIndexKey& key) const;
  uint64_t ShardCapacity() const;
  bool IsExpired(const Shard& shard, const SmartIndex& index,
                 SimTime now) const FEISU_REQUIRES(shard.mutex);
  bool IsPreferred(const SmartIndexKey& key) const
      FEISU_EXCLUDES(preferred_mutex_);
  /// Both helpers require `shard->mutex` to be held by the caller
  /// (compile-time enforced).
  void RemoveLocked(Shard* shard, const SmartIndexKey& key)
      FEISU_REQUIRES(shard->mutex);
  void EvictForSpaceLocked(Shard* shard, uint64_t incoming_bytes)
      FEISU_REQUIRES(shard->mutex);

  /// Immutable after construction.
  IndexCacheConfig config_;
  std::atomic<uint64_t> capacity_bytes_;
  /// The vector is immutable after construction; per-shard state is
  /// guarded by each Shard's own mutex.
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable SharedMutex preferred_mutex_;
  std::set<std::string> preferred_predicates_
      FEISU_GUARDED_BY(preferred_mutex_);
};

}  // namespace feisu

#endif  // FEISU_INDEX_INDEX_CACHE_H_
