#include "index/btree_index.h"

namespace feisu {

ColumnBTreeIndex ColumnBTreeIndex::Build(const ColumnVector& column) {
  ColumnBTreeIndex index;
  index.num_rows_ = static_cast<uint32_t>(column.size());
  index.type_ = column.type();
  if (column.type() == DataType::kString) {
    index.string_tree_ = std::make_unique<BPlusTree<std::string>>();
    for (size_t i = 0; i < column.size(); ++i) {
      if (column.IsNull(i)) continue;
      index.string_tree_->Insert(column.GetString(i),
                                 static_cast<uint32_t>(i));
    }
  } else {
    index.numeric_tree_ = std::make_unique<BPlusTree<double>>();
    for (size_t i = 0; i < column.size(); ++i) {
      if (column.IsNull(i)) continue;
      index.numeric_tree_->Insert(column.GetValue(i).AsDouble(),
                                  static_cast<uint32_t>(i));
    }
  }
  return index;
}

namespace {

template <typename K, typename Tree>
std::optional<BitVector> QueryTree(const Tree& tree, uint32_t num_rows,
                                   CompareOp op, const K& key) {
  BitVector bits(num_rows, false);
  auto mark = [&bits](uint32_t row) { bits.Set(row, true); };
  switch (op) {
    case CompareOp::kEq:
      tree.ScanEqual(key, mark);
      return bits;
    case CompareOp::kNe:
      tree.ScanEqual(key, mark);
      bits.Not();
      // NULL rows were never indexed, but Not() turned them on; clear them
      // by intersecting with the indexed universe.
      {
        BitVector indexed(num_rows, false);
        tree.ScanRange(std::nullopt, true, std::nullopt, true,
                       [&indexed](uint32_t row) { indexed.Set(row, true); });
        bits.And(indexed);
      }
      return bits;
    case CompareOp::kLt:
      tree.ScanRange(std::nullopt, true, key, false, mark);
      return bits;
    case CompareOp::kLe:
      tree.ScanRange(std::nullopt, true, key, true, mark);
      return bits;
    case CompareOp::kGt:
      tree.ScanRange(key, false, std::nullopt, true, mark);
      return bits;
    case CompareOp::kGe:
      tree.ScanRange(key, true, std::nullopt, true, mark);
      return bits;
    case CompareOp::kContains:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<BitVector> ColumnBTreeIndex::Query(CompareOp op,
                                                 const Value& literal) const {
  if (literal.is_null()) return BitVector(num_rows_, false);
  if (type_ == DataType::kString) {
    if (literal.type() != DataType::kString) return std::nullopt;
    return QueryTree(*string_tree_, num_rows_, op, literal.string_value());
  }
  if (!literal.is_numeric()) return std::nullopt;
  return QueryTree(*numeric_tree_, num_rows_, op, literal.AsDouble());
}

size_t ColumnBTreeIndex::MemoryBytes() const {
  if (string_tree_ != nullptr) return string_tree_->MemoryBytes();
  if (numeric_tree_ != nullptr) return numeric_tree_->MemoryBytes();
  return 0;
}

const ColumnBTreeIndex* BTreeIndexManager::Find(
    int64_t block_id, const std::string& column) const {
  MutexLock lock(mutex_);
  ++lookups_;
  auto it = indices_.find({block_id, column});
  return it == indices_.end() ? nullptr : &it->second;
}

const ColumnBTreeIndex* BTreeIndexManager::BuildAndStore(
    int64_t block_id, const std::string& column, const ColumnVector& values) {
  // Build outside the lock (tree construction is the expensive part), then
  // let the first finisher win; a racing loser's tree is simply dropped.
  ColumnBTreeIndex index = ColumnBTreeIndex::Build(values);
  MutexLock lock(mutex_);
  auto it = indices_.find({block_id, column});
  if (it != indices_.end()) return &it->second;
  memory_bytes_ += index.MemoryBytes();
  ++builds_;
  auto [inserted, ok] =
      indices_.emplace(std::make_pair(block_id, column), std::move(index));
  (void)ok;
  return &inserted->second;
}

}  // namespace feisu
