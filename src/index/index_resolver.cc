#include "index/index_resolver.h"

#include "expr/normalize.h"

namespace feisu {

std::optional<BitVector> IndexResolver::Resolve(int64_t block_id,
                                                const ExprPtr& conjunct,
                                                SimTime now) {
  std::optional<std::string> payload =
      ResolveImpl(block_id, conjunct, now, /*top_level=*/true);
  if (!payload.has_value()) {
    ++stats_.misses;
    return std::nullopt;
  }
  // The single inflation of the resolution: everything below combined in
  // the compressed domain.
  BitVector bits;
  if (!BitVector::DeserializeRle(*payload, &bits)) {
    ++stats_.misses;
    return std::nullopt;
  }
  stats_.bitmap_words += (bits.size() + 63) / 64;
  return bits;
}

std::optional<std::string> IndexResolver::ResolveImpl(int64_t block_id,
                                                      const ExprPtr& expr,
                                                      SimTime now,
                                                      bool top_level) {
  // 1. Direct probe for this exact (sub)predicate. The top-level probe
  //    counts toward cache hit/miss statistics and refreshes LRU order;
  //    inner compositional probes use Peek. The hit hands back the stored
  //    compressed payload — no inflation here.
  SmartIndexKey key{block_id, PredicateKey(expr)};
  // The shared_ptr keeps the index alive even if a concurrent insert on
  // another thread evicts the cache entry while we copy the payload out.
  std::shared_ptr<const SmartIndex> index =
      top_level ? cache_->Lookup(key, now) : cache_->Peek(key, now);
  if (index != nullptr) {
    if (top_level) {
      ++stats_.direct_hits;
    } else {
      ++stats_.composed_hits;
    }
    return index->compressed_bits();
  }

  // 2. Atoms resolve only by direct key. Negated predicates still reuse
  //    prior work (Fig. 7): whenever a leaf evaluates an atom it also
  //    materializes the negation's bitmap under the negated key, which is
  //    NULL-correct — bitwise NOT of the TRUE bitmap would wrongly select
  //    rows whose operand is NULL (UNKNOWN in three-valued logic).
  if (expr->kind() != ExprKind::kLogical) return std::nullopt;

  // 3. AND/OR nodes: compose children (Kleene TRUE-set algebra: the TRUE
  //    set of a conjunction/disjunction is exactly the AND/OR of the
  //    children's TRUE sets). NOT has no safe bitmap composition and
  //    resolves via the materialized dual above. The merge runs over the
  //    children's RLE token streams, so its cost scales with run count.
  if (expr->logical_op() == LogicalOp::kNot) return std::nullopt;
  std::optional<std::string> lhs =
      ResolveImpl(block_id, expr->child(0), now, false);
  if (!lhs.has_value()) return std::nullopt;
  std::optional<std::string> rhs =
      ResolveImpl(block_id, expr->child(1), now, false);
  if (!rhs.has_value()) return std::nullopt;
  std::string combined;
  size_t tokens = 0;
  bool ok = expr->logical_op() == LogicalOp::kAnd
                ? BitVector::RleAnd(*lhs, *rhs, &combined, &tokens)
                : BitVector::RleOr(*lhs, *rhs, &combined, &tokens);
  if (!ok) return std::nullopt;
  stats_.rle_tokens += tokens;
  return combined;
}

}  // namespace feisu
