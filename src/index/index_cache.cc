#include "index/index_cache.h"

#include <algorithm>

namespace feisu {

IndexCache::IndexCache(IndexCacheConfig config)
    : config_(config), capacity_bytes_(config.capacity_bytes) {
  size_t n = std::max<size_t>(1, config_.shards);
  config_.shards = n;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

IndexCache::Shard& IndexCache::ShardFor(const SmartIndexKey& key) {
  return *shards_[SmartIndexKeyHash()(key) % shards_.size()];
}

const IndexCache::Shard& IndexCache::ShardFor(const SmartIndexKey& key) const {
  return *shards_[SmartIndexKeyHash()(key) % shards_.size()];
}

uint64_t IndexCache::ShardCapacity() const {
  return capacity_bytes_.load(std::memory_order_relaxed) / shards_.size();
}

bool IndexCache::IsPreferred(const SmartIndexKey& key) const {
  ReaderLock lock(preferred_mutex_);
  return preferred_predicates_.contains(key.predicate);
}

bool IndexCache::IsExpired(const Shard& shard, const SmartIndex& index,
                           SimTime now) const {
  if (now - index.created_at() <= config_.ttl) return false;
  // Preferred indices may outlive their TTL while memory is not full
  // (paper §IV-C.2).
  if (IsPreferred(index.key()) && shard.memory_bytes <= ShardCapacity()) {
    return false;
  }
  return true;
}

std::shared_ptr<const SmartIndex> IndexCache::Lookup(const SmartIndexKey& key,
                                                     SimTime now) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.stats.misses;
    return nullptr;
  }
  if (IsExpired(shard, *it->second.index, now)) {
    ++shard.stats.ttl_evictions;
    RemoveLocked(&shard, key);
    ++shard.stats.misses;
    return nullptr;
  }
  ++shard.stats.hits;
  shard.lru.erase(it->second.lru_it);
  shard.lru.push_front(key);
  it->second.lru_it = shard.lru.begin();
  return it->second.index;
}

std::shared_ptr<const SmartIndex> IndexCache::Peek(const SmartIndexKey& key,
                                                   SimTime now) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  if (IsExpired(shard, *it->second.index, now)) return nullptr;
  return it->second.index;
}

void IndexCache::Insert(const SmartIndexKey& key, const BitVector& bits,
                        SimTime now) {
  // Build outside the lock: RLE compression is the expensive part.
  auto index = std::make_shared<const SmartIndex>(key, bits, now);
  uint64_t bytes = index->MemoryBytes();
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  RemoveLocked(&shard, key);
  if (bytes > ShardCapacity()) return;
  EvictForSpaceLocked(&shard, bytes);
  if (shard.memory_bytes + bytes > ShardCapacity()) return;
  shard.lru.push_front(key);
  Entry entry{std::move(index), shard.lru.begin()};
  shard.memory_bytes += bytes;
  shard.entries.emplace(key, std::move(entry));
  ++shard.stats.insertions;
}

void IndexCache::SetPreference(const std::string& predicate, bool preferred) {
  WriterLock lock(preferred_mutex_);
  if (preferred) {
    preferred_predicates_.insert(predicate);
  } else {
    preferred_predicates_.erase(predicate);
  }
}

void IndexCache::EvictExpired(SimTime now) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mutex);
    std::vector<SmartIndexKey> victims;
    // All expired entries are removed under this same lock, so collection
    // order affects no observable state (counters bump once per victim).
    // feisu-analyze: allow(unordered-iter): removal set, order unobservable
    for (const auto& [key, entry] : shard.entries) {
      if (IsExpired(shard, *entry.index, now)) victims.push_back(key);
    }
    for (const auto& key : victims) {
      ++shard.stats.ttl_evictions;
      RemoveLocked(&shard, key);
    }
  }
}

void IndexCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mutex);
    shard.entries.clear();
    shard.lru.clear();
    shard.memory_bytes = 0;
  }
}

uint64_t IndexCache::memory_bytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->memory_bytes;
  }
  return total;
}

size_t IndexCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->entries.size();
  }
  return total;
}

IndexCacheStats IndexCache::stats() const {
  IndexCacheStats total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->stats;
  }
  return total;
}

void IndexCache::ResetStats() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    shard->stats = IndexCacheStats();
  }
}

void IndexCache::RemoveLocked(Shard* shard, const SmartIndexKey& key) {
  auto it = shard->entries.find(key);
  if (it == shard->entries.end()) return;
  shard->memory_bytes -= it->second.index->MemoryBytes();
  shard->lru.erase(it->second.lru_it);
  shard->entries.erase(it);
}

void IndexCache::EvictForSpaceLocked(Shard* shard, uint64_t incoming_bytes) {
  // Two passes over the LRU tail: first evict unpreferred entries, then —
  // only if still necessary — preferred ones.
  uint64_t capacity = ShardCapacity();
  for (int pass = 0; pass < 2; ++pass) {
    bool allow_preferred = pass == 1;
    while (shard->memory_bytes + incoming_bytes > capacity &&
           !shard->entries.empty()) {
      SmartIndexKey victim;
      bool found = false;
      for (auto it = shard->lru.rbegin(); it != shard->lru.rend(); ++it) {
        if (allow_preferred || !IsPreferred(*it)) {
          victim = *it;
          found = true;
          break;
        }
      }
      if (!found) break;
      RemoveLocked(shard, victim);
      ++shard->stats.lru_evictions;
    }
    if (shard->memory_bytes + incoming_bytes <= capacity) return;
  }
}

}  // namespace feisu
