#include "index/index_cache.h"

namespace feisu {

IndexCache::IndexCache(IndexCacheConfig config) : config_(config) {}

bool IndexCache::IsExpired(const SmartIndex& index, SimTime now) const {
  if (now - index.created_at() <= config_.ttl) return false;
  // Preferred indices may outlive their TTL while memory is not full
  // (paper §IV-C.2).
  if (IsPreferred(index.key()) && memory_bytes_ <= config_.capacity_bytes) {
    return false;
  }
  return true;
}

const SmartIndex* IndexCache::Lookup(const SmartIndexKey& key, SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (IsExpired(it->second.index, now)) {
    ++stats_.ttl_evictions;
    Remove(key);
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return &it->second.index;
}

const SmartIndex* IndexCache::Peek(const SmartIndexKey& key, SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (IsExpired(it->second.index, now)) return nullptr;
  return &it->second.index;
}

void IndexCache::Insert(const SmartIndexKey& key, const BitVector& bits,
                        SimTime now) {
  Remove(key);
  SmartIndex index(key, bits, now);
  uint64_t bytes = index.MemoryBytes();
  if (bytes > config_.capacity_bytes) return;
  EvictForSpace(bytes);
  if (memory_bytes_ + bytes > config_.capacity_bytes) return;
  lru_.push_front(key);
  Entry entry{std::move(index), lru_.begin()};
  memory_bytes_ += bytes;
  entries_.emplace(key, std::move(entry));
  ++stats_.insertions;
}

void IndexCache::SetPreference(const std::string& predicate, bool preferred) {
  if (preferred) {
    preferred_predicates_.insert(predicate);
  } else {
    preferred_predicates_.erase(predicate);
  }
}

void IndexCache::EvictExpired(SimTime now) {
  std::vector<SmartIndexKey> victims;
  for (const auto& [key, entry] : entries_) {
    if (IsExpired(entry.index, now)) victims.push_back(key);
  }
  for (const auto& key : victims) {
    ++stats_.ttl_evictions;
    Remove(key);
  }
}

void IndexCache::Clear() {
  entries_.clear();
  lru_.clear();
  memory_bytes_ = 0;
}

void IndexCache::Remove(const SmartIndexKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  memory_bytes_ -= it->second.index.MemoryBytes();
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void IndexCache::EvictForSpace(uint64_t incoming_bytes) {
  // Two passes over the LRU tail: first evict unpreferred entries, then —
  // only if still necessary — preferred ones.
  for (int pass = 0; pass < 2; ++pass) {
    bool allow_preferred = pass == 1;
    while (memory_bytes_ + incoming_bytes > config_.capacity_bytes &&
           !entries_.empty()) {
      SmartIndexKey victim;
      bool found = false;
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (allow_preferred || !IsPreferred(*it)) {
          victim = *it;
          found = true;
          break;
        }
      }
      if (!found) break;
      Remove(victim);
      ++stats_.lru_evictions;
    }
    if (memory_bytes_ + incoming_bytes <= config_.capacity_bytes) return;
  }
}

}  // namespace feisu
