#ifndef FEISU_INDEX_SMART_INDEX_H_
#define FEISU_INDEX_SMART_INDEX_H_

#include <cstdint>
#include <string>

#include "common/bit_vector.h"
#include "common/sim_clock.h"

namespace feisu {

/// A SmartIndex addresses the evaluation result of one query predicate on
/// one data block (paper §IV-C, Fig. 6).
struct SmartIndexKey {
  int64_t block_id = 0;
  std::string predicate;  ///< canonical conjunct rendering (PredicateKey)

  bool operator==(const SmartIndexKey& other) const {
    return block_id == other.block_id && predicate == other.predicate;
  }
};

struct SmartIndexKeyHash {
  size_t operator()(const SmartIndexKey& key) const;
};

/// One cached predicate-evaluation result: a compressed 0-1 vector over the
/// block's rows plus the metadata of Fig. 6 (block id, predicate condition,
/// compression type — our RLE — and creation time for TTL management).
class SmartIndex {
 public:
  SmartIndex() = default;
  SmartIndex(SmartIndexKey key, const BitVector& bits, SimTime created_at);

  const SmartIndexKey& key() const { return key_; }
  SimTime created_at() const { return created_at_; }
  uint32_t num_rows() const { return num_rows_; }
  uint32_t matched_rows() const { return matched_rows_; }

  /// Decompresses the stored bitmap (charged by the caller at bitmap-combine
  /// cost, which is orders of magnitude below a scan).
  BitVector Bits() const;

  /// The stored RLE payload itself. The resolver combines indexes in this
  /// domain (RleAnd/RleOr) so conjunct composition scales with run count
  /// rather than row count, inflating only the final selection vector.
  const std::string& compressed_bits() const { return compressed_bits_; }

  /// RLE-domain AND/OR of two cached indexes over the same block. Writes a
  /// compressed payload without inflating either operand; false when the
  /// indexes cover different row counts (or a payload is malformed).
  /// `tokens` receives the combine cost in RLE tokens when non-null.
  static bool CombineAnd(const SmartIndex& a, const SmartIndex& b,
                         std::string* out, size_t* tokens = nullptr);
  static bool CombineOr(const SmartIndex& a, const SmartIndex& b,
                        std::string* out, size_t* tokens = nullptr);

  /// Memory the index occupies in the leaf server's cache: compressed
  /// payload plus key/metadata overhead. This is what counts against the
  /// 512 MB default budget in the paper's experiments.
  size_t MemoryBytes() const;

 private:
  SmartIndexKey key_;
  std::string compressed_bits_;  // BitVector RLE payload
  uint32_t num_rows_ = 0;
  uint32_t matched_rows_ = 0;
  SimTime created_at_ = 0;
};

}  // namespace feisu

#endif  // FEISU_INDEX_SMART_INDEX_H_
