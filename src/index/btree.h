#ifndef FEISU_INDEX_BTREE_H_
#define FEISU_INDEX_BTREE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace feisu {

/// An in-memory B+-tree mapping keys to row ids, used as the baseline index
/// Feisu is compared against in paper Fig. 9b. Duplicate keys are allowed.
/// Leaves are chained for efficient range scans.
template <typename K>
class BPlusTree {
 public:
  static constexpr size_t kMaxKeys = 64;

  BPlusTree() : root_(std::make_unique<Node>(true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  size_t size() const { return size_; }
  size_t height() const { return height_; }

  void Insert(const K& key, uint32_t value) {
    Node* root = root_.get();
    if (root->keys.size() == kMaxKeys) {
      auto new_root = std::make_unique<Node>(false);
      new_root->children.push_back(std::move(root_));
      SplitChild(new_root.get(), 0);
      root_ = std::move(new_root);
      ++height_;
    }
    InsertNonFull(root_.get(), key, value);
    ++size_;
  }

  /// Calls `fn(row_id)` for every entry with key in the interval defined by
  /// the optional bounds. `lo_inclusive` / `hi_inclusive` pick open/closed
  /// endpoints; an absent bound is unbounded.
  template <typename F>
  void ScanRange(const std::optional<K>& lo, bool lo_inclusive,
                 const std::optional<K>& hi, bool hi_inclusive, F&& fn) const {
    const Node* leaf = lo.has_value() ? FindLeaf(*lo) : LeftmostLeaf();
    while (leaf != nullptr) {
      for (size_t i = 0; i < leaf->keys.size(); ++i) {
        const K& k = leaf->keys[i];
        if (lo.has_value()) {
          if (k < *lo || (!lo_inclusive && k == *lo)) continue;
        }
        if (hi.has_value()) {
          if (k > *hi || (!hi_inclusive && k == *hi)) return;
        }
        fn(leaf->values[i]);
      }
      leaf = leaf->next;
    }
  }

  /// Calls `fn(row_id)` for entries with key exactly `key`.
  template <typename F>
  void ScanEqual(const K& key, F&& fn) const {
    ScanRange(key, true, key, true, std::forward<F>(fn));
  }

  /// Approximate memory footprint (keys + values + node overhead).
  size_t MemoryBytes() const { return MemoryBytesOf(root_.get()); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<K> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal only
    std::vector<uint32_t> values;                 // leaf only
    Node* next = nullptr;                         // leaf chain
  };

  // Splits the full child `idx` of `parent`, promoting the separator.
  void SplitChild(Node* parent, size_t idx) {
    Node* child = parent->children[idx].get();
    auto sibling = std::make_unique<Node>(child->leaf);
    size_t mid = child->keys.size() / 2;
    if (child->leaf) {
      // Leaf split: sibling takes the upper half; separator is the first
      // key of the sibling (B+-tree style, keys stay in the leaves).
      sibling->keys.assign(child->keys.begin() + mid, child->keys.end());
      sibling->values.assign(child->values.begin() + mid,
                             child->values.end());
      child->keys.resize(mid);
      child->values.resize(mid);
      sibling->next = child->next;
      child->next = sibling.get();
      parent->keys.insert(parent->keys.begin() + idx, sibling->keys.front());
    } else {
      // Internal split: separator moves up, not into the sibling.
      K separator = child->keys[mid];
      sibling->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
      for (size_t i = mid + 1; i < child->children.size(); ++i) {
        sibling->children.push_back(std::move(child->children[i]));
      }
      child->keys.resize(mid);
      child->children.resize(mid + 1);
      parent->keys.insert(parent->keys.begin() + idx, separator);
    }
    parent->children.insert(parent->children.begin() + idx + 1,
                            std::move(sibling));
  }

  void InsertNonFull(Node* node, const K& key, uint32_t value) {
    for (;;) {
      if (node->leaf) {
        auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
        size_t pos = static_cast<size_t>(it - node->keys.begin());
        node->keys.insert(it, key);
        node->values.insert(node->values.begin() + pos, value);
        return;
      }
      auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
      size_t idx = static_cast<size_t>(it - node->keys.begin());
      if (node->children[idx]->keys.size() == kMaxKeys) {
        SplitChild(node, idx);
        if (key >= node->keys[idx]) ++idx;
      }
      node = node->children[idx].get();
    }
  }

  const Node* FindLeaf(const K& key) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      // Duplicates may straddle a split, so descend into the leftmost child
      // that can contain the key (lower_bound); the leaf chain lets
      // ScanRange skip forward cheaply if we land early.
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      size_t idx = static_cast<size_t>(it - node->keys.begin());
      node = node->children[idx].get();
    }
    return node;
  }

  const Node* LeftmostLeaf() const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    return node;
  }

  size_t MemoryBytesOf(const Node* node) const {
    size_t bytes = sizeof(Node) + node->keys.capacity() * sizeof(K) +
                   node->values.capacity() * sizeof(uint32_t);
    for (const auto& child : node->children) {
      bytes += MemoryBytesOf(child.get());
    }
    return bytes;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  size_t height_ = 1;
};

}  // namespace feisu

#endif  // FEISU_INDEX_BTREE_H_
