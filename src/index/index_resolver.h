#ifndef FEISU_INDEX_INDEX_RESOLVER_H_
#define FEISU_INDEX_INDEX_RESOLVER_H_

#include <cstdint>
#include <optional>
#include <string>

#include "expr/expr.h"
#include "index/index_cache.h"

namespace feisu {

struct ResolverStats {
  uint64_t direct_hits = 0;     ///< whole conjunct found in the cache
  uint64_t composed_hits = 0;   ///< derived via RLE-domain bitmap algebra
  uint64_t misses = 0;          ///< predicate had to be evaluated
  uint64_t bitmap_words = 0;    ///< words inflated into selection vectors
  uint64_t rle_tokens = 0;      ///< compressed tokens streamed by combines

  uint64_t TotalHits() const { return direct_hits + composed_hits; }

  ResolverStats& operator+=(const ResolverStats& other) {
    direct_hits += other.direct_hits;
    composed_hits += other.composed_hits;
    misses += other.misses;
    bitmap_words += other.bitmap_words;
    rle_tokens += other.rle_tokens;
    return *this;
  }
};

/// Resolves a (block, conjunct) pair to a row bitmap using only cached
/// SmartIndices and bitmap algebra — the plan-rewriting step of paper
/// Fig. 7. Resolution tries, in order:
///
///  1. a direct cache hit for the conjunct's canonical key — negated
///     predicates hit here too, because evaluating an atom materializes
///     its negation's bitmap under the negated key (`!(c2 > 5)` finds the
///     `c2 <= 5` entry built when `c2 > 5` was evaluated);
///  2. for OR / AND nodes, recursive resolution of the children combined
///     with bit-OR / bit-AND (sound in Kleene three-valued logic; bit-NOT
///     is not, which is why negation uses materialized duals instead).
///
/// Composition runs entirely in the RLE domain (paper §IV-C): children
/// resolve to compressed payloads, AND/OR merge the token streams
/// (BitVector::RleAnd/RleOr) at a cost proportional to run count, and only
/// the final selection vector is inflated into words.
///
/// Returns nullopt when the conjunct cannot be resolved from cache (the
/// caller then scans, evaluates, and inserts a fresh index).
class IndexResolver {
 public:
  explicit IndexResolver(IndexCache* cache) : cache_(cache) {}

  std::optional<BitVector> Resolve(int64_t block_id, const ExprPtr& conjunct,
                                   SimTime now);

  const ResolverStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ResolverStats(); }

 private:
  /// Resolves to a compressed RLE payload without inflating it.
  std::optional<std::string> ResolveImpl(int64_t block_id,
                                         const ExprPtr& expr, SimTime now,
                                         bool top_level);

  IndexCache* cache_;
  ResolverStats stats_;
};

}  // namespace feisu

#endif  // FEISU_INDEX_INDEX_RESOLVER_H_
