#include "index/smart_index.h"

#include <cassert>

#include "common/hash.h"

namespace feisu {

size_t SmartIndexKeyHash::operator()(const SmartIndexKey& key) const {
  return static_cast<size_t>(HashCombine(
      HashInt64(key.block_id), HashString(key.predicate)));
}

SmartIndex::SmartIndex(SmartIndexKey key, const BitVector& bits,
                       SimTime created_at)
    : key_(std::move(key)),
      compressed_bits_(bits.SerializeRle()),
      num_rows_(static_cast<uint32_t>(bits.size())),
      matched_rows_(static_cast<uint32_t>(bits.CountOnes())),
      created_at_(created_at) {}

BitVector SmartIndex::Bits() const {
  BitVector out;
  bool ok = BitVector::DeserializeRle(compressed_bits_, &out);
  assert(ok);
  (void)ok;
  return out;
}

bool SmartIndex::CombineAnd(const SmartIndex& a, const SmartIndex& b,
                            std::string* out, size_t* tokens) {
  if (a.num_rows_ != b.num_rows_) return false;
  return BitVector::RleAnd(a.compressed_bits_, b.compressed_bits_, out,
                           tokens);
}

bool SmartIndex::CombineOr(const SmartIndex& a, const SmartIndex& b,
                           std::string* out, size_t* tokens) {
  if (a.num_rows_ != b.num_rows_) return false;
  return BitVector::RleOr(a.compressed_bits_, b.compressed_bits_, out,
                          tokens);
}

size_t SmartIndex::MemoryBytes() const {
  return compressed_bits_.size() + key_.predicate.size() + 48;
}

}  // namespace feisu
