#ifndef FEISU_INDEX_BTREE_INDEX_H_
#define FEISU_INDEX_BTREE_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "columnar/column_vector.h"
#include "common/annotations.h"
#include "expr/expr.h"
#include "index/btree.h"

namespace feisu {

/// Per-(block, column) B+-tree value index — the conventional indexing
/// baseline of paper Fig. 9b. Numeric columns index in the double domain
/// (int64 widens losslessly for the value ranges used here); string columns
/// index lexicographically. NULL rows are not indexed (comparisons never
/// match NULL).
class ColumnBTreeIndex {
 public:
  /// Builds the index by inserting every non-NULL row.
  static ColumnBTreeIndex Build(const ColumnVector& column);

  /// Evaluates `column OP literal` via the tree. Returns nullopt for
  /// operators a value index cannot serve (CONTAINS).
  std::optional<BitVector> Query(CompareOp op, const Value& literal) const;

  uint32_t num_rows() const { return num_rows_; }
  size_t MemoryBytes() const;

 private:
  ColumnBTreeIndex() = default;

  uint32_t num_rows_ = 0;
  DataType type_ = DataType::kInt64;
  std::unique_ptr<BPlusTree<double>> numeric_tree_;
  std::unique_ptr<BPlusTree<std::string>> string_tree_;
};

/// A leaf server's collection of B-tree indices, keyed by block and column,
/// built lazily on first use (mirroring how the Fig. 9b experiment
/// "implemented B-tree index in Feisu").
///
/// Thread-safe (compile-time checked): concurrent sub-plans on one leaf may
/// probe and build indices at the same time. Returned pointers stay valid
/// for the manager's lifetime (std::map nodes never move, indices are never
/// dropped, and a stored ColumnBTreeIndex is immutable), so dereferencing
/// them outside the lock is safe.
class BTreeIndexManager {
 public:
  const ColumnBTreeIndex* Find(int64_t block_id,
                               const std::string& column) const
      FEISU_EXCLUDES(mutex_);
  /// Builds from `values` and stores, unless another thread won the race —
  /// then the existing index is returned and `values` is ignored (both
  /// builders read the same immutable block, so the trees are identical).
  const ColumnBTreeIndex* BuildAndStore(int64_t block_id,
                                        const std::string& column,
                                        const ColumnVector& values)
      FEISU_EXCLUDES(mutex_);

  size_t size() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return indices_.size();
  }
  size_t MemoryBytes() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return memory_bytes_;
  }
  uint64_t lookups() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return lookups_;
  }
  uint64_t builds() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return builds_;
  }

 private:
  mutable Mutex mutex_;
  std::map<std::pair<int64_t, std::string>, ColumnBTreeIndex> indices_
      FEISU_GUARDED_BY(mutex_);
  size_t memory_bytes_ FEISU_GUARDED_BY(mutex_) = 0;
  mutable uint64_t lookups_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t builds_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace feisu

#endif  // FEISU_INDEX_BTREE_INDEX_H_
