#include "expr/expr.h"

#include <algorithm>

namespace feisu {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "CONTAINS";
  }
  return "?";
}

const char* LogicalOpName(LogicalOp op) {
  switch (op) {
    case LogicalOp::kAnd:
      return "AND";
    case LogicalOp::kOr:
      return "OR";
    case LogicalOp::kNot:
      return "NOT";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
    case ArithOp::kMod:
      return "%";
  }
  return "?";
}

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kAvg:
      return "AVG";
  }
  return "?";
}

bool NegateCompareOp(CompareOp op, CompareOp* out) {
  switch (op) {
    case CompareOp::kEq:
      *out = CompareOp::kNe;
      return true;
    case CompareOp::kNe:
      *out = CompareOp::kEq;
      return true;
    case CompareOp::kLt:
      *out = CompareOp::kGe;
      return true;
    case CompareOp::kLe:
      *out = CompareOp::kGt;
      return true;
    case CompareOp::kGt:
      *out = CompareOp::kLe;
      return true;
    case CompareOp::kGe:
      *out = CompareOp::kLt;
      return true;
    case CompareOp::kContains:
      return false;
  }
  return false;
}

CompareOp MirrorCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
    default:
      return op;  // = and != are symmetric; CONTAINS never mirrors
  }
}

ExprPtr Expr::Make(ExprKind kind) {
  // The constructor is private so callers cannot bypass the factories;
  // make_shared has no access, leaving explicit new as the only option.
  // feisu-lint: allow(naked-new): private ctor, make_shared cannot reach it
  return std::shared_ptr<Expr>(new Expr(kind));
}

ExprPtr Expr::ColumnRef(std::string table, std::string column) {
  auto e = Make(ExprKind::kColumnRef);
  e->table_ = std::move(table);
  e->column_ = std::move(column);
  return e;
}

ExprPtr Expr::Literal(Value value) {
  auto e = Make(ExprKind::kLiteral);
  e->value_ = std::move(value);
  return e;
}

ExprPtr Expr::Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(ExprKind::kComparison);
  e->compare_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::And(ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(ExprKind::kLogical);
  e->logical_op_ = LogicalOp::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Or(ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(ExprKind::kLogical);
  e->logical_op_ = LogicalOp::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Not(ExprPtr child) {
  auto e = Make(ExprKind::kLogical);
  e->logical_op_ = LogicalOp::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = Make(ExprKind::kArithmetic);
  e->arith_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::Aggregate(AggFunc func, ExprPtr arg, ExprPtr within) {
  auto e = Make(ExprKind::kAggregate);
  e->agg_func_ = func;
  if (arg != nullptr) e->children_ = {std::move(arg)};
  e->within_ = std::move(within);
  return e;
}

ExprPtr Expr::Star() {
  return Make(ExprKind::kStar);
}

std::string Expr::QualifiedName() const {
  if (table_.empty()) return column_;
  return table_ + "." + column_;
}

bool Expr::Equals(const Expr& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ExprKind::kColumnRef:
      if (table_ != other.table_ || column_ != other.column_) return false;
      break;
    case ExprKind::kLiteral:
      if (!(value_ == other.value_)) return false;
      if (value_.is_null() != other.value_.is_null()) return false;
      break;
    case ExprKind::kComparison:
      if (compare_op_ != other.compare_op_) return false;
      break;
    case ExprKind::kLogical:
      if (logical_op_ != other.logical_op_) return false;
      break;
    case ExprKind::kArithmetic:
      if (arith_op_ != other.arith_op_) return false;
      break;
    case ExprKind::kAggregate:
      if (agg_func_ != other.agg_func_) return false;
      if ((within_ == nullptr) != (other.within_ == nullptr)) return false;
      if (within_ != nullptr && !within_->Equals(*other.within_)) return false;
      break;
    case ExprKind::kStar:
      break;
  }
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case ExprKind::kColumnRef:
      return QualifiedName();
    case ExprKind::kLiteral:
      return value_.ToString();
    case ExprKind::kComparison:
      return "(" + children_[0]->ToString() + " " +
             CompareOpName(compare_op_) + " " + children_[1]->ToString() +
             ")";
    case ExprKind::kLogical:
      if (logical_op_ == LogicalOp::kNot) {
        return "(NOT " + children_[0]->ToString() + ")";
      }
      return "(" + children_[0]->ToString() + " " +
             LogicalOpName(logical_op_) + " " + children_[1]->ToString() +
             ")";
    case ExprKind::kArithmetic:
      return "(" + children_[0]->ToString() + " " + ArithOpName(arith_op_) +
             " " + children_[1]->ToString() + ")";
    case ExprKind::kAggregate: {
      std::string arg = children_.empty() ? "*" : children_[0]->ToString();
      std::string out =
          std::string(AggFuncName(agg_func_)) + "(" + arg + ")";
      if (within_ != nullptr) out += " WITHIN " + within_->ToString();
      return out;
    }
    case ExprKind::kStar:
      return "*";
  }
  return "?";
}

bool Expr::ContainsAggregate() const {
  if (kind_ == ExprKind::kAggregate) return true;
  return std::any_of(children_.begin(), children_.end(),
                     [](const ExprPtr& c) { return c->ContainsAggregate(); });
}

void Expr::CollectColumns(std::vector<std::string>* out) const {
  if (kind_ == ExprKind::kColumnRef) {
    if (std::find(out->begin(), out->end(), column_) == out->end()) {
      out->push_back(column_);
    }
  }
  for (const auto& c : children_) c->CollectColumns(out);
  if (within_ != nullptr) within_->CollectColumns(out);
}

}  // namespace feisu
