#ifndef FEISU_EXPR_EXPR_H_
#define FEISU_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "columnar/value.h"

namespace feisu {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Expression node kinds.
enum class ExprKind {
  kColumnRef,   ///< [table.]column
  kLiteral,     ///< constant Value
  kComparison,  ///< = != < <= > >= CONTAINS
  kLogical,     ///< AND OR NOT
  kArithmetic,  ///< + - * / %
  kAggregate,   ///< COUNT/SUM/MIN/MAX/AVG, optionally WITHIN
  kStar,        ///< '*' (only inside COUNT(*) or SELECT *)
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };
enum class LogicalOp { kAnd, kOr, kNot };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };
enum class AggFunc { kCount, kSum, kMin, kMax, kAvg };

const char* CompareOpName(CompareOp op);
const char* LogicalOpName(LogicalOp op);
const char* ArithOpName(ArithOp op);
const char* AggFuncName(AggFunc func);

/// Negation of a comparison: !(a < b) == (a >= b). CONTAINS has no dual and
/// returns false through `ok`.
bool NegateCompareOp(CompareOp op, CompareOp* out);

/// Mirror of a comparison when operands swap sides: (a < b) == (b > a).
CompareOp MirrorCompareOp(CompareOp op);

/// An immutable expression tree node. Construct via the static factories;
/// share subtrees freely (nodes are never mutated after construction).
class Expr {
 public:
  static ExprPtr ColumnRef(std::string table, std::string column);
  static ExprPtr ColumnRef(std::string column) {
    return ColumnRef("", std::move(column));
  }
  static ExprPtr Literal(Value value);
  static ExprPtr Compare(CompareOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr And(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Or(ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Not(ExprPtr child);
  static ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Aggregate(AggFunc func, ExprPtr arg, ExprPtr within = nullptr);
  static ExprPtr Star();

  ExprKind kind() const { return kind_; }

  // kColumnRef
  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }
  /// "t.c" or "c".
  std::string QualifiedName() const;

  // kLiteral
  const Value& value() const { return value_; }

  // operators
  CompareOp compare_op() const { return compare_op_; }
  LogicalOp logical_op() const { return logical_op_; }
  ArithOp arith_op() const { return arith_op_; }
  AggFunc agg_func() const { return agg_func_; }

  /// Children; layout depends on kind (binary ops: [lhs, rhs]; NOT: [child];
  /// aggregate: [arg] or [] for COUNT(*), plus within() separately).
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(size_t i) const { return children_[i]; }
  const ExprPtr& within() const { return within_; }

  /// Structural equality.
  bool Equals(const Expr& other) const;

  /// Canonical SQL-ish rendering; two structurally equal expressions render
  /// identically, so this string doubles as the SmartIndex cache key.
  std::string ToString() const;

  /// True if the subtree contains an aggregate call.
  bool ContainsAggregate() const;

  /// Collects the distinct column names referenced by the subtree.
  void CollectColumns(std::vector<std::string>* out) const;

 private:
  explicit Expr(ExprKind kind) : kind_(kind) {}

  /// Sole allocation point for Expr nodes; the constructor is private, so
  /// std::make_shared cannot reach it and the factories funnel through here.
  static ExprPtr Make(ExprKind kind);

  ExprKind kind_;
  std::string table_;
  std::string column_;
  Value value_;
  CompareOp compare_op_ = CompareOp::kEq;
  LogicalOp logical_op_ = LogicalOp::kAnd;
  ArithOp arith_op_ = ArithOp::kAdd;
  AggFunc agg_func_ = AggFunc::kCount;
  std::vector<ExprPtr> children_;
  ExprPtr within_;
};

}  // namespace feisu

#endif  // FEISU_EXPR_EXPR_H_
