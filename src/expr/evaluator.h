#ifndef FEISU_EXPR_EVALUATOR_H_
#define FEISU_EXPR_EVALUATOR_H_

#include "common/result.h"
#include "columnar/block.h"
#include "columnar/record_batch.h"
#include "expr/expr.h"

namespace feisu {

/// Vectorized expression evaluation over RecordBatches. Aggregates are NOT
/// handled here (the HashAggregate operator owns them); passing an
/// expression containing one returns InvalidArgument.

/// Kleene three-valued evaluation result: a row is TRUE, FALSE, or
/// UNKNOWN (neither bit set, from NULL operands). SQL selection keeps only
/// TRUE rows, but the FALSE set is what a negated predicate's SmartIndex
/// must store — bit-NOT of the TRUE set would wrongly select UNKNOWN rows.
struct TriStateVector {
  BitVector is_true;
  BitVector is_false;
};

/// Full three-valued evaluation of a boolean predicate.
Result<TriStateVector> EvaluatePredicate3VL(const Expr& expr,
                                            const RecordBatch& batch);

/// Compressed-domain predicate evaluation: walks a normalized predicate
/// (comparisons, AND/OR/NOT) against a block's *encoded* columns and
/// answers it without decoding a single value, via the columnar kernels
/// (TryEvaluateEncodedCompare). Returns true with `out` filled — then
/// `out` is byte-identical to EvaluatePredicate3VL over the decoded batch
/// — or false when any leaf of the expression has no kernel (unsupported
/// op/type/encoding combination, non-literal comparand, unknown column):
/// the caller falls back to decode-then-evaluate, and the miss is counted
/// in DecodeCounters::predicates_fallback.
Result<bool> TryEvaluatePredicateEncoded(const Expr& expr,
                                         const ColumnarBlock& block,
                                         TriStateVector* out);

/// Evaluates a boolean predicate; row i is selected iff the predicate is
/// TRUE (SQL three-valued logic: UNKNOWN rows are not selected).
Result<BitVector> EvaluatePredicate(const Expr& expr,
                                    const RecordBatch& batch);

/// Evaluates a scalar (projection) expression into a column.
Result<ColumnVector> EvaluateExpr(const Expr& expr, const RecordBatch& batch);

/// Resolves a column reference against a batch, preferring the qualified
/// name ("t.c", produced by joins on name collisions) over the bare name.
const ColumnVector* LookupColumn(const Expr& ref, const RecordBatch& batch);

/// Infers the output type of a scalar expression against a schema.
Result<DataType> InferType(const Expr& expr, const Schema& schema);

/// Block-skipping test: can any row of a block with the given [min,max]
/// column stats satisfy `cmp_op` against `literal`? Conservative (returns
/// true when unsure). Used for zone-map pruning before SmartIndex lookup.
bool StatsMayMatch(CompareOp op, const ColumnStats& stats,
                   const Value& literal);

}  // namespace feisu

#endif  // FEISU_EXPR_EVALUATOR_H_
