#include "expr/evaluator.h"

#include <cmath>
#include <utility>

#include "columnar/block.h"

namespace feisu {

const ColumnVector* LookupColumn(const Expr& ref, const RecordBatch& batch) {
  // Qualified refs ("t.c") first match a join-qualified output column,
  // then fall back to the bare name.
  if (!ref.table().empty()) {
    const ColumnVector* col = batch.ColumnByName(ref.QualifiedName());
    if (col != nullptr) return col;
  }
  return batch.ColumnByName(ref.column());
}

namespace {

bool CompareValues(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;  // NULL never matches
  if (op == CompareOp::kContains) {
    if (lhs.type() != DataType::kString || rhs.type() != DataType::kString) {
      return false;
    }
    return lhs.string_value().find(rhs.string_value()) != std::string::npos;
  }
  int cmp = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
    case CompareOp::kContains:
      return false;
  }
  return false;
}

// A null-free numeric column viewed as a contiguous double array, matching
// the per-row Value::AsDouble view exactly (bool -> 0/1, int64 -> cast).
// Non-double columns convert into `scratch`; doubles alias their storage.
const double* AsDoubleArray(const ColumnVector& col,
                            std::vector<double>* scratch) {
  switch (col.type()) {
    case DataType::kDouble:
      return col.doubles().data();
    case DataType::kInt64: {
      const auto& v = col.ints();
      scratch->resize(v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        (*scratch)[i] = static_cast<double>(v[i]);
      }
      return scratch->data();
    }
    case DataType::kBool: {
      const auto& v = col.bools();
      scratch->resize(v.size());
      for (size_t i = 0; i < v.size(); ++i) {
        (*scratch)[i] = v[i] != 0 ? 1.0 : 0.0;
      }
      return scratch->data();
    }
    case DataType::kString:
      break;
  }
  return nullptr;
}

// Fast path: <int64 column> OP <numeric literal> and string CONTAINS,
// producing full three-valued output. Returns true if handled.
bool TryFastCompare(const Expr& expr, const RecordBatch& batch,
                    TriStateVector* out) {
  if (expr.kind() != ExprKind::kComparison) return false;
  const ExprPtr& l = expr.child(0);
  const ExprPtr& r = expr.child(1);
  if (l->kind() != ExprKind::kColumnRef || r->kind() != ExprKind::kLiteral) {
    return false;
  }
  const ColumnVector* col = LookupColumn(*l, batch);
  if (col == nullptr) return false;
  const Value& lit = r->value();
  CompareOp op = expr.compare_op();
  size_t n = col->size();
  out->is_true = BitVector(n, false);
  out->is_false = BitVector(n, false);
  if (lit.is_null()) return true;  // everything UNKNOWN
  if (col->type() == DataType::kInt64 && lit.is_numeric() &&
      op != CompareOp::kContains) {
    double rhs = lit.AsDouble();
    const auto& ints = col->ints();
    for (size_t i = 0; i < n; ++i) {
      if (col->IsNull(i)) continue;
      double v = static_cast<double>(ints[i]);
      bool match = false;
      switch (op) {
        case CompareOp::kEq:
          match = v == rhs;
          break;
        case CompareOp::kNe:
          match = v != rhs;
          break;
        case CompareOp::kLt:
          match = v < rhs;
          break;
        case CompareOp::kLe:
          match = v <= rhs;
          break;
        case CompareOp::kGt:
          match = v > rhs;
          break;
        case CompareOp::kGe:
          match = v >= rhs;
          break;
        case CompareOp::kContains:
          break;
      }
      (match ? out->is_true : out->is_false).Set(i, true);
    }
    return true;
  }
  if (col->type() == DataType::kString && lit.type() == DataType::kString &&
      op == CompareOp::kContains) {
    const auto& strings = col->strings();
    const std::string& needle = lit.string_value();
    for (size_t i = 0; i < n; ++i) {
      if (col->IsNull(i)) continue;
      bool match = strings[i].find(needle) != std::string::npos;
      (match ? out->is_true : out->is_false).Set(i, true);
    }
    return true;
  }
  return false;
}

// EncodedCompareOp mirrors CompareOp member-for-member so comparisons can
// be handed to the columnar kernels with a cast; pin the mirror here.
static_assert(static_cast<int>(EncodedCompareOp::kEq) ==
              static_cast<int>(CompareOp::kEq));
static_assert(static_cast<int>(EncodedCompareOp::kNe) ==
              static_cast<int>(CompareOp::kNe));
static_assert(static_cast<int>(EncodedCompareOp::kLt) ==
              static_cast<int>(CompareOp::kLt));
static_assert(static_cast<int>(EncodedCompareOp::kLe) ==
              static_cast<int>(CompareOp::kLe));
static_assert(static_cast<int>(EncodedCompareOp::kGt) ==
              static_cast<int>(CompareOp::kGt));
static_assert(static_cast<int>(EncodedCompareOp::kGe) ==
              static_cast<int>(CompareOp::kGe));
static_assert(static_cast<int>(EncodedCompareOp::kContains) ==
              static_cast<int>(CompareOp::kContains));

// Recursive compressed-domain walk: true = every leaf answered by an
// encoded kernel, false = some leaf needs the decode path. Kleene
// combination is identical to EvaluatePredicate3VL's.
Result<bool> EncodedPredicateRec(const Expr& expr, const ColumnarBlock& block,
                                 TriStateVector* out) {
  switch (expr.kind()) {
    case ExprKind::kLogical: {
      if (expr.logical_op() == LogicalOp::kNot) {
        TriStateVector child;
        FEISU_ASSIGN_OR_RETURN(
            bool ok, EncodedPredicateRec(*expr.child(0), block, &child));
        if (!ok) return false;
        std::swap(child.is_true, child.is_false);
        *out = std::move(child);
        return true;
      }
      TriStateVector lhs;
      TriStateVector rhs;
      FEISU_ASSIGN_OR_RETURN(
          bool lok, EncodedPredicateRec(*expr.child(0), block, &lhs));
      if (!lok) return false;
      FEISU_ASSIGN_OR_RETURN(
          bool rok, EncodedPredicateRec(*expr.child(1), block, &rhs));
      if (!rok) return false;
      if (expr.logical_op() == LogicalOp::kAnd) {
        out->is_true = BitVector::And(lhs.is_true, rhs.is_true);
        out->is_false = BitVector::Or(lhs.is_false, rhs.is_false);
      } else {
        out->is_true = BitVector::Or(lhs.is_true, rhs.is_true);
        out->is_false = BitVector::And(lhs.is_false, rhs.is_false);
      }
      return true;
    }
    case ExprKind::kComparison: {
      const ExprPtr& l = expr.child(0);
      const ExprPtr& r = expr.child(1);
      if (l->kind() != ExprKind::kColumnRef ||
          r->kind() != ExprKind::kLiteral) {
        return false;
      }
      int idx = -1;
      if (!l->table().empty()) {
        idx = block.schema().FieldIndex(l->QualifiedName());
      }
      if (idx < 0) idx = block.schema().FieldIndex(l->column());
      if (idx < 0) return false;
      EncodedPredicateBits bits;
      FEISU_ASSIGN_OR_RETURN(
          bool handled,
          TryEvaluateEncodedCompare(
              block.schema().field(idx).type,
              block.encoded_column(static_cast<size_t>(idx)),
              static_cast<EncodedCompareOp>(expr.compare_op()), r->value(),
              &bits));
      if (!handled) return false;
      out->is_true = std::move(bits.is_true);
      out->is_false = std::move(bits.is_false);
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

Result<bool> TryEvaluatePredicateEncoded(const Expr& expr,
                                         const ColumnarBlock& block,
                                         TriStateVector* out) {
  FEISU_ASSIGN_OR_RETURN(bool handled,
                         EncodedPredicateRec(expr, block, out));
  if (!handled) NoteEncodedPredicateFallback();
  return handled;
}

Result<DataType> InferType(const Expr& expr, const Schema& schema) {
  switch (expr.kind()) {
    case ExprKind::kColumnRef: {
      int idx = -1;
      if (!expr.table().empty()) idx = schema.FieldIndex(expr.QualifiedName());
      if (idx < 0) idx = schema.FieldIndex(expr.column());
      if (idx < 0) {
        return Status::NotFound("unknown column " + expr.QualifiedName());
      }
      return schema.field(idx).type;
    }
    case ExprKind::kLiteral:
      if (expr.value().is_null()) return DataType::kInt64;
      return expr.value().type();
    case ExprKind::kComparison:
    case ExprKind::kLogical:
      return DataType::kBool;
    case ExprKind::kArithmetic: {
      FEISU_ASSIGN_OR_RETURN(DataType lhs, InferType(*expr.child(0), schema));
      FEISU_ASSIGN_OR_RETURN(DataType rhs, InferType(*expr.child(1), schema));
      if (lhs == DataType::kString || rhs == DataType::kString) {
        return Status::InvalidArgument("arithmetic on string");
      }
      if (expr.arith_op() == ArithOp::kDiv) return DataType::kDouble;
      if (lhs == DataType::kDouble || rhs == DataType::kDouble) {
        return DataType::kDouble;
      }
      return DataType::kInt64;
    }
    case ExprKind::kAggregate:
      switch (expr.agg_func()) {
        case AggFunc::kCount:
          return DataType::kInt64;
        case AggFunc::kAvg:
          return DataType::kDouble;
        default: {
          if (expr.children().empty()) return DataType::kInt64;
          return InferType(*expr.child(0), schema);
        }
      }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unreachable");
}

Result<ColumnVector> EvaluateExpr(const Expr& expr,
                                  const RecordBatch& batch) {
  size_t n = batch.num_rows();
  switch (expr.kind()) {
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate expression in scalar context");
    case ExprKind::kColumnRef: {
      const ColumnVector* col = LookupColumn(expr, batch);
      if (col == nullptr) {
        return Status::NotFound("unknown column " + expr.QualifiedName());
      }
      return *col;
    }
    case ExprKind::kLiteral: {
      DataType type =
          expr.value().is_null() ? DataType::kInt64 : expr.value().type();
      ColumnVector out(type);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendValue(expr.value());
      return out;
    }
    case ExprKind::kArithmetic: {
      FEISU_ASSIGN_OR_RETURN(ColumnVector lhs,
                             EvaluateExpr(*expr.child(0), batch));
      FEISU_ASSIGN_OR_RETURN(ColumnVector rhs,
                             EvaluateExpr(*expr.child(1), batch));
      FEISU_ASSIGN_OR_RETURN(DataType out_type,
                             InferType(expr, batch.schema()));
      ColumnVector out(out_type);
      out.Reserve(n);
      // Null-free fast path: read both inputs as typed double arrays with
      // no per-row boxing. Arithmetic stays in the double domain with the
      // same casts as the boxed loop below, so results are bit-identical.
      if (lhs.NullCount() == 0 && rhs.NullCount() == 0 &&
          lhs.type() != DataType::kString &&
          rhs.type() != DataType::kString) {
        std::vector<double> lscratch, rscratch;
        const double* a = AsDoubleArray(lhs, &lscratch);
        const double* b = AsDoubleArray(rhs, &rscratch);
        const bool int_out = out_type == DataType::kInt64;
        auto emit = [&](double v) {
          if (int_out) {
            out.AppendInt64(static_cast<int64_t>(v));
          } else {
            out.AppendDouble(v);
          }
        };
        switch (expr.arith_op()) {
          case ArithOp::kAdd:
            for (size_t i = 0; i < n; ++i) emit(a[i] + b[i]);
            break;
          case ArithOp::kSub:
            for (size_t i = 0; i < n; ++i) emit(a[i] - b[i]);
            break;
          case ArithOp::kMul:
            for (size_t i = 0; i < n; ++i) emit(a[i] * b[i]);
            break;
          case ArithOp::kDiv:  // out_type is always kDouble for division
            for (size_t i = 0; i < n; ++i) {
              if (b[i] == 0) {
                out.AppendNull();
              } else {
                out.AppendDouble(a[i] / b[i]);
              }
            }
            break;
          case ArithOp::kMod:
            for (size_t i = 0; i < n; ++i) {
              int64_t d = static_cast<int64_t>(b[i]);
              if (d == 0) {
                out.AppendNull();
              } else {
                emit(static_cast<double>(static_cast<int64_t>(a[i]) % d));
              }
            }
            break;
        }
        return out;
      }
      for (size_t i = 0; i < n; ++i) {
        if (lhs.IsNull(i) || rhs.IsNull(i)) {
          out.AppendNull();
          continue;
        }
        double a = lhs.GetValue(i).AsDouble();
        double b = rhs.GetValue(i).AsDouble();
        double v = 0;
        switch (expr.arith_op()) {
          case ArithOp::kAdd:
            v = a + b;
            break;
          case ArithOp::kSub:
            v = a - b;
            break;
          case ArithOp::kMul:
            v = a * b;
            break;
          case ArithOp::kDiv:
            if (b == 0) {
              out.AppendNull();
              continue;
            }
            v = a / b;
            break;
          case ArithOp::kMod:
            if (static_cast<int64_t>(b) == 0) {
              out.AppendNull();
              continue;
            }
            v = static_cast<double>(static_cast<int64_t>(a) %
                                    static_cast<int64_t>(b));
            break;
        }
        if (out_type == DataType::kInt64) {
          out.AppendInt64(static_cast<int64_t>(v));
        } else {
          out.AppendDouble(v);
        }
      }
      return out;
    }
    case ExprKind::kComparison:
    case ExprKind::kLogical: {
      FEISU_ASSIGN_OR_RETURN(BitVector bits, EvaluatePredicate(expr, batch));
      ColumnVector out(DataType::kBool);
      out.Reserve(n);
      for (size_t i = 0; i < n; ++i) out.AppendBool(bits.Get(i));
      return out;
    }
    case ExprKind::kStar:
      return Status::InvalidArgument("'*' outside COUNT(*)");
  }
  return Status::Internal("unreachable");
}

Result<TriStateVector> EvaluatePredicate3VL(const Expr& expr,
                                             const RecordBatch& batch) {
  size_t n = batch.num_rows();
  switch (expr.kind()) {
    case ExprKind::kLogical: {
      if (expr.logical_op() == LogicalOp::kNot) {
        FEISU_ASSIGN_OR_RETURN(TriStateVector child,
                               EvaluatePredicate3VL(*expr.child(0), batch));
        // Kleene NOT: swap TRUE and FALSE, UNKNOWN stays UNKNOWN.
        std::swap(child.is_true, child.is_false);
        return child;
      }
      FEISU_ASSIGN_OR_RETURN(TriStateVector lhs,
                             EvaluatePredicate3VL(*expr.child(0), batch));
      FEISU_ASSIGN_OR_RETURN(TriStateVector rhs,
                             EvaluatePredicate3VL(*expr.child(1), batch));
      TriStateVector out;
      if (expr.logical_op() == LogicalOp::kAnd) {
        // Kleene AND: true iff both true; false iff either false.
        out.is_true = BitVector::And(lhs.is_true, rhs.is_true);
        out.is_false = BitVector::Or(lhs.is_false, rhs.is_false);
      } else {
        out.is_true = BitVector::Or(lhs.is_true, rhs.is_true);
        out.is_false = BitVector::And(lhs.is_false, rhs.is_false);
      }
      return out;
    }
    case ExprKind::kComparison: {
      TriStateVector fast;
      if (TryFastCompare(expr, batch, &fast)) return fast;
      FEISU_ASSIGN_OR_RETURN(ColumnVector lhs,
                             EvaluateExpr(*expr.child(0), batch));
      FEISU_ASSIGN_OR_RETURN(ColumnVector rhs,
                             EvaluateExpr(*expr.child(1), batch));
      TriStateVector out;
      out.is_true = BitVector(n, false);
      out.is_false = BitVector(n, false);
      const CompareOp op = expr.compare_op();
      // Null-free typed fast paths mirroring CompareValues/Value::Compare:
      // numerics compare in the common double domain, strings by content.
      // Mixed string/numeric inputs keep the boxed path (type-ordered).
      if (lhs.NullCount() == 0 && rhs.NullCount() == 0) {
        if (lhs.type() != DataType::kString &&
            rhs.type() != DataType::kString && op != CompareOp::kContains) {
          std::vector<double> lscratch, rscratch;
          const double* a = AsDoubleArray(lhs, &lscratch);
          const double* b = AsDoubleArray(rhs, &rscratch);
          for (size_t i = 0; i < n; ++i) {
            bool match = false;
            switch (op) {
              case CompareOp::kEq:
                match = a[i] == b[i];
                break;
              case CompareOp::kNe:
                match = a[i] != b[i];
                break;
              case CompareOp::kLt:
                match = a[i] < b[i];
                break;
              case CompareOp::kLe:
                match = a[i] <= b[i];
                break;
              case CompareOp::kGt:
                match = a[i] > b[i];
                break;
              case CompareOp::kGe:
                match = a[i] >= b[i];
                break;
              case CompareOp::kContains:
                break;
            }
            (match ? out.is_true : out.is_false).Set(i, true);
          }
          return out;
        }
        if (lhs.type() == DataType::kString &&
            rhs.type() == DataType::kString) {
          const auto& a = lhs.strings();
          const auto& b = rhs.strings();
          for (size_t i = 0; i < n; ++i) {
            bool match = false;
            if (op == CompareOp::kContains) {
              match = a[i].find(b[i]) != std::string::npos;
            } else {
              int cmp = a[i].compare(b[i]);
              switch (op) {
                case CompareOp::kEq:
                  match = cmp == 0;
                  break;
                case CompareOp::kNe:
                  match = cmp != 0;
                  break;
                case CompareOp::kLt:
                  match = cmp < 0;
                  break;
                case CompareOp::kLe:
                  match = cmp <= 0;
                  break;
                case CompareOp::kGt:
                  match = cmp > 0;
                  break;
                case CompareOp::kGe:
                  match = cmp >= 0;
                  break;
                case CompareOp::kContains:
                  break;
              }
            }
            (match ? out.is_true : out.is_false).Set(i, true);
          }
          return out;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        Value a = lhs.GetValue(i);
        Value b = rhs.GetValue(i);
        if (a.is_null() || b.is_null()) continue;  // UNKNOWN
        bool match = CompareValues(op, a, b);
        (match ? out.is_true : out.is_false).Set(i, true);
      }
      return out;
    }
    case ExprKind::kLiteral: {
      TriStateVector out;
      if (expr.value().is_null()) {
        out.is_true = BitVector(n, false);
        out.is_false = BitVector(n, false);
        return out;
      }
      bool truthy = (expr.value().type() == DataType::kBool &&
                     expr.value().bool_value()) ||
                    (expr.value().is_numeric() &&
                     expr.value().AsDouble() != 0 &&
                     expr.value().type() != DataType::kBool);
      out.is_true = BitVector(n, truthy);
      out.is_false = BitVector(n, !truthy);
      return out;
    }
    case ExprKind::kColumnRef: {
      const ColumnVector* col = LookupColumn(expr, batch);
      if (col == nullptr) {
        return Status::NotFound("unknown column " + expr.QualifiedName());
      }
      if (col->type() != DataType::kBool) {
        return Status::InvalidArgument("predicate column must be BOOL");
      }
      TriStateVector out;
      out.is_true = BitVector(n, false);
      out.is_false = BitVector(n, false);
      for (size_t i = 0; i < n; ++i) {
        if (col->IsNull(i)) continue;
        (col->GetBool(i) ? out.is_true : out.is_false).Set(i, true);
      }
      return out;
    }
    default:
      return Status::InvalidArgument("expression is not a predicate: " +
                                     expr.ToString());
  }
}

Result<BitVector> EvaluatePredicate(const Expr& expr,
                                    const RecordBatch& batch) {
  FEISU_ASSIGN_OR_RETURN(TriStateVector tri,
                         EvaluatePredicate3VL(expr, batch));
  return std::move(tri.is_true);
}

bool StatsMayMatch(CompareOp op, const ColumnStats& stats,
                   const Value& literal) {
  if (literal.is_null()) return false;
  if (stats.min.is_null() || stats.max.is_null()) {
    // No stats (all-NULL column or unknown): only NULL rows, which never
    // match a comparison.
    return false;
  }
  switch (op) {
    case CompareOp::kEq:
      return literal.Compare(stats.min) >= 0 &&
             literal.Compare(stats.max) <= 0;
    case CompareOp::kNe:
      // Only prunable if every row equals the literal.
      return !(stats.min == stats.max && stats.min == literal);
    case CompareOp::kLt:
      return stats.min.Compare(literal) < 0;
    case CompareOp::kLe:
      return stats.min.Compare(literal) <= 0;
    case CompareOp::kGt:
      return stats.max.Compare(literal) > 0;
    case CompareOp::kGe:
      return stats.max.Compare(literal) >= 0;
    case CompareOp::kContains:
      return true;  // substring match can't be pruned by min/max
  }
  return true;
}

}  // namespace feisu
