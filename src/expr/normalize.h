#ifndef FEISU_EXPR_NORMALIZE_H_
#define FEISU_EXPR_NORMALIZE_H_

#include <string>
#include <vector>

#include "expr/expr.h"

namespace feisu {

/// Rewrites a boolean expression so that NOT only remains around atoms with
/// no negation dual (CONTAINS): NOT over AND/OR applies De Morgan, NOT over
/// a comparison flips the operator — this is what makes
/// `c2 > 0 AND !(c2 > 5)` reuse the SmartIndex built for `c2 <= 5`
/// (paper Fig. 7, Q10-Q12).
ExprPtr PushDownNot(const ExprPtr& expr);

/// Canonicalizes atoms: literal-on-left comparisons are mirrored so the
/// column ref is on the left; operands of symmetric operators (= and !=)
/// are ordered deterministically. Applies recursively.
ExprPtr CanonicalizeAtoms(const ExprPtr& expr);

/// Converts a (NOT-pushed, canonicalized) boolean expression to conjunctive
/// normal form and returns the list of conjuncts. Each conjunct is an atom
/// or a disjunction of atoms. `max_terms` guards against exponential
/// blow-up; when exceeded, the expression is returned as a single conjunct.
std::vector<ExprPtr> ToCnf(const ExprPtr& expr, size_t max_terms = 64);

/// Full normalization pipeline: PushDownNot + CanonicalizeAtoms + ToCnf.
std::vector<ExprPtr> NormalizePredicate(const ExprPtr& expr);

/// Canonical cache key of one conjunct; equal predicates (after
/// normalization) produce equal keys. This is the SmartIndex lookup key.
std::string PredicateKey(const ExprPtr& conjunct);

}  // namespace feisu

#endif  // FEISU_EXPR_NORMALIZE_H_
