#include "expr/normalize.h"

#include <algorithm>

namespace feisu {

namespace {

bool IsLogical(const ExprPtr& e, LogicalOp op) {
  return e->kind() == ExprKind::kLogical && e->logical_op() == op;
}

ExprPtr PushDownNotImpl(const ExprPtr& expr, bool negated) {
  if (expr->kind() == ExprKind::kLogical) {
    switch (expr->logical_op()) {
      case LogicalOp::kNot:
        return PushDownNotImpl(expr->child(0), !negated);
      case LogicalOp::kAnd: {
        ExprPtr l = PushDownNotImpl(expr->child(0), negated);
        ExprPtr r = PushDownNotImpl(expr->child(1), negated);
        return negated ? Expr::Or(l, r) : Expr::And(l, r);
      }
      case LogicalOp::kOr: {
        ExprPtr l = PushDownNotImpl(expr->child(0), negated);
        ExprPtr r = PushDownNotImpl(expr->child(1), negated);
        return negated ? Expr::And(l, r) : Expr::Or(l, r);
      }
    }
  }
  if (expr->kind() == ExprKind::kComparison && negated) {
    CompareOp flipped;
    if (NegateCompareOp(expr->compare_op(), &flipped)) {
      return Expr::Compare(flipped, expr->child(0), expr->child(1));
    }
    return Expr::Not(expr);  // CONTAINS: keep the NOT wrapper
  }
  return negated ? Expr::Not(expr) : expr;
}

}  // namespace

ExprPtr PushDownNot(const ExprPtr& expr) {
  return PushDownNotImpl(expr, false);
}

ExprPtr CanonicalizeAtoms(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kLogical: {
      if (expr->logical_op() == LogicalOp::kNot) {
        return Expr::Not(CanonicalizeAtoms(expr->child(0)));
      }
      ExprPtr l = CanonicalizeAtoms(expr->child(0));
      ExprPtr r = CanonicalizeAtoms(expr->child(1));
      // Order commutative boolean operands deterministically so that
      // `a AND b` and `b AND a` share one key.
      if (l->ToString() > r->ToString()) std::swap(l, r);
      return expr->logical_op() == LogicalOp::kAnd ? Expr::And(l, r)
                                                   : Expr::Or(l, r);
    }
    case ExprKind::kComparison: {
      ExprPtr l = expr->child(0);
      ExprPtr r = expr->child(1);
      // Mirror literal-on-left so the column lands on the left.
      if (l->kind() == ExprKind::kLiteral &&
          r->kind() != ExprKind::kLiteral) {
        return Expr::Compare(MirrorCompareOp(expr->compare_op()), r, l);
      }
      return expr;
    }
    default:
      return expr;
  }
}

std::vector<ExprPtr> ToCnf(const ExprPtr& expr, size_t max_terms) {
  // AND: union of the children's conjunct lists.
  if (IsLogical(expr, LogicalOp::kAnd)) {
    std::vector<ExprPtr> out = ToCnf(expr->child(0), max_terms);
    std::vector<ExprPtr> rhs = ToCnf(expr->child(1), max_terms);
    out.insert(out.end(), rhs.begin(), rhs.end());
    if (out.size() > max_terms) return {expr};
    return out;
  }
  // OR: distribute over the children's CNF.
  if (IsLogical(expr, LogicalOp::kOr)) {
    std::vector<ExprPtr> left = ToCnf(expr->child(0), max_terms);
    std::vector<ExprPtr> right = ToCnf(expr->child(1), max_terms);
    if (left.size() * right.size() > max_terms) return {expr};
    std::vector<ExprPtr> out;
    out.reserve(left.size() * right.size());
    for (const auto& l : left) {
      for (const auto& r : right) {
        ExprPtr l2 = l;
        ExprPtr r2 = r;
        if (l2->ToString() > r2->ToString()) std::swap(l2, r2);
        out.push_back(Expr::Or(l2, r2));
      }
    }
    return out;
  }
  return {expr};
}

std::vector<ExprPtr> NormalizePredicate(const ExprPtr& expr) {
  if (expr == nullptr) return {};
  return ToCnf(CanonicalizeAtoms(PushDownNot(expr)));
}

std::string PredicateKey(const ExprPtr& conjunct) {
  return conjunct->ToString();
}

}  // namespace feisu
