#ifndef FEISU_CORE_ENGINE_H_
#define FEISU_CORE_ENGINE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/master.h"
#include "common/fault_injector.h"
#include "common/result.h"
#include "plan/catalog.h"
#include "storage/path_router.h"
#include "storage/sso.h"

namespace feisu {

/// Whole-deployment configuration.
struct EngineConfig {
  size_t num_leaf_nodes = 8;
  uint32_t rows_per_block = 4096;
  LeafServerConfig leaf;
  MasterConfig master;
  /// Deterministic chaos schedule applied to the whole deployment
  /// (disabled by default). See docs/FAULTS.md.
  FaultConfig fault;
};

/// The top-level Feisu deployment: heterogeneous storage systems behind the
/// common storage layer, a catalog, an SSO authenticator, a simulated
/// cluster of leaf servers and the master. This is the public API the
/// examples and benchmarks drive.
///
/// Typical use:
///
///   EngineConfig config;
///   FeisuEngine engine(config);
///   engine.AddStorage("/hdfs", MakeHdfs());
///   engine.GrantAllDomains("ana");
///   engine.CreateTable("t1", schema, "/hdfs/t1");
///   engine.Ingest("t1", batch);
///   auto result = engine.Query("ana", "SELECT COUNT(*) FROM t1 WHERE ...");
class FeisuEngine {
 public:
  explicit FeisuEngine(EngineConfig config);

  FeisuEngine(const FeisuEngine&) = delete;
  FeisuEngine& operator=(const FeisuEngine&) = delete;

  /// Registers a storage system under a path prefix and makes every leaf
  /// node eligible to hold its replicas (local FS pins per-node instead).
  StorageSystem* AddStorage(const std::string& prefix,
                            std::unique_ptr<StorageSystem> storage,
                            bool is_default = false);

  /// Enrolls a user and grants them every registered storage domain.
  void GrantAllDomains(const std::string& user);
  SsoAuthenticator& sso() { return sso_; }

  /// Creates an empty table whose blocks will live under `path_prefix`
  /// (the prefix decides the storage system).
  Status CreateTable(const std::string& name, Schema schema,
                     const std::string& path_prefix);

  /// Appends rows; full blocks are encoded and written out automatically.
  Status Ingest(const std::string& table, const RecordBatch& batch);

  /// Flushes any buffered rows of `table` into a final block.
  Status Flush(const std::string& table);

  /// Ingests newline-separated JSON documents, flattening nested fields to
  /// columns. All documents must flatten onto the table's schema (missing
  /// attributes become NULL; unknown attributes are rejected).
  Status IngestJsonLines(const std::string& table, const std::string& lines);

  /// Compacts a table's undersized blocks: blocks below half the
  /// configured block size are read back, concatenated, re-encoded into
  /// full blocks and rewritten; the originals are deleted. Freshness-driven
  /// ingestion (LogMonitor's age-based flushes) produces many small blocks,
  /// and per-block task overhead makes them expensive to query. Returns the
  /// number of blocks removed by the pass. Invalidates cached task results
  /// (old block ids disappear; orphaned SmartIndex entries age out via TTL).
  Result<size_t> CompactTable(const std::string& table);

  /// Runs one query as `user` at the engine's current simulated time. The
  /// engine clock advances by the query's simulated response time.
  Result<QueryResult> Query(const std::string& user, const std::string& sql);

  /// Runs a query at an explicit simulated timestamp (trace replay).
  Result<QueryResult> QueryAt(const std::string& user, const std::string& sql,
                              SimTime now);

  /// Async pair of QueryAt for the multi-query master
  /// (master.max_concurrent_jobs > 1): submit returns the job id once the
  /// job is admitted and queued; wait blocks for its result. Safe to call
  /// from many client threads; the engine clock does not advance (each
  /// job's simulated response time is measured from its own `now`).
  Result<int64_t> SubmitQueryAt(const std::string& user,
                                const std::string& sql, SimTime now,
                                const SubmitOptions& options = {});
  Result<QueryResult> WaitQuery(int64_t job_id);

  SimClock& clock() { return clock_; }
  Catalog& catalog() { return catalog_; }
  PathRouter& router() { return router_; }
  FaultInjector& fault_injector() { return fault_injector_; }
  MasterServer& master() { return *master_; }
  ClusterManager& cluster() { return cluster_; }
  LeafServer& leaf(size_t i) { return *leaves_[i]; }
  size_t num_leaves() const { return leaves_.size(); }
  /// The leaf-server pool, shared with a backup master during failover.
  std::vector<std::unique_ptr<LeafServer>>* leaf_servers() { return &leaves_; }

  /// Sums index-cache statistics over all leaf servers.
  IndexCacheStats AggregateIndexStats() const;
  /// Sums resolver statistics over all leaf servers.
  ResolverStats AggregateResolverStats() const;
  /// Total SmartIndex memory across leaves.
  uint64_t TotalIndexMemory() const;

  /// Periodic control-plane maintenance at simulated time `now`: every
  /// alive leaf heartbeats the cluster manager, liveness is swept, and
  /// each leaf's index cache drops TTL-expired entries. Production Feisu
  /// runs this continuously; benches/tests call it explicitly.
  void RunMaintenance(SimTime now);

  /// Reconfigures every leaf's index-cache capacity (Fig. 11 sweeps).
  void SetIndexCacheCapacity(uint64_t bytes);
  /// Clears all leaf caches and scheduler load (between experiments).
  void ResetCaches();

 private:
  struct IngestState {
    std::string path_prefix;
    RecordBatch pending;
    int64_t next_block = 0;
  };

  Status WriteBlock(const std::string& table, IngestState* state);

  EngineConfig config_;
  SimClock clock_;
  FaultInjector fault_injector_;
  PathRouter router_;
  Catalog catalog_;
  SsoAuthenticator sso_;
  ClusterManager cluster_;
  std::vector<std::unique_ptr<LeafServer>> leaves_;
  std::unique_ptr<MasterServer> master_;
  std::map<std::string, IngestState> ingest_;
  /// Leaves whose heartbeats maintenance is currently suppressing because
  /// of a network partition (the process itself keeps running). A node
  /// swept dead for this reason revives on the first heartbeat after the
  /// partition heals; a node that actually crashed does not.
  std::set<uint32_t> partition_suppressed_;
  int64_t next_global_block_id_ = 0;
};

}  // namespace feisu

#endif  // FEISU_CORE_ENGINE_H_
