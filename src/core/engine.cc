#include "core/engine.h"

#include <chrono>
#include <sstream>

#include "columnar/json_flatten.h"

namespace feisu {

FeisuEngine::FeisuEngine(EngineConfig config) : config_(config) {
  // Queue-wait observability needs a host wall clock (SimTime cannot see
  // host queueing); install a monotonic default unless the embedder
  // supplied one.
  if (!config_.master.host_clock_ns) {
    config_.master.host_clock_ns = []() {
      return static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
  }
  fault_injector_.Configure(config_.fault);
  router_.set_fault_injector(&fault_injector_);
  for (size_t i = 0; i < config_.num_leaf_nodes; ++i) {
    uint32_t node_id = cluster_.AddNode(/*is_stem=*/false);
    leaves_.push_back(
        std::make_unique<LeafServer>(node_id, &router_, config_.leaf));
  }
  master_ = std::make_unique<MasterServer>(&catalog_, &router_, &cluster_,
                                           &sso_, &leaves_, config_.master);
}

StorageSystem* FeisuEngine::AddStorage(const std::string& prefix,
                                       std::unique_ptr<StorageSystem> storage,
                                       bool is_default) {
  StorageSystem* raw = router_.Register(prefix, std::move(storage),
                                        is_default);
  for (const auto& leaf : leaves_) {
    raw->RegisterNode(leaf->node_id());
  }
  return raw;
}

void FeisuEngine::GrantAllDomains(const std::string& user) {
  sso_.RegisterUser(user);
  for (StorageSystem* storage : router_.systems()) {
    sso_.GrantDomain(user, storage->domain());
  }
}

Status FeisuEngine::CreateTable(const std::string& name, Schema schema,
                                const std::string& path_prefix) {
  FEISU_RETURN_IF_ERROR(
      catalog_.RegisterTable(TableMeta(name, std::move(schema))));
  IngestState state;
  state.path_prefix = path_prefix;
  state.pending = RecordBatch(catalog_.Find(name)->schema());
  ingest_.emplace(name, std::move(state));
  return Status::OK();
}

Status FeisuEngine::Ingest(const std::string& table,
                           const RecordBatch& batch) {
  auto it = ingest_.find(table);
  if (it == ingest_.end()) {
    return Status::NotFound("table " + table + " not created here");
  }
  IngestState& state = it->second;
  FEISU_RETURN_IF_ERROR(state.pending.Append(batch));
  while (state.pending.num_rows() >= config_.rows_per_block) {
    // Carve off one block worth of rows.
    BitVector head(state.pending.num_rows(), false);
    BitVector tail(state.pending.num_rows(), false);
    for (size_t i = 0; i < state.pending.num_rows(); ++i) {
      if (i < config_.rows_per_block) {
        head.Set(i, true);
      } else {
        tail.Set(i, true);
      }
    }
    RecordBatch block_rows = state.pending.Filter(head);
    RecordBatch rest = state.pending.Filter(tail);
    state.pending = std::move(block_rows);
    FEISU_RETURN_IF_ERROR(WriteBlock(table, &state));
    state.pending = std::move(rest);
  }
  return Status::OK();
}

Status FeisuEngine::Flush(const std::string& table) {
  auto it = ingest_.find(table);
  if (it == ingest_.end()) {
    return Status::NotFound("table " + table + " not created here");
  }
  if (it->second.pending.num_rows() == 0) return Status::OK();
  return WriteBlock(table, &it->second);
}

Status FeisuEngine::WriteBlock(const std::string& table, IngestState* state) {
  TableMeta* meta = catalog_.FindMutable(table);
  if (meta == nullptr) return Status::NotFound("table " + table);
  int64_t block_id = next_global_block_id_++;
  ColumnarBlock block = ColumnarBlock::FromBatch(block_id, state->pending);
  std::string payload = block.Serialize();

  TableBlockMeta block_meta;
  block_meta.block_id = block_id;
  block_meta.path = state->path_prefix + "/blk_" +
                    std::to_string(state->next_block++);
  block_meta.num_rows = block.num_rows();
  block_meta.bytes = payload.size();
  for (size_t c = 0; c < block.schema().num_fields(); ++c) {
    block_meta.stats.push_back(block.stats(c));
    block_meta.stats_columns.push_back(block.schema().field(c).name);
  }
  FEISU_RETURN_IF_ERROR(router_.Write(block_meta.path, std::move(payload)));
  meta->AddBlock(std::move(block_meta));
  state->pending = RecordBatch(meta->schema());
  return Status::OK();
}

Status FeisuEngine::IngestJsonLines(const std::string& table,
                                    const std::string& lines) {
  const TableMeta* meta = catalog_.Find(table);
  if (meta == nullptr) return Status::NotFound("table " + table);
  const Schema& schema = meta->schema();
  RecordBatch batch(schema);
  std::istringstream stream(lines);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    FEISU_ASSIGN_OR_RETURN(std::vector<FlatAttribute> attrs,
                           FlattenJson(line));
    std::vector<Value> row(schema.num_fields());
    for (const auto& attr : attrs) {
      int idx = schema.FieldIndex(attr.path);
      if (idx < 0) {
        return Status::InvalidArgument("attribute " + attr.path +
                                       " not in schema of " + table);
      }
      Value v = attr.value;
      // Widen int64 into double columns.
      if (!v.is_null() && schema.field(idx).type == DataType::kDouble &&
          v.type() == DataType::kInt64) {
        v = Value::Double(v.AsDouble());
      }
      row[static_cast<size_t>(idx)] = std::move(v);
    }
    FEISU_RETURN_IF_ERROR(batch.AppendRow(row));
  }
  return Ingest(table, batch);
}

Result<size_t> FeisuEngine::CompactTable(const std::string& table) {
  TableMeta* meta = catalog_.FindMutable(table);
  if (meta == nullptr) return Status::NotFound("table " + table);
  auto it = ingest_.find(table);
  if (it == ingest_.end()) {
    return Status::NotFound("table " + table + " not created here");
  }
  const uint32_t threshold = config_.rows_per_block / 2;

  std::vector<TableBlockMeta> keep;
  std::vector<TableBlockMeta> small;
  for (const auto& block : meta->blocks()) {
    (block.num_rows < threshold ? small : keep).push_back(block);
  }
  if (small.size() < 2) return static_cast<size_t>(0);

  // Read the small blocks back and concatenate their rows.
  RecordBatch merged(meta->schema());
  for (const auto& block : small) {
    FEISU_ASSIGN_OR_RETURN(const std::string* payload,
                           router_.Get(block.path));
    FEISU_ASSIGN_OR_RETURN(ColumnarBlock decoded,
                           ColumnarBlock::Deserialize(*payload));
    FEISU_ASSIGN_OR_RETURN(RecordBatch rows, decoded.DecodeBatch());
    FEISU_RETURN_IF_ERROR(merged.Append(rows));
  }

  // Rebuild the catalog with the surviving blocks, then re-ingest the
  // merged rows through the normal block writer.
  TableMeta rebuilt(meta->name(), meta->schema());
  for (auto& block : keep) rebuilt.AddBlock(std::move(block));
  *meta = std::move(rebuilt);
  size_t removed = small.size();
  for (const auto& block : small) {
    FEISU_ASSIGN_OR_RETURN(StorageSystem * storage,
                           router_.Resolve(block.path));
    FEISU_RETURN_IF_ERROR(storage->Delete(block.path));
  }
  FEISU_RETURN_IF_ERROR(merged.num_rows() > 0 ? Ingest(table, merged)
                                              : Status::OK());
  FEISU_RETURN_IF_ERROR(Flush(table));
  // Old block ids vanished: stale task-result cache entries must not serve.
  master_->job_manager().InvalidateReuseCache();
  return removed;
}

Result<QueryResult> FeisuEngine::Query(const std::string& user,
                                       const std::string& sql) {
  FEISU_ASSIGN_OR_RETURN(QueryResult result,
                         master_->ExecuteQuery(user, sql, clock_.Now()));
  clock_.Advance(result.stats.response_time);
  return result;
}

Result<QueryResult> FeisuEngine::QueryAt(const std::string& user,
                                         const std::string& sql,
                                         SimTime now) {
  clock_.AdvanceTo(now);
  return master_->ExecuteQuery(user, sql, now);
}

Result<int64_t> FeisuEngine::SubmitQueryAt(
    const std::string& user, const std::string& sql, SimTime now,
    const SubmitOptions& options) {
  // No clock advance: concurrent submissions share one simulated instant;
  // each job's simulated response time is measured from `now` on its own
  // ledger.
  return master_->SubmitQuery(user, sql, now, options);
}

Result<QueryResult> FeisuEngine::WaitQuery(int64_t job_id) {
  return master_->WaitQuery(job_id);
}

IndexCacheStats FeisuEngine::AggregateIndexStats() const {
  IndexCacheStats total;
  for (const auto& leaf : leaves_) {
    const IndexCacheStats& s = leaf->index_cache().stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.insertions += s.insertions;
    total.lru_evictions += s.lru_evictions;
    total.ttl_evictions += s.ttl_evictions;
  }
  return total;
}

ResolverStats FeisuEngine::AggregateResolverStats() const {
  ResolverStats total;
  for (const auto& leaf : leaves_) {
    const ResolverStats& s = leaf->resolver_stats();
    total.direct_hits += s.direct_hits;
    total.composed_hits += s.composed_hits;
    total.misses += s.misses;
    total.bitmap_words += s.bitmap_words;
  }
  return total;
}

uint64_t FeisuEngine::TotalIndexMemory() const {
  uint64_t total = 0;
  for (const auto& leaf : leaves_) {
    total += leaf->index_cache().memory_bytes();
  }
  return total;
}

void FeisuEngine::RunMaintenance(SimTime now) {
  clock_.AdvanceTo(now);
  // Apply the chaos schedule first: crashes/recoveries whose time has come
  // take effect before this round's heartbeats.
  for (const NodeFaultEvent& event : fault_injector_.TakeDueNodeEvents(now)) {
    if (event.crash) {
      cluster_.MarkDead(event.node_id);
      // The process is really gone now; a later partition heal must not
      // resurrect it (only a recovery event may).
      partition_suppressed_.erase(event.node_id);
    } else {
      cluster_.MarkAlive(event.node_id, now);
    }
  }
  for (const auto& leaf : leaves_) {
    const uint32_t id = leaf->node_id();
    const NodeInfo* node = cluster_.Node(id);
    // Crashed processes stop heartbeating; the sweep below notices. A
    // heartbeat lost in the control plane has the same effect for this
    // round. A partitioned node keeps running but its heartbeats never
    // arrive — a long enough partition gets it swept dead, and because
    // suppression (not a crash) caused that, the first heartbeat after
    // the heal revives it.
    if (node != nullptr) {
      if (fault_injector_.IsPartitioned(id, now)) {
        if (node->alive || partition_suppressed_.contains(id)) {
          partition_suppressed_.insert(id);
        }
      } else {
        const bool healed = partition_suppressed_.erase(id) > 0;
        if ((node->alive || healed) &&
            !fault_injector_.DropHeartbeat(id, now)) {
          cluster_.Heartbeat(id, now);
        }
      }
    }
    leaf->index_cache().EvictExpired(now);
  }
  cluster_.SweepLiveness(now);
}

void FeisuEngine::SetIndexCacheCapacity(uint64_t bytes) {
  for (const auto& leaf : leaves_) {
    leaf->index_cache().set_capacity_bytes(bytes);
  }
}

void FeisuEngine::ResetCaches() {
  for (const auto& leaf : leaves_) {
    leaf->index_cache().Clear();
    leaf->index_cache().ResetStats();
  }
  master_->scheduler().ResetLoad();
  master_->job_manager().InvalidateReuseCache();
}

}  // namespace feisu
