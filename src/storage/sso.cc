#include "storage/sso.h"

#include <algorithm>

namespace feisu {

bool JobCredential::HasDomain(const std::string& domain) const {
  return std::find(domains.begin(), domains.end(), domain) != domains.end();
}

void SsoAuthenticator::RegisterUser(const std::string& user) {
  MutexLock lock(mutex_);
  user_domains_.emplace(user, std::set<std::string>{});
}

bool SsoAuthenticator::IsRegistered(const std::string& user) const {
  MutexLock lock(mutex_);
  return user_domains_.contains(user);
}

void SsoAuthenticator::GrantDomain(const std::string& user,
                                   const std::string& domain) {
  MutexLock lock(mutex_);
  user_domains_[user].insert(domain);
}

void SsoAuthenticator::RevokeDomain(const std::string& user,
                                    const std::string& domain) {
  MutexLock lock(mutex_);
  auto it = user_domains_.find(user);
  if (it != user_domains_.end()) it->second.erase(domain);
}

Result<JobCredential> SsoAuthenticator::Authenticate(const std::string& user) {
  MutexLock lock(mutex_);
  auto it = user_domains_.find(user);
  if (it == user_domains_.end()) {
    return Status::PermissionDenied("unknown user " + user);
  }
  JobCredential credential;
  credential.user = user;
  credential.token = next_token_++;
  credential.domains.assign(it->second.begin(), it->second.end());
  live_tokens_.insert(credential.token);
  return credential;
}

bool SsoAuthenticator::Authorize(const JobCredential& credential,
                                 const std::string& domain) const {
  MutexLock lock(mutex_);
  if (!live_tokens_.contains(credential.token)) return false;
  return credential.HasDomain(domain);
}

void SsoAuthenticator::Revoke(const JobCredential& credential) {
  MutexLock lock(mutex_);
  live_tokens_.erase(credential.token);
}

}  // namespace feisu
