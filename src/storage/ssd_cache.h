#ifndef FEISU_STORAGE_SSD_CACHE_H_
#define FEISU_STORAGE_SSD_CACHE_H_

#include <cstdint>
#include <list>
#include <set>
#include <string>
#include <unordered_map>

#include "common/annotations.h"
#include "common/sim_clock.h"
#include "storage/storage_system.h"

namespace feisu {

/// Cache admission/eviction policies evaluated in paper §IV-B. The paper's
/// finding: under Baidu's ad-hoc query mix, automatic policies (LRU/LFU)
/// exceed 80% miss rate, so production Feisu admits only manually marked
/// (business-critical) data — kManual caches preferred keys only.
enum class CachePolicy { kLru, kLfu, kManual };

const char* CachePolicyName(CachePolicy policy);

/// Simulated per-node SSD column cache. Keys are "<path>#<column>" strings;
/// values are byte sizes (payloads stay in the backing storage system —
/// only placement and cost are modeled).
///
/// Thread-safe (compile-time checked): one leaf server's concurrent
/// sub-plans share this cache, so every method synchronizes on the internal
/// mutex. `capacity_bytes_`, `policy_` and `ssd_cost_` are immutable after
/// construction and need no guard.
class SsdCache {
 public:
  SsdCache(uint64_t capacity_bytes, CachePolicy policy,
           StorageCostModel ssd_cost);

  CachePolicy policy() const { return policy_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t used_bytes() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return used_bytes_;
  }

  /// True if `key` is cached; updates recency/frequency bookkeeping and
  /// the hit/miss counters.
  bool Lookup(const std::string& key) FEISU_EXCLUDES(mutex_);

  /// Offers `key` to the cache after a miss. Admission depends on policy:
  /// LRU/LFU always admit (evicting per policy); kManual admits only
  /// preferred keys. Objects larger than capacity are rejected.
  void Admit(const std::string& key, uint64_t bytes) FEISU_EXCLUDES(mutex_);

  /// Marks a key as business-preferred (manual policy admits it; all
  /// policies refuse to evict preferred keys while unpreferred ones exist).
  void SetPreference(const std::string& key, bool preferred)
      FEISU_EXCLUDES(mutex_);

  /// Drops every entry whose key starts with `prefix` (e.g. "<path>#" to
  /// purge all columns of one block after its replica proved corrupt).
  /// Returns the number of entries removed; not counted as evictions.
  size_t InvalidatePrefix(const std::string& prefix) FEISU_EXCLUDES(mutex_);

  bool Contains(const std::string& key) const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_.contains(key);
  }

  /// SSD read cost for a cached object.
  SimTime ReadCost(uint64_t bytes) const { return ssd_cost_.ReadCost(bytes); }

  uint64_t hits() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return hits_;
  }
  uint64_t misses() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return misses_;
  }
  uint64_t evictions() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return evictions_;
  }
  double MissRate() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(misses_) / total;
  }
  void ResetStats() FEISU_EXCLUDES(mutex_);

 private:
  struct Entry {
    uint64_t bytes = 0;
    uint64_t frequency = 0;
    std::list<std::string>::iterator lru_it;
  };

  void EvictUntilFits(uint64_t incoming_bytes) FEISU_REQUIRES(mutex_);
  bool IsPreferred(const std::string& key) const FEISU_REQUIRES(mutex_) {
    return preferred_.contains(key);
  }

  mutable Mutex mutex_;
  // Immutable after construction.
  uint64_t capacity_bytes_;
  CachePolicy policy_;
  StorageCostModel ssd_cost_;
  uint64_t used_bytes_ FEISU_GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, Entry> entries_ FEISU_GUARDED_BY(mutex_);
  std::list<std::string> lru_ FEISU_GUARDED_BY(mutex_);  // front = most recent
  std::set<std::string> preferred_ FEISU_GUARDED_BY(mutex_);
  uint64_t hits_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t misses_ FEISU_GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace feisu

#endif  // FEISU_STORAGE_SSD_CACHE_H_
