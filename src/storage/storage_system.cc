#include "storage/storage_system.h"

#include <algorithm>

#include "common/hash.h"

namespace feisu {

StorageSystem::StorageSystem(std::string name, std::string domain,
                             StorageCostModel cost, int replication_factor)
    : name_(std::move(name)),
      domain_(std::move(domain)),
      cost_(cost),
      replication_factor_(replication_factor) {}

void StorageSystem::RegisterNode(uint32_t node_id) {
  if (std::find(nodes_.begin(), nodes_.end(), node_id) == nodes_.end()) {
    nodes_.push_back(node_id);
  }
}

Status StorageSystem::Write(const std::string& path, std::string payload) {
  if (nodes_.empty()) {
    return Status::Unavailable("storage " + name_ + " has no nodes");
  }
  FileEntry entry;
  entry.payload = std::move(payload);
  // Deterministic pseudo-random placement seeded by the path, so repeated
  // runs of an experiment lay data out identically.
  uint64_t h = HashString(path);
  int replicas = std::min<int>(replication_factor_,
                               static_cast<int>(nodes_.size()));
  for (int r = 0; r < replicas; ++r) {
    uint32_t node = nodes_[(h + static_cast<uint64_t>(r) * 0x9E3779B9ULL) %
                           nodes_.size()];
    // Avoid duplicate replica on the same node.
    if (std::find(entry.replica_nodes.begin(), entry.replica_nodes.end(),
                  node) != entry.replica_nodes.end()) {
      node = nodes_[(h + r + 1) % nodes_.size()];
    }
    if (std::find(entry.replica_nodes.begin(), entry.replica_nodes.end(),
                  node) == entry.replica_nodes.end()) {
      entry.replica_nodes.push_back(node);
    }
  }
  total_bytes_ += entry.payload.size();
  auto it = files_.find(path);
  if (it != files_.end()) {
    total_bytes_ -= it->second.payload.size();
    it->second = std::move(entry);
  } else {
    files_.emplace(path, std::move(entry));
  }
  return Status::OK();
}

Status StorageSystem::WriteToNode(const std::string& path,
                                  std::string payload, uint32_t node_id) {
  RegisterNode(node_id);
  FileEntry entry;
  entry.payload = std::move(payload);
  entry.replica_nodes = {node_id};
  total_bytes_ += entry.payload.size();
  auto it = files_.find(path);
  if (it != files_.end()) {
    total_bytes_ -= it->second.payload.size();
    it->second = std::move(entry);
  } else {
    files_.emplace(path, std::move(entry));
  }
  return Status::OK();
}

Result<const std::string*> StorageSystem::Get(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(name_ + ": no such file " + path);
  }
  return &it->second.payload;
}

bool StorageSystem::Exists(const std::string& path) const {
  return files_.contains(path);
}

Status StorageSystem::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound(name_ + ": no such file " + path);
  }
  total_bytes_ -= it->second.payload.size();
  files_.erase(it);
  return Status::OK();
}

std::vector<uint32_t> StorageSystem::ReplicaNodes(
    const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) return {};
  return it->second.replica_nodes;
}

std::vector<std::string> StorageSystem::List(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

SimTime StorageSystem::ReadCost(uint64_t bytes) const {
  double available = 1.0 - agreement_.reserved_bandwidth_fraction;
  if (available <= 0.0) available = 0.05;
  StorageCostModel scaled = cost_;
  scaled.read_bandwidth_bytes_per_sec *= available;
  return scaled.ReadCost(bytes);
}

SimTime StorageSystem::WriteCost(uint64_t bytes) const {
  double available = 1.0 - agreement_.reserved_bandwidth_fraction;
  if (available <= 0.0) available = 0.05;
  StorageCostModel scaled = cost_;
  scaled.write_bandwidth_bytes_per_sec *= available;
  return scaled.WriteCost(bytes);
}

}  // namespace feisu
