#ifndef FEISU_STORAGE_STORAGE_FACTORY_H_
#define FEISU_STORAGE_STORAGE_FACTORY_H_

#include <memory>
#include <string>

#include "storage/storage_system.h"

namespace feisu {

/// Storage personalities mirroring Baidu's production mix (paper §II):
///
///  * Local FS — log data generated in place on online service machines;
///    unreplicated, fast sequential reads, strict resource agreement
///    because the retrieval service co-runs on the node.
///  * HDFS — business data; 3-way replication, datacenter disks.
///  * Fatman — cold archival storage built from volunteer resources;
///    high first-byte latency, modest bandwidth, 3 replicas.

std::unique_ptr<StorageSystem> MakeLocalFs(const std::string& name = "local");
std::unique_ptr<StorageSystem> MakeHdfs(const std::string& name = "hdfs");
std::unique_ptr<StorageSystem> MakeFatman(const std::string& name = "ffs");

/// SSD read personality used by the SSD data-cache layer (paper §IV-B).
StorageCostModel SsdCostModel();

}  // namespace feisu

#endif  // FEISU_STORAGE_STORAGE_FACTORY_H_
