#ifndef FEISU_STORAGE_STORAGE_SYSTEM_H_
#define FEISU_STORAGE_STORAGE_SYSTEM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"

namespace feisu {

/// I/O cost personality of a storage system. Simulated time charged for a
/// read is `seek_latency + bytes / read_bandwidth`.
struct StorageCostModel {
  SimTime seek_latency = 5 * kSimMillisecond;
  double read_bandwidth_bytes_per_sec = 100.0 * 1024 * 1024;   // SATA-ish
  double write_bandwidth_bytes_per_sec = 80.0 * 1024 * 1024;

  SimTime ReadCost(uint64_t bytes) const {
    return seek_latency +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                read_bandwidth_bytes_per_sec * kSimSecond);
  }
  SimTime WriteCost(uint64_t bytes) const {
    return seek_latency +
           static_cast<SimTime>(static_cast<double>(bytes) /
                                write_bandwidth_bytes_per_sec * kSimSecond);
  }
};

/// Limits Feisu's footprint on a business-critical storage system (paper
/// §V-A: "resource consumption agreement"). The scheduler must not assign
/// more than `max_concurrent_tasks` Feisu tasks to any node of this system,
/// and leaves `reserved_bandwidth_fraction` of I/O to the business workload
/// (which scales the effective read bandwidth Feisu sees). The multi-query
/// master additionally caps how many in-flight *jobs* may read this system
/// at once (`max_concurrent_jobs`, 0 = unlimited): excess jobs wait in the
/// admission queue rather than dispatching tasks against it.
struct ResourceAgreement {
  int max_concurrent_tasks = 4;
  double reserved_bandwidth_fraction = 0.0;
  int max_concurrent_jobs = 0;
};

/// Per-file placement record.
struct FileEntry {
  std::string payload;
  std::vector<uint32_t> replica_nodes;
};

/// A simulated storage system: an independent authentication domain with an
/// in-memory file namespace, replica placement over registered storage
/// nodes, and an I/O cost personality. HDFS, Fatman (cold archival) and
/// local filesystems are instances with different parameters — see
/// storage/storage_factory.h.
class StorageSystem {
 public:
  StorageSystem(std::string name, std::string domain, StorageCostModel cost,
                int replication_factor);

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  const std::string& name() const { return name_; }
  /// Authentication domain (SSO maps user credentials per domain).
  const std::string& domain() const { return domain_; }
  int replication_factor() const { return replication_factor_; }
  const StorageCostModel& cost_model() const { return cost_; }
  ResourceAgreement& agreement() { return agreement_; }
  const ResourceAgreement& agreement() const { return agreement_; }

  /// Makes a cluster node eligible to hold replicas of this system.
  void RegisterNode(uint32_t node_id);
  const std::vector<uint32_t>& nodes() const { return nodes_; }

  /// Writes a file; replicas are placed pseudo-randomly over registered
  /// nodes (deterministic given the path). Fails if no nodes registered.
  Status Write(const std::string& path, std::string payload);

  /// Writes pinned to one node (local-FS log data is generated in place on
  /// the online service machine and never replicated off it).
  Status WriteToNode(const std::string& path, std::string payload,
                     uint32_t node_id);

  /// Zero-copy access to a file payload (cost is charged by the caller via
  /// ReadCost, because Feisu's columnar reader only pays for the columns it
  /// touches).
  Result<const std::string*> Get(const std::string& path) const;

  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);

  /// Node ids holding replicas of `path` (empty if absent).
  std::vector<uint32_t> ReplicaNodes(const std::string& path) const;

  /// Paths with the given prefix, sorted.
  std::vector<std::string> List(const std::string& prefix) const;

  /// Simulated time to read/write `bytes`, after the resource agreement's
  /// bandwidth reservation.
  SimTime ReadCost(uint64_t bytes) const;
  SimTime WriteCost(uint64_t bytes) const;

  uint64_t TotalBytes() const { return total_bytes_; }
  size_t FileCount() const { return files_.size(); }

 private:
  std::string name_;
  std::string domain_;
  StorageCostModel cost_;
  int replication_factor_;
  ResourceAgreement agreement_;
  std::vector<uint32_t> nodes_;
  std::map<std::string, FileEntry> files_;
  uint64_t total_bytes_ = 0;
};

}  // namespace feisu

#endif  // FEISU_STORAGE_STORAGE_SYSTEM_H_
