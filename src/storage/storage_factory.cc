#include "storage/storage_factory.h"

namespace feisu {

std::unique_ptr<StorageSystem> MakeLocalFs(const std::string& name) {
  StorageCostModel cost;
  cost.seek_latency = 4 * kSimMillisecond;
  cost.read_bandwidth_bytes_per_sec = 150.0 * 1024 * 1024;
  cost.write_bandwidth_bytes_per_sec = 120.0 * 1024 * 1024;
  auto storage =
      std::make_unique<StorageSystem>(name, "local-domain", cost,
                                      /*replication_factor=*/1);
  // The co-running retrieval service owns the node; Feisu may only use a
  // sliver of I/O and few concurrent tasks.
  storage->agreement().max_concurrent_tasks = 2;
  storage->agreement().reserved_bandwidth_fraction = 0.5;
  return storage;
}

std::unique_ptr<StorageSystem> MakeHdfs(const std::string& name) {
  StorageCostModel cost;
  cost.seek_latency = 8 * kSimMillisecond;
  cost.read_bandwidth_bytes_per_sec = 100.0 * 1024 * 1024;
  cost.write_bandwidth_bytes_per_sec = 60.0 * 1024 * 1024;
  auto storage = std::make_unique<StorageSystem>(name, name + "-domain", cost,
                                                 /*replication_factor=*/3);
  storage->agreement().max_concurrent_tasks = 4;
  storage->agreement().reserved_bandwidth_fraction = 0.2;
  return storage;
}

std::unique_ptr<StorageSystem> MakeFatman(const std::string& name) {
  StorageCostModel cost;
  // Cold archival on volunteer resources: long time-to-first-byte.
  cost.seek_latency = 120 * kSimMillisecond;
  cost.read_bandwidth_bytes_per_sec = 40.0 * 1024 * 1024;
  cost.write_bandwidth_bytes_per_sec = 20.0 * 1024 * 1024;
  auto storage = std::make_unique<StorageSystem>(name, "fatman-domain", cost,
                                                 /*replication_factor=*/3);
  storage->agreement().max_concurrent_tasks = 8;
  storage->agreement().reserved_bandwidth_fraction = 0.1;
  return storage;
}

StorageCostModel SsdCostModel() {
  StorageCostModel cost;
  cost.seek_latency = 80 * kSimMicrosecond;
  cost.read_bandwidth_bytes_per_sec = 500.0 * 1024 * 1024;
  cost.write_bandwidth_bytes_per_sec = 350.0 * 1024 * 1024;
  return cost;
}

}  // namespace feisu
