#ifndef FEISU_STORAGE_PATH_ROUTER_H_
#define FEISU_STORAGE_PATH_ROUTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/result.h"
#include "storage/storage_system.h"

namespace feisu {

/// The common storage layer (paper §III-C): gives every file a full path
/// whose prefix flag activates the right storage plugin —
/// "/hdfs/path/to/file" routes to the HDFS plugin, "/ffs/..." to Fatman,
/// and unrecognized prefixes fall back to the local filesystem.
class PathRouter {
 public:
  PathRouter() = default;
  PathRouter(const PathRouter&) = delete;
  PathRouter& operator=(const PathRouter&) = delete;

  /// Registers a storage system under a prefix flag (e.g. "/hdfs"). The
  /// router owns the system. The first system registered with
  /// `is_default=true` receives unmatched paths.
  StorageSystem* Register(const std::string& prefix,
                          std::unique_ptr<StorageSystem> storage,
                          bool is_default = false);

  /// Resolves a full path to its storage system; falls back to the default
  /// system, or NotFound if none is configured.
  Result<StorageSystem*> Resolve(const std::string& path) const;

  /// Storage system by name (for tests / administration).
  StorageSystem* FindByName(const std::string& name) const;

  const std::vector<StorageSystem*>& systems() const { return system_ptrs_; }

  /// Convenience forwarding with routing.
  Status Write(const std::string& path, std::string payload);
  Result<const std::string*> Get(const std::string& path) const;
  std::vector<uint32_t> ReplicaNodes(const std::string& path) const;
  /// Simulated cost of reading `bytes` from the system that owns `path`
  /// (0 if the path resolves nowhere).
  SimTime ReadCost(const std::string& path, uint64_t bytes) const;

  /// Fault injection hook shared by every storage consumer. The router is
  /// the common storage layer, so this is the single place the injector
  /// plugs into; nullptr (the default) means a fault-free deployment.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

 private:
  struct Mount {
    std::string prefix;
    std::unique_ptr<StorageSystem> storage;
  };
  std::vector<Mount> mounts_;
  std::vector<StorageSystem*> system_ptrs_;
  StorageSystem* default_system_ = nullptr;
  FaultInjector* injector_ = nullptr;
};

}  // namespace feisu

#endif  // FEISU_STORAGE_PATH_ROUTER_H_
