#include "storage/ssd_cache.h"

#include <limits>

namespace feisu {

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kLfu:
      return "LFU";
    case CachePolicy::kManual:
      return "MANUAL";
  }
  return "?";
}

SsdCache::SsdCache(uint64_t capacity_bytes, CachePolicy policy,
                   StorageCostModel ssd_cost)
    : capacity_bytes_(capacity_bytes), policy_(policy), ssd_cost_(ssd_cost) {}

bool SsdCache::Lookup(const std::string& key) {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  ++it->second.frequency;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return true;
}

void SsdCache::Admit(const std::string& key, uint64_t bytes) {
  MutexLock lock(mutex_);
  if (bytes > capacity_bytes_) return;
  if (entries_.contains(key)) return;
  if (policy_ == CachePolicy::kManual && !IsPreferred(key)) return;
  EvictUntilFits(bytes);
  if (used_bytes_ + bytes > capacity_bytes_) return;  // all survivors pinned
  lru_.push_front(key);
  Entry entry;
  entry.bytes = bytes;
  entry.frequency = 1;
  entry.lru_it = lru_.begin();
  entries_.emplace(key, entry);
  used_bytes_ += bytes;
}

void SsdCache::SetPreference(const std::string& key, bool preferred) {
  MutexLock lock(mutex_);
  if (preferred) {
    preferred_.insert(key);
  } else {
    preferred_.erase(key);
  }
}

size_t SsdCache::InvalidatePrefix(const std::string& prefix) {
  MutexLock lock(mutex_);
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) {
      used_bytes_ -= it->second.bytes;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

void SsdCache::ResetStats() {
  MutexLock lock(mutex_);
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

void SsdCache::EvictUntilFits(uint64_t incoming_bytes) {
  while (used_bytes_ + incoming_bytes > capacity_bytes_ && !entries_.empty()) {
    std::string victim;
    if (policy_ == CachePolicy::kLfu) {
      // Lowest frequency wins among unpreferred entries; frequency ties
      // break toward the least recently used. Walking the recency list
      // (back = least recent) instead of the hash map keeps the victim
      // deterministic — iteration order of entries_ is hash order, which
      // once made the tie-break depend on the std::unordered_map
      // implementation.
      uint64_t min_freq = std::numeric_limits<uint64_t>::max();
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (IsPreferred(*it)) continue;
        uint64_t freq = entries_.find(*it)->second.frequency;
        if (freq < min_freq) {
          min_freq = freq;
          victim = *it;
        }
      }
    } else {
      // LRU / manual: walk from the back (least recent), skip preferred.
      for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        if (!IsPreferred(*it)) {
          victim = *it;
          break;
        }
      }
    }
    if (victim.empty()) return;  // everything remaining is preferred
    auto it = entries_.find(victim);
    used_bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++evictions_;
  }
}

}  // namespace feisu
