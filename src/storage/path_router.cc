#include "storage/path_router.h"

namespace feisu {

StorageSystem* PathRouter::Register(const std::string& prefix,
                                    std::unique_ptr<StorageSystem> storage,
                                    bool is_default) {
  StorageSystem* raw = storage.get();
  mounts_.push_back({prefix, std::move(storage)});
  system_ptrs_.push_back(raw);
  if (is_default || default_system_ == nullptr) default_system_ = raw;
  return raw;
}

Result<StorageSystem*> PathRouter::Resolve(const std::string& path) const {
  for (const auto& mount : mounts_) {
    if (path.compare(0, mount.prefix.size(), mount.prefix) == 0) {
      return mount.storage.get();
    }
  }
  if (default_system_ != nullptr) return default_system_;
  return Status::NotFound("no storage system for path " + path);
}

StorageSystem* PathRouter::FindByName(const std::string& name) const {
  for (const auto& mount : mounts_) {
    if (mount.storage->name() == name) return mount.storage.get();
  }
  return nullptr;
}

Status PathRouter::Write(const std::string& path, std::string payload) {
  FEISU_ASSIGN_OR_RETURN(StorageSystem * storage, Resolve(path));
  return storage->Write(path, std::move(payload));
}

Result<const std::string*> PathRouter::Get(const std::string& path) const {
  FEISU_ASSIGN_OR_RETURN(StorageSystem * storage, Resolve(path));
  return storage->Get(path);
}

std::vector<uint32_t> PathRouter::ReplicaNodes(const std::string& path) const {
  auto storage = Resolve(path);
  if (!storage.ok()) return {};
  return (*storage)->ReplicaNodes(path);
}

SimTime PathRouter::ReadCost(const std::string& path, uint64_t bytes) const {
  auto storage = Resolve(path);
  if (!storage.ok()) return 0;
  return (*storage)->ReadCost(bytes);
}

}  // namespace feisu
