#ifndef FEISU_STORAGE_SSO_H_
#define FEISU_STORAGE_SSO_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/result.h"

namespace feisu {

/// A short-lived credential attached to a running job. It carries the set
/// of storage domains the submitting user may touch, so every leaf server
/// can authorize reads without a round trip to the certification system.
struct JobCredential {
  std::string user;
  uint64_t token = 0;
  std::vector<std::string> domains;

  bool HasDomain(const std::string& domain) const;
};

/// Single-Sign-On across independent storage domains (paper §V-A). Models
/// the X.509/PAM flow: users are enrolled once, granted per-domain access
/// offline, and at job submission their authentication information is
/// mapped into a JobCredential covering all granted domains.
///
/// Internally synchronized: Authenticate models a certification-system
/// round trip, so callers must be able to reach it without holding their
/// own locks (blocking-under-lock gate); per-task Authorize calls from
/// workers race freely against credential mints.
class SsoAuthenticator {
 public:
  SsoAuthenticator() = default;

  void RegisterUser(const std::string& user);
  bool IsRegistered(const std::string& user) const;

  /// Grants `user` access to a storage `domain`. Unknown users are
  /// registered implicitly.
  void GrantDomain(const std::string& user, const std::string& domain);
  void RevokeDomain(const std::string& user, const std::string& domain);

  /// Authenticates a user and mints a job credential covering all granted
  /// domains. PermissionDenied for unknown users.
  Result<JobCredential> Authenticate(const std::string& user);

  /// Checks a credential (token must be live) against a domain.
  bool Authorize(const JobCredential& credential,
                 const std::string& domain) const;

  /// Invalidates an issued credential (e.g. job finished).
  void Revoke(const JobCredential& credential);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::set<std::string>> user_domains_
      FEISU_GUARDED_BY(mutex_);
  std::set<uint64_t> live_tokens_ FEISU_GUARDED_BY(mutex_);
  uint64_t next_token_ FEISU_GUARDED_BY(mutex_) = 1;
};

}  // namespace feisu

#endif  // FEISU_STORAGE_SSO_H_
