#include "sql/parser.h"

#include <cstdlib>

#include "sql/lexer.h"

namespace feisu {

namespace {

/// Recursive-descent parser with classic precedence climbing:
/// OR < AND < NOT < comparison < additive < multiplicative < unary/primary.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStatement> Parse() {
    SelectStatement stmt;
    FEISU_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    FEISU_RETURN_IF_ERROR(ParseSelectList(&stmt));
    FEISU_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    FEISU_RETURN_IF_ERROR(ParseFromList(&stmt));
    while (PeekJoinStart()) {
      FEISU_RETURN_IF_ERROR(ParseJoin(&stmt));
    }
    if (ConsumeKeyword("WHERE")) {
      FEISU_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      FEISU_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        FEISU_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("HAVING")) {
      FEISU_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      FEISU_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        FEISU_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
      } while (ConsumeSymbol(","));
    }
    if (ConsumeKeyword("LIMIT")) {
      const Token& t = Peek();
      if (t.type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      stmt.limit = std::strtoll(t.text.c_str(), nullptr, 10);
      ++pos_;
    }
    ConsumeSymbol(";");
    if (Peek().type != TokenType::kEndOfInput) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool ConsumeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(std::string("expected ") + kw);
    }
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!ConsumeSymbol(sym)) {
      return Error(std::string("expected '") + sym + "'");
    }
    return Status::OK();
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(Peek().offset) +
                                   (Peek().text.empty()
                                        ? ""
                                        : " (near '" + Peek().text + "')"));
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Peek().IsSymbol("*") && !Peek(1).IsSymbol(",")) {
      // Bare `SELECT *` (not an arithmetic product).
      ++pos_;
      stmt->select_star = true;
      return Status::OK();
    }
    do {
      SelectItem item;
      FEISU_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        FEISU_ASSIGN_OR_RETURN(item.alias, ParseIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        item.alias = Peek().text;  // implicit alias
        ++pos_;
      }
      stmt->items.push_back(std::move(item));
    } while (ConsumeSymbol(","));
    return Status::OK();
  }

  Status ParseFromList(SelectStatement* stmt) {
    do {
      TableRef ref;
      FEISU_ASSIGN_OR_RETURN(ref.name, ParseIdentifier());
      if (ConsumeKeyword("AS")) {
        FEISU_ASSIGN_OR_RETURN(ref.alias, ParseIdentifier());
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Peek().text;
        ++pos_;
      }
      stmt->from.push_back(std::move(ref));
    } while (ConsumeSymbol(","));
    return Status::OK();
  }

  bool PeekJoinStart() const {
    return Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER") ||
           Peek().IsKeyword("LEFT") || Peek().IsKeyword("RIGHT") ||
           Peek().IsKeyword("CROSS");
  }

  Status ParseJoin(SelectStatement* stmt) {
    JoinClause join;
    if (ConsumeKeyword("INNER")) {
      join.type = JoinType::kInner;
    } else if (ConsumeKeyword("LEFT")) {
      ConsumeKeyword("OUTER");
      join.type = JoinType::kLeftOuter;
    } else if (ConsumeKeyword("RIGHT")) {
      ConsumeKeyword("OUTER");
      join.type = JoinType::kRightOuter;
    } else if (ConsumeKeyword("CROSS")) {
      join.type = JoinType::kCross;
    }
    FEISU_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    FEISU_ASSIGN_OR_RETURN(join.table.name, ParseIdentifier());
    if (ConsumeKeyword("AS")) {
      FEISU_ASSIGN_OR_RETURN(join.table.alias, ParseIdentifier());
    } else if (Peek().type == TokenType::kIdentifier &&
               !Peek().IsKeyword("ON")) {
      join.table.alias = Peek().text;
      ++pos_;
    }
    if (join.type != JoinType::kCross) {
      FEISU_RETURN_IF_ERROR(ExpectKeyword("ON"));
      FEISU_ASSIGN_OR_RETURN(join.condition, ParseExpr());
    }
    stmt->joins.push_back(std::move(join));
    return Status::OK();
  }

  Result<std::string> ParseIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Status(StatusCode::kInvalidArgument,
                    "expected identifier at offset " +
                        std::to_string(Peek().offset));
    }
    std::string name = Peek().text;
    ++pos_;
    return name;
  }

  // expr := or_expr
  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    FEISU_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      FEISU_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    FEISU_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      FEISU_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT") || ConsumeSymbol("!")) {
      FEISU_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
      return Expr::Not(std::move(child));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    FEISU_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    CompareOp op;
    if (ConsumeSymbol("=")) {
      op = CompareOp::kEq;
    } else if (ConsumeSymbol("!=")) {
      op = CompareOp::kNe;
    } else if (ConsumeSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (ConsumeSymbol("<")) {
      op = CompareOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = CompareOp::kGt;
    } else if (ConsumeKeyword("CONTAINS")) {
      op = CompareOp::kContains;
    } else {
      return lhs;
    }
    FEISU_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
    return Expr::Compare(op, std::move(lhs), std::move(rhs));
  }

  Result<ExprPtr> ParseAdditive() {
    FEISU_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      ArithOp op;
      if (ConsumeSymbol("+")) {
        op = ArithOp::kAdd;
      } else if (ConsumeSymbol("-")) {
        op = ArithOp::kSub;
      } else {
        return lhs;
      }
      FEISU_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    FEISU_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary());
    for (;;) {
      ArithOp op;
      if (ConsumeSymbol("*")) {
        op = ArithOp::kMul;
      } else if (ConsumeSymbol("/")) {
        op = ArithOp::kDiv;
      } else if (ConsumeSymbol("%")) {
        op = ArithOp::kMod;
      } else {
        return lhs;
      }
      FEISU_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary());
      lhs = Expr::Arith(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    // Aggregates: COUNT(...) [WITHIN expr] etc.
    if (t.type == TokenType::kKeyword) {
      AggFunc func;
      bool is_agg = true;
      if (t.text == "COUNT") {
        func = AggFunc::kCount;
      } else if (t.text == "SUM") {
        func = AggFunc::kSum;
      } else if (t.text == "MIN") {
        func = AggFunc::kMin;
      } else if (t.text == "MAX") {
        func = AggFunc::kMax;
      } else if (t.text == "AVG") {
        func = AggFunc::kAvg;
      } else {
        is_agg = false;
        func = AggFunc::kCount;
      }
      if (is_agg) {
        ++pos_;
        FEISU_RETURN_IF_ERROR(ExpectSymbol("("));
        ExprPtr arg;
        if (ConsumeSymbol("*")) {
          arg = nullptr;  // COUNT(*)
        } else {
          FEISU_ASSIGN_OR_RETURN(arg, ParseExpr());
        }
        FEISU_RETURN_IF_ERROR(ExpectSymbol(")"));
        ExprPtr within;
        if (ConsumeKeyword("WITHIN")) {
          FEISU_ASSIGN_OR_RETURN(within, ParseExpr());
        }
        return Expr::Aggregate(func, std::move(arg), std::move(within));
      }
      if (ConsumeKeyword("TRUE")) return Expr::Literal(Value::Bool(true));
      if (ConsumeKeyword("FALSE")) return Expr::Literal(Value::Bool(false));
      if (ConsumeKeyword("NULL")) return Expr::Literal(Value::Null());
      if (ConsumeKeyword("NOT")) {
        FEISU_ASSIGN_OR_RETURN(ExprPtr child, ParseNot());
        return Expr::Not(std::move(child));
      }
      return Error("unexpected keyword " + t.text);
    }
    if (ConsumeSymbol("(")) {
      FEISU_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      FEISU_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    if (ConsumeSymbol("-")) {
      FEISU_ASSIGN_OR_RETURN(ExprPtr child, ParsePrimary());
      return Expr::Arith(ArithOp::kSub,
                         Expr::Literal(Value::Int64(0)), std::move(child));
    }
    if (t.type == TokenType::kInteger) {
      ++pos_;
      return Expr::Literal(Value::Int64(std::strtoll(t.text.c_str(),
                                                     nullptr, 10)));
    }
    if (t.type == TokenType::kFloat) {
      ++pos_;
      return Expr::Literal(Value::Double(std::strtod(t.text.c_str(),
                                                     nullptr)));
    }
    if (t.type == TokenType::kString) {
      ++pos_;
      return Expr::Literal(Value::String(t.text));
    }
    if (t.type == TokenType::kIdentifier) {
      std::string first = t.text;
      ++pos_;
      if (ConsumeSymbol(".")) {
        FEISU_ASSIGN_OR_RETURN(std::string second, ParseIdentifier());
        return Expr::ColumnRef(std::move(first), std::move(second));
      }
      return Expr::ColumnRef(std::move(first));
    }
    return Error("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStatement> ParseSql(const std::string& query) {
  FEISU_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace feisu
