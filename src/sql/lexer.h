#ifndef FEISU_SQL_LEXER_H_
#define FEISU_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace feisu {

enum class TokenType {
  kIdentifier,  ///< column / table names (also non-reserved words)
  kKeyword,     ///< reserved word, uppercased in `text`
  kInteger,
  kFloat,
  kString,    ///< quoted literal, unescaped in `text`
  kSymbol,    ///< operator or punctuation, e.g. "<=", "(", ","
  kEndOfInput,
};

struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string text;
  size_t offset = 0;  ///< byte offset in the query (for error messages)

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes a Feisu SQL query. Keywords are recognized case-insensitively
/// and reported uppercased. String literals use single quotes with ''
/// escaping. Returns InvalidArgument on stray characters or unterminated
/// literals.
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace feisu

#endif  // FEISU_SQL_LEXER_H_
