#include "sql/ast.h"

#include <sstream>

namespace feisu {

std::string SelectItem::OutputName() const {
  if (!alias.empty()) return alias;
  if (expr->kind() == ExprKind::kColumnRef) return expr->column();
  return expr->ToString();
}

const char* JoinTypeName(JoinType type) {
  switch (type) {
    case JoinType::kInner:
      return "INNER JOIN";
    case JoinType::kLeftOuter:
      return "LEFT OUTER JOIN";
    case JoinType::kRightOuter:
      return "RIGHT OUTER JOIN";
    case JoinType::kCross:
      return "CROSS JOIN";
  }
  return "JOIN";
}

std::string SelectStatement::ToString() const {
  std::ostringstream os;
  os << "SELECT ";
  if (select_star) {
    os << "*";
  } else {
    for (size_t i = 0; i < items.size(); ++i) {
      if (i > 0) os << ", ";
      os << items[i].expr->ToString();
      if (!items[i].alias.empty()) os << " AS " << items[i].alias;
    }
  }
  os << " FROM ";
  for (size_t i = 0; i < from.size(); ++i) {
    if (i > 0) os << ", ";
    os << from[i].name;
    if (!from[i].alias.empty()) os << " AS " << from[i].alias;
  }
  for (const auto& join : joins) {
    os << " " << JoinTypeName(join.type) << " " << join.table.name;
    if (!join.table.alias.empty()) os << " AS " << join.table.alias;
    if (join.condition != nullptr) os << " ON " << join.condition->ToString();
  }
  if (where != nullptr) os << " WHERE " << where->ToString();
  if (!group_by.empty()) {
    os << " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << group_by[i]->ToString();
    }
  }
  if (having != nullptr) os << " HAVING " << having->ToString();
  if (!order_by.empty()) {
    os << " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) os << ", ";
      os << order_by[i].expr->ToString();
      if (order_by[i].descending) os << " DESC";
    }
  }
  if (limit >= 0) os << " LIMIT " << limit;
  return os.str();
}

}  // namespace feisu
