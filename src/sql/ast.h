#ifndef FEISU_SQL_AST_H_
#define FEISU_SQL_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace feisu {

/// One SELECT-list entry.
struct SelectItem {
  ExprPtr expr;
  std::string alias;  ///< empty if none

  /// Output column name: alias, plain column name, or rendered expression.
  std::string OutputName() const;
};

/// A table reference with optional alias.
struct TableRef {
  std::string name;
  std::string alias;

  const std::string& EffectiveName() const {
    return alias.empty() ? name : alias;
  }
};

enum class JoinType { kInner, kLeftOuter, kRightOuter, kCross };
const char* JoinTypeName(JoinType type);

struct JoinClause {
  JoinType type = JoinType::kInner;
  TableRef table;
  ExprPtr condition;  ///< null for CROSS JOIN
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

/// Parsed representation of the star-schema query language of paper §III-A.
struct SelectStatement {
  std::vector<SelectItem> items;
  bool select_star = false;     ///< SELECT *
  std::vector<TableRef> from;   ///< comma-separated FROM list
  std::vector<JoinClause> joins;
  ExprPtr where;                ///< null if absent
  std::vector<ExprPtr> group_by;
  ExprPtr having;               ///< null if absent
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;           ///< -1 = no LIMIT

  /// Canonical rendering (used in logs and tests).
  std::string ToString() const;
};

}  // namespace feisu

#endif  // FEISU_SQL_AST_H_
