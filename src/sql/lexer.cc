#include "sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <unordered_set>

namespace feisu {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords{
      "SELECT", "FROM",   "WHERE",  "GROUP",    "BY",    "HAVING", "ORDER",
      "LIMIT",  "AS",     "AND",    "OR",       "NOT",   "JOIN",   "INNER",
      "LEFT",   "RIGHT",  "OUTER",  "CROSS",    "ON",    "ASC",    "DESC",
      "COUNT",  "SUM",    "MIN",    "MAX",      "AVG",   "WITHIN", "CONTAINS",
      "TRUE",   "FALSE",  "NULL",
  };
  return kKeywords;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}
bool IsIdentChar(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '[' || c == ']';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentChar(query[i])) ++i;
      std::string word = query.substr(start, i - start);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), [](char ch) {
        return static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      });
      if (Keywords().contains(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(query[i + 1])))) {
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) ++i;
      if (i < n && query[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          ++i;
        }
      }
      if (i < n && (query[i] == 'e' || query[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (query[i] == '+' || query[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(query[i]))) {
          ++i;
        }
      }
      tokens.push_back({is_float ? TokenType::kFloat : TokenType::kInteger,
                        query.substr(start, i - start), start});
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (query[i] == '\'') {
          if (i + 1 < n && query[i + 1] == '\'') {  // '' escape
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(query[i++]);
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at " +
                                       std::to_string(start));
      }
      tokens.push_back({TokenType::kString, std::move(text), start});
      continue;
    }
    // Two-character symbols first.
    if (i + 1 < n) {
      std::string two = query.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        if (two == "<>") two = "!=";
        tokens.push_back({TokenType::kSymbol, two, start});
        i += 2;
        continue;
      }
    }
    if (std::string("(),.*=<>+-/%!;").find(c) != std::string::npos) {
      tokens.push_back({TokenType::kSymbol, std::string(1, c), start});
      ++i;
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at " + std::to_string(start));
  }
  tokens.push_back({TokenType::kEndOfInput, "", n});
  return tokens;
}

}  // namespace feisu
