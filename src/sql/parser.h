#ifndef FEISU_SQL_PARSER_H_
#define FEISU_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace feisu {

/// Parses one Feisu SQL statement (paper §III-A grammar):
///
///   SELECT expr [AS alias] [, ...] | aggr(expr) [WITHIN expr]
///   FROM t1 [, t2 ...]
///   [[INNER|LEFT [OUTER]|RIGHT [OUTER]|CROSS] JOIN t ON cond [AND ...]]
///   [WHERE cond] [GROUP BY ...] [HAVING cond]
///   [ORDER BY f [ASC|DESC] ...] [LIMIT n] [;]
///
/// Returns InvalidArgument with a positioned message on syntax errors. This
/// is also what the client uses for its "query syntax checking" role.
Result<SelectStatement> ParseSql(const std::string& query);

}  // namespace feisu

#endif  // FEISU_SQL_PARSER_H_
