#include "loganalysis/analyzer.h"

#include <algorithm>
#include <set>

#include "expr/normalize.h"
#include "sql/parser.h"

namespace feisu {

TraceAnalyzer::TraceAnalyzer(const std::vector<TraceQuery>& trace) {
  queries_.reserve(trace.size());
  for (const auto& entry : trace) {
    Result<SelectStatement> parsed = ParseSql(entry.sql);
    if (!parsed.ok()) continue;
    ++parsed_count_;
    ParsedQuery q;
    q.timestamp = entry.timestamp;

    std::set<std::string> columns;
    auto add_columns = [&columns](const ExprPtr& expr) {
      if (expr == nullptr) return;
      std::vector<std::string> cols;
      expr->CollectColumns(&cols);
      columns.insert(cols.begin(), cols.end());
    };
    for (const auto& item : parsed->items) add_columns(item.expr);
    add_columns(parsed->where);
    for (const auto& g : parsed->group_by) add_columns(g);
    add_columns(parsed->having);
    for (const auto& o : parsed->order_by) add_columns(o.expr);
    q.columns.assign(columns.begin(), columns.end());

    if (parsed->where != nullptr) {
      for (const auto& conjunct : NormalizePredicate(parsed->where)) {
        q.predicates.push_back(PredicateKey(conjunct));
      }
    }

    q.keywords.push_back("SELECT");
    q.keywords.push_back("FROM");
    if (parsed->where != nullptr) q.keywords.push_back("WHERE");
    if (!parsed->group_by.empty()) q.keywords.push_back("GROUP BY");
    if (parsed->having != nullptr) q.keywords.push_back("HAVING");
    if (!parsed->order_by.empty()) q.keywords.push_back("ORDER BY");
    if (parsed->limit >= 0) q.keywords.push_back("LIMIT");
    if (!parsed->joins.empty()) {
      q.keywords.push_back("JOIN");
      q.has_join = true;
    }
    // Aggregate keywords.
    for (const auto& item : parsed->items) {
      if (item.expr->ContainsAggregate()) {
        q.keywords.push_back("AGGREGATE");
        break;
      }
    }
    queries_.push_back(std::move(q));
  }
  std::sort(queries_.begin(), queries_.end(),
            [](const ParsedQuery& a, const ParsedQuery& b) {
              return a.timestamp < b.timestamp;
            });
}

double TraceAnalyzer::RepeatedColumnsPerWindow(SimTime window) const {
  if (queries_.empty() || window <= 0) return 0.0;
  SimTime end = queries_.back().timestamp;
  size_t num_windows = 0;
  double total_repeated = 0.0;
  size_t begin_idx = 0;
  for (SimTime start = 0; start <= end; start += window) {
    SimTime stop = start + window;
    std::map<std::string, int> query_count;  // column -> #queries touching
    size_t queries_in_window = 0;
    while (begin_idx < queries_.size() &&
           queries_[begin_idx].timestamp < stop) {
      const ParsedQuery& q = queries_[begin_idx];
      if (q.timestamp >= start) {
        ++queries_in_window;
        for (const auto& col : q.columns) ++query_count[col];
      }
      ++begin_idx;
    }
    if (queries_in_window == 0) continue;
    ++num_windows;
    for (const auto& [col, count] : query_count) {
      if (count >= 2) total_repeated += 1.0;
    }
  }
  return num_windows == 0 ? 0.0 : total_repeated /
                                      static_cast<double>(num_windows);
}

double TraceAnalyzer::SharedPredicateRatio(SimTime window) const {
  if (queries_.empty() || window <= 0) return 0.0;
  size_t total_with_predicates = 0;
  size_t sharing = 0;
  SimTime end = queries_.back().timestamp;
  size_t begin_idx = 0;
  for (SimTime start = 0; start <= end; start += window) {
    SimTime stop = start + window;
    size_t first = begin_idx;
    while (begin_idx < queries_.size() &&
           queries_[begin_idx].timestamp < stop) {
      ++begin_idx;
    }
    // Count, per predicate, how many queries in the window carry it.
    std::map<std::string, int> predicate_count;
    for (size_t i = first; i < begin_idx; ++i) {
      std::set<std::string> distinct(queries_[i].predicates.begin(),
                                     queries_[i].predicates.end());
      for (const auto& p : distinct) ++predicate_count[p];
    }
    for (size_t i = first; i < begin_idx; ++i) {
      if (queries_[i].predicates.empty()) continue;
      ++total_with_predicates;
      for (const auto& p : queries_[i].predicates) {
        if (predicate_count[p] >= 2) {
          ++sharing;
          break;
        }
      }
    }
  }
  return total_with_predicates == 0
             ? 0.0
             : static_cast<double>(sharing) /
                   static_cast<double>(total_with_predicates);
}

std::map<std::string, size_t> TraceAnalyzer::KeywordFrequency() const {
  std::map<std::string, size_t> counts;
  for (const auto& q : queries_) {
    for (const auto& kw : q.keywords) ++counts[kw];
  }
  return counts;
}

double TraceAnalyzer::ScanAggregateRatio() const {
  if (queries_.empty()) return 0.0;
  size_t scan_or_agg = 0;
  for (const auto& q : queries_) {
    if (!q.has_join) ++scan_or_agg;
  }
  return static_cast<double>(scan_or_agg) /
         static_cast<double>(queries_.size());
}

}  // namespace feisu
