#ifndef FEISU_LOGANALYSIS_ANALYZER_H_
#define FEISU_LOGANALYSIS_ANALYZER_H_

#include <map>
#include <string>
#include <vector>

#include "workload/tracegen.h"

namespace feisu {

/// Offline analysis of query-log traces — the study of paper §IV-A that
/// motivated the SSD data cache and SmartIndex. Works on TraceQuery lists
/// (either synthetic or recorded from FeisuClient histories).
class TraceAnalyzer {
 public:
  explicit TraceAnalyzer(const std::vector<TraceQuery>& trace);

  /// Fig. 4: splits the trace into fixed `window`-sized spans and reports
  /// the average number of distinct columns accessed by at least two
  /// different queries within a span (repeatedly accessed columns).
  double RepeatedColumnsPerWindow(SimTime window) const;

  /// Fig. 5: fraction of queries that share at least one *exact*
  /// (normalized) predicate conjunct with another query in the same span.
  double SharedPredicateRatio(SimTime window) const;

  /// Fig. 8: frequency of query keywords (SELECT/WHERE/COUNT/...) across
  /// the trace; scan+aggregation dominate in Baidu (>99%).
  std::map<std::string, size_t> KeywordFrequency() const;

  /// Fraction of queries that are scans or aggregations (no JOIN).
  double ScanAggregateRatio() const;

  size_t num_parsed() const { return parsed_count_; }

 private:
  struct ParsedQuery {
    SimTime timestamp = 0;
    std::vector<std::string> columns;     ///< distinct referenced columns
    std::vector<std::string> predicates;  ///< normalized conjunct keys
    std::vector<std::string> keywords;
    bool has_join = false;
  };

  std::vector<ParsedQuery> queries_;
  size_t parsed_count_ = 0;
};

}  // namespace feisu

#endif  // FEISU_LOGANALYSIS_ANALYZER_H_
