#ifndef FEISU_COMMON_SIM_CLOCK_H_
#define FEISU_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace feisu {

/// Simulated time is expressed in logical nanoseconds. All Feisu cost models
/// (storage, CPU, network) charge against SimTime so that experiments are
/// deterministic and can model the paper's 4,000-node production cluster on
/// a single machine.
using SimTime = int64_t;

constexpr SimTime kSimNanosecond = 1;
constexpr SimTime kSimMicrosecond = 1000 * kSimNanosecond;
constexpr SimTime kSimMillisecond = 1000 * kSimMicrosecond;
constexpr SimTime kSimSecond = 1000 * kSimMillisecond;
constexpr SimTime kSimMinute = 60 * kSimSecond;
constexpr SimTime kSimHour = 60 * kSimMinute;

/// A monotonically advancing logical clock. Each simulated entity (node,
/// network link, cache) owns or shares a SimClock; advancing it models work
/// being performed.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(SimTime start) : now_(start) {}

  SimTime Now() const { return now_; }

  /// Advances the clock by `delta` (>= 0) and returns the new time.
  SimTime Advance(SimTime delta);

  /// Moves the clock forward to `t` if `t` is later; returns the new time.
  SimTime AdvanceTo(SimTime t);

  /// Resets to time zero (used between benchmark iterations).
  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace feisu

#endif  // FEISU_COMMON_SIM_CLOCK_H_
