#ifndef FEISU_COMMON_STATUS_H_
#define FEISU_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace feisu {

/// Error categories used across the Feisu public API. Mirrors the
/// RocksDB/Arrow convention of returning rich status objects instead of
/// throwing exceptions across module boundaries.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kResourceExhausted,
  kUnavailable,
  kTimedOut,
  kCorruption,
  kNotImplemented,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A Status encodes the result of an operation that may fail. The OK status
/// carries no allocation; error statuses carry a code and a message.
/// [[nodiscard]]: silently ignoring a Status hides failures; every call
/// site must consume it (propagate, check, or handle).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotImplemented() const {
    return code_ == StatusCode::kNotImplemented;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define FEISU_RETURN_IF_ERROR(expr)                \
  do {                                             \
    ::feisu::Status _feisu_status = (expr);        \
    if (!_feisu_status.ok()) return _feisu_status; \
  } while (false)

}  // namespace feisu

#endif  // FEISU_COMMON_STATUS_H_
