#ifndef FEISU_COMMON_THREAD_POOL_H_
#define FEISU_COMMON_THREAD_POOL_H_

#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/annotations.h"

namespace feisu {

/// A fixed-size thread pool with one shared FIFO queue — deliberately
/// work-stealing-free so task start order is the submission order, which
/// keeps the parallel leaf path easy to reason about (results land in
/// ordered slots regardless of which worker ran them).
///
/// Host-level concurrency only: pool workers burn wall-clock CPU, never
/// simulated time. SimTime accounting stays with the job coordinator
/// that consumes the workers' outputs (one coordinator thread per job,
/// each booking on its own scheduling ledger).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue: blocks until every submitted task has run, then
  /// joins the workers.
  ~ThreadPool();

  size_t num_threads() const { return workers_.size(); }

  /// Number of tasks submitted but not yet finished (queued + running).
  size_t pending() const;

  /// Schedules `fn` and returns a future for its result. An exception
  /// thrown by `fn` is captured and rethrown from future::get().
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs `fn(0) .. fn(n - 1)` across the pool and waits for all of them.
  /// If any invocation throws, the exception of the lowest-index failing
  /// iteration is rethrown (deterministic regardless of worker timing).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// Blocks until the queue is empty and no task is running.
  void Drain() FEISU_EXCLUDES(mutex_);

 private:
  void Enqueue(std::function<void()> fn) FEISU_EXCLUDES(mutex_);
  void WorkerLoop() FEISU_EXCLUDES(mutex_);

  mutable Mutex mutex_;
  CondVar wake_workers_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ FEISU_GUARDED_BY(mutex_);
  /// Written only by the constructor and joined by the destructor; never
  /// touched from worker threads, so it needs no guard.
  std::vector<std::thread> workers_;
  size_t in_flight_ FEISU_GUARDED_BY(mutex_) = 0;  ///< queued + executing
  bool stopping_ FEISU_GUARDED_BY(mutex_) = false;
};

}  // namespace feisu

#endif  // FEISU_COMMON_THREAD_POOL_H_
