#ifndef FEISU_COMMON_RESULT_H_
#define FEISU_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace feisu {

/// Result<T> holds either a value of type T or an error Status. It is the
/// value-returning counterpart of Status, used throughout the Feisu API.
/// [[nodiscard]]: ignoring a Result drops both the value and the error —
/// a discarded call is a bug by construction.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a successful result.
  Result(T value)  // NOLINT(google-explicit-constructor): intentional sugar
      : value_(std::move(value)) {}

  /// Constructs a failed result. `status` must be non-OK.
  Result(Status status)  // NOLINT(google-explicit-constructor): lets
                         // `return Status::NotFound(...)` convert, so
                         // error propagation reads like plain Status code
      : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Access the held value. Must only be called when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `expr` (a Result<T>), propagating errors; on success binds the
/// value to `lhs`.
#define FEISU_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#define FEISU_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define FEISU_ASSIGN_OR_RETURN_NAME(a, b) FEISU_ASSIGN_OR_RETURN_CONCAT(a, b)
#define FEISU_ASSIGN_OR_RETURN(lhs, expr)                                     \
  FEISU_ASSIGN_OR_RETURN_IMPL(                                                \
      FEISU_ASSIGN_OR_RETURN_NAME(_feisu_result_, __LINE__), lhs, expr)

}  // namespace feisu

#endif  // FEISU_COMMON_RESULT_H_
