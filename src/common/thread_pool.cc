#include "common/thread_pool.h"

#include <algorithm>

namespace feisu {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Drain();
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_workers_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::pending() const {
  MutexLock lock(mutex_);
  return in_flight_;
}

void ThreadPool::Enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(fn));
    ++in_flight_;
  }
  wake_workers_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) wake_workers_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i]() { fn(i); }));
  }
  // Collect in index order so the first failing index wins deterministically.
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) first_error = std::current_exception();
    }
  }
  if (first_error != nullptr) std::rethrow_exception(first_error);
}

void ThreadPool::Drain() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.Wait(lock);
}

}  // namespace feisu
