#include "common/fault_injector.h"

#include <algorithm>

#include "common/hash.h"

namespace feisu {

namespace {

// Domain-separation salts so the read-error, corruption and heartbeat
// streams never correlate even under identical identities.
constexpr uint64_t kReadErrorSalt = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kCorruptionSalt = 0xC2B2AE3D27D4EB4FULL;
constexpr uint64_t kHeartbeatSalt = 0x165667B19E3779F9ULL;

}  // namespace

// Calibration notes (paper §III-C storage heterogeneity, §II deployment):
// the paper gives qualitative failure personalities, not incident tables,
// so the rates below are order-of-magnitude calibrations consistent with
// its descriptions and with published DFS reliability numbers.
//
//  - HDFS (T1/T2, hot business logs): replicated DataNodes with
//    per-block checksums. Transient read failures (slow/restarting
//    DataNode, pipeline hiccup) happen at roughly the per-mille level;
//    checksummed writes make silent corruption on read an order of
//    magnitude rarer still.
//  - Fatman (T3, cold data on volunteer disk fragments of online-service
//    machines): reads succeed about as often as HDFS once a replica is
//    located, but cold replicas sit unscrubbed for long periods, so the
//    dominant fault is latent bit rot discovered at read time — the
//    corruption rate leads the profile.
//  - Local FS (freshest shard, no replication inside the node): the
//    shared host serves latency-critical traffic, so the failure mode is
//    the whole node dropping out (modeled via node_events), not flaky
//    single reads; both per-read rates stay lowest.
StorageFaultProfile HdfsFaultProfile() { return {2e-3, 1e-4}; }
StorageFaultProfile FatmanFaultProfile() { return {2e-3, 5e-3}; }
StorageFaultProfile LocalFsFaultProfile() { return {5e-4, 5e-5}; }

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "None";
    case FaultKind::kIoError:
      return "IoError";
    case FaultKind::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

FaultInjector::FaultInjector(FaultConfig config) {
  Configure(std::move(config));
}

void FaultInjector::Configure(FaultConfig config) {
  // Pre-annotation latent race: config_ was assigned here without the
  // mutex while concurrent queries read it through ProfileFor/UnitDraw.
  // The whole swap now happens under the lock; enabled_ is the published
  // atomic snapshot for the lock-free fast path.
  MutexLock lock(mutex_);
  config_ = std::move(config);
  auto by_time = [](const NodeFaultEvent& a, const NodeFaultEvent& b) {
    return a.at < b.at;
  };
  std::stable_sort(config_.node_events.begin(), config_.node_events.end(),
                   by_time);
  std::stable_sort(config_.stem_events.begin(), config_.stem_events.end(),
                   by_time);
  enabled_.store(config_.enabled, std::memory_order_release);
  ResetLocked();
}

void FaultInjector::Reset() {
  MutexLock lock(mutex_);
  ResetLocked();
}

void FaultInjector::ResetLocked() {
  stats_ = FaultStats();
  next_event_ = 0;
  read_seq_.clear();
}

const StorageFaultProfile& FaultInjector::ProfileFor(
    const std::string& path) const {
  const StorageFaultProfile* best = &config_.default_profile;
  size_t best_len = 0;
  for (const auto& [prefix, profile] : config_.profiles) {
    if (prefix.size() >= best_len && path.compare(0, prefix.size(), prefix) == 0) {
      best = &profile;
      best_len = prefix.size();
    }
  }
  return *best;
}

double FaultInjector::UnitDraw(uint64_t salt, uint64_t a, uint64_t b) const {
  uint64_t h = HashCombine(config_.seed ^ salt, a);
  h = HashCombine(h, b);
  h = HashInt64(static_cast<int64_t>(h));
  // 53 high-quality mantissa bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::IsReplicaCorruptedLocked(const std::string& path,
                                             uint32_t source_node) const {
  if (!config_.enabled) return false;
  const StorageFaultProfile& profile = ProfileFor(path);
  if (profile.corruption_rate <= 0.0) return false;
  return UnitDraw(kCorruptionSalt, HashString(path), source_node) <
         profile.corruption_rate;
}

bool FaultInjector::IsReplicaCorrupted(const std::string& path,
                                       uint32_t source_node) const {
  MutexLock lock(mutex_);
  return IsReplicaCorruptedLocked(path, source_node);
}

FaultKind FaultInjector::OnBlockRead(const std::string& path,
                                     uint32_t source_node) {
  MutexLock lock(mutex_);
  if (!config_.enabled) return FaultKind::kNone;
  if (IsReplicaCorruptedLocked(path, source_node)) {
    ++stats_.injected_corrupt_reads;
    return FaultKind::kCorruption;
  }
  const StorageFaultProfile& profile = ProfileFor(path);
  if (profile.read_error_rate > 0.0) {
    uint64_t attempt = read_seq_[path]++;
    if (UnitDraw(kReadErrorSalt, HashString(path), attempt) <
        profile.read_error_rate) {
      ++stats_.injected_read_errors;
      return FaultKind::kIoError;
    }
  }
  return FaultKind::kNone;
}

bool FaultInjector::DropHeartbeat(uint32_t node_id, SimTime now) {
  MutexLock lock(mutex_);
  if (!config_.enabled || config_.heartbeat_drop_rate <= 0.0) return false;
  if (UnitDraw(kHeartbeatSalt, node_id, static_cast<uint64_t>(now)) <
      config_.heartbeat_drop_rate) {
    ++stats_.dropped_heartbeats;
    return true;
  }
  return false;
}

std::vector<NodeFaultEvent> FaultInjector::TakeDueNodeEvents(SimTime now) {
  std::vector<NodeFaultEvent> due;
  MutexLock lock(mutex_);
  if (!config_.enabled) return due;
  while (next_event_ < config_.node_events.size() &&
         config_.node_events[next_event_].at <= now) {
    const NodeFaultEvent& event = config_.node_events[next_event_++];
    if (event.crash) {
      ++stats_.crashes_delivered;
    } else {
      ++stats_.recoveries_delivered;
    }
    due.push_back(event);
  }
  return due;
}

std::optional<SimTime> FaultInjector::DownWithinSchedule(
    const std::vector<NodeFaultEvent>& events, uint32_t node_id, SimTime start,
    SimTime end) {
  // Replay the node's crash/recovery schedule and report the earliest
  // moment in (start, end] at which it is down. A crash scheduled before
  // `start` still counts while no recovery precedes the window: the
  // cluster manager may simply not have noticed the death yet.
  bool down = false;
  SimTime down_since = 0;
  for (const NodeFaultEvent& event : events) {
    if (event.at > end) break;
    if (event.node_id != node_id) continue;
    if (event.crash) {
      if (!down) {
        down = true;
        down_since = event.at;
      }
    } else {
      // Recovery ends the outage [down_since, event.at).
      if (down) {
        SimTime moment = std::max(down_since, start + 1);
        if (event.at > moment) return moment;
      }
      down = false;
    }
  }
  if (down) return std::max(down_since, start + 1);
  return std::nullopt;
}

std::optional<SimTime> FaultInjector::CrashWithin(uint32_t node_id,
                                                  SimTime start,
                                                  SimTime end) const {
  MutexLock lock(mutex_);
  if (!config_.enabled || end <= start) return std::nullopt;
  return DownWithinSchedule(config_.node_events, node_id, start, end);
}

std::optional<SimTime> FaultInjector::StemCrashWithin(uint32_t stem_id,
                                                      SimTime start,
                                                      SimTime end) const {
  MutexLock lock(mutex_);
  if (!config_.enabled || end <= start) return std::nullopt;
  return DownWithinSchedule(config_.stem_events, stem_id, start, end);
}

SlowNodeProfile FaultInjector::NodeSlowProfile(uint32_t node_id, bool count) {
  MutexLock lock(mutex_);
  SlowNodeProfile identity{node_id, 1.0, 0};
  if (!config_.enabled) return identity;
  for (const SlowNodeProfile& profile : config_.slow_nodes) {
    if (profile.node_id != node_id) continue;
    const bool degrades = profile.latency_multiplier > 1.0 || profile.stall > 0;
    if (degrades && count) ++stats_.slowed_tasks;
    return profile;
  }
  return identity;
}

bool FaultInjector::IsPartitioned(uint32_t node_id, SimTime now) const {
  MutexLock lock(mutex_);
  if (!config_.enabled) return false;
  for (const PartitionSpec& spec : config_.partitions) {
    if (spec.node_id != node_id) continue;
    if (now < spec.start) continue;
    if (spec.end <= spec.start || now < spec.end) return true;
  }
  return false;
}

std::optional<SimTime> FaultInjector::PartitionedWithin(uint32_t node_id,
                                                        SimTime start,
                                                        SimTime end) const {
  MutexLock lock(mutex_);
  if (!config_.enabled || end <= start) return std::nullopt;
  std::optional<SimTime> earliest;
  for (const PartitionSpec& spec : config_.partitions) {
    if (spec.node_id != node_id) continue;
    // Earliest instant in (start, end] that the spec covers.
    SimTime moment = std::max(spec.start, start + 1);
    if (moment > end) continue;
    const bool heals = spec.end > spec.start;
    if (heals && moment >= spec.end) continue;
    if (!earliest || moment < *earliest) earliest = moment;
  }
  return earliest;
}

}  // namespace feisu
