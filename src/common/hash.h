#ifndef FEISU_COMMON_HASH_H_
#define FEISU_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace feisu {

/// FNV-1a over a byte range; stable across platforms, used for hash joins,
/// aggregation tables and index keys.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0xCBF29CE484222325ULL) {
  return HashBytes(s.data(), s.size(), seed);
}

inline uint64_t HashInt64(int64_t v) {
  uint64_t z = static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return z ^ (z >> 31);
}

/// Boost-style hash combiner.
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace feisu

#endif  // FEISU_COMMON_HASH_H_
