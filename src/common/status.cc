#include "common/status.h"

namespace feisu {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace feisu
