#ifndef FEISU_COMMON_LOGGING_H_
#define FEISU_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace feisu {

/// Log severities in increasing order.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError };

/// Process-wide minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log-line builder; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Null sink used when the message is below the active level.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace feisu

#define FEISU_LOG_ENABLED(level) \
  (::feisu::LogLevel::level >= ::feisu::GetLogLevel())

#define FEISU_LOG(level)                                                  \
  if (!FEISU_LOG_ENABLED(level)) {                                        \
  } else                                                                  \
    ::feisu::internal::LogMessage(::feisu::LogLevel::level, __FILE__,     \
                                  __LINE__)                               \
        .stream()

#endif  // FEISU_COMMON_LOGGING_H_
