#include "common/sim_clock.h"

#include <algorithm>
#include <cassert>

namespace feisu {

SimTime SimClock::Advance(SimTime delta) {
  assert(delta >= 0);
  now_ += delta;
  return now_;
}

SimTime SimClock::AdvanceTo(SimTime t) {
  now_ = std::max(now_, t);
  return now_;
}

}  // namespace feisu
