#ifndef FEISU_COMMON_BIT_VECTOR_H_
#define FEISU_COMMON_BIT_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace feisu {

/// A densely packed 0-1 vector with the bitwise algebra SmartIndex needs:
/// AND / OR / NOT, popcount, and a word-level run-length compression used to
/// estimate and reduce index memory footprint.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all set to `value`.
  explicit BitVector(size_t size, bool value = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const;
  void Set(size_t i, bool value);

  /// Appends one bit.
  void PushBack(bool value);

  /// Number of set bits.
  size_t CountOnes() const;

  /// True if every bit is zero / one.
  bool AllZeros() const { return CountOnes() == 0; }
  bool AllOnes() const { return CountOnes() == size_; }

  /// In-place bitwise ops; `other` must have the same size.
  void And(const BitVector& other);
  void Or(const BitVector& other);
  void Not();

  /// Out-of-place helpers.
  static BitVector And(const BitVector& a, const BitVector& b);
  static BitVector Or(const BitVector& a, const BitVector& b);
  static BitVector Not(const BitVector& a);

  bool operator==(const BitVector& other) const;

  /// Indices of all set bits, in increasing order.
  std::vector<uint32_t> SetIndices() const;

  /// Uncompressed in-memory footprint in bytes (words only).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  /// Serializes to a word-level RLE form: runs of all-zero / all-one words
  /// collapse to a (tag, count) pair; mixed words are stored verbatim. This
  /// mirrors the "Compress type" field of the SmartIndex block layout
  /// (paper Fig. 6) and is what IndexCache charges against its budget.
  std::string SerializeRle() const;

  /// Parses a SerializeRle() payload. Returns false on malformed input.
  static bool DeserializeRle(const std::string& data, BitVector* out);

  /// Size in bytes of the RLE-compressed form without materializing it.
  size_t CompressedByteSize() const;

  /// Debug rendering, e.g. "01101".
  std::string ToString() const;

 private:
  size_t NumWords() const { return words_.size(); }
  /// Clears any bits beyond size_ in the last word (keeps invariants for
  /// popcount / equality after Not()).
  void ClearTrailingBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace feisu

#endif  // FEISU_COMMON_BIT_VECTOR_H_
