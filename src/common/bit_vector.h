#ifndef FEISU_COMMON_BIT_VECTOR_H_
#define FEISU_COMMON_BIT_VECTOR_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace feisu {

/// A densely packed 0-1 vector with the bitwise algebra SmartIndex needs:
/// AND / OR / NOT, popcount, and a word-level run-length compression used to
/// estimate and reduce index memory footprint. The Rle* statics operate
/// directly on the compressed form so two cached indexes can be combined
/// without inflating either operand (paper §IV-C).
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `size` bits, all set to `value`.
  explicit BitVector(size_t size, bool value = false);

  /// Adopts raw 64-bit words (bit i of the vector is bit i%64 of word
  /// i/64). Bits beyond `size` in the last word are cleared. This is how
  /// the compressed-domain predicate kernels hand over match bitmaps they
  /// assembled word-at-a-time in a branchless loop.
  static BitVector FromWords(std::vector<uint64_t> words, size_t size);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Get(size_t i) const;
  void Set(size_t i, bool value);

  /// Sets every bit in [begin, end) to `value`. Word-level: a run of 64
  /// rows costs one store, which is what makes run-granular predicate
  /// bitmaps over RLE columns cheap (one SetRange per run, not per row).
  void SetRange(size_t begin, size_t end, bool value);

  /// Appends one bit.
  void PushBack(bool value);

  /// Number of set bits.
  size_t CountOnes() const;

  /// True if every bit is zero / one. Early-exits on the first word that
  /// disagrees instead of popcounting the whole vector.
  bool AllZeros() const;
  bool AllOnes() const;

  /// True if any bit in [begin, end) is set. Word-scans, so skipping a
  /// fully unselected range costs one load per 64 rows.
  bool AnyInRange(size_t begin, size_t end) const;

  /// In-place bitwise ops; `other` must have the same size.
  void And(const BitVector& other);
  void Or(const BitVector& other);
  void Not();

  /// Out-of-place helpers.
  static BitVector And(const BitVector& a, const BitVector& b);
  static BitVector Or(const BitVector& a, const BitVector& b);
  static BitVector Not(const BitVector& a);

  bool operator==(const BitVector& other) const;

  /// Indices of all set bits, in increasing order.
  std::vector<uint32_t> SetIndices() const;

  /// Calls `fn(index)` for every set bit in increasing order. Word-scan:
  /// all-zero words cost one load, so iteration scales with the number of
  /// set bits, not the vector length.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t word = words_[w];
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// ForEachSetBit restricted to [begin, end).
  template <typename Fn>
  void ForEachSetBitInRange(size_t begin, size_t end, Fn&& fn) const {
    if (end > size_) end = size_;
    if (begin >= end) return;
    size_t first_word = begin >> 6;
    size_t last_word = (end - 1) >> 6;
    for (size_t w = first_word; w <= last_word; ++w) {
      uint64_t word = words_[w];
      if (w == first_word && (begin & 63) != 0) {
        word &= ~0ULL << (begin & 63);
      }
      if (w == last_word && (end & 63) != 0) {
        word &= (1ULL << (end & 63)) - 1;
      }
      while (word != 0) {
        int bit = std::countr_zero(word);
        fn(w * 64 + static_cast<size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Uncompressed in-memory footprint in bytes (words only).
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  /// Serializes to a word-level RLE form: runs of all-zero / all-one words
  /// collapse to a (tag, count) pair; mixed words are stored verbatim. This
  /// mirrors the "Compress type" field of the SmartIndex block layout
  /// (paper Fig. 6) and is what IndexCache charges against its budget.
  std::string SerializeRle() const;

  /// Parses a SerializeRle() payload. Returns false on malformed input.
  static bool DeserializeRle(const std::string& data, BitVector* out);

  /// Size in bytes of the RLE-compressed form without materializing it.
  size_t CompressedByteSize() const;

  // --- RLE-domain algebra over SerializeRle() payloads. ---
  //
  // These stream the two token sequences and emit a canonical payload
  // (byte-identical to running the word-level op and re-serializing), so
  // combine cost scales with run count, not row count, and neither operand
  // is ever inflated into a word array — inflation_count() lets tests pin
  // that down. All return false on malformed or size-mismatched input.
  // `tokens_processed`, when non-null, receives the number of RLE tokens
  // the merge consumed (the cost the resolver charges).

  static bool RleAnd(const std::string& a, const std::string& b,
                     std::string* out, size_t* tokens_processed = nullptr);
  static bool RleOr(const std::string& a, const std::string& b,
                    std::string* out, size_t* tokens_processed = nullptr);
  static bool RleNot(const std::string& a, std::string* out,
                     size_t* tokens_processed = nullptr);

  /// Set-bit count of a payload without inflating it. Returns SIZE_MAX on
  /// malformed input.
  static size_t RleCountOnes(const std::string& data);

  /// Bit size recorded in a payload header; SIZE_MAX on malformed input.
  static size_t RleSize(const std::string& data);

  /// Process-wide count of DeserializeRle word-array materializations.
  /// Tests assert the RLE-domain combine path leaves this untouched.
  static uint64_t inflation_count();

  /// Debug rendering, e.g. "01101".
  std::string ToString() const;

 private:
  size_t NumWords() const { return words_.size(); }
  /// Clears any bits beyond size_ in the last word (keeps invariants for
  /// popcount / equality after Not()).
  void ClearTrailingBits();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace feisu

#endif  // FEISU_COMMON_BIT_VECTOR_H_
