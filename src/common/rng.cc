#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace feisu {

uint64_t Rng::Next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  assert(n > 0);
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      zipf_cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) zipf_cdf_[i] /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<uint64_t>(it - zipf_cdf_.begin());
}

}  // namespace feisu
