#ifndef FEISU_COMMON_FAULT_INJECTOR_H_
#define FEISU_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/sim_clock.h"

namespace feisu {

/// What happens to one physical block read.
enum class FaultKind {
  kNone = 0,
  kIoError,     ///< transient I/O failure; a retry may succeed
  kCorruption,  ///< the replica's bytes are damaged (checksum will fail)
};

const char* FaultKindName(FaultKind kind);

/// Fault rates for one storage system. The common storage layer routes
/// paths by prefix (paper §III-C), and each backend has its own failure
/// personality: local FS on online-service machines loses whole nodes,
/// HDFS sees occasional slow/failed DataNode reads, Fatman's volunteer
/// disks corrupt cold data at a measurable rate.
struct StorageFaultProfile {
  /// Probability that one physical block read fails transiently.
  double read_error_rate = 0.0;
  /// Probability that a given (path, replica node) copy is permanently
  /// corrupted. The decision is stateless: the same pair always yields the
  /// same verdict for a given seed, like real bit rot on one disk.
  double corruption_rate = 0.0;
};

/// Calibrated per-backend failure personalities, derived from the paper's
/// production storage descriptions (§III-C / §II: local FS on online
/// service machines shares nodes with latency-critical services and loses
/// whole nodes rather than single reads; HDFS DataNodes see occasional
/// transient read failures but checksummed pipelines make silent
/// corruption rare; Fatman stores cold data on volunteer disk fragments,
/// where bit rot on rarely-scrubbed replicas is the dominant failure).
/// Opt-in: callers wire these into FaultConfig::profiles explicitly —
/// fault injection stays off by default.
StorageFaultProfile HdfsFaultProfile();
StorageFaultProfile FatmanFaultProfile();
StorageFaultProfile LocalFsFaultProfile();

/// One scheduled node lifecycle event on the simulated timeline.
struct NodeFaultEvent {
  SimTime at = 0;
  uint32_t node_id = 0;
  bool crash = true;  ///< false = the node recovers (process restarted)
};

/// Per-node performance degradation (straggler injection): every task the
/// scheduler commits to `node_id` runs `latency_multiplier` times slower
/// and pays a fixed `stall` on top — the slow-disk / contended-host
/// personality that speculative backup tasks exist to defeat.
struct SlowNodeProfile {
  uint32_t node_id = 0;
  double latency_multiplier = 1.0;
  SimTime stall = 0;
};

/// A network partition: the node stays alive (its process keeps running)
/// but is unreachable from the master's side during [start, end).
/// `end` <= `start` means the partition never heals.
struct PartitionSpec {
  uint32_t node_id = 0;
  SimTime start = 0;
  SimTime end = 0;
};

struct FaultStats {
  uint64_t injected_read_errors = 0;
  uint64_t injected_corrupt_reads = 0;
  uint64_t dropped_heartbeats = 0;
  uint64_t crashes_delivered = 0;
  uint64_t recoveries_delivered = 0;
  /// Task commits that were stretched by a SlowNodeProfile.
  uint64_t slowed_tasks = 0;
};

/// Everything the injector may do, in one declarative bundle so a test can
/// describe a whole chaos schedule up front and replay it exactly.
struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 1;
  /// Probability that one heartbeat message is lost in the control plane.
  double heartbeat_drop_rate = 0.0;
  /// Fallback profile for paths whose prefix has no dedicated entry.
  StorageFaultProfile default_profile;
  /// Path-prefix -> profile ("/hdfs", "/ffs", ...). Longest match wins.
  std::map<std::string, StorageFaultProfile> profiles;
  /// Crash/recovery schedule, applied when simulated time passes `at`.
  std::vector<NodeFaultEvent> node_events;
  /// Per-node latency degradation; nodes without an entry run at speed.
  std::vector<SlowNodeProfile> slow_nodes;
  /// Network-partition schedule: the named nodes are alive but
  /// unreachable from the master while a spec covers the current time.
  std::vector<PartitionSpec> partitions;
  /// Stem-server death schedule, replayed read-only like CrashWithin:
  /// a stem whose merge window overlaps an outage dies mid-merge and the
  /// master must reassign the partial merge. Ids match the stem ids the
  /// master derives (leaf node / stem_fanout; upper levels >= 1<<20).
  std::vector<NodeFaultEvent> stem_events;
};

/// Deterministic, seedable fault injection for the whole deployment
/// (storage reads, heartbeats, node lifecycle). All randomness is derived
/// by hashing (seed, identity, sequence) rather than from a shared stream,
/// so the same seed and the same call pattern reproduce byte-identical
/// failures regardless of which subsystem asks first — the invariant the
/// chaos suite's determinism property checks.
///
/// Thread safety: every public method, including Configure/Reset, is safe
/// to call concurrently — the configuration and all per-run state live
/// under one internal mutex (enforced at compile time by -Wthread-safety).
/// Only `enabled()` bypasses it, reading an atomic snapshot, so the
/// hot-path "is injection even on?" probe stays lock-free. Per-path
/// read-attempt sequences stay deterministic because each path is read by
/// exactly one task at a time.
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Replaces the configuration and resets all per-run state.
  void Configure(FaultConfig config) FEISU_EXCLUDES(mutex_);
  /// Clears counters and replays the node schedule from the beginning
  /// without changing the configuration.
  void Reset() FEISU_EXCLUDES(mutex_);

  /// Lock-free: an atomic snapshot of config().enabled, maintained by
  /// Configure. Pool threads probe this on every block read.
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }
  /// Snapshot of the configuration (by value: Configure may race).
  FaultConfig config() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return config_;
  }
  /// Snapshot of the fault counters (by value: they move concurrently).
  FaultStats stats() const FEISU_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

  /// Decides the fate of one physical block read of `path` whose bytes
  /// come from `source_node`'s replica. Counts injected faults.
  FaultKind OnBlockRead(const std::string& path, uint32_t source_node)
      FEISU_EXCLUDES(mutex_);

  /// Stateless query: is `source_node`'s copy of `path` corrupted? Used by
  /// the master to decide whether any healthy replica remains before
  /// declaring a block lost. Does not touch statistics.
  bool IsReplicaCorrupted(const std::string& path, uint32_t source_node) const
      FEISU_EXCLUDES(mutex_);

  /// True if the heartbeat `node_id` sends at `now` should be lost.
  bool DropHeartbeat(uint32_t node_id, SimTime now) FEISU_EXCLUDES(mutex_);

  /// Returns (and consumes) every scheduled node event with `at` <= now.
  /// The caller applies them to its ClusterManager; the injector stays
  /// free of cluster-layer dependencies.
  std::vector<NodeFaultEvent> TakeDueNodeEvents(SimTime now)
      FEISU_EXCLUDES(mutex_);

  /// Earliest moment in (start, end] at which the crash/recovery schedule
  /// has `node_id` down (a crash before `start` with no intervening
  /// recovery counts: the cluster manager may not have noticed it yet).
  /// Lets the master detect that a task's host died mid-execution.
  std::optional<SimTime> CrashWithin(uint32_t node_id, SimTime start,
                                     SimTime end) const
      FEISU_EXCLUDES(mutex_);

  /// The slow-node personality of `node_id`; identity (multiplier 1.0,
  /// no stall) when the node has no entry or injection is disabled.
  /// `count` bumps FaultStats::slowed_tasks when the profile degrades —
  /// the scheduler passes true once per committed task.
  SlowNodeProfile NodeSlowProfile(uint32_t node_id, bool count = false)
      FEISU_EXCLUDES(mutex_);

  /// True when a partition spec makes `node_id` unreachable at `now`.
  bool IsPartitioned(uint32_t node_id, SimTime now) const
      FEISU_EXCLUDES(mutex_);

  /// Earliest moment in (start, end] at which `node_id` is partitioned
  /// away (mirror of CrashWithin for connectivity): lets the master
  /// detect that a task's host became unreachable mid-execution even
  /// though the process is still alive.
  std::optional<SimTime> PartitionedWithin(uint32_t node_id, SimTime start,
                                           SimTime end) const
      FEISU_EXCLUDES(mutex_);

  /// Earliest moment in (start, end] at which the stem-death schedule has
  /// `stem_id` down — a stem dying while it aggregates partials. Replayed
  /// read-only so retries on replacement stems stay deterministic.
  std::optional<SimTime> StemCrashWithin(uint32_t stem_id, SimTime start,
                                         SimTime end) const
      FEISU_EXCLUDES(mutex_);

 private:
  /// Lock-held core of Reset/Configure.
  void ResetLocked() FEISU_REQUIRES(mutex_);
  /// Lock-held core of IsReplicaCorrupted (OnBlockRead calls it with the
  /// mutex already held).
  bool IsReplicaCorruptedLocked(const std::string& path,
                                uint32_t source_node) const
      FEISU_REQUIRES(mutex_);
  const StorageFaultProfile& ProfileFor(const std::string& path) const
      FEISU_REQUIRES(mutex_);
  /// Shared replay core of CrashWithin/StemCrashWithin over one schedule.
  static std::optional<SimTime> DownWithinSchedule(
      const std::vector<NodeFaultEvent>& events, uint32_t node_id,
      SimTime start, SimTime end);
  /// Uniform double in [0, 1) from a hash of the mixed identities.
  double UnitDraw(uint64_t salt, uint64_t a, uint64_t b) const
      FEISU_REQUIRES(mutex_);

  mutable Mutex mutex_;
  FaultConfig config_ FEISU_GUARDED_BY(mutex_);
  /// Mirrors config_.enabled for the lock-free enabled() fast path.
  std::atomic<bool> enabled_{false};
  FaultStats stats_ FEISU_GUARDED_BY(mutex_);
  size_t next_event_ FEISU_GUARDED_BY(mutex_) = 0;
  /// Per-path read attempt counters: transient read errors depend on the
  /// attempt number, so a retry rolls a fresh (but reproducible) die.
  std::unordered_map<std::string, uint64_t> read_seq_ FEISU_GUARDED_BY(mutex_);
};

}  // namespace feisu

#endif  // FEISU_COMMON_FAULT_INJECTOR_H_
