#include "common/bit_vector.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace feisu {

namespace {
constexpr uint64_t kAllOnes = ~0ULL;

// RLE tags.
constexpr uint8_t kRunZero = 0;
constexpr uint8_t kRunOne = 1;
constexpr uint8_t kLiteral = 2;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}
bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}
}  // namespace

BitVector::BitVector(size_t size, bool value) : size_(size) {
  words_.assign((size + 63) / 64, value ? kAllOnes : 0);
  ClearTrailingBits();
}

bool BitVector::Get(size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void BitVector::Set(size_t i, bool value) {
  assert(i < size_);
  uint64_t mask = 1ULL << (i & 63);
  if (value) {
    words_[i >> 6] |= mask;
  } else {
    words_[i >> 6] &= ~mask;
  }
}

void BitVector::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  if (value) Set(size_ - 1, true);
}

size_t BitVector::CountOnes() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

void BitVector::And(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::Not() {
  for (uint64_t& w : words_) w = ~w;
  ClearTrailingBits();
}

BitVector BitVector::And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.And(b);
  return out;
}

BitVector BitVector::Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.Or(b);
  return out;
}

BitVector BitVector::Not(const BitVector& a) {
  BitVector out = a;
  out.Not();
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::vector<uint32_t> BitVector::SetIndices() const {
  std::vector<uint32_t> out;
  out.reserve(CountOnes());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(w * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

std::string BitVector::SerializeRle() const {
  std::string out;
  AppendU64(&out, size_);
  size_t i = 0;
  while (i < words_.size()) {
    uint64_t w = words_[i];
    if (w == 0 || w == kAllOnes) {
      // Note: the trailing word of a full vector may not be kAllOnes because
      // trailing bits are cleared; it is then emitted as a literal, which is
      // still correct.
      size_t j = i + 1;
      while (j < words_.size() && words_[j] == w) ++j;
      out.push_back(static_cast<char>(w == 0 ? kRunZero : kRunOne));
      AppendU32(&out, static_cast<uint32_t>(j - i));
      i = j;
    } else {
      out.push_back(static_cast<char>(kLiteral));
      AppendU64(&out, w);
      ++i;
    }
  }
  return out;
}

bool BitVector::DeserializeRle(const std::string& data, BitVector* out) {
  size_t pos = 0;
  uint64_t size = 0;
  if (!ReadU64(data, &pos, &size)) return false;
  BitVector result;
  result.size_ = static_cast<size_t>(size);
  size_t expected_words = (result.size_ + 63) / 64;
  result.words_.reserve(expected_words);
  while (pos < data.size()) {
    uint8_t tag = static_cast<uint8_t>(data[pos++]);
    if (tag == kRunZero || tag == kRunOne) {
      uint32_t count = 0;
      if (!ReadU32(data, &pos, &count)) return false;
      if (result.words_.size() + count > expected_words) return false;
      result.words_.insert(result.words_.end(), count,
                           tag == kRunZero ? 0 : kAllOnes);
    } else if (tag == kLiteral) {
      uint64_t w = 0;
      if (!ReadU64(data, &pos, &w)) return false;
      if (result.words_.size() + 1 > expected_words) return false;
      result.words_.push_back(w);
    } else {
      return false;
    }
  }
  if (result.words_.size() != expected_words) return false;
  result.ClearTrailingBits();
  *out = std::move(result);
  return true;
}

size_t BitVector::CompressedByteSize() const {
  size_t bytes = sizeof(uint64_t);  // size header
  size_t i = 0;
  while (i < words_.size()) {
    uint64_t w = words_[i];
    if (w == 0 || w == kAllOnes) {
      size_t j = i + 1;
      while (j < words_.size() && words_[j] == w) ++j;
      bytes += 1 + sizeof(uint32_t);
      i = j;
    } else {
      bytes += 1 + sizeof(uint64_t);
      ++i;
    }
  }
  return bytes;
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

void BitVector::ClearTrailingBits() {
  size_t rem = size_ % 64;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace feisu
