#include "common/bit_vector.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>

namespace feisu {

namespace {
constexpr uint64_t kAllOnesWord = ~0ULL;

// RLE tags.
constexpr uint8_t kRunZero = 0;
constexpr uint8_t kRunOne = 1;
constexpr uint8_t kLiteral = 2;

// Word-array materializations performed by DeserializeRle; the RLE-domain
// combine path must never bump this (asserted by tests).
std::atomic<uint64_t> g_inflations{0};

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool ReadU32(const std::string& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}
bool ReadU64(const std::string& in, size_t* pos, uint64_t* v) {
  if (*pos + sizeof(*v) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

/// Streams the token sequence of one SerializeRle payload.
struct RleCursor {
  const std::string* data = nullptr;
  size_t pos = 0;
  uint64_t bit_size = 0;
  size_t words_total = 0;
  size_t words_done = 0;   // words fully consumed by the merge
  size_t tokens = 0;       // tokens read so far
  uint8_t tag = kRunZero;
  uint32_t remaining = 0;  // words left in the current token
  uint64_t literal = 0;

  bool Init(const std::string& d) {
    data = &d;
    pos = 0;
    if (!ReadU64(d, &pos, &bit_size)) return false;
    words_total = (static_cast<size_t>(bit_size) + 63) / 64;
    return true;
  }

  /// Loads the next token; requires remaining == 0. False on truncation or
  /// a bad tag.
  bool NextToken() {
    if (pos >= data->size()) return false;
    tag = static_cast<uint8_t>((*data)[pos++]);
    ++tokens;
    if (tag == kRunZero || tag == kRunOne) {
      if (!ReadU32(*data, &pos, &remaining)) return false;
      return remaining > 0;
    }
    if (tag == kLiteral) {
      if (!ReadU64(*data, &pos, &literal)) return false;
      remaining = 1;
      return true;
    }
    return false;
  }

  /// Word value of the current token (uniform tokens expand implicitly).
  uint64_t Word() const {
    if (tag == kRunZero) return 0;
    if (tag == kRunOne) return kAllOnesWord;
    return literal;
  }

  bool Exhausted() const {
    return words_done == words_total && remaining == 0 &&
           pos == data->size();
  }
};

/// Builds a canonical SerializeRle payload: uniform words coalesce into
/// maximal runs exactly like BitVector::SerializeRle would emit them.
class RleBuilder {
 public:
  explicit RleBuilder(uint64_t size_bits) { AppendU64(&out_, size_bits); }

  void AddUniform(uint8_t tag, uint32_t count) {
    if (count == 0) return;
    if (pending_count_ > 0 && pending_tag_ == tag) {
      pending_count_ += count;
      return;
    }
    Flush();
    pending_tag_ = tag;
    pending_count_ = count;
  }

  void AddWord(uint64_t w) {
    if (w == 0) {
      AddUniform(kRunZero, 1);
    } else if (w == kAllOnesWord) {
      AddUniform(kRunOne, 1);
    } else {
      Flush();
      out_.push_back(static_cast<char>(kLiteral));
      AppendU64(&out_, w);
    }
  }

  std::string Finish() {
    Flush();
    return std::move(out_);
  }

 private:
  void Flush() {
    if (pending_count_ == 0) return;
    out_.push_back(static_cast<char>(pending_tag_));
    AppendU32(&out_, static_cast<uint32_t>(pending_count_));
    pending_count_ = 0;
  }

  std::string out_;
  uint8_t pending_tag_ = kRunZero;
  uint64_t pending_count_ = 0;
};

enum class RleOp { kAnd, kOr };

bool RleCombine(RleOp op, const std::string& a, const std::string& b,
                std::string* out, size_t* tokens_processed) {
  RleCursor ca;
  RleCursor cb;
  if (!ca.Init(a) || !cb.Init(b)) return false;
  if (ca.bit_size != cb.bit_size) return false;
  RleBuilder builder(ca.bit_size);
  while (ca.words_done < ca.words_total) {
    if (ca.remaining == 0 && !ca.NextToken()) return false;
    if (cb.remaining == 0 && !cb.NextToken()) return false;
    bool a_uniform = ca.tag != kLiteral;
    bool b_uniform = cb.tag != kLiteral;
    uint32_t n = std::min(ca.remaining, cb.remaining);
    if (a_uniform && b_uniform) {
      bool one;
      if (op == RleOp::kAnd) {
        one = ca.tag == kRunOne && cb.tag == kRunOne;
      } else {
        one = ca.tag == kRunOne || cb.tag == kRunOne;
      }
      builder.AddUniform(one ? kRunOne : kRunZero, n);
    } else {
      // At least one side is a literal, so n == 1.
      uint64_t w = op == RleOp::kAnd ? (ca.Word() & cb.Word())
                                     : (ca.Word() | cb.Word());
      builder.AddWord(w);
    }
    ca.remaining -= n;
    cb.remaining -= n;
    ca.words_done += n;
    cb.words_done += n;
  }
  if (!ca.Exhausted() || !cb.Exhausted()) return false;
  if (tokens_processed != nullptr) *tokens_processed = ca.tokens + cb.tokens;
  *out = builder.Finish();
  return true;
}

}  // namespace

BitVector::BitVector(size_t size, bool value) : size_(size) {
  words_.assign((size + 63) / 64, value ? kAllOnesWord : 0);
  ClearTrailingBits();
}

BitVector BitVector::FromWords(std::vector<uint64_t> words, size_t size) {
  BitVector out;
  out.size_ = size;
  out.words_ = std::move(words);
  out.words_.resize((size + 63) / 64, 0);
  out.ClearTrailingBits();
  return out;
}

bool BitVector::Get(size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

void BitVector::Set(size_t i, bool value) {
  assert(i < size_);
  uint64_t mask = 1ULL << (i & 63);
  if (value) {
    words_[i >> 6] |= mask;
  } else {
    words_[i >> 6] &= ~mask;
  }
}

void BitVector::SetRange(size_t begin, size_t end, bool value) {
  if (end > size_) end = size_;
  if (begin >= end) return;
  size_t first_word = begin >> 6;
  size_t last_word = (end - 1) >> 6;
  uint64_t first_mask = ~0ULL << (begin & 63);
  uint64_t last_mask =
      (end & 63) == 0 ? ~0ULL : (1ULL << (end & 63)) - 1;
  if (first_word == last_word) {
    uint64_t mask = first_mask & last_mask;
    if (value) {
      words_[first_word] |= mask;
    } else {
      words_[first_word] &= ~mask;
    }
    return;
  }
  if (value) {
    words_[first_word] |= first_mask;
    for (size_t w = first_word + 1; w < last_word; ++w) words_[w] = ~0ULL;
    words_[last_word] |= last_mask;
  } else {
    words_[first_word] &= ~first_mask;
    for (size_t w = first_word + 1; w < last_word; ++w) words_[w] = 0;
    words_[last_word] &= ~last_mask;
  }
}

void BitVector::PushBack(bool value) {
  if (size_ % 64 == 0) words_.push_back(0);
  ++size_;
  if (value) Set(size_ - 1, true);
}

size_t BitVector::CountOnes() const {
  size_t n = 0;
  for (uint64_t w : words_) n += std::popcount(w);
  return n;
}

bool BitVector::AllZeros() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVector::AllOnes() const {
  if (size_ == 0) return true;
  size_t full_words = size_ / 64;
  for (size_t i = 0; i < full_words; ++i) {
    if (words_[i] != kAllOnesWord) return false;
  }
  size_t rem = size_ % 64;
  if (rem != 0 && words_.back() != ((1ULL << rem) - 1)) return false;
  return true;
}

bool BitVector::AnyInRange(size_t begin, size_t end) const {
  if (end > size_) end = size_;
  if (begin >= end) return false;
  size_t first_word = begin >> 6;
  size_t last_word = (end - 1) >> 6;
  for (size_t w = first_word; w <= last_word; ++w) {
    uint64_t word = words_[w];
    if (w == first_word && (begin & 63) != 0) {
      word &= ~0ULL << (begin & 63);
    }
    if (w == last_word && (end & 63) != 0) {
      word &= (1ULL << (end & 63)) - 1;
    }
    if (word != 0) return true;
  }
  return false;
}

void BitVector::And(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::Or(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

void BitVector::Not() {
  for (uint64_t& w : words_) w = ~w;
  ClearTrailingBits();
}

BitVector BitVector::And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.And(b);
  return out;
}

BitVector BitVector::Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.Or(b);
  return out;
}

BitVector BitVector::Not(const BitVector& a) {
  BitVector out = a;
  out.Not();
  return out;
}

bool BitVector::operator==(const BitVector& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

std::vector<uint32_t> BitVector::SetIndices() const {
  std::vector<uint32_t> out;
  out.reserve(CountOnes());
  ForEachSetBit([&out](size_t i) {
    out.push_back(static_cast<uint32_t>(i));
  });
  return out;
}

std::string BitVector::SerializeRle() const {
  std::string out;
  AppendU64(&out, size_);
  size_t i = 0;
  while (i < words_.size()) {
    uint64_t w = words_[i];
    if (w == 0 || w == kAllOnesWord) {
      // Note: the trailing word of a full vector may not be kAllOnesWord
      // because trailing bits are cleared; it is then emitted as a literal,
      // which is still correct.
      size_t j = i + 1;
      while (j < words_.size() && words_[j] == w) ++j;
      out.push_back(static_cast<char>(w == 0 ? kRunZero : kRunOne));
      AppendU32(&out, static_cast<uint32_t>(j - i));
      i = j;
    } else {
      out.push_back(static_cast<char>(kLiteral));
      AppendU64(&out, w);
      ++i;
    }
  }
  return out;
}

bool BitVector::DeserializeRle(const std::string& data, BitVector* out) {
  g_inflations.fetch_add(1, std::memory_order_relaxed);
  size_t pos = 0;
  uint64_t size = 0;
  if (!ReadU64(data, &pos, &size)) return false;
  BitVector result;
  result.size_ = static_cast<size_t>(size);
  size_t expected_words = (result.size_ + 63) / 64;
  result.words_.reserve(expected_words);
  while (pos < data.size()) {
    uint8_t tag = static_cast<uint8_t>(data[pos++]);
    if (tag == kRunZero || tag == kRunOne) {
      uint32_t count = 0;
      if (!ReadU32(data, &pos, &count)) return false;
      if (result.words_.size() + count > expected_words) return false;
      result.words_.insert(result.words_.end(), count,
                           tag == kRunZero ? 0 : kAllOnesWord);
    } else if (tag == kLiteral) {
      uint64_t w = 0;
      if (!ReadU64(data, &pos, &w)) return false;
      if (result.words_.size() + 1 > expected_words) return false;
      result.words_.push_back(w);
    } else {
      return false;
    }
  }
  if (result.words_.size() != expected_words) return false;
  result.ClearTrailingBits();
  *out = std::move(result);
  return true;
}

size_t BitVector::CompressedByteSize() const {
  size_t bytes = sizeof(uint64_t);  // size header
  size_t i = 0;
  while (i < words_.size()) {
    uint64_t w = words_[i];
    if (w == 0 || w == kAllOnesWord) {
      size_t j = i + 1;
      while (j < words_.size() && words_[j] == w) ++j;
      bytes += 1 + sizeof(uint32_t);
      i = j;
    } else {
      bytes += 1 + sizeof(uint64_t);
      ++i;
    }
  }
  return bytes;
}

bool BitVector::RleAnd(const std::string& a, const std::string& b,
                       std::string* out, size_t* tokens_processed) {
  return RleCombine(RleOp::kAnd, a, b, out, tokens_processed);
}

bool BitVector::RleOr(const std::string& a, const std::string& b,
                      std::string* out, size_t* tokens_processed) {
  return RleCombine(RleOp::kOr, a, b, out, tokens_processed);
}

bool BitVector::RleNot(const std::string& a, std::string* out,
                       size_t* tokens_processed) {
  RleCursor cursor;
  if (!cursor.Init(a)) return false;
  RleBuilder builder(cursor.bit_size);
  size_t rem = static_cast<size_t>(cursor.bit_size) % 64;
  uint64_t last_mask = rem == 0 ? kAllOnesWord : ((1ULL << rem) - 1);
  while (cursor.words_done < cursor.words_total) {
    if (cursor.remaining == 0 && !cursor.NextToken()) return false;
    uint32_t n = cursor.remaining;
    uint64_t flipped = ~cursor.Word();
    bool covers_last = cursor.words_done + n == cursor.words_total;
    if (cursor.tag == kLiteral) {
      builder.AddWord(covers_last ? (flipped & last_mask) : flipped);
    } else {
      uint8_t tag = cursor.tag == kRunZero ? kRunOne : kRunZero;
      if (covers_last && last_mask != kAllOnesWord) {
        // The trailing partial word must keep its out-of-range bits clear,
        // so it leaves the run and re-classifies on its own.
        builder.AddUniform(tag, n - 1);
        builder.AddWord(flipped & last_mask);
      } else {
        builder.AddUniform(tag, n);
      }
    }
    cursor.words_done += n;
    cursor.remaining = 0;
  }
  if (!cursor.Exhausted()) return false;
  if (tokens_processed != nullptr) *tokens_processed = cursor.tokens;
  *out = builder.Finish();
  return true;
}

size_t BitVector::RleCountOnes(const std::string& data) {
  RleCursor cursor;
  if (!cursor.Init(data)) return SIZE_MAX;
  size_t ones = 0;
  while (cursor.words_done < cursor.words_total) {
    if (!cursor.NextToken()) return SIZE_MAX;
    if (cursor.tag == kRunOne) {
      ones += static_cast<size_t>(cursor.remaining) * 64;
    } else if (cursor.tag == kLiteral) {
      ones += static_cast<size_t>(std::popcount(cursor.literal));
    }
    cursor.words_done += cursor.remaining;
    cursor.remaining = 0;
  }
  if (!cursor.Exhausted()) return SIZE_MAX;
  return ones;
}

size_t BitVector::RleSize(const std::string& data) {
  size_t pos = 0;
  uint64_t size = 0;
  if (!ReadU64(data, &pos, &size)) return SIZE_MAX;
  return static_cast<size_t>(size);
}

uint64_t BitVector::inflation_count() {
  return g_inflations.load(std::memory_order_relaxed);
}

std::string BitVector::ToString() const {
  std::string out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(Get(i) ? '1' : '0');
  return out;
}

void BitVector::ClearTrailingBits() {
  size_t rem = size_ % 64;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (1ULL << rem) - 1;
  }
}

}  // namespace feisu
