#ifndef FEISU_COMMON_RNG_H_
#define FEISU_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace feisu {

/// Deterministic pseudo-random number generator (splitmix64 core) used by
/// workload generators and the cluster simulator. Seeded explicitly so every
/// experiment is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Samples an index in [0, n) from a Zipf(s) distribution. Rank 0 is the
  /// most popular item. Used to model the skewed column/predicate reuse the
  /// paper observes in Baidu's query logs.
  uint64_t NextZipf(uint64_t n, double s);

 private:
  uint64_t state_;
  // Cached harmonic table for the most recent (n, s) Zipf configuration.
  uint64_t zipf_n_ = 0;
  double zipf_s_ = 0.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace feisu

#endif  // FEISU_COMMON_RNG_H_
