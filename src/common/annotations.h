#ifndef FEISU_COMMON_ANNOTATIONS_H_
#define FEISU_COMMON_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

/// Clang Thread Safety Analysis annotations and the annotated lock types
/// every mutex-holding class in src/ must use (enforced by the feisu-lint
/// `raw-mutex` rule). Under Clang with -Wthread-safety the annotations turn
/// the project's locking discipline — which mutex guards which field, which
/// private methods require the lock — into compile-time errors on *all*
/// paths, not just the ones TSan's dynamic coverage happens to execute.
/// Under GCC (or any compiler without the attributes) every macro expands
/// to nothing and the wrappers compile down to the plain std primitives.
///
/// How to annotate a class, when FEISU_NO_THREAD_SAFETY_ANALYSIS is
/// acceptable, and the full macro table: docs/STATIC_ANALYSIS.md.

#if defined(__clang__)
#define FEISU_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FEISU_THREAD_ANNOTATION(x)  // not supported: compiles out
#endif

/// No-alias hint for hot batch-kernel pointer parameters. Loops over
/// FEISU_RESTRICT pointers with no per-iteration branches are the contract
/// the auto-vectorizer needs (verified by the FEISU_VEC_REPORT build
/// option); compiles out on toolchains without __restrict__.
#if defined(__GNUC__) || defined(__clang__)
#define FEISU_RESTRICT __restrict__
#else
#define FEISU_RESTRICT
#endif

/// Declares a class to be a lockable capability ("mutex" by convention).
#define FEISU_CAPABILITY(x) FEISU_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires in its constructor and releases in
/// its destructor.
#define FEISU_SCOPED_CAPABILITY FEISU_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read/written while holding the given mutex.
#define FEISU_GUARDED_BY(x) FEISU_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while holding the
/// given mutex (the pointer itself is unguarded).
#define FEISU_PT_GUARDED_BY(x) FEISU_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the given mutex(es) to be held exclusively on entry
/// (and does not release them).
#define FEISU_REQUIRES(...) \
  FEISU_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires at least shared (reader) access on entry.
#define FEISU_REQUIRES_SHARED(...) \
  FEISU_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function acquires the mutex(es) exclusively and holds them on return.
#define FEISU_ACQUIRE(...) \
  FEISU_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires shared (reader) access and holds it on return.
#define FEISU_ACQUIRE_SHARED(...) \
  FEISU_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases the mutex(es) (exclusive or shared) before returning.
#define FEISU_RELEASE(...) \
  FEISU_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases shared (reader) access before returning.
#define FEISU_RELEASE_SHARED(...) \
  FEISU_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function releases the capability in whatever mode it was acquired
/// (exclusive or shared). For scoped-guard destructors, which must not
/// assert a mode: a ReaderLock holds shared access, a WriterLock
/// exclusive, and the destructor annotation is shared between them.
#define FEISU_RELEASE_GENERIC(...) \
  FEISU_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Function attempts the lock; the first argument is the return value that
/// means "acquired".
#define FEISU_TRY_ACQUIRE(...) \
  FEISU_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the given mutex(es): the function acquires them
/// itself (deadlock guard for self-locking public APIs).
#define FEISU_EXCLUDES(...) FEISU_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given mutex (lock-accessor pattern).
#define FEISU_RETURN_CAPABILITY(x) FEISU_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function body is not analyzed. Every use MUST carry an
/// adjacent justification comment (feisu-lint `no-analysis` rule);
/// legitimate reasons are constructors/destructors of the lock wrappers
/// themselves and provably single-threaded init paths the analysis cannot
/// see. Never use it to silence a finding on shared state.
#define FEISU_NO_THREAD_SAFETY_ANALYSIS \
  FEISU_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace feisu {

/// std::mutex with capability annotations. Prefer the scoped MutexLock;
/// call Lock/Unlock directly only where RAII genuinely cannot express the
/// critical section.
class FEISU_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FEISU_ACQUIRE() { mu_.lock(); }
  void Unlock() FEISU_RELEASE() { mu_.unlock(); }
  bool TryLock() FEISU_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// std::shared_mutex with capability annotations: one writer or many
/// readers. Use WriterLock / ReaderLock for scoping.
class FEISU_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FEISU_ACQUIRE() { mu_.lock(); }
  void Unlock() FEISU_RELEASE() { mu_.unlock(); }
  void LockShared() FEISU_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() FEISU_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  friend class WriterLock;
  friend class ReaderLock;
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over Mutex (the std::lock_guard replacement).
/// Holds a std::unique_lock underneath so CondVar can wait on it.
class FEISU_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FEISU_ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() FEISU_RELEASE_GENERIC() {}  // lock_'s destructor unlocks

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive (writer) lock over SharedMutex. The bodies operate on
/// the raw std primitive (via friendship): the attributes assert the
/// boundary behavior, and the per-function analysis has nothing inside to
/// second-guess — the same pattern the std wrappers in Chromium/Abseil use.
class FEISU_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) FEISU_ACQUIRE(mu) : mu_(mu.mu_) {
    mu_.lock();
  }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;
  ~WriterLock() FEISU_RELEASE_GENERIC() { mu_.unlock(); }

 private:
  std::shared_mutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class FEISU_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) FEISU_ACQUIRE_SHARED(mu)
      : mu_(mu.mu_) {
    mu_.lock_shared();
  }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;
  ~ReaderLock() FEISU_RELEASE_GENERIC() { mu_.unlock_shared(); }

 private:
  std::shared_mutex& mu_;
};

/// Condition variable paired with Mutex/MutexLock. Wait() atomically
/// releases the lock while blocked and reacquires it before returning —
/// the analysis treats the capability as held across the call, which is
/// sound for the caller's pre/post state.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace feisu

#endif  // FEISU_COMMON_ANNOTATIONS_H_
