# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(columnar_test "/root/repo/build/tests/columnar_test")
set_tests_properties(columnar_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sql_test "/root/repo/build/tests/sql_test")
set_tests_properties(sql_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(expr_test "/root/repo/build/tests/expr_test")
set_tests_properties(expr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(index_test "/root/repo/build/tests/index_test")
set_tests_properties(index_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(plan_test "/root/repo/build/tests/plan_test")
set_tests_properties(plan_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(exec_test "/root/repo/build/tests/exec_test")
set_tests_properties(exec_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(engine_test "/root/repo/build/tests/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(property_test "/root/repo/build/tests/property_test")
set_tests_properties(property_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ingest_test "/root/repo/build/tests/ingest_test")
set_tests_properties(ingest_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(differential_test "/root/repo/build/tests/differential_test")
set_tests_properties(differential_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;22;feisu_add_test;/root/repo/tests/CMakeLists.txt;0;")
