file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_multistorage.dir/bench_fig10_multistorage.cc.o"
  "CMakeFiles/bench_fig10_multistorage.dir/bench_fig10_multistorage.cc.o.d"
  "bench_fig10_multistorage"
  "bench_fig10_multistorage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_multistorage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
