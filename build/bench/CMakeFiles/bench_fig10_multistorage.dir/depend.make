# Empty dependencies file for bench_fig10_multistorage.
# This may be replaced when dependencies are built.
