file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_index_mgmt.dir/bench_ablation_index_mgmt.cc.o"
  "CMakeFiles/bench_ablation_index_mgmt.dir/bench_ablation_index_mgmt.cc.o.d"
  "bench_ablation_index_mgmt"
  "bench_ablation_index_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_index_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
