# Empty dependencies file for bench_ablation_index_mgmt.
# This may be replaced when dependencies are built.
