file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_smartindex.dir/bench_fig9a_smartindex.cc.o"
  "CMakeFiles/bench_fig9a_smartindex.dir/bench_fig9a_smartindex.cc.o.d"
  "bench_fig9a_smartindex"
  "bench_fig9a_smartindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_smartindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
