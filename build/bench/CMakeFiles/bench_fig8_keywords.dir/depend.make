# Empty dependencies file for bench_fig8_keywords.
# This may be replaced when dependencies are built.
