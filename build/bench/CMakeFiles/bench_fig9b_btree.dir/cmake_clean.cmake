file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_btree.dir/bench_fig9b_btree.cc.o"
  "CMakeFiles/bench_fig9b_btree.dir/bench_fig9b_btree.cc.o.d"
  "bench_fig9b_btree"
  "bench_fig9b_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
