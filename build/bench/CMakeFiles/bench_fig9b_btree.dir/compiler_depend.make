# Empty compiler generated dependencies file for bench_fig9b_btree.
# This may be replaced when dependencies are built.
