file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ssdcache.dir/bench_ablation_ssdcache.cc.o"
  "CMakeFiles/bench_ablation_ssdcache.dir/bench_ablation_ssdcache.cc.o.d"
  "bench_ablation_ssdcache"
  "bench_ablation_ssdcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ssdcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
