# Empty compiler generated dependencies file for bench_ablation_ssdcache.
# This may be replaced when dependencies are built.
