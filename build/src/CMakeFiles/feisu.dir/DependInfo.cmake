
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/client/client.cc" "src/CMakeFiles/feisu.dir/client/client.cc.o" "gcc" "src/CMakeFiles/feisu.dir/client/client.cc.o.d"
  "/root/repo/src/cluster/cluster_manager.cc" "src/CMakeFiles/feisu.dir/cluster/cluster_manager.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/cluster_manager.cc.o.d"
  "/root/repo/src/cluster/entry_guard.cc" "src/CMakeFiles/feisu.dir/cluster/entry_guard.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/entry_guard.cc.o.d"
  "/root/repo/src/cluster/job_manager.cc" "src/CMakeFiles/feisu.dir/cluster/job_manager.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/job_manager.cc.o.d"
  "/root/repo/src/cluster/leaf_server.cc" "src/CMakeFiles/feisu.dir/cluster/leaf_server.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/leaf_server.cc.o.d"
  "/root/repo/src/cluster/master.cc" "src/CMakeFiles/feisu.dir/cluster/master.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/master.cc.o.d"
  "/root/repo/src/cluster/master_load.cc" "src/CMakeFiles/feisu.dir/cluster/master_load.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/master_load.cc.o.d"
  "/root/repo/src/cluster/network.cc" "src/CMakeFiles/feisu.dir/cluster/network.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/network.cc.o.d"
  "/root/repo/src/cluster/scheduler.cc" "src/CMakeFiles/feisu.dir/cluster/scheduler.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/scheduler.cc.o.d"
  "/root/repo/src/cluster/stem_server.cc" "src/CMakeFiles/feisu.dir/cluster/stem_server.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/stem_server.cc.o.d"
  "/root/repo/src/cluster/task.cc" "src/CMakeFiles/feisu.dir/cluster/task.cc.o" "gcc" "src/CMakeFiles/feisu.dir/cluster/task.cc.o.d"
  "/root/repo/src/columnar/block.cc" "src/CMakeFiles/feisu.dir/columnar/block.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/block.cc.o.d"
  "/root/repo/src/columnar/column_vector.cc" "src/CMakeFiles/feisu.dir/columnar/column_vector.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/column_vector.cc.o.d"
  "/root/repo/src/columnar/data_type.cc" "src/CMakeFiles/feisu.dir/columnar/data_type.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/data_type.cc.o.d"
  "/root/repo/src/columnar/encoding.cc" "src/CMakeFiles/feisu.dir/columnar/encoding.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/encoding.cc.o.d"
  "/root/repo/src/columnar/json_flatten.cc" "src/CMakeFiles/feisu.dir/columnar/json_flatten.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/json_flatten.cc.o.d"
  "/root/repo/src/columnar/record_batch.cc" "src/CMakeFiles/feisu.dir/columnar/record_batch.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/record_batch.cc.o.d"
  "/root/repo/src/columnar/schema.cc" "src/CMakeFiles/feisu.dir/columnar/schema.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/schema.cc.o.d"
  "/root/repo/src/columnar/table.cc" "src/CMakeFiles/feisu.dir/columnar/table.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/table.cc.o.d"
  "/root/repo/src/columnar/value.cc" "src/CMakeFiles/feisu.dir/columnar/value.cc.o" "gcc" "src/CMakeFiles/feisu.dir/columnar/value.cc.o.d"
  "/root/repo/src/common/bit_vector.cc" "src/CMakeFiles/feisu.dir/common/bit_vector.cc.o" "gcc" "src/CMakeFiles/feisu.dir/common/bit_vector.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/feisu.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/feisu.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/feisu.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/feisu.dir/common/rng.cc.o.d"
  "/root/repo/src/common/sim_clock.cc" "src/CMakeFiles/feisu.dir/common/sim_clock.cc.o" "gcc" "src/CMakeFiles/feisu.dir/common/sim_clock.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/feisu.dir/common/status.cc.o" "gcc" "src/CMakeFiles/feisu.dir/common/status.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/feisu.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/feisu.dir/core/engine.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/feisu.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/feisu.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/feisu.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/feisu.dir/exec/operators.cc.o.d"
  "/root/repo/src/expr/evaluator.cc" "src/CMakeFiles/feisu.dir/expr/evaluator.cc.o" "gcc" "src/CMakeFiles/feisu.dir/expr/evaluator.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/feisu.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/feisu.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/normalize.cc" "src/CMakeFiles/feisu.dir/expr/normalize.cc.o" "gcc" "src/CMakeFiles/feisu.dir/expr/normalize.cc.o.d"
  "/root/repo/src/index/btree_index.cc" "src/CMakeFiles/feisu.dir/index/btree_index.cc.o" "gcc" "src/CMakeFiles/feisu.dir/index/btree_index.cc.o.d"
  "/root/repo/src/index/index_cache.cc" "src/CMakeFiles/feisu.dir/index/index_cache.cc.o" "gcc" "src/CMakeFiles/feisu.dir/index/index_cache.cc.o.d"
  "/root/repo/src/index/index_resolver.cc" "src/CMakeFiles/feisu.dir/index/index_resolver.cc.o" "gcc" "src/CMakeFiles/feisu.dir/index/index_resolver.cc.o.d"
  "/root/repo/src/index/smart_index.cc" "src/CMakeFiles/feisu.dir/index/smart_index.cc.o" "gcc" "src/CMakeFiles/feisu.dir/index/smart_index.cc.o.d"
  "/root/repo/src/ingest/log_monitor.cc" "src/CMakeFiles/feisu.dir/ingest/log_monitor.cc.o" "gcc" "src/CMakeFiles/feisu.dir/ingest/log_monitor.cc.o.d"
  "/root/repo/src/loganalysis/analyzer.cc" "src/CMakeFiles/feisu.dir/loganalysis/analyzer.cc.o" "gcc" "src/CMakeFiles/feisu.dir/loganalysis/analyzer.cc.o.d"
  "/root/repo/src/plan/catalog.cc" "src/CMakeFiles/feisu.dir/plan/catalog.cc.o" "gcc" "src/CMakeFiles/feisu.dir/plan/catalog.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/feisu.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/feisu.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/plan/optimizer.cc" "src/CMakeFiles/feisu.dir/plan/optimizer.cc.o" "gcc" "src/CMakeFiles/feisu.dir/plan/optimizer.cc.o.d"
  "/root/repo/src/plan/planner.cc" "src/CMakeFiles/feisu.dir/plan/planner.cc.o" "gcc" "src/CMakeFiles/feisu.dir/plan/planner.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/feisu.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/feisu.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/feisu.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/feisu.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/feisu.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/feisu.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/path_router.cc" "src/CMakeFiles/feisu.dir/storage/path_router.cc.o" "gcc" "src/CMakeFiles/feisu.dir/storage/path_router.cc.o.d"
  "/root/repo/src/storage/ssd_cache.cc" "src/CMakeFiles/feisu.dir/storage/ssd_cache.cc.o" "gcc" "src/CMakeFiles/feisu.dir/storage/ssd_cache.cc.o.d"
  "/root/repo/src/storage/sso.cc" "src/CMakeFiles/feisu.dir/storage/sso.cc.o" "gcc" "src/CMakeFiles/feisu.dir/storage/sso.cc.o.d"
  "/root/repo/src/storage/storage_factory.cc" "src/CMakeFiles/feisu.dir/storage/storage_factory.cc.o" "gcc" "src/CMakeFiles/feisu.dir/storage/storage_factory.cc.o.d"
  "/root/repo/src/storage/storage_system.cc" "src/CMakeFiles/feisu.dir/storage/storage_system.cc.o" "gcc" "src/CMakeFiles/feisu.dir/storage/storage_system.cc.o.d"
  "/root/repo/src/workload/datagen.cc" "src/CMakeFiles/feisu.dir/workload/datagen.cc.o" "gcc" "src/CMakeFiles/feisu.dir/workload/datagen.cc.o.d"
  "/root/repo/src/workload/tracegen.cc" "src/CMakeFiles/feisu.dir/workload/tracegen.cc.o" "gcc" "src/CMakeFiles/feisu.dir/workload/tracegen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
