file(REMOVE_RECURSE
  "libfeisu.a"
)
