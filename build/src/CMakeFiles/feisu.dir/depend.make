# Empty dependencies file for feisu.
# This may be replaced when dependencies are built.
