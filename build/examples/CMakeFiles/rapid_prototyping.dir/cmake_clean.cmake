file(REMOVE_RECURSE
  "CMakeFiles/rapid_prototyping.dir/rapid_prototyping.cpp.o"
  "CMakeFiles/rapid_prototyping.dir/rapid_prototyping.cpp.o.d"
  "rapid_prototyping"
  "rapid_prototyping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rapid_prototyping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
