# Empty dependencies file for rapid_prototyping.
# This may be replaced when dependencies are built.
