file(REMOVE_RECURSE
  "CMakeFiles/product_analysis.dir/product_analysis.cpp.o"
  "CMakeFiles/product_analysis.dir/product_analysis.cpp.o.d"
  "product_analysis"
  "product_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/product_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
