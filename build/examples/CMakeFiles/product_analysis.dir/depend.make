# Empty dependencies file for product_analysis.
# This may be replaced when dependencies are built.
