file(REMOVE_RECURSE
  "CMakeFiles/debug_search_engine.dir/debug_search_engine.cpp.o"
  "CMakeFiles/debug_search_engine.dir/debug_search_engine.cpp.o.d"
  "debug_search_engine"
  "debug_search_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_search_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
