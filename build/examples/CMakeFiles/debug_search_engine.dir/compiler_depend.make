# Empty compiler generated dependencies file for debug_search_engine.
# This may be replaced when dependencies are built.
