// Fixture: would-be violations of both graph passes, each carrying a
// justified waiver — proving the waiver machinery suppresses exactly the
// annotated site and nothing else.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class Pool {
 public:
  void Grow() {
    MutexLock a(alloc_mutex_);
    // feisu-analyze: allow(lock-order): fixture; reverse order in Shrink
    MutexLock b(free_mutex_);
    ++grows_;
  }
  void Shrink() {
    MutexLock b(free_mutex_);
    // feisu-analyze: allow(lock-order): fixture — see Grow
    MutexLock a(alloc_mutex_);
    ++shrinks_;
  }

 private:
  Mutex alloc_mutex_;
  Mutex free_mutex_;
  uint64_t grows_ = 0;
  uint64_t shrinks_ = 0;
};

std::vector<std::string> DebugDump(
    const std::unordered_map<std::string, int>& table) {
  std::vector<std::string> out;
  // feisu-analyze: allow(unordered-iter): debug-only dump, not a result path
  for (const auto& [key, value] : table) {
    out.push_back(key);
  }
  return out;
}
