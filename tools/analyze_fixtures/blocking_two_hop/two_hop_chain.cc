// Fixture: the blocking effect is two calls away — Serve holds
// table_mutex_ and calls Refill, which calls WaitForSpace, which parks
// on a CondVar. Only an interprocedural summary can see the chain.
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};
class CondVar {
 public:
  void Wait(MutexLock& lock);
};

class Buffer {
 public:
  void Serve() {
    MutexLock lock(table_mutex_);
    ++serves_;
    Refill();
  }
  void Refill() {
    ++refills_;
    WaitForSpace();
  }
  void WaitForSpace() {
    MutexLock lock(space_mutex_);
    while (pending_ != 0) {
      space_cv_.Wait(lock);
    }
  }

 private:
  Mutex table_mutex_;
  Mutex space_mutex_;
  CondVar space_cv_;
  uint64_t pending_ = 0;
  uint64_t serves_ = 0;
  uint64_t refills_ = 0;
};
