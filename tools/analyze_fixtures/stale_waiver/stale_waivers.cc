// Fixture: waivers that no longer suppress anything. The loop below is
// an order-insensitive fold and Bump has no blocking site, so both
// waivers must be reported stale by the --stale-waivers sweep.
#include <cstdint>
#include <string>
#include <unordered_map>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class Counter {
 public:
  uint64_t Total(const std::unordered_map<std::string, uint64_t>& table) {
    uint64_t sum = 0;
    // feisu-analyze: allow(unordered-iter): stale; the loop became a pure fold
    for (const auto& [key, value] : table) {
      sum += value;
    }
    return sum;
  }
  void Bump() {
    MutexLock lock(mutex_);
    // feisu-analyze: allow(blocking-under-lock): stale; the dispatch moved out long ago
    ++bumps_;
  }

 private:
  Mutex mutex_;
  uint64_t bumps_ = 0;
};
