// Fixture: per-row loop allocating every iteration — a make_unique per
// row plus a fresh std::string temporary declared in the loop body.
// Both must trip hot-alloc.
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

struct Row {
  int64_t key;
};

class Scanner {
 public:
  uint64_t Scan(const std::vector<Row>& rows) {
    uint64_t sum = 0;
    for (size_t i = 0; i < rows.size(); ++i) {
      auto boxed = std::make_unique<Row>(rows[i]);
      std::string label = "row";
      sum += static_cast<uint64_t>(boxed->key) + label.size();
    }
    return sum;
  }
};
