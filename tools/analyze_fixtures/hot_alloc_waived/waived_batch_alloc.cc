// Fixture: a per-batch allocation carrying a justified waiver — one
// shared state block per batch is the documented contract here. The
// pass must stay quiet and the waiver must count as used.
#include <cstdint>
#include <memory>
#include <vector>

struct Batch {
  uint64_t rows;
};

class Spiller {
 public:
  uint64_t Spill(const std::vector<Batch>& batches) {
    uint64_t total = 0;
    for (const Batch& batch : batches) {
      // feisu-analyze: allow(hot-alloc): fixture; one shared block per batch is the spill contract
      auto block = std::make_shared<Batch>(batch);
      total += block->rows;
    }
    return total;
  }
};
