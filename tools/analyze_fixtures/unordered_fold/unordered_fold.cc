// Fixture: order-insensitive folds over unordered containers — counting,
// summing, erasing — must pass without a waiver.
#include <cstdint>
#include <string>
#include <unordered_map>

uint64_t TotalBytes(const std::unordered_map<std::string, uint64_t>& sizes) {
  uint64_t total = 0;
  for (const auto& [key, bytes] : sizes) {
    total += bytes;
  }
  return total;
}

size_t DropEmpty(std::unordered_map<std::string, uint64_t>& sizes) {
  size_t removed = 0;
  for (auto it = sizes.begin(); it != sizes.end();) {
    if (it->second == 0) {
      it = sizes.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}
