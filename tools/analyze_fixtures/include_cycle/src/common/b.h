#ifndef FEISU_FIXTURE_B_H_
#define FEISU_FIXTURE_B_H_
#include "common/a.h"
struct B { A* a; };
#endif
