#ifndef FEISU_FIXTURE_A_H_
#define FEISU_FIXTURE_A_H_
#include "common/b.h"
struct A { B* b; };
#endif
