// Fixture: iterating an unordered_map to build an ordered output — the
// result depends on hash iteration order, so the determinism pass must
// flag it.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> SnapshotNames(
    const std::unordered_map<std::string, int>& table) {
  std::vector<std::string> names;
  for (const auto& [name, value] : table) {
    names.push_back(name);  // order-dependent: output order = hash order
  }
  return names;
}
