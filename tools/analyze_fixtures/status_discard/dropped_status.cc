// Fixture: the Status from Flush is assigned and then dropped — no
// ok() inspection before the function ends. [[nodiscard]] cannot see
// this: the value *was* used (assigned).
#include <cstdint>

class Status {
 public:
  bool ok() const;
};

class Sink {
 public:
  Status Flush();
  void Close() {
    Status flushed = Flush();
    ++closes_;
  }

 private:
  uint64_t closes_ = 0;
};
