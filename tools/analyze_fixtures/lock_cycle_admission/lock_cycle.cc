// Fixture: the admission-pipeline deadlock shape the multi-query master
// must avoid. A submitting client holds the admission mutex while
// enqueueing (admission -> queue); a drain-loop coordinator holds the
// queue mutex while consulting admission quotas (queue -> admission).
// Each function is consistent on its own — only the whole-program
// acquisition graph sees the AB/BA cycle across the two call paths.
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class AdmissionQueue {
 public:
  void Submit() {
    MutexLock a(admission_mutex_);
    MutexLock q(queue_mutex_);  // admission -> queue
    ++queued_;
  }
  void Drain() {
    MutexLock q(queue_mutex_);
    MutexLock a(admission_mutex_);  // queue -> admission: cycle
    --queued_;
    ++running_;
  }

 private:
  Mutex admission_mutex_;
  Mutex queue_mutex_;
  uint64_t queued_ = 0;
  uint64_t running_ = 0;
};
