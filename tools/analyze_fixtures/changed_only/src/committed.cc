// Fixture: a committed status-discard defect. The changed-only
// scenario commits this file, then adds an uncommitted copy with the
// class renamed — the analyzer must flag only the uncommitted copy.
#include <cstdint>

class Status {
 public:
  bool ok() const;
};

class Committed {
 public:
  Status Sync();
  void Shutdown() {
    Status synced = Sync();
    ++shutdowns_;
  }

 private:
  uint64_t shutdowns_ = 0;
};
