// Fixture: a classic AB/BA deadlock expressed as two nested lock scopes
// in one class. -Wthread-safety accepts both functions individually;
// only the whole-program acquisition graph sees the cycle.
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class Ledger {
 public:
  void Credit() {
    MutexLock a(accounts_mutex_);
    MutexLock b(audit_mutex_);  // accounts -> audit
    ++credits_;
  }
  void Audit() {
    MutexLock b(audit_mutex_);
    MutexLock a(accounts_mutex_);  // audit -> accounts: cycle
    ++audits_;
  }

 private:
  Mutex accounts_mutex_;
  Mutex audit_mutex_;
  uint64_t credits_ = 0;
  uint64_t audits_ = 0;
};
