// Fixture: properly inspected statuses — immediate unconditional ok()
// check, an accumulator seeded with Status::OK() (not a producing
// call), a reassignment whose value flows into the return, and a
// Result local checked before dereference. All clean.
#include <cstdint>
#include <utility>

class Status {
 public:
  static Status OK();
  bool ok() const;
};

template <typename T>
class Result {
 public:
  bool ok() const;
  T operator*() const;
};

class Writer {
 public:
  Status Write(int row);
  Result<int> Parse();

  Status WriteAll(int rows) {
    Status first = Status::OK();
    for (int i = 0; i < rows; ++i) {
      Status wrote = Write(i);
      if (!wrote.ok()) {
        return wrote;
      }
      if (first.ok()) {
        first = std::move(wrote);
      }
    }
    return first;
  }

  int CountOrZero() {
    Result<int> parsed = Parse();
    if (!parsed.ok()) {
      return 0;
    }
    return *parsed;
  }
};
