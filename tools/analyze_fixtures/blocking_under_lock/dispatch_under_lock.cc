// Fixture: dispatching to the thread pool while holding state_mutex_ —
// the pool's queue lock and worker wakeup now serialize behind an
// unrelated lock. blocking-under-lock must trip on the Submit site.
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};
class ThreadPool {
 public:
  void Submit(int task);
};

class Dispatcher {
 public:
  void Kick() {
    MutexLock lock(state_mutex_);
    ++kicks_;
    pool_.Submit(1);
  }

 private:
  Mutex state_mutex_;
  ThreadPool pool_;
  uint64_t kicks_ = 0;
};
