// Fixture: the one sanctioned blocking shape — CondVar::Wait(lock)
// releasing the only mutex held. Recognized structurally; no waiver
// needed and none present.
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};
class CondVar {
 public:
  void Wait(MutexLock& lock);
  void NotifyOne();
};

class Gate {
 public:
  void Acquire() {
    MutexLock lock(mutex_);
    while (in_use_ != 0) {
      cv_.Wait(lock);
    }
    ++in_use_;
  }
  void Release() {
    MutexLock lock(mutex_);
    --in_use_;
    cv_.NotifyOne();
  }

 private:
  Mutex mutex_;
  CondVar cv_;
  uint64_t in_use_ = 0;
};
