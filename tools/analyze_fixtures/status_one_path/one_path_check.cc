// Fixture: the status is only inspected when verbose logging is on —
// the quiet path falls through and drops the error. Every read of
// `compacted` sits under a branch whose condition never mentions it.
#include <cstdint>

class Status {
 public:
  bool ok() const;
};

class Compactor {
 public:
  Status Compact();
  void Run(bool verbose) {
    Status compacted = Compact();
    if (verbose) {
      if (!compacted.ok()) {
        ++errors_;
      }
    }
    ++runs_;
  }

 private:
  uint64_t errors_ = 0;
  uint64_t runs_ = 0;
};
