#ifndef FEISU_FIXTURE_VEC_H_
#define FEISU_FIXTURE_VEC_H_
#include "common/base.h"
inline int Vec() { return Base() + 1; }
#endif
