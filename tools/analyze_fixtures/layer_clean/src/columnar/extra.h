#ifndef FEISU_FIXTURE_EXTRA_H_
#define FEISU_FIXTURE_EXTRA_H_
inline int Extra() { return 3; }
#endif
