#ifndef FEISU_FIXTURE_BASE_H_
#define FEISU_FIXTURE_BASE_H_
// feisu-analyze: allow(layering): fixture exercising a justified waiver
#include "columnar/extra.h"
inline int Base() { return Extra() + 1; }
#endif
