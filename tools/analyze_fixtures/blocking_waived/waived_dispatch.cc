// Fixture: a genuine blocking-under-lock site carrying a justified
// waiver — the pass must stay quiet and the waiver must count as used
// (so the stale-waiver sweep stays quiet too).
#include <cstdint>

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};
class ThreadPool {
 public:
  void Submit(int task);
};

class Bootstrapper {
 public:
  void Start() {
    MutexLock lock(state_mutex_);
    ++starts_;
    // feisu-analyze: allow(blocking-under-lock): fixture; startup path, pool is empty and cannot park
    pool_.Submit(1);
  }

 private:
  Mutex state_mutex_;
  ThreadPool pool_;
  uint64_t starts_ = 0;
};
