// Fixture: the hoisted shape — the output buffer is allocated and
// reserved once before the per-row loop, and the loop only appends
// (amortized, no fresh allocation per row). Must stay clean.
#include <cstdint>
#include <vector>

struct Row {
  int64_t key;
};

class Gatherer {
 public:
  std::vector<int64_t> Gather(const std::vector<Row>& rows) {
    std::vector<int64_t> keys;
    keys.reserve(rows.size());
    for (const Row& row : rows) {
      keys.push_back(row.key);
    }
    return keys;
  }
};
