// Fixture: the deadlock hides behind a call — Refresh holds map_mutex_
// and calls Touch, which locks stats_mutex_; Report holds stats_mutex_
// (declared via FEISU_REQUIRES on its prototype annotation) and locks
// map_mutex_. No single function shows both orders.
#include <cstdint>

#define FEISU_REQUIRES(...)

class Mutex {};
class MutexLock {
 public:
  explicit MutexLock(Mutex& m);
};

class Registry {
 public:
  void Refresh() {
    MutexLock l(map_mutex_);
    Touch();  // map -> stats, one call deep
  }
  void Touch() {
    MutexLock l(stats_mutex_);
    ++touches_;
  }
  void Report() FEISU_REQUIRES(stats_mutex_) {
    MutexLock l(map_mutex_);  // stats -> map: closes the cycle
    ++reports_;
  }

 private:
  Mutex map_mutex_;
  Mutex stats_mutex_;
  uint64_t touches_ = 0;
  uint64_t reports_ = 0;
};
