#ifndef FEISU_FIXTURE_LOW_H_
#define FEISU_FIXTURE_LOW_H_
// Upward include: the foundation band must not depend on the cluster band.
#include "cluster/high.h"
inline int Low() { return High() + 1; }
#endif
