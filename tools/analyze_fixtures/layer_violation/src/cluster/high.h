#ifndef FEISU_FIXTURE_HIGH_H_
#define FEISU_FIXTURE_HIGH_H_
inline int High() { return 42; }
#endif
