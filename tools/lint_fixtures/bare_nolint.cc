// Fixture for the bare-nolint rule: suppressions that hide which check is
// silenced, silence everything, or give no reason must be flagged.
#include <cstdint>

namespace feisu {

int NarrowWithoutSayingWhy(int64_t wide) {
  int narrow = static_cast<int>(wide);  // NOLINT
  return narrow;
}

int NarrowWithWildcard(int64_t wide) {
  int narrow = static_cast<int>(wide);  // NOLINT(bugprone-*)
  return narrow;
}

int NarrowWithoutReason(int64_t wide) {
  // NOLINTNEXTLINE(bugprone-narrowing-conversions)
  int narrow = static_cast<int>(wide);
  return narrow;
}

}  // namespace feisu
