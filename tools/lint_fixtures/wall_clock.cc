// Seeded violation: wall-clock time and ambient randomness instead of
// SimClock / the seeded Rng.
#include <cstdlib>
#include <ctime>

namespace feisu {

long AmbientEntropy() {
  long t = static_cast<long>(std::time(nullptr));  // BAD: wall clock
  return t + std::rand();                          // BAD: unseeded stream
}

}  // namespace feisu
