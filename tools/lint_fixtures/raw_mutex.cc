// Seeded violation: raw std locking primitives outside src/common/.
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

namespace feisu {

class Counter {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mutex_);  // BAD: raw lock_guard
    ++count_;
    cv_.notify_one();
  }

 private:
  std::mutex mutex_;              // BAD: raw mutex
  std::shared_mutex rw_mutex_;    // BAD: raw shared_mutex
  std::condition_variable cv_;    // BAD: raw condition_variable
  int count_ = 0;
};

}  // namespace feisu
