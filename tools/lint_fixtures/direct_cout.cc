// Seeded violation: direct console output from library code.
#include <iostream>

namespace feisu {

void Noisy() {
  std::cout << "this belongs in common/logging.h\n";  // BAD
}

}  // namespace feisu
