// Seeded violation: ad-hoc thread spawning outside ThreadPool.
#include <future>
#include <thread>

namespace feisu {

void SpawnLoose() {
  std::thread worker([]() {});  // BAD: raw std::thread
  worker.detach();              // BAD: detach loses the lifetime
  auto f = std::async([]() { return 1; });  // BAD: std::async
  f.get();
}

}  // namespace feisu
