// Seeded violation: include guard does not follow the FEISU_<PATH>_H_
// convention for this file's path.
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace feisu {}

#endif  // WRONG_GUARD_NAME_H
