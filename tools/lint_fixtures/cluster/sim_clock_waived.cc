// Clean twin of chrono_scheduler.cc: the same monotonic-clock read, but
// carrying an explicit waiver — proving the sim-clock rule honors the
// standard waiver machinery.
#include <chrono>

namespace feisu {

long long HostNanosForDiagnostics() {
  // feisu-lint: allow(sim-clock): host diagnostics, never fed to scheduling
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count();
}

}  // namespace feisu
