// Seeded violation: scheduler-layer code reading a raw monotonic clock
// and sleeping the host thread. Deadline bookkeeping must be SimTime-keyed
// (TimeoutManager), or fault schedules stop replaying deterministically.
#include <chrono>
#include <thread>

namespace feisu {

long long StragglerHorizonNanos() {
  auto start = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto stop = std::chrono::high_resolution_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
      .count();
}

}  // namespace feisu
