// Fixture proving well-formed clang-tidy suppressions lint clean: each
// names its check and carries a justification after the check list.
#include <cstdint>

namespace feisu {

class Wrapper {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design so
  // call sites read `Wrapper w = 3;` like the raw integer it adapts
  Wrapper(int value) : value_(value) {}

  int value() const { return value_; }

 private:
  int value_;
};

int Truncate(int64_t wide) {
  // NOLINT(bugprone-narrowing-conversions): caller guarantees the value
  // fits; this is the single sanctioned narrowing point
  return static_cast<int>(wide);
}

}  // namespace feisu
