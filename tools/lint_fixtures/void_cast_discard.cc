// Seeded violation: silencing a [[nodiscard]] result with a (void) cast.
// feisu-lint must flag the call-expression cast but not the identifier
// cast below it.
#include "common/status.h"

namespace feisu {

Status MightFail();

void Caller() {
  (void)MightFail();  // BAD: discards a Status
  bool ok = true;
  (void)ok;  // fine: marking a bound variable as deliberately unused
}

}  // namespace feisu
