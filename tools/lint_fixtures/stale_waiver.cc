// Fixture: a waiver whose violation is long gone — the line below
// allocates through make_unique now, so the naked-new waiver no longer
// suppresses anything and must be reported stale. The waived fixtures
// (raw_mutex_waived.cc and friends) prove the other direction: a waiver
// that still suppresses a finding is never reported.
#include <memory>

void MakeWidget() {
  // feisu-lint: allow(naked-new): fixture; was a raw new, refactored away
  auto widget = std::make_unique<int>(7);
  *widget = 8;
}
