// Seeded fixture for the per-row-getvalue rule: boxing every cell through
// GetValue inside a row loop is the per-row slow path; in src/exec/ it must
// be flagged so hot operators stay on the typed batch kernels.
#include <cstddef>

namespace feisu_lint_fixture {

struct Col {
  long GetValue(size_t row) const { return static_cast<long>(row); }
};

long SumBoxed(const Col& col, size_t n) {
  long total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += col.GetValue(i);
  }
  return total;
}

}  // namespace feisu_lint_fixture
