// Seeded fixture proving the per-row-getvalue waiver works: the same
// boxed call as per_row_getvalue.cc, justified inline, must lint clean.
// GetValue outside any loop (the single-row tail call) is also clean.
#include <cstddef>

namespace feisu_lint_fixture {

struct Col {
  long GetValue(size_t row) const { return static_cast<long>(row); }
};

long SumBoxedWaived(const Col& col, size_t n) {
  long total = 0;
  for (size_t i = 0; i < n; ++i) {
    // feisu-lint: allow(per-row-getvalue): fixture for the waiver path
    total += col.GetValue(i);
  }
  return total + col.GetValue(0);
}

}  // namespace feisu_lint_fixture
