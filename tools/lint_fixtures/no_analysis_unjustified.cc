// Seeded violation: opting out of -Wthread-safety without saying why.
#define FEISU_NO_THREAD_SAFETY_ANALYSIS __attribute__((no_thread_safety_analysis))

namespace feisu {

class Registry {
 public:
  // This use is fine: the justification comment sits directly above.
  // feisu-lint's no-analysis rule accepts any adjacent comment.
  void JustifiedBypass() FEISU_NO_THREAD_SAFETY_ANALYSIS {}

  int count_ = 0;

  void UnjustifiedBypass() FEISU_NO_THREAD_SAFETY_ANALYSIS { ++count_; }
};

}  // namespace feisu
