// Waiver exercise: every would-be raw-mutex / detached-thread violation
// below carries a justified waiver comment, so this file must lint CLEAN.
// The self-test uses it to prove waivers are honored per rule.
#include <mutex>
#include <thread>

namespace feisu {

class LegacyBridge {
 public:
  void Touch() {
    // feisu-lint: allow(raw-mutex): interop with a pre-wrapper vendor API
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

  void FireAndForget() {
    // feisu-lint: allow(detached-thread): one-shot fixture, joins via scope
    std::thread worker([]() {});
    worker.join();
  }

 private:
  // feisu-lint: allow(raw-mutex): interop with a pre-wrapper vendor API
  std::mutex mutex_;
  int count_ = 0;
};

}  // namespace feisu
