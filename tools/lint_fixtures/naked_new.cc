// Seeded violation: raw new/delete outside arena code.
namespace feisu {

void Leaky() {
  int* p = new int(3);  // BAD: naked new
  delete p;             // BAD: naked delete
}

}  // namespace feisu
