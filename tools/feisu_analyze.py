#!/usr/bin/env python3
"""feisu-analyze: whole-program static analysis for the Feisu codebase.

Where feisu-lint checks single lines, feisu-analyze checks properties that
only exist across files (CI Gate 5; see docs/STATIC_ANALYSIS.md):

  layering        The `#include` graph of src/ must match the layer DAG
                  declared in tools/feisu_layers.toml: every cross-module
                  edge is allowlisted, allowlisted edges never point to a
                  higher band, the allowlist itself is acyclic, and the
                  file-level include graph has no cycles. The observed
                  graph is emitted as DOT (--dot-dir) for review.

  lock-order      Every FEISU_REQUIRES/FEISU_ACQUIRE annotation and every
                  nested MutexLock/WriterLock/ReaderLock scope is folded
                  into one global acquisition-order graph (edges follow
                  name-resolved calls, so A-held -> f() -> lock B is an
                  A -> B edge). Any cycle is a potential deadlock that
                  -Wthread-safety cannot see, because it reasons one
                  function at a time. Mutexes are qualified by owning
                  class, so `mutex_` in two classes never unifies; locks
                  reached through a member object of another class
                  (`other_->mutex_`) stay qualified by the referencing
                  class — the analysis over-approximates call targets by
                  name and under-approximates aliasing, which can miss
                  exotic cycles but does not invent edges.

  determinism     Iterating a `std::unordered_map`/`unordered_set`
                  produces hash order, which is not part of the repo's
                  byte-determinism contract. Any range-for or .begin()
                  loop over an unordered container must either be an
                  order-insensitive fold (the loop body only accumulates
                  commutatively: ++/--, +=/-=/|=/&=/^=, min/max
                  self-assign, erase, continue) or carry a waiver.

Gate 6 builds a whole-program *effect-summary engine* on the same
function model: every function gets a bottom-up interprocedural summary
of locks held (FEISU_REQUIRES/ACQUIRE + nested MutexLock/WriterLock/
ReaderLock scopes), may-block effects (CondVar Wait, ThreadPool
dispatch/future get, storage reads, simulated-time stalls) and
may-allocate effects (new / make_unique / make_shared). Three passes
consume the summaries:

  blocking-under-lock
                  No may-block effect may be reachable while a Mutex is
                  held; the finding prints the lock site and the full
                  interprocedural call chain down to the blocking site.
                  The one sanctioned shape is the CondVar handoff
                  `cv.Wait(lock)` where `lock` is the only lock held:
                  it is recognized structurally, never waived.

  status-discard  Per-function def-use over `Status`/`Result<T>` locals.
                  A Status produced by a call and assigned to a local
                  that is never inspected afterwards (before being
                  overwritten or falling out of the function) is a
                  dropped error [[nodiscard]] cannot see — the value
                  *was* used: assigned. Reads that only happen inside a
                  conditional branch whose condition does not mention
                  the local (checked on one path, fallen through on the
                  other) count as conditional-only and still fail.

  hot-alloc       Allocation effects (direct or via calls, plus fresh
                  container locals) inside per-row/per-batch loops in
                  src/exec/ and src/columnar/ fail unless hoisted or
                  carrying `feisu-analyze: allow(hot-alloc): <reason>`.

Waivers: `// feisu-analyze: allow(<id>) : <reason>` on the offending line
or the line directly above, with id one of `layering`, `lock-order`,
`unordered-iter`, `blocking-under-lock`, `status-discard`, `hot-alloc`.
A waiver without a reason is a violation. A waiver that no longer
suppresses any finding of an executed pass is itself reported
(stale-waiver, on by default; disable with --no-stale-waivers).

Machine-readable output: --json writes a report with the analyzed tree's
git SHA (consumed by run_bench.py --static-json), --sarif writes SARIF
2.1.0 for code-scanning upload, --effects-json dumps the per-function
effect summaries.

Exit status: 0 clean, 1 violations, 2 usage error. `--self-test` runs the
seeded fixtures under tools/analyze_fixtures/ (each must trip exactly its
intended pass; waived/fold fixtures must stay clean), including a
synthetic-git `--changed-only` scenario. `--changed-only` restricts
file-scoped reporting (layering include sites, determinism, blocking,
status-discard, hot-alloc) to files changed vs. git HEAD; graph-level
results (include cycles, lock-order cycles) always consider the whole
program, since a local edit can close a cycle through unchanged files.
"""

import argparse
import json
import os
import re
import subprocess
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from feisu_lint import strip_comments_and_strings  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "analyze_fixtures")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
PASSES = ("layering", "lock-order", "determinism", "blocking-under-lock",
          "status-discard", "hot-alloc")
# Waiver ids accepted in allow(...) comments -> the pass that consumes them.
WAIVER_PASS_OF = {
    "layering": "layering",
    "lock-order": "lock-order",
    "unordered-iter": "determinism",
    "blocking-under-lock": "blocking-under-lock",
    "status-discard": "status-discard",
    "hot-alloc": "hot-alloc",
}

WAIVER_RE = re.compile(r"feisu-analyze:\s*allow\(([a-z-]+)\)\s*(:\s*\S.*)?")

# (abspath, lineno) of waiver comments that actually suppressed a finding
# during the current run; everything else naming an executed pass is
# stale. Cleared at the start of every analysis entry point.
USED_WAIVERS = set()


class Violation:
    def __init__(self, path, line, pass_name, message):
        self.path = path
        self.line = line
        self.pass_name = pass_name
        self.message = message

    def render(self, root):
        rel = os.path.relpath(self.path, root) if self.path else "<global>"
        return "%s:%d: [%s] %s" % (rel, self.line, self.pass_name,
                                   self.message)


def make_waiver_lookup(path, raw_lines):
    """Returns waived(lineno, pass_name): a waiver comment applies to its
    own line or the line directly below it. A waiver with no reason text
    is treated as absent (and separately reported). Matches are recorded
    in USED_WAIVERS so unconsumed waivers can be flagged as stale."""
    abspath = os.path.abspath(path)

    def waived(lineno, pass_name):
        for idx in (lineno - 1, lineno - 2):
            if idx < 0 or idx >= len(raw_lines):
                continue
            m = WAIVER_RE.search(raw_lines[idx])
            if m is not None and m.group(1) == pass_name and m.group(2):
                USED_WAIVERS.add((abspath, idx + 1))
                return True
        return False
    return waived


def collect_stale_waivers(files, executed_passes, report_paths):
    """Waivers whose pass ran but which suppressed nothing this run."""
    out = []
    for path in files:
        if report_paths is not None and os.path.abspath(path) \
                not in report_paths:
            continue
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().split("\n")
        for lineno, line in enumerate(raw_lines, start=1):
            m = WAIVER_RE.search(line)
            if m is None or not m.group(2):
                continue  # reasonless waivers are reported separately
            pass_name = WAIVER_PASS_OF.get(m.group(1))
            if pass_name is None:
                out.append(Violation(
                    path, lineno, "stale-waiver",
                    "waiver names unknown id `%s`; known ids: %s"
                    % (m.group(1), ", ".join(sorted(WAIVER_PASS_OF)))))
                continue
            if pass_name not in executed_passes:
                continue  # pass did not run; can't judge staleness
            if (os.path.abspath(path), lineno) not in USED_WAIVERS:
                out.append(Violation(
                    path, lineno, "stale-waiver",
                    "waiver `allow(%s)` no longer suppresses any finding "
                    "of the %s pass; delete it so the check is live again"
                    % (m.group(1), pass_name)))
    return out


def collect_reasonless_waivers(path, raw_lines):
    out = []
    for lineno, line in enumerate(raw_lines, start=1):
        m = WAIVER_RE.search(line)
        if m is not None and not m.group(2):
            out.append(Violation(
                path, lineno, m.group(1),
                "waiver without a reason; write `feisu-analyze: "
                "allow(%s): <why this is safe>`" % m.group(1)))
    return out


# ---------------------------------------------------------------------------
# Shared source model
# ---------------------------------------------------------------------------

class SourceFile:
    def __init__(self, path):
        self.path = path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.raw_lines = self.raw.split("\n")
        self.code = strip_comments_and_strings(self.raw)
        self.code_lines = self.code.split("\n")
        self.waived = make_waiver_lookup(path, self.raw_lines)
        # Map text offset -> line number (1-based).
        self._line_starts = [0]
        for i, c in enumerate(self.code):
            if c == "\n":
                self._line_starts.append(i + 1)
        # Matching-brace map over the stripped text.
        self.brace_match = {}
        stack = []
        for i, c in enumerate(self.code):
            if c == "{":
                stack.append(i)
            elif c == "}" and stack:
                self.brace_match[stack.pop()] = i

    def line_of(self, offset):
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def enclosing_block_end(self, offset, limit):
        """End offset of the innermost brace block containing `offset`,
        bounded by `limit` (the end of the surrounding function body).
        The smallest enclosing block wins."""
        best_span = None
        for open_pos, close_pos in self.brace_match.items():
            if open_pos < offset < close_pos <= limit:
                span = close_pos - open_pos
                if best_span is None or span < best_span[1] - best_span[0]:
                    best_span = (open_pos, close_pos)
        return best_span[1] if best_span else limit


def collect_source_files(src_dir):
    files = []
    for root, dirs, names in os.walk(src_dir):
        dirs.sort()
        for name in sorted(names):
            if name.endswith(SOURCE_EXTENSIONS):
                files.append(os.path.join(root, name))
    return files


def git_changed_files(root):
    """Source files changed vs. HEAD (staged, unstaged, and untracked)."""
    changed = set()
    cmds = [
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for cmd in cmds:
        try:
            out = subprocess.run(cmd, cwd=root, capture_output=True,
                                 text=True, check=False)
        except OSError:
            return None
        if out.returncode != 0:
            return None
        for rel in out.stdout.splitlines():
            rel = rel.strip()
            if rel.endswith(SOURCE_EXTENSIONS):
                changed.add(os.path.abspath(os.path.join(root, rel)))
    return changed


# ---------------------------------------------------------------------------
# Minimal TOML loader (tomllib when available, else a subset parser that
# covers feisu_layers.toml: [[array-of-tables]], [table], string arrays)
# ---------------------------------------------------------------------------

def load_toml(path):
    try:
        import tomllib
        with open(path, "rb") as f:
            return tomllib.load(f)
    except ImportError:
        pass
    data = {}
    current = data
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    # Join multi-line arrays.
    text = re.sub(r"\[\s*\n", "[", text)
    lines = []
    buf = ""
    for line in text.split("\n"):
        line = line.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        buf += " " + line if buf else line
        if buf.count("[") > buf.count("]") and "=" in buf:
            continue  # unclosed array literal; keep accumulating
        lines.append(buf.strip())
        buf = ""
    for line in lines:
        m = re.match(r"^\[\[([A-Za-z0-9_.-]+)\]\]$", line)
        if m:
            data.setdefault(m.group(1), []).append({})
            current = data[m.group(1)][-1]
            continue
        m = re.match(r"^\[([A-Za-z0-9_.-]+)\]$", line)
        if m:
            current = data.setdefault(m.group(1), {})
            continue
        m = re.match(r"^([A-Za-z0-9_-]+)\s*=\s*(.+)$", line)
        if m:
            key, value = m.group(1), m.group(2).strip()
            if value.startswith("["):
                items = re.findall(r'"([^"]*)"', value)
                current[key] = items
            elif value.startswith('"'):
                current[key] = value.strip('"')
            else:
                current[key] = value
    return data


# ---------------------------------------------------------------------------
# Pass 1: layering
# ---------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')


def find_cycle(graph):
    """Returns one cycle as a list of nodes, or None. `graph` is
    {node: iterable-of-neighbors}."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    parent = {}

    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(sorted(graph.get(start, ()))))]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if nxt not in color:
                    continue
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    parent[nxt] = node
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if color[nxt] == GRAY:
                    cycle = [nxt, node]
                    cur = node
                    while cur != nxt:
                        cur = parent[cur]
                        cycle.append(cur)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
        # restart loop; explicit continue not needed
    return None


class LayeringResult:
    def __init__(self):
        self.violations = []
        self.module_edges = {}   # mod -> {dep: (path, line)} first site
        self.bands = []          # [(name, [modules])]
        self.band_of = {}


def run_layering(files, src_dir, layers_path, report_paths):
    result = LayeringResult()
    violations = result.violations

    if not os.path.isfile(layers_path):
        violations.append(Violation(
            layers_path, 1, "layering", "missing layer declaration file"))
        return result
    config = load_toml(layers_path)
    bands = [(b.get("name", "band%d" % i), b.get("modules", []))
             for i, b in enumerate(config.get("bands", []))]
    deps = config.get("deps", {})
    band_of = {}
    for rank, (name, modules) in enumerate(bands):
        for mod in modules:
            if mod in band_of:
                violations.append(Violation(
                    layers_path, 1, "layering",
                    "module %s assigned to two bands" % mod))
            band_of[mod] = rank
    result.bands = bands
    result.band_of = band_of

    # The declared allowlist must itself be a DAG with no upward edges.
    for mod, allowed in sorted(deps.items()):
        if mod not in band_of:
            violations.append(Violation(
                layers_path, 1, "layering",
                "module %s has deps but no band assignment" % mod))
            continue
        for dep in allowed:
            if dep not in band_of:
                violations.append(Violation(
                    layers_path, 1, "layering",
                    "allowlisted dep %s -> %s names an unassigned module"
                    % (mod, dep)))
            elif band_of[dep] > band_of[mod]:
                violations.append(Violation(
                    layers_path, 1, "layering",
                    "allowlisted dep %s -> %s points to a higher band "
                    "(%s -> %s)" % (mod, dep, bands[band_of[mod]][0],
                                    bands[band_of[dep]][0])))
    allow_graph = {m: set(deps.get(m, [])) & set(band_of)
                   for m in band_of}
    cycle = find_cycle(allow_graph)
    if cycle:
        violations.append(Violation(
            layers_path, 1, "layering",
            "declared dependency allowlist contains a cycle: %s"
            % " -> ".join(cycle)))

    # Observed include graph (file-level and module-level).
    src_dir = os.path.abspath(src_dir)
    file_graph = {}
    module_edges = result.module_edges
    for path in files:
        rel = os.path.relpath(os.path.abspath(path), src_dir)
        mod = rel.split(os.sep)[0]
        if mod not in band_of:
            violations.append(Violation(
                path, 1, "layering",
                "module %s is not assigned to any band in %s"
                % (mod, os.path.basename(layers_path))))
            continue
        sf = SourceFile(path)
        file_graph.setdefault(rel.replace(os.sep, "/"), set())
        # Raw lines: the comment/string stripper blanks include paths.
        for lineno, line in enumerate(sf.raw_lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            target = m.group(1)
            if not os.path.isfile(os.path.join(src_dir, target)):
                continue  # system or third-party include
            tmod = target.split("/")[0]
            file_graph[rel.replace(os.sep, "/")].add(target)
            if tmod == mod:
                continue
            module_edges.setdefault(mod, {}).setdefault(
                tmod, (path, lineno))
            if tmod not in band_of:
                continue  # already reported above
            allowed = set(deps.get(mod, []))
            if tmod not in allowed and not sf.waived(lineno, "layering"):
                if band_of[tmod] > band_of[mod]:
                    why = ("upward include: %s (band %s) must not depend "
                           "on %s (band %s)"
                           % (mod, bands[band_of[mod]][0], tmod,
                              bands[band_of[tmod]][0]))
                else:
                    why = ("include edge %s -> %s is not in the %s "
                           "allowlist; add it there (same commit) if the "
                           "architecture change is intended"
                           % (mod, tmod, os.path.basename(layers_path)))
                if report_paths is None or os.path.abspath(path) \
                        in report_paths:
                    violations.append(Violation(path, lineno, "layering",
                                                why))

    # File-level include cycles (always whole-program).
    cycle = find_cycle(file_graph)
    if cycle:
        violations.append(Violation(
            None, 0, "layering",
            "include cycle: %s" % " -> ".join(cycle)))
    return result


def write_include_dot(result, out_path):
    lines = ["digraph feisu_includes {",
             '  rankdir=BT;',
             '  node [shape=box, fontname="monospace"];']
    for rank, (name, modules) in enumerate(result.bands):
        lines.append("  subgraph cluster_band%d {" % rank)
        lines.append('    label="band %d: %s"; style=dashed;' % (rank, name))
        for mod in modules:
            lines.append('    "%s";' % mod)
        lines.append("  }")
    for mod in sorted(result.module_edges):
        for dep in sorted(result.module_edges[mod]):
            lines.append('  "%s" -> "%s";' % (mod, dep))
    lines.append("}")
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Pass 2: lock-order
# ---------------------------------------------------------------------------

LOCK_DECL_RE = re.compile(
    r"\b(MutexLock|WriterLock|ReaderLock)\s+([A-Za-z_]\w*)\s*\(([^()]*)\)")
CLASS_RE = re.compile(r"\b(?:class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?"
                      r"(?::[^;{]*)?\{")
FUNC_RE = re.compile(
    r"(?:^|\n)[ \t]*(?:template\s*<[^\n]*>[ \t]*\n[ \t]*)?"
    r"(?P<ret>[A-Za-z_][\w:<>,&*\s\[\]]*?[\s&*>])"
    r"(?P<name>~?[A-Za-z_]\w*(?:::~?[A-Za-z_]\w*)*)[ \t]*\(")
CTOR_RE = re.compile(
    r"(?:^|\n)[ \t]*(?P<cls>[A-Za-z_]\w*)::(?P<name>~?[A-Za-z_]\w*)[ \t]*\(")
REQUIRES_RE = re.compile(r"\bFEISU_REQUIRES(?:_SHARED)?\s*\(([^)]*)\)")
ACQUIRE_RE = re.compile(r"\bFEISU_ACQUIRE(?:_SHARED)?\s*\(([^)]*)\)")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
# Method names that are overwhelmingly std-container calls at dotted call
# sites; never resolved to repo classes through an object expression.
STL_METHOD_NAMES = {
    "size", "empty", "begin", "end", "cbegin", "cend", "rbegin", "rend",
    "find", "count", "contains", "erase", "insert", "emplace",
    "emplace_back", "push_back", "pop_back", "push_front", "pop_front",
    "clear", "at", "front", "back", "reserve", "resize", "data", "swap",
    "get", "reset", "load", "store", "exchange", "str", "c_str", "substr",
    "append", "compare", "length", "lock", "unlock", "try_lock", "wait",
    "notify_one", "notify_all", "value", "value_or", "has_value", "first",
    "second", "merge", "assign", "ok",
}
CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
    "delete", "throw", "else", "do", "case", "alignof", "decltype",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "defined", "assert", "static_assert", "using", "namespace", "typedef",
    "operator", "noexcept", "co_await", "co_return", "co_yield",
}


def normalize_mutex(expr):
    expr = expr.strip().replace("->", ".")
    expr = re.sub(r"\s+", "", expr)
    expr = re.sub(r"^this\.", "", expr)
    expr = re.sub(r"^\*", "", expr)
    return expr


class Function:
    def __init__(self, qname, scope, path, body_span, sig_span, sf):
        self.qname = qname          # Scope::name
        self.name = qname.rsplit("::", 1)[-1]
        self.scope = scope          # owning class, or file-stem pseudo-scope
        self.path = path
        self.body_span = body_span  # (open_brace, close_brace) offsets
        self.sig_span = sig_span    # (match_start, open_brace) offsets
        self.sf = sf
        self.requires = set()       # mutex ids held on entry
        self.acquires = set()       # direct acquisitions (decl + ACQUIRE)
        self.lock_sites = []        # (mutex_id, pos, scope_end, line, waived)
        self.calls = []             # lock-order resolution: (targets, pos)
        self.lock_vars = []         # (varname, mutex_id, pos, scope_end)
        self.effect_calls = []      # typed resolution: (targets, pos, name)
        self.blocking_sites = []    # (kind, pos, line, detail, released)
        self.alloc_sites = []       # (kind, pos, line, detail)


def class_spans(sf):
    """[(class_name, open, close)] for every class/struct body."""
    spans = []
    for m in CLASS_RE.finditer(sf.code):
        open_pos = sf.code.find("{", m.start())
        # CLASS_RE consumes the '{'; recover its position precisely.
        open_pos = m.end() - 1
        close_pos = sf.brace_match.get(open_pos)
        if close_pos is not None:
            spans.append((m.group(1), open_pos, close_pos))
    return spans


def enclosing_class(spans, pos):
    best = None
    for name, open_pos, close_pos in spans:
        if open_pos < pos < close_pos:
            if best is None or open_pos > best[1]:
                best = (name, open_pos)
    return best[0] if best else None


def param_list_end(code, open_paren):
    depth = 0
    for i in range(open_paren, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def extract_functions(sf, module_stem):
    """Finds function definitions (with bodies) in one file."""
    functions = []
    spans = class_spans(sf)
    seen_bodies = set()
    for regex in (FUNC_RE, CTOR_RE):
        for m in regex.finditer(sf.code):
            name = m.group("name")
            last = name.rsplit("::", 1)[-1].lstrip("~")
            if last in CPP_KEYWORDS or name.split("::")[0] in CPP_KEYWORDS:
                continue
            if regex is FUNC_RE:
                ret = m.group("ret").strip()
                if ret.split()[-1:] and ret.split()[-1] in ("return",
                                                           "else", "do"):
                    continue
            open_paren = m.end() - 1
            close_paren = param_list_end(sf.code, open_paren)
            if close_paren < 0:
                continue
            # Scan the qualifier region for the body '{' or a ';'.
            i = close_paren + 1
            body_open = -1
            qual_end = len(sf.code)
            while i < len(sf.code):
                c = sf.code[i]
                if c == "{":
                    body_open = i
                    qual_end = i
                    break
                if c in ";=":
                    break  # declaration / deleted / pure-virtual
                if c == "(":   # annotation argument list, e.g. REQUIRES(m)
                    i = param_list_end(sf.code, i)
                    if i < 0:
                        break
                i += 1
            if body_open < 0 or i < 0:
                continue
            body_close = sf.brace_match.get(body_open)
            if body_close is None or body_open in seen_bodies:
                continue
            seen_bodies.add(body_open)
            if "::" in name:
                scope = name.rsplit("::", 1)[0]
                fname = name.rsplit("::", 1)[-1]
            else:
                scope = enclosing_class(spans, m.start())
                fname = name
                if scope is None:
                    scope = module_stem
            fn = Function("%s::%s" % (scope, fname), scope, sf.path,
                          (body_open, body_close),
                          (m.start(), body_open), sf)
            sig_text = sf.code[close_paren:body_open]
            for rm in REQUIRES_RE.finditer(sig_text):
                for arg in rm.group(1).split(","):
                    if arg.strip():
                        fn.requires.add(
                            "%s::%s" % (scope, normalize_mutex(arg)))
            for am in ACQUIRE_RE.finditer(sig_text):
                for arg in am.group(1).split(","):
                    if arg.strip():
                        fn.acquires.add(
                            "%s::%s" % (scope, normalize_mutex(arg)))
            functions.append(fn)
    return functions


def index_declared_annotations(sf, module_stem):
    """Annotations on declarations (usually in headers): maps
    Scope::name -> (requires, acquires) so definitions in .cc files
    inherit the contract declared on the prototype."""
    out = {}
    spans = class_spans(sf)
    decl_re = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
    for m in decl_re.finditer(sf.code):
        name = m.group(1)
        if name in CPP_KEYWORDS:
            continue
        close_paren = param_list_end(sf.code, m.end() - 1)
        if close_paren < 0:
            continue
        # Qualifier region up to the statement end.
        i = close_paren + 1
        qual_start = i
        while i < len(sf.code) and sf.code[i] not in ";{":
            if sf.code[i] == "(":
                i = param_list_end(sf.code, i)
                if i < 0:
                    break
            i += 1
        if i < 0 or i >= len(sf.code):
            continue
        qual = sf.code[qual_start:i + 1]
        if "FEISU_REQUIRES" not in qual and "FEISU_ACQUIRE" not in qual:
            continue
        scope = enclosing_class(spans, m.start()) or module_stem
        req, acq = set(), set()
        for rm in REQUIRES_RE.finditer(qual):
            for arg in rm.group(1).split(","):
                if arg.strip():
                    req.add("%s::%s" % (scope, normalize_mutex(arg)))
        for am in ACQUIRE_RE.finditer(qual):
            for arg in am.group(1).split(","):
                if arg.strip():
                    acq.add("%s::%s" % (scope, normalize_mutex(arg)))
        key = "%s::%s" % (scope, name)
        prev = out.get(key, (set(), set()))
        out[key] = (prev[0] | req, prev[1] | acq)
    return out


# ---------------------------------------------------------------------------
# Effect-summary engine (Gate 6): shared whole-program model
# ---------------------------------------------------------------------------

CONDVAR_WAIT_RE = re.compile(r"(?:\.|->)\s*Wait\s*\(\s*([A-Za-z_]\w*)\s*\)")
POOL_DISPATCH_RE = re.compile(
    r"(?:\.|->)\s*(Submit|ParallelFor|WaitIdle)\s*\(")
FUTURE_DECL_RE = re.compile(
    r"\bstd::(?:shared_)?future\s*<[^;{}]*>\s*&?\s*([A-Za-z_]\w*)")
FUTURE_GET_RE = re.compile(r"([A-Za-z_][\w.>\[\]-]*)\s*\.\s*get\s*\(\s*\)")
ALLOC_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")
ALLOC_MAKE_RE = re.compile(r"\bstd::make_(unique|shared)\s*<")
CONTAINER_LOCAL_RE = re.compile(
    r"\bstd::(vector|string|deque|map|set|unordered_map|unordered_set|list)"
    r"\s*(?:<[^;{}()]*>)?\s+[A-Za-z_]\w*\s*[;({=]")
LOOP_RE = re.compile(r"(?<![\w])(?:for|while)\s*\(")
HOT_LOOP_HINT_RE = re.compile(r"[Rr]ows?\b|[Bb]atch|num_rows|RowCount")
MEMBER_PTR_DECL_RE = re.compile(
    r"\bstd::(?:unique_ptr|shared_ptr)\s*<\s*(?:const\s+)?([A-Za-z_]\w*)"
    r"[^;{}>]*>\s+([a-z_]\w*)\s*[;={]")
MEMBER_OBJ_DECL_RE = re.compile(
    r"\b([A-Z]\w*)\s*(?:<[^;{}()]*>)?\s*[*&]?\s+([a-z_]\w*)\s*[;={]")

# Blocking roots by contract: simulated storage/RPC reads. Their cost is
# SimTime in this repo, but architecturally they are I/O — holding a
# master/scheduler lock across them is the bug class Gate 6 exists for.
INTRINSIC_BLOCKING = {
    "StorageSystem::Get": "storage read",
    "PathRouter::Get": "storage-path read",
    "SsoAuthenticator::Authenticate": "auth RPC",
}


def index_member_types(sf):
    """(OwnerClass, member_name) -> TypeName for member declarations, so
    dotted calls through `router_->Get(...)` resolve to the right class
    instead of every class with a `Get`. Over-captures harmlessly: a
    member mapped to a type with no in-program methods binds nothing."""
    out = {}
    for cls, open_pos, close_pos in class_spans(sf):
        body = sf.code[open_pos:close_pos]
        for m in MEMBER_PTR_DECL_RE.finditer(body):
            out[(cls, m.group(2))] = m.group(1)
        for m in MEMBER_OBJ_DECL_RE.finditer(body):
            out.setdefault((cls, m.group(2)), m.group(1))
    return out


class Program:
    """Whole-program function model shared by lock-order and the Gate 6
    effect passes: functions with resolved calls, lock scopes, blocking
    and allocation effect sites, and bottom-up may-block / may-alloc
    summaries carrying a witness chain for reporting."""

    def __init__(self, files):
        self.files = files
        self.functions = []
        self.source_files = {}
        decl_annotations = {}
        member_types = {}
        for path in files:
            sf = SourceFile(path)
            self.source_files[path] = sf
            stem = os.path.splitext(os.path.basename(path))[0]
            self.functions.extend(extract_functions(sf, stem))
            for k, v in index_declared_annotations(sf, stem).items():
                prev = decl_annotations.get(k, (set(), set()))
                decl_annotations[k] = (prev[0] | v[0], prev[1] | v[1])
            for key, tname in index_member_types(sf).items():
                member_types.setdefault(key, tname)
        self.member_types = member_types
        self.by_name = {}
        for fn in self.functions:
            req, acq = decl_annotations.get(fn.qname, (set(), set()))
            fn.requires |= req
            fn.acquires |= acq
            self.by_name.setdefault(fn.name, []).append(fn)
        # member name -> type when the name maps to one type program-wide
        by_member = {}
        for (_scope, member), tname in member_types.items():
            by_member.setdefault(member, set()).add(tname)
        self.member_type_global = {m: next(iter(ts))
                                   for m, ts in by_member.items()
                                   if len(ts) == 1}
        self._scan_bodies()
        self._summarize()

    def resolve_call(self, caller, name, dotted):
        """Lock-order call resolution (unchanged from Gate 5). Undotted
        calls bind to the caller's own class when it defines the name
        (else any candidate). Dotted calls bind only when exactly one
        class defines `name` and it is not an STL method name."""
        candidates = self.by_name.get(name, ())
        if not candidates:
            return ()
        if not dotted:
            own = [c for c in candidates if c.scope == caller.scope]
            return own if own else candidates
        if name in STL_METHOD_NAMES:
            return ()
        scopes = {c.scope for c in candidates}
        return candidates if len(scopes) == 1 else ()

    def resolve_effect_call(self, fn, body, start, name, dotted):
        """Effect-summary call resolution: like resolve_call, but dotted
        receivers are first resolved through declared member types, so
        `router_->Get()` binds PathRouter::Get even though several
        classes define Get."""
        candidates = self.by_name.get(name, ())
        if not candidates:
            return ()
        if not dotted:
            own = [c for c in candidates if c.scope == fn.scope]
            return own if own else candidates
        if name in STL_METHOD_NAMES:
            return ()
        rm = re.search(r"([A-Za-z_]\w*)\s*(?:\.|->)\s*$", body[:start])
        if rm:
            recv = rm.group(1)
            rtype = self.member_types.get((fn.scope, recv))
            if rtype is None:
                rtype = self.member_type_global.get(recv)
            if rtype is not None:
                return [c for c in candidates if c.scope == rtype]
        scopes = {c.scope for c in candidates}
        return candidates if len(scopes) == 1 else ()

    def _scan_bodies(self):
        for fn in self.functions:
            sf = fn.sf
            body = sf.code[fn.body_span[0]:fn.body_span[1]]
            base = fn.body_span[0]
            for m in LOCK_DECL_RE.finditer(body):
                pos = base + m.start()
                mutex = "%s::%s" % (fn.scope, normalize_mutex(m.group(3)))
                line = sf.line_of(pos)
                scope_end = sf.enclosing_block_end(pos, fn.body_span[1])
                waived = sf.waived(line, "lock-order")
                fn.lock_sites.append((mutex, pos, scope_end, line, waived))
                fn.lock_vars.append((m.group(2), mutex, pos, scope_end))
                if not waived:
                    fn.acquires.add(mutex)
            future_names = set(FUTURE_DECL_RE.findall(body))
            for m in CALL_RE.finditer(body):
                name = m.group(1)
                if name in CPP_KEYWORDS or name not in self.by_name:
                    continue
                before = body[:m.start()].rstrip()
                dotted = before.endswith(".") or before.endswith("->")
                targets = self.resolve_call(fn, name, dotted)
                if targets:
                    fn.calls.append((targets, base + m.start()))
                etargets = self.resolve_effect_call(fn, body, m.start(),
                                                    name, dotted)
                if etargets:
                    fn.effect_calls.append(
                        (etargets, base + m.start(), name))
            for m in CONDVAR_WAIT_RE.finditer(body):
                pos = base + m.start()
                released = None
                for var, mutex, lpos, lend in fn.lock_vars:
                    if var == m.group(1) and lpos < pos < lend:
                        released = mutex
                if released is None:
                    # Wait(lock) on a MutexLock& parameter: the handoff
                    # releases the caller-supplied lock.
                    sig = sf.code[fn.sig_span[0]:fn.body_span[0]]
                    if re.search(r"\bMutexLock\s*&\s*%s\b" % m.group(1),
                                 sig):
                        released = "<param>"
                fn.blocking_sites.append(
                    ("cond-wait", pos, sf.line_of(pos),
                     "CondVar Wait(%s)" % m.group(1), released))
            for m in POOL_DISPATCH_RE.finditer(body):
                pos = base + m.start()
                fn.blocking_sites.append(
                    ("pool-dispatch", pos, sf.line_of(pos),
                     "ThreadPool %s" % m.group(1), None))
            for m in FUTURE_GET_RE.finditer(body):
                recv = m.group(1)
                leaf = [t for t in re.split(r"[^\w]+", recv) if t]
                leaf_name = leaf[-1] if leaf else recv
                if leaf_name in future_names or "future" in recv.lower():
                    pos = base + m.start()
                    fn.blocking_sites.append(
                        ("future-get", pos, sf.line_of(pos),
                         "%s.get()" % recv, None))
            for m in ALLOC_NEW_RE.finditer(body):
                pos = base + m.start()
                fn.alloc_sites.append(("new", pos, sf.line_of(pos), "new"))
            for m in ALLOC_MAKE_RE.finditer(body):
                pos = base + m.start()
                fn.alloc_sites.append(
                    ("make_" + m.group(1), pos, sf.line_of(pos),
                     "std::make_%s" % m.group(1)))

    def _summarize(self):
        """Bottom-up fixpoint over name-resolved calls. Every entry in
        block_info/alloc_info is a witness: a direct site, an intrinsic
        root, or the first (deterministically ordered) call edge into a
        function already known to have the effect."""
        order = sorted(self.functions,
                       key=lambda f: (f.path, f.body_span[0]))
        self.block_info = {}
        self.alloc_info = {}
        for fn in order:
            if fn.qname in INTRINSIC_BLOCKING:
                self.block_info[id(fn)] = {
                    "kind": "intrinsic", "path": fn.path,
                    "line": fn.sf.line_of(fn.sig_span[0]),
                    "detail": INTRINSIC_BLOCKING[fn.qname], "via": None}
            elif fn.blocking_sites:
                kind, _pos, line, detail, _rel = min(
                    fn.blocking_sites, key=lambda s: s[1])
                self.block_info[id(fn)] = {
                    "kind": kind, "path": fn.path, "line": line,
                    "detail": detail, "via": None}
            if fn.alloc_sites:
                kind, _pos, line, detail = min(
                    fn.alloc_sites, key=lambda s: s[1])
                self.alloc_info[id(fn)] = {
                    "kind": kind, "path": fn.path, "line": line,
                    "detail": detail, "via": None}
        for _ in range(50):
            changed = False
            for fn in order:
                for targets, pos, _name in sorted(fn.effect_calls,
                                                  key=lambda c: c[1]):
                    line = fn.sf.line_of(pos)
                    for callee in sorted(targets, key=lambda c: c.qname):
                        if callee is fn:
                            continue
                        if id(fn) not in self.block_info and \
                                id(callee) in self.block_info:
                            self.block_info[id(fn)] = {
                                "kind": "call", "path": fn.path,
                                "line": line, "detail": callee.qname,
                                "via": callee}
                            changed = True
                        if id(fn) not in self.alloc_info and \
                                id(callee) in self.alloc_info:
                            self.alloc_info[id(fn)] = {
                                "kind": "call", "path": fn.path,
                                "line": line, "detail": callee.qname,
                                "via": callee}
                            changed = True
            if not changed:
                break

    def _chain(self, info_map, fn):
        parts = []
        seen = set()
        cur = fn
        while cur is not None and id(cur) not in seen:
            seen.add(id(cur))
            info = info_map.get(id(cur))
            if info is None:
                break
            rel = os.path.relpath(info["path"], REPO_ROOT)
            if info["via"] is None:
                parts.append("%s [%s: %s] (%s:%d)"
                             % (cur.qname, info["kind"], info["detail"],
                                rel, info["line"]))
                break
            parts.append("%s (%s:%d)" % (cur.qname, rel, info["line"]))
            cur = info["via"]
        return " -> ".join(parts)

    def block_chain(self, fn):
        return self._chain(self.block_info, fn)

    def alloc_chain(self, fn):
        return self._chain(self.alloc_info, fn)


class LockOrderResult:
    def __init__(self):
        self.violations = []
        self.edges = {}  # (held, acquired) -> (path, line)


def run_lock_order(program):
    result = LockOrderResult()
    functions = program.functions

    # Transitive acquisition summaries (fixpoint over name-resolved calls).
    summary = {id(fn): set(fn.acquires) for fn in functions}
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for fn in functions:
            s = summary[id(fn)]
            before = len(s)
            for targets, _pos in fn.calls:
                for callee in targets:
                    if callee is fn:
                        continue
                    s |= summary[id(callee)]
            if len(s) != before:
                changed = True

    # Edges: for every acquisition (direct or via call) under a held lock.
    edges = result.edges

    def add_edge(held, acquired, path, line):
        if held == acquired:
            return  # same lock object; re-entrancy is -Wthread-safety's job
        edges.setdefault((held, acquired), (path, line))

    for fn in functions:
        held_base = set(fn.requires)
        for mutex, pos, scope_end, line, waived in fn.lock_sites:
            if waived:
                continue
            held = set(held_base)
            for omutex, opos, oend, _oline, owaived in fn.lock_sites:
                if owaived:
                    continue
                if opos < pos < oend:
                    held.add(omutex)
            for h in held:
                add_edge(h, mutex, fn.path, line)
        for targets, pos in fn.calls:
            held = set(held_base)
            for omutex, opos, oend, _oline, owaived in fn.lock_sites:
                if owaived:
                    continue
                if opos < pos < oend:
                    held.add(omutex)
            if not held:
                continue
            acquired = set()
            for callee in targets:
                if callee is not fn:
                    acquired |= summary[id(callee)]
            line = fn.sf.line_of(pos)
            for h in held:
                for a in acquired:
                    add_edge(h, a, fn.path, line)

    graph = {}
    for (held, acquired) in edges:
        graph.setdefault(held, set()).add(acquired)
        graph.setdefault(acquired, set())
    cycle = find_cycle(graph)
    if cycle:
        sites = []
        for a, b in zip(cycle, cycle[1:]):
            path, line = edges.get((a, b), (None, 0))
            if path:
                sites.append("%s acquired while holding %s at %s:%d"
                             % (b, a, os.path.relpath(path, REPO_ROOT),
                                line))
        result.violations.append(Violation(
            None, 0, "lock-order",
            "acquisition-order cycle (potential deadlock): %s%s"
            % (" -> ".join(cycle),
               ("; " + "; ".join(sites)) if sites else "")))
    return result


def write_lock_dot(result, out_path):
    lines = ["digraph feisu_lock_order {",
             '  node [shape=ellipse, fontname="monospace"];']
    nodes = set()
    for (held, acquired), (path, line) in sorted(result.edges.items()):
        nodes.add(held)
        nodes.add(acquired)
        label = "%s:%d" % (os.path.basename(path), line)
        lines.append('  "%s" -> "%s" [label="%s"];'
                     % (held, acquired, label))
    for n in sorted(nodes):
        lines.append('  "%s";' % n)
    lines.append("}")
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")


# ---------------------------------------------------------------------------
# Pass 3: determinism
# ---------------------------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"\bstd::unordered_(?:map|set)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_][\w.]*(?:->[\w.]+)*)\s*"
                           r"\.\s*c?begin\s*\(")

# Statements allowed inside an order-insensitive fold. Anything else in a
# loop over an unordered container needs a waiver.
FOLD_ALLOWED_RES = [
    re.compile(r"^(\+\+|--)[\w.\->\[\]]+$"),
    re.compile(r"^[\w.\->\[\]]+(\+\+|--)$"),
    re.compile(r"^[\w.\->\[\]()]+\s*[-+|&^]=[^=].*$"),
    re.compile(r"^[\w.\->\[\]]+\s*=\s*std::(?:max|min)\s*\(.*$"),
    re.compile(r"^([\w.\->\[\]]+\s*=\s*)?[\w.\->\[\]]*\.?erase\s*\(.*$"),
    re.compile(r"^continue$"),
]


def matched_angle_span(text, start):
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
        elif c in ";{":
            return -1
        i += 1
    return -1


class UnorderedIndex:
    """Scope-aware index of names declared with unordered container types.

    A loop over `name` is only matched against declarations that could
    plausibly be in scope: declarations inside the same function (locals
    and parameters), or class/namespace-scope declarations in the same
    file or its `.h`/`.cc` pair. This keeps a local `std::vector entries`
    in one file from aliasing an `unordered_map entries` member in an
    unrelated class. Members reached through a third class's header are a
    known miss; the tradeoff is documented in docs/STATIC_ANALYSIS.md."""

    def __init__(self, files):
        self.file_scope = {}   # path -> set(names) at class/namespace scope
        self.func_scope = {}   # path -> [(name, start, end)]
        alias_names = []
        for path in files:
            sf = SourceFile(path)
            self._scan(path, sf, UNORDERED_DECL_RE, alias_names)
        if alias_names:
            alias_decl = re.compile(
                r"\b(?:%s)\s*<?" % "|".join(sorted(set(alias_names))))
            for path in files:
                sf = SourceFile(path)
                self._scan(path, sf, alias_decl, None)

    def _scan(self, path, sf, decl_re, alias_out):
        stem = os.path.splitext(os.path.basename(path))[0]
        spans = [(fn.sig_span[0], fn.body_span[1])
                 for fn in extract_functions(sf, stem)]
        text = sf.code
        self.file_scope.setdefault(path, set())
        self.func_scope.setdefault(path, [])
        for m in decl_re.finditer(text):
            if text[m.end() - 1] == "<":
                close = matched_angle_span(text, m.end() - 1)
                if close < 0:
                    continue
            else:
                close = m.end() - 1
            rest = text[close + 1:close + 200]
            dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", rest)
            if not dm:
                continue
            name = dm.group(1)
            if alias_out is not None:
                before = text[max(0, m.start() - 120):m.start()]
                am = re.search(r"using\s+([A-Za-z_]\w*)\s*=\s*$", before)
                if am:
                    alias_out.append(am.group(1))
            enclosing = None
            for start, end in spans:
                if start <= m.start() < end:
                    if enclosing is None or start > enclosing[0]:
                        enclosing = (start, end)
            if enclosing is None:
                self.file_scope[path].add(name)
            else:
                self.func_scope[path].append(
                    (name, enclosing[0], enclosing[1]))

    def _pair_paths(self, path):
        stem, ext = os.path.splitext(path)
        if ext in (".cc", ".cpp"):
            return [stem + ".h", stem + ".hpp"]
        return [stem + ".cc", stem + ".cpp"]

    def is_unordered_here(self, path, name, pos):
        if name in self.file_scope.get(path, ()):
            return True
        for other in self._pair_paths(path):
            if name in self.file_scope.get(other, ()):
                return True
        for dname, start, end in self.func_scope.get(path, ()):
            if dname == name and start <= pos < end:
                return True
        return False


def loop_body_span(sf, for_pos):
    """(body_start, body_end) offsets for the statement controlled by the
    `for` at for_pos: a brace block or a single statement up to `;`."""
    open_paren = sf.code.find("(", for_pos)
    if open_paren < 0:
        return None
    close_paren = param_list_end(sf.code, open_paren)
    if close_paren < 0:
        return None
    i = close_paren + 1
    while i < len(sf.code) and sf.code[i] in " \t\n":
        i += 1
    if i < len(sf.code) and sf.code[i] == "{":
        end = sf.brace_match.get(i)
        if end is None:
            return None
        return (i + 1, end)
    end = sf.code.find(";", i)
    if end < 0:
        return None
    return (i, end + 1)


def body_is_order_insensitive_fold(body):
    """True when every statement in the loop body is a commutative
    accumulation. Nested braces and if(...)/else control structure are
    stripped; their contained statements are classified individually."""
    text = body
    # Drop control headers but keep their bodies' statements.
    text = re.sub(r"\bif\s*\(", "(", text)
    # Remove parenthesized condition groups entirely.
    out = []
    depth = 0
    for c in text:
        if c == "(":
            depth += 1
            continue
        if c == ")":
            depth = max(0, depth - 1)
            continue
        if depth == 0:
            out.append(c)
        else:
            out.append("\x00")  # placeholder: contents of parens
    text = "".join(out)
    statements = []
    for chunk in re.split(r"[;{}]", text):
        chunk = re.sub(r"\x00+", "(_)", chunk)
        chunk = re.sub(r"\s+", " ", chunk).strip()
        chunk = re.sub(r"^else\b\s*", "", chunk)
        if not chunk or chunk == "(_)":
            continue  # pure if-condition residue, not a statement
        statements.append(chunk)
    for stmt in statements:
        if any(r.match(stmt) for r in FOLD_ALLOWED_RES):
            continue
        return False, stmt
    return True, None


def run_determinism(files, unordered, report_paths):
    violations = []
    for path in files:
        if report_paths is not None and os.path.abspath(path) \
                not in report_paths:
            continue
        sf = SourceFile(path)
        loop_positions = []
        for m in RANGE_FOR_RE.finditer(sf.code):
            open_paren = sf.code.find("(", m.start())
            close_paren = param_list_end(sf.code, open_paren)
            if close_paren < 0:
                continue
            header = sf.code[open_paren + 1:close_paren]
            target = None
            if ":" in header and ";" not in header:
                range_expr = header.rsplit(":", 1)[1].strip()
                tm = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$",
                               range_expr)
                if tm:
                    target = tm.group(1)
            else:
                bm = BEGIN_CALL_RE.search(header)
                if bm:
                    target = bm.group(1).replace("->", ".") \
                                        .rsplit(".", 1)[-1]
            if target and unordered.is_unordered_here(path, target,
                                                      m.start()):
                loop_positions.append((m.start(), target))
        for pos, target in loop_positions:
            line = sf.line_of(pos)
            span = loop_body_span(sf, pos)
            if span is None:
                continue
            ok, offending = body_is_order_insensitive_fold(
                sf.code[span[0]:span[1]])
            if ok:
                continue  # fold is clean; a waiver here would be stale
            if sf.waived(line, "unordered-iter"):
                continue
            violations.append(Violation(
                path, line, "determinism",
                "iteration over unordered container `%s` is not an "
                "order-insensitive fold (first order-dependent statement: "
                "`%s`); hash order is not deterministic across "
                "implementations — iterate a sorted copy, restructure as "
                "a commutative fold, or waive with `feisu-analyze: "
                "allow(unordered-iter): <reason>`" % (target, offending)))
    return violations


# ---------------------------------------------------------------------------
# Pass 4: blocking-under-lock
# ---------------------------------------------------------------------------

def held_locks_at(fn, pos):
    """Mutexes held at `pos`: the function's FEISU_REQUIRES contract plus
    every lock-declaration scope enclosing the position."""
    held = set(fn.requires)
    for mutex, lpos, lend, _line, _waived in fn.lock_sites:
        if lpos < pos < lend:
            held.add(mutex)
    return held


def held_labels(fn, pos, held):
    """`mutex (locked at file:line)` labels for a held set."""
    labels = []
    rel = os.path.relpath(fn.path, REPO_ROOT)
    for h in sorted(held):
        site = None
        for mutex, lpos, lend, line, _w in fn.lock_sites:
            if mutex == h and lpos < pos < lend:
                site = line
                break
        if site is not None:
            labels.append("%s (locked at %s:%d)" % (h, rel, site))
        else:
            labels.append("%s (held on entry via FEISU_REQUIRES)" % h)
    return ", ".join(labels)


def run_blocking_under_lock(program, report_paths):
    violations = []
    seen = set()
    for fn in sorted(program.functions,
                     key=lambda f: (f.path, f.body_span[0])):
        if report_paths is not None and os.path.abspath(fn.path) \
                not in report_paths:
            continue
        sf = fn.sf
        for kind, pos, line, detail, released in fn.blocking_sites:
            held = held_locks_at(fn, pos)
            if kind == "cond-wait" and released is not None:
                if released == "<param>":
                    # Wait on a caller-supplied MutexLock&: the handoff
                    # releases a lock we cannot name. Sanctioned when at
                    # most that one (annotated) lock is in play.
                    if len(held) <= 1:
                        continue
                else:
                    held.discard(released)
            if not held:
                continue  # sanctioned handoff, or nothing held
            key = (fn.path, line, kind)
            if key in seen:
                continue
            if sf.waived(line, "blocking-under-lock"):
                continue
            seen.add(key)
            violations.append(Violation(
                fn.path, line, "blocking-under-lock",
                "%s in %s blocks while holding %s; narrow the critical "
                "section so no lock is held across waits, pool dispatch, "
                "or reads (the only sanctioned shape is the CondVar "
                "handoff cv.Wait(lock) with no other lock held)"
                % (detail, fn.qname, held_labels(fn, pos, held))))
        for targets, pos, name in sorted(fn.effect_calls,
                                         key=lambda c: c[1]):
            held = held_locks_at(fn, pos)
            if not held:
                continue
            blockers = [c for c in sorted(targets, key=lambda c: c.qname)
                        if c is not fn and id(c) in program.block_info]
            if not blockers:
                continue
            line = sf.line_of(pos)
            key = (fn.path, line, "call")
            if key in seen:
                continue
            if sf.waived(line, "blocking-under-lock"):
                continue
            seen.add(key)
            violations.append(Violation(
                fn.path, line, "blocking-under-lock",
                "call to may-block `%s` while holding %s; chain: %s (%s:%d)"
                " -> %s"
                % (name, held_labels(fn, pos, held), fn.qname,
                   os.path.relpath(fn.path, REPO_ROOT), line,
                   program.block_chain(blockers[0]))))
    return violations


# ---------------------------------------------------------------------------
# Pass 5: status-discard dataflow
# ---------------------------------------------------------------------------

STATUS_DEF_RE = re.compile(r"\bStatus\s+([A-Za-z_]\w*)\s*=(?!=)")
RESULT_DEF_RE = re.compile(r"\bResult\s*<")
OK_INIT_RE = re.compile(r"^\s*(?:Status::OK|OkStatus)\s*\(\s*\)\s*$")


def block_header(sf, open_pos):
    """(construct, header_text) for the brace block opening at open_pos:
    ('if', 'cond') for if/else-if, ('else', ''), ('for'/'while'/'switch',
    header), or (None/other, '') for plain scopes and initializers."""
    code = sf.code
    i = open_pos - 1
    while i >= 0 and code[i] in " \t\n":
        i -= 1
    if i < 0:
        return (None, "")
    if code[i] == ")":
        depth = 0
        j = i
        while j >= 0:
            if code[j] == ")":
                depth += 1
            elif code[j] == "(":
                depth -= 1
                if depth == 0:
                    break
            j -= 1
        if j < 0:
            return (None, "")
        header = code[j + 1:i]
        k = j - 1
        while k >= 0 and code[k] in " \t\n":
            k -= 1
        wm = re.search(r"([A-Za-z_]\w*)$", code[max(0, k - 30):k + 1])
        return (wm.group(1) if wm else None, header)
    wm = re.search(r"([A-Za-z_]\w*)$", code[max(0, i - 30):i + 1])
    return (wm.group(1) if wm else None, "")


def read_is_conditional(sf, fn, name, def_pos, read_pos):
    """True when the read at read_pos sits inside an if/else (or switch)
    block opened after the def whose condition never mentions `name`:
    the branch can be skipped, silently dropping the status."""
    name_re = re.compile(r"(?<![\w.])%s\b" % re.escape(name))
    for open_pos, close_pos in sf.brace_match.items():
        if not (def_pos < open_pos < read_pos < close_pos
                <= fn.body_span[1]):
            continue
        construct, header = block_header(sf, open_pos)
        if construct in ("if", "switch") and not name_re.search(header):
            return True
        if construct == "else":
            return True
    return False


def run_status_discard(program, report_paths):
    violations = []
    for fn in sorted(program.functions,
                     key=lambda f: (f.path, f.body_span[0])):
        if report_paths is not None and os.path.abspath(fn.path) \
                not in report_paths:
            continue
        sf = fn.sf
        body = sf.code[fn.body_span[0]:fn.body_span[1]]
        base = fn.body_span[0]
        defs = []  # (name, name_pos, def_stmt_end, init_text) rel offsets
        for m in STATUS_DEF_RE.finditer(body):
            semi = body.find(";", m.end())
            if semi < 0:
                continue
            defs.append((m.group(1), m.start(1), semi,
                         body[m.end():semi]))
        for m in RESULT_DEF_RE.finditer(body):
            close = matched_angle_span(body, m.end() - 1)
            if close < 0:
                continue
            nm = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*=(?!=)",
                          body[close + 1:close + 120])
            if not nm:
                continue
            name_pos = close + 1 + nm.start(1)
            eq_end = close + 1 + nm.end()
            semi = body.find(";", eq_end)
            if semi < 0:
                continue
            defs.append((nm.group(1), name_pos, semi, body[eq_end:semi]))
        if not defs:
            continue
        tracked = {d[0] for d in defs}
        tokens = {}   # name -> sorted token positions (rel)
        writes = {}   # name -> set of write token positions (rel)
        for name in tracked:
            token_re = re.compile(r"(?<![\w.>])%s\b" % re.escape(name))
            tokens[name] = [t.start() for t in token_re.finditer(body)]
            wset = {d[1] for d in defs if d[0] == name}
            for t in token_re.finditer(body):
                if re.match(r"%s\s*=(?!=)" % re.escape(name),
                            body[t.start():t.start() + len(name) + 40]):
                    wset.add(t.start())
            writes[name] = wset
        for name, name_pos, stmt_end, init in sorted(defs,
                                                     key=lambda d: d[1]):
            if "(" not in init:
                continue  # copy/ref of another local, not a call result
            if OK_INIT_RE.match(init):
                continue  # neutral initializer for an accumulator
            later_writes = sorted(w for w in writes[name] if w > name_pos)
            if later_writes:
                next_semi = body.find(";", later_writes[0])
                segment_end = next_semi if next_semi >= 0 else len(body)
                overwritten = True
            else:
                segment_end = len(body)
                overwritten = False
            reads = [t for t in tokens[name]
                     if stmt_end < t <= segment_end
                     and t not in writes[name]]
            line = sf.line_of(base + name_pos)
            if not reads:
                if sf.waived(line, "status-discard"):
                    continue
                violations.append(Violation(
                    fn.path, line, "status-discard",
                    "`%s` in %s stores a Status/Result produced by a call "
                    "but is never inspected before %s; check .ok(), "
                    "propagate it, or waive with `feisu-analyze: "
                    "allow(status-discard): <reason>`"
                    % (name, fn.qname,
                       "being overwritten" if overwritten
                       else "the function returns")))
                continue
            if all(read_is_conditional(sf, fn, name, base + name_pos,
                                       base + r)
                   for r in reads):
                if sf.waived(line, "status-discard"):
                    continue
                violations.append(Violation(
                    fn.path, line, "status-discard",
                    "`%s` in %s is only inspected inside a branch whose "
                    "condition does not test it (first read at line %d); "
                    "the fall-through path drops the error"
                    % (name, fn.qname, sf.line_of(base + reads[0]))))
    return violations


# ---------------------------------------------------------------------------
# Pass 6: hot-loop allocation
# ---------------------------------------------------------------------------

def hot_loop_spans(fn):
    """(body_start, body_end, header_line) for every per-row/per-batch
    loop in fn: a for/while whose header mentions rows or batches."""
    sf = fn.sf
    spans = []
    for m in LOOP_RE.finditer(sf.code, fn.body_span[0], fn.body_span[1]):
        open_paren = sf.code.find("(", m.start())
        close_paren = param_list_end(sf.code, open_paren)
        if close_paren < 0 or close_paren > fn.body_span[1]:
            continue
        header = sf.code[open_paren + 1:close_paren]
        if not HOT_LOOP_HINT_RE.search(header):
            continue
        span = loop_body_span(sf, m.start())
        if span is not None:
            spans.append((span[0], span[1], sf.line_of(m.start())))
    return spans


def run_hot_alloc(program, hot_prefixes, report_paths):
    """Allocation effects inside per-row/per-batch loops in the hot
    directories. Amortized growth of containers declared *outside* the
    loop is the hoisted shape and intentionally not flagged."""
    hot_prefixes = [os.path.abspath(p) + os.sep for p in hot_prefixes]
    violations = []
    seen = set()
    for fn in sorted(program.functions,
                     key=lambda f: (f.path, f.body_span[0])):
        abspath = os.path.abspath(fn.path)
        if not any(abspath.startswith(p) for p in hot_prefixes):
            continue
        if report_paths is not None and abspath not in report_paths:
            continue
        loops = hot_loop_spans(fn)
        if not loops:
            continue
        sf = fn.sf

        def loop_at(pos):
            for s, e, hline in loops:
                if s <= pos < e:
                    return hline
            return None

        for kind, pos, line, detail in fn.alloc_sites:
            hline = loop_at(pos)
            if hline is None:
                continue
            key = (fn.path, line, kind)
            if key in seen:
                continue
            if sf.waived(line, "hot-alloc"):
                continue
            seen.add(key)
            violations.append(Violation(
                fn.path, line, "hot-alloc",
                "allocation (%s) inside the per-row/batch loop at line %d "
                "in %s; hoist it out of the loop or waive with "
                "`feisu-analyze: allow(hot-alloc): <reason>`"
                % (detail, hline, fn.qname)))
        for s, e, hline in loops:
            for m in CONTAINER_LOCAL_RE.finditer(sf.code, s, e):
                line = sf.line_of(m.start())
                key = (fn.path, line, "container-local")
                if key in seen:
                    continue
                if sf.waived(line, "hot-alloc"):
                    continue
                seen.add(key)
                violations.append(Violation(
                    fn.path, line, "hot-alloc",
                    "fresh std::%s local inside the per-row/batch loop at "
                    "line %d in %s allocates every iteration; declare it "
                    "before the loop and clear() per iteration, or waive "
                    "with `feisu-analyze: allow(hot-alloc): <reason>`"
                    % (m.group(1), hline, fn.qname)))
        for targets, pos, name in sorted(fn.effect_calls,
                                         key=lambda c: c[1]):
            hline = loop_at(pos)
            if hline is None:
                continue
            allocs = [c for c in sorted(targets, key=lambda c: c.qname)
                      if c is not fn and id(c) in program.alloc_info]
            if not allocs:
                continue
            line = sf.line_of(pos)
            key = (fn.path, line, "call")
            if key in seen:
                continue
            if sf.waived(line, "hot-alloc"):
                continue
            seen.add(key)
            violations.append(Violation(
                fn.path, line, "hot-alloc",
                "call to may-allocate `%s` inside the per-row/batch loop "
                "at line %d; chain: %s (%s:%d) -> %s; hoist the "
                "allocation or waive with `feisu-analyze: "
                "allow(hot-alloc): <reason>`"
                % (name, hline, fn.qname,
                   os.path.relpath(fn.path, REPO_ROOT), line,
                   program.alloc_chain(allocs[0]))))
    return violations


# ---------------------------------------------------------------------------
# Machine-readable output: JSON report, SARIF 2.1.0, effect summaries
# ---------------------------------------------------------------------------

def tree_git_sha(root):
    """HEAD's SHA with a -dirty suffix when the tree has local changes;
    'unknown' outside a git checkout. Mirrors run_bench.py's context
    stamp so --static-json can cross-check BENCH artifacts."""
    try:
        rev = subprocess.run(["git", "rev-parse", "HEAD"], cwd=root,
                             capture_output=True, text=True, check=False)
        if rev.returncode != 0:
            return "unknown"
        sha = rev.stdout.strip()
        status = subprocess.run(["git", "status", "--porcelain"], cwd=root,
                                capture_output=True, text=True, check=False)
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except OSError:
        return "unknown"


def violations_as_dicts(violations, root):
    out = []
    for v in violations:
        rel = os.path.relpath(v.path, root) if v.path else "<global>"
        out.append({"file": rel.replace(os.sep, "/"), "line": v.line,
                    "pass": v.pass_name, "message": v.message})
    return out


def write_json_report(violations, passes, root, out_path):
    report = {
        "tool": "feisu-analyze",
        "schema_version": 1,
        "passes": list(passes),
        "context": {"git_sha": tree_git_sha(root)},
        "violations": violations_as_dicts(violations, root),
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


SARIF_RULE_HELP = {
    "layering": "Include edge violates the declared layer DAG.",
    "lock-order": "Lock acquisition-order cycle (potential deadlock).",
    "determinism": "Unordered-container iteration order leaks into "
                   "observable state.",
    "blocking-under-lock": "A may-block effect (CondVar wait, pool "
                           "dispatch, future get, storage read) is "
                           "reachable while a Mutex is held.",
    "status-discard": "A Status/Result local is assigned from a call "
                      "and never inspected (or only on a conditional "
                      "path).",
    "hot-alloc": "Allocation effect inside a per-row/per-batch loop in "
                 "the hot execution directories.",
    "stale-waiver": "A waiver comment no longer suppresses any finding.",
}


def write_sarif_report(violations, root, out_path):
    rule_ids = sorted(set(list(SARIF_RULE_HELP) +
                          [v.pass_name for v in violations]))
    rules = [{"id": rid,
              "shortDescription": {
                  "text": SARIF_RULE_HELP.get(rid, rid)}}
             for rid in rule_ids]
    results = []
    for v in violations:
        rel = os.path.relpath(v.path, root) if v.path else "<global>"
        results.append({
            "ruleId": v.pass_name,
            "level": "error",
            "message": {"text": v.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": rel.replace(os.sep, "/")},
                    "region": {"startLine": max(1, v.line)},
                },
            }],
        })
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "feisu-analyze",
                "informationUri":
                    "docs/STATIC_ANALYSIS.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump(sarif, f, indent=2, sort_keys=True)
        f.write("\n")


def write_effects_json(program, root, out_path):
    """Per-function effect summaries (the engine's raw output)."""
    entries = []
    for fn in sorted(program.functions,
                     key=lambda f: (f.path, f.body_span[0])):
        info = program.block_info.get(id(fn))
        ainfo = program.alloc_info.get(id(fn))
        entries.append({
            "function": fn.qname,
            "file": os.path.relpath(fn.path, root).replace(os.sep, "/"),
            "line": fn.sf.line_of(fn.sig_span[0]),
            "requires": sorted(fn.requires),
            "acquires": sorted(fn.acquires),
            "may_block": info is not None,
            "block_witness": program.block_chain(fn) if info else None,
            "may_alloc": ainfo is not None,
            "alloc_witness": program.alloc_chain(fn) if ainfo else None,
        })
    with open(out_path, "w", encoding="utf-8") as f:
        json.dump({"tool": "feisu-analyze", "schema_version": 1,
                   "context": {"git_sha": tree_git_sha(root)},
                   "functions": entries}, f, indent=2, sort_keys=True)
        f.write("\n")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

PROGRAM_PASSES = ("lock-order", "blocking-under-lock", "status-discard",
                  "hot-alloc")


def run_passes(root, src_dir, layers_path, passes, dot_dir=None,
               changed_only=False, stale_waivers=True, hot_dirs=None,
               json_out=None, sarif_out=None, effects_out=None):
    USED_WAIVERS.clear()
    files = collect_source_files(src_dir)
    report_paths = None
    if changed_only:
        changed = git_changed_files(root)
        if changed is None:
            print("feisu-analyze: --changed-only needs a git checkout; "
                  "scanning everything", file=sys.stderr)
        else:
            report_paths = changed
    violations = []
    for path in files:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().split("\n")
        violations.extend(collect_reasonless_waivers(path, raw_lines))

    program = None
    if any(p in passes for p in PROGRAM_PASSES):
        program = Program(files)
    if "layering" in passes:
        layering = run_layering(files, src_dir, layers_path, report_paths)
        violations.extend(layering.violations)
        if dot_dir:
            write_include_dot(layering,
                              os.path.join(dot_dir, "include_graph.dot"))
    if "lock-order" in passes:
        lock = run_lock_order(program)
        violations.extend(lock.violations)
        if dot_dir:
            write_lock_dot(lock, os.path.join(dot_dir, "lock_order.dot"))
    if "determinism" in passes:
        violations.extend(run_determinism(files, UnorderedIndex(files),
                                          report_paths))
    if "blocking-under-lock" in passes:
        violations.extend(run_blocking_under_lock(program, report_paths))
    if "status-discard" in passes:
        violations.extend(run_status_discard(program, report_paths))
    if "hot-alloc" in passes:
        prefixes = hot_dirs if hot_dirs is not None else [
            os.path.join(src_dir, "exec"),
            os.path.join(src_dir, "columnar")]
        violations.extend(run_hot_alloc(program, prefixes, report_paths))
    # Stale waivers last: every executed pass has recorded which waiver
    # comments actually suppressed a finding.
    if stale_waivers:
        violations.extend(
            collect_stale_waivers(files, set(passes), report_paths))
    if json_out:
        write_json_report(violations, passes, root, json_out)
    if sarif_out:
        write_sarif_report(violations, root, sarif_out)
    if effects_out and program is not None:
        write_effects_json(program, root, effects_out)
    return violations


# ---------------------------------------------------------------------------
# Self-test over seeded fixtures
# ---------------------------------------------------------------------------

def fixture_passes(root, passes, layers=None):
    src = os.path.join(root, "src") if os.path.isdir(
        os.path.join(root, "src")) else root
    layers_path = layers or os.path.join(root, "feisu_layers.toml")
    return run_passes(root, src, layers_path, passes)


def run_self_test():
    failures = []

    def expect(name, violations, must_hit, clean=False):
        hit = {v.pass_name for v in violations}
        if clean:
            if violations:
                failures.append("fixture %s expected clean but tripped: %s"
                                % (name, sorted(hit)))
        elif must_hit not in hit:
            failures.append("fixture %s did not trip pass %s (hit: %s)"
                            % (name, must_hit, sorted(hit) or "none"))

    # Directory fixtures (layering needs a tree + its own layer file).
    d = os.path.join(FIXTURE_DIR, "layer_violation")
    expect("layer_violation", fixture_passes(d, ("layering",)), "layering")
    d = os.path.join(FIXTURE_DIR, "include_cycle")
    expect("include_cycle", fixture_passes(d, ("layering",)), "layering")
    d = os.path.join(FIXTURE_DIR, "layer_clean")
    expect("layer_clean", fixture_passes(d, ("layering",)), None, clean=True)

    # File fixtures: the non-layering passes run over single dirs. Each
    # invocation clears USED_WAIVERS and finishes with a stale-waiver
    # sweep, so waived fixtures also prove their waivers are live.
    def file_fixture(subdir, passes):
        d = os.path.join(FIXTURE_DIR, subdir)
        files = collect_source_files(d)
        USED_WAIVERS.clear()
        violations = []
        for path in files:
            with open(path, "r", encoding="utf-8",
                      errors="replace") as f:
                violations.extend(
                    collect_reasonless_waivers(path, f.read().split("\n")))
        program = None
        if any(p in passes for p in PROGRAM_PASSES):
            program = Program(files)
        if "lock-order" in passes:
            violations.extend(run_lock_order(program).violations)
        if "determinism" in passes:
            violations.extend(
                run_determinism(files, UnorderedIndex(files), None))
        if "blocking-under-lock" in passes:
            violations.extend(run_blocking_under_lock(program, None))
        if "status-discard" in passes:
            violations.extend(run_status_discard(program, None))
        if "hot-alloc" in passes:
            violations.extend(run_hot_alloc(program, [d], None))
        violations.extend(collect_stale_waivers(files, set(passes), None))
        return violations

    expect("lock_cycle_nested",
           file_fixture("lock_cycle_nested", ("lock-order",)), "lock-order")
    expect("lock_cycle_interproc",
           file_fixture("lock_cycle_interproc", ("lock-order",)),
           "lock-order")
    expect("lock_cycle_admission",
           file_fixture("lock_cycle_admission", ("lock-order",)),
           "lock-order")
    expect("unordered_iter",
           file_fixture("unordered_iter", ("determinism",)), "determinism")
    expect("unordered_fold",
           file_fixture("unordered_fold", ("determinism",)), None,
           clean=True)
    expect("waived_clean",
           file_fixture("waived_clean", ("lock-order", "determinism")),
           None, clean=True)

    # Gate 6 fixtures: blocking-under-lock.
    expect("blocking_under_lock",
           file_fixture("blocking_under_lock", ("blocking-under-lock",)),
           "blocking-under-lock")
    expect("blocking_two_hop",
           file_fixture("blocking_two_hop", ("blocking-under-lock",)),
           "blocking-under-lock")
    expect("blocking_handoff_clean",
           file_fixture("blocking_handoff_clean",
                        ("blocking-under-lock",)), None, clean=True)
    expect("blocking_waived",
           file_fixture("blocking_waived", ("blocking-under-lock",)),
           None, clean=True)

    # Gate 6 fixtures: status-discard.
    expect("status_discard",
           file_fixture("status_discard", ("status-discard",)),
           "status-discard")
    expect("status_one_path",
           file_fixture("status_one_path", ("status-discard",)),
           "status-discard")
    expect("status_clean",
           file_fixture("status_clean", ("status-discard",)), None,
           clean=True)

    # Gate 6 fixtures: hot-alloc.
    expect("hot_alloc_loop",
           file_fixture("hot_alloc_loop", ("hot-alloc",)), "hot-alloc")
    expect("hot_alloc_hoisted",
           file_fixture("hot_alloc_hoisted", ("hot-alloc",)), None,
           clean=True)
    expect("hot_alloc_waived",
           file_fixture("hot_alloc_waived", ("hot-alloc",)), None,
           clean=True)

    # Stale-waiver pair: a waiver suppressing nothing trips; the used
    # waivers in waived_clean above already prove the other direction.
    expect("stale_waiver",
           file_fixture("stale_waiver",
                        ("determinism", "blocking-under-lock")),
           "stale-waiver")

    # --changed-only: in a synthetic git repo, a defect in a committed
    # (unchanged) file is not reported while the same defect in a new
    # uncommitted file is.
    changed_result = run_changed_only_fixture()
    if changed_result is not None:
        hit_files = {os.path.basename(v.path)
                     for v in changed_result if v.path}
        if "changed_new.cc" not in hit_files:
            failures.append("changed-only fixture did not report the "
                            "uncommitted file (hit: %s)"
                            % sorted(hit_files))
        if "committed.cc" in hit_files:
            failures.append("changed-only fixture reported an unchanged "
                            "committed file")

    if failures:
        for f in failures:
            print("feisu-analyze self-test FAILED: " + f, file=sys.stderr)
        return 1
    print("feisu-analyze self-test: 13 tripping fixtures, 8 clean "
          "fixtures, changed-only scenario, all behaved")
    return 0


def run_changed_only_fixture():
    """Copies the changed_only fixture into a temp git repo, commits it,
    adds an uncommitted file with the same status-discard defect, and
    runs with changed_only=True. Returns the violations, or None when
    git is unavailable (scenario skipped)."""
    import shutil
    import tempfile
    src_fixture = os.path.join(FIXTURE_DIR, "changed_only")
    with tempfile.TemporaryDirectory() as tmp:
        repo = os.path.join(tmp, "repo")
        shutil.copytree(src_fixture, repo)

        def git(*args):
            try:
                return subprocess.run(
                    ["git", "-c", "user.email=t@t", "-c", "user.name=t",
                     *args],
                    cwd=repo, capture_output=True, text=True, check=False)
            except OSError:
                return None
        init = git("init", "-q")
        if init is None or init.returncode != 0:
            print("feisu-analyze self-test: git unavailable, skipping "
                  "changed-only scenario", file=sys.stderr)
            return None
        git("add", "-A")
        commit = git("commit", "-qm", "seed")
        if commit is None or commit.returncode != 0:
            print("feisu-analyze self-test: git commit failed, skipping "
                  "changed-only scenario", file=sys.stderr)
            return None
        with open(os.path.join(repo, "src", "committed.cc"),
                  encoding="utf-8") as f:
            text = f.read()
        with open(os.path.join(repo, "src", "changed_new.cc"), "w",
                  encoding="utf-8") as f:
            f.write(text.replace("Committed", "ChangedNew"))
        return run_passes(repo, os.path.join(repo, "src"),
                          os.path.join(repo, "feisu_layers.toml"),
                          ("status-discard",), changed_only=True)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=REPO_ROOT,
                        help="repository root (default: repo)")
    parser.add_argument("--src", default=None,
                        help="source tree to analyze (default: <root>/src)")
    parser.add_argument("--layers", default=None,
                        help="layer declaration file "
                             "(default: <root>/tools/feisu_layers.toml)")
    parser.add_argument("--passes", default=",".join(PASSES),
                        help="comma-separated subset of: %s"
                             % ", ".join(PASSES))
    parser.add_argument("--dot-dir", default=None,
                        help="write include_graph.dot and lock_order.dot "
                             "into this directory")
    parser.add_argument("--changed-only", action="store_true",
                        help="report file-scoped findings only for files "
                             "changed vs. git HEAD (graph cycles are "
                             "always whole-program)")
    parser.add_argument("--stale-waivers", dest="stale_waivers",
                        action="store_true", default=True,
                        help="report waivers that no longer suppress a "
                             "finding (default: on)")
    parser.add_argument("--no-stale-waivers", dest="stale_waivers",
                        action="store_false",
                        help="disable the stale-waiver check")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a machine-readable report (includes "
                             "the analyzed tree's git SHA)")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="write a SARIF 2.1.0 report")
    parser.add_argument("--effects-json", default=None, metavar="PATH",
                        help="dump per-function effect summaries "
                             "(requires/acquires/may-block/may-alloc)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the seeded fixtures under "
                             "tools/analyze_fixtures/")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(run_self_test())

    passes = tuple(p.strip() for p in args.passes.split(",") if p.strip())
    for p in passes:
        if p not in PASSES:
            print("feisu-analyze: unknown pass: %s" % p, file=sys.stderr)
            sys.exit(2)
    root = os.path.abspath(args.root)
    src_dir = args.src or os.path.join(root, "src")
    layers = args.layers or os.path.join(root, "tools", "feisu_layers.toml")
    if not os.path.isdir(src_dir):
        print("feisu-analyze: no such source dir: %s" % src_dir,
              file=sys.stderr)
        sys.exit(2)
    if args.dot_dir:
        os.makedirs(args.dot_dir, exist_ok=True)

    violations = run_passes(root, src_dir, layers, passes,
                            dot_dir=args.dot_dir,
                            changed_only=args.changed_only,
                            stale_waivers=args.stale_waivers,
                            json_out=args.json,
                            sarif_out=args.sarif,
                            effects_out=args.effects_json)
    for v in violations:
        print(v.render(root))
    if violations:
        print("feisu-analyze: %d violation(s)" % len(violations),
              file=sys.stderr)
        sys.exit(1)
    print("feisu-analyze: clean (%s)" % ", ".join(passes))
    sys.exit(0)


if __name__ == "__main__":
    main()
