#!/usr/bin/env bash
# Run every static gate locally, in the same order as the CI `static` job:
#
#   1. feisu-lint   self-test, then src/          (blocking)
#   2. feisu-analyze self-test, then src/         (blocking)
#   3. clang-tidy   over src/ via compile_commands (blocking; skipped with
#                   a warning when clang-tidy is not installed)
#   4. clang-format --dry-run                     (advisory, like CI)
#
# Usage: tools/check.sh [--changed-only]
#   --changed-only  restrict feisu-lint and feisu-analyze's file-scoped
#                   findings to files changed vs. git HEAD (fast pre-commit
#                   mode; whole-program cycle checks still see everything)
#
# Exit status: 0 when every available blocking gate passed, 1 otherwise.

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

CHANGED_ONLY=""
for arg in "$@"; do
  case "$arg" in
    --changed-only) CHANGED_ONLY="--changed-only" ;;
    *)
      echo "usage: tools/check.sh [--changed-only]" >&2
      exit 2
      ;;
  esac
done

FAILED=0

run_gate() {
  local label="$1"
  shift
  echo "==> $label"
  if ! "$@"; then
    echo "FAIL: $label" >&2
    FAILED=1
  fi
}

run_gate "feisu-lint self-test" python3 tools/feisu_lint.py --self-test
run_gate "feisu-lint src/" python3 tools/feisu_lint.py $CHANGED_ONLY
run_gate "feisu-analyze self-test" python3 tools/feisu_analyze.py --self-test
run_gate "feisu-analyze src/" python3 tools/feisu_analyze.py $CHANGED_ONLY

if command -v run-clang-tidy >/dev/null 2>&1; then
  TIDY_BUILD=""
  for dir in build-tidy build; do
    if [ -f "$dir/compile_commands.json" ]; then
      TIDY_BUILD="$dir"
      break
    fi
  done
  if [ -n "$TIDY_BUILD" ]; then
    run_gate "clang-tidy src/" \
      run-clang-tidy -p "$TIDY_BUILD" -quiet "$REPO_ROOT/src/.*"
  else
    echo "warning: no compile_commands.json (configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON); skipping clang-tidy" >&2
  fi
else
  echo "warning: run-clang-tidy not installed; skipping clang-tidy" >&2
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "==> clang-format (advisory)"
  if ! git ls-files '*.h' '*.cc' '*.cpp' \
      | xargs clang-format --dry-run -Werror 2>/dev/null; then
    echo "warning: clang-format found differences (advisory, not a gate)" >&2
  fi
else
  echo "warning: clang-format not installed; skipping format check" >&2
fi

if [ "$FAILED" -ne 0 ]; then
  echo "tools/check.sh: one or more static gates FAILED" >&2
  exit 1
fi
echo "tools/check.sh: all available static gates passed"
