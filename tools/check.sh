#!/usr/bin/env bash
# Run every static gate locally, in the same order as the CI `static` job:
#
#   1. feisu-lint   self-test, then src/          (blocking)
#   2. feisu-analyze self-test, then src/         (blocking; emits the
#                   JSON + SARIF artifacts CI uploads)
#   3. clang-tidy   over src/ via compile_commands (blocking; skipped with
#                   a warning when clang-tidy is not installed)
#   4. clang-format --dry-run                     (advisory, like CI)
#
# Usage: tools/check.sh [--changed-only] [--artifact-dir DIR]
#   --changed-only  restrict feisu-lint and feisu-analyze's file-scoped
#                   findings to files changed vs. git HEAD (fast pre-commit
#                   mode; whole-program cycle checks still see everything)
#   --artifact-dir  where feisu_analyze.json / feisu_analyze.sarif are
#                   written (default: build/static)
#
# The whole script asserts a wall-clock budget: the static gates must
# finish in under 120 s, so they stay cheap enough to run on every commit.
#
# Exit status: 0 when every available blocking gate passed, 1 otherwise.

set -u

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BUDGET_SECONDS=120
SECONDS=0

CHANGED_ONLY=""
ARTIFACT_DIR="build/static"
while [ "$#" -gt 0 ]; do
  case "$1" in
    --changed-only) CHANGED_ONLY="--changed-only" ;;
    --artifact-dir)
      shift
      ARTIFACT_DIR="${1:?--artifact-dir needs a path}"
      ;;
    *)
      echo "usage: tools/check.sh [--changed-only] [--artifact-dir DIR]" >&2
      exit 2
      ;;
  esac
  shift
done
mkdir -p "$ARTIFACT_DIR"

FAILED=0

run_gate() {
  local label="$1"
  shift
  echo "==> $label"
  if ! "$@"; then
    echo "FAIL: $label" >&2
    FAILED=1
  fi
}

run_gate "feisu-lint self-test" python3 tools/feisu_lint.py --self-test
run_gate "feisu-lint src/" python3 tools/feisu_lint.py $CHANGED_ONLY
run_gate "feisu-analyze self-test" python3 tools/feisu_analyze.py --self-test
run_gate "feisu-analyze src/" python3 tools/feisu_analyze.py $CHANGED_ONLY \
  --json "$ARTIFACT_DIR/feisu_analyze.json" \
  --sarif "$ARTIFACT_DIR/feisu_analyze.sarif" \
  --effects-json "$ARTIFACT_DIR/feisu_effects.json"

if command -v run-clang-tidy >/dev/null 2>&1; then
  TIDY_BUILD=""
  for dir in build-tidy build; do
    if [ -f "$dir/compile_commands.json" ]; then
      TIDY_BUILD="$dir"
      break
    fi
  done
  if [ -n "$TIDY_BUILD" ]; then
    run_gate "clang-tidy src/" \
      run-clang-tidy -p "$TIDY_BUILD" -quiet "$REPO_ROOT/src/.*"
  else
    echo "warning: no compile_commands.json (configure with" \
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON); skipping clang-tidy" >&2
  fi
else
  echo "warning: run-clang-tidy not installed; skipping clang-tidy" >&2
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "==> clang-format (advisory)"
  if ! git ls-files '*.h' '*.cc' '*.cpp' \
      | xargs clang-format --dry-run -Werror 2>/dev/null; then
    echo "warning: clang-format found differences (advisory, not a gate)" >&2
  fi
else
  echo "warning: clang-format not installed; skipping format check" >&2
fi

ELAPSED="$SECONDS"
if [ "$ELAPSED" -ge "$BUDGET_SECONDS" ]; then
  echo "tools/check.sh: static gates took ${ELAPSED}s, over the" \
       "${BUDGET_SECONDS}s budget — profile the analyzer before it stops" \
       "being an every-commit tool" >&2
  FAILED=1
fi

if [ "$FAILED" -ne 0 ]; then
  echo "tools/check.sh: one or more static gates FAILED" >&2
  exit 1
fi
echo "tools/check.sh: all available static gates passed in ${ELAPSED}s" \
     "(budget ${BUDGET_SECONDS}s)"
