#!/usr/bin/env python3
"""Runs the performance-tracking benches and emits BENCH_micro_ops.json.

Invokes `bench_micro_ops` (google-benchmark, JSON format) and
`bench_fig9a_smartindex` (paper-figure reproduction, text output) from an
existing build tree, then writes one JSON artifact combining:

  * every micro-op's wall time (ns) and reported counters — including the
    `values_decoded_per_iter` / `values_skipped_per_iter` counters that
    quantify the late-materialization win, and
  * the fig9a stdout summary (speedup table + REPRODUCED verdict).

CI uploads the artifact on every run so perf regressions are diffable
across commits. Stdlib only; no third-party dependencies.

Usage:
  python3 tools/run_bench.py [--build-dir build] [--out BENCH_micro_ops.json]
                             [--filter REGEX] [--skip-fig9a]
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run_micro_ops(build_dir: pathlib.Path, bench_filter: str) -> dict:
    binary = build_dir / "bench" / "bench_micro_ops"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target bench_micro_ops)")
    cmd = [str(binary), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    report = json.loads(proc.stdout)
    benchmarks = []
    for entry in report.get("benchmarks", []):
        row = {
            "name": entry.get("name"),
            "real_time_ns": entry.get("real_time"),
            "cpu_time_ns": entry.get("cpu_time"),
            "iterations": entry.get("iterations"),
        }
        # google-benchmark inlines user counters as extra numeric fields
        # (values_decoded_per_iter, items_per_second, ...); keep them all.
        for key, value in entry.items():
            if key in row or key in ("run_name", "run_type", "repetitions",
                                     "repetition_index", "threads",
                                     "time_unit", "family_index",
                                     "per_family_instance_index"):
                continue
            if isinstance(value, (int, float)):
                row[key] = value
        benchmarks.append(row)
    return {"context": report.get("context", {}), "benchmarks": benchmarks}


def agg_speedups(micro_ops: dict) -> dict:
    """Vectorized-vs-map-baseline aggregation speedups, per cardinality.

    Pairs BM_AggConsume/<card> with BM_AggConsumeMapBaseline/<card>; the
    high-cardinality entry is the PR 4 acceptance number (>= 2x)."""
    times = {row["name"]: row.get("real_time_ns")
             for row in micro_ops.get("benchmarks", [])}
    speedups = {}
    for name, t in times.items():
        prefix = "BM_AggConsume/"
        if not name.startswith(prefix) or not t:
            continue
        card = name[len(prefix):]
        baseline = times.get(f"BM_AggConsumeMapBaseline/{card}")
        if baseline:
            speedups[card] = {
                "map_baseline_ns": baseline,
                "vectorized_ns": t,
                "speedup": baseline / t,
            }
    return speedups


def run_fig9a(build_dir: pathlib.Path) -> dict:
    binary = build_dir / "bench" / "bench_fig9a_smartindex"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target "
                 f"bench_fig9a_smartindex)")
    proc = subprocess.run([str(binary)], capture_output=True, text=True,
                          check=True)
    reproduced = "-> REPRODUCED" in proc.stdout
    return {"stdout": proc.stdout, "reproduced": reproduced}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree with the bench binaries")
    parser.add_argument("--out", default="BENCH_micro_ops.json",
                        help="output artifact path")
    parser.add_argument("--filter", default="",
                        help="optional --benchmark_filter regex")
    parser.add_argument("--skip-fig9a", action="store_true",
                        help="skip the ~20s fig9a reproduction run")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    artifact = {"micro_ops": run_micro_ops(build_dir, args.filter)}
    speedups = agg_speedups(artifact["micro_ops"])
    if speedups:
        artifact["agg_consume_speedup"] = speedups
    if not args.skip_fig9a:
        artifact["fig9a_smartindex"] = run_fig9a(build_dir)

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(artifact, indent=2) + "\n")

    # Human-readable pulse of the late-materialization counters.
    for row in artifact["micro_ops"]["benchmarks"]:
        if "values_decoded_per_iter" in row:
            print(f"{row['name']}: {row['real_time_ns']:.0f} ns, "
                  f"{row['values_decoded_per_iter']:.0f} values decoded "
                  f"per iteration")
    for card, row in sorted(speedups.items(), key=lambda kv: int(kv[0])):
        print(f"agg Consume x{card} groups: {row['vectorized_ns']:.0f} ns "
              f"vectorized vs {row['map_baseline_ns']:.0f} ns map baseline "
              f"-> {row['speedup']:.2f}x")
    if not args.skip_fig9a:
        verdict = ("REPRODUCED"
                   if artifact["fig9a_smartindex"]["reproduced"]
                   else "NOT reproduced")
        print(f"fig9a SmartIndex speedup: {verdict}")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
