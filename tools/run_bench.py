#!/usr/bin/env python3
"""Runs the performance-tracking benches and emits BENCH_micro_ops.json
plus BENCH_qps.json (multi-query sustained throughput).

Invokes `bench_micro_ops` (google-benchmark, JSON format) and
`bench_fig9a_smartindex` (paper-figure reproduction, text output) from an
existing build tree, then writes one JSON artifact combining:

  * every micro-op's wall time (ns) and reported counters — including the
    `values_decoded_per_iter` / `values_skipped_per_iter` counters that
    quantify the late-materialization win, and
  * the fig9a stdout summary (speedup table + REPRODUCED verdict).

CI uploads the artifact on every run so perf regressions are diffable
across commits. Stdlib only; no third-party dependencies.

The artifact's `context` block carries the git SHA (plus a -dirty suffix
for uncommitted trees) and the CMake build type, so recorded numbers are
attributable to an exact source state and optimization level.

With --compare BASELINE.json the run additionally diffs the
`agg_consume_speedup`, `compressed_eval_speedup` and `qps_speedup`
blocks against a previously recorded artifact and exits 1 when any
speedup regressed by more than 25% — CI runs this as a blocking step.
Adding --static-json ANALYZE.json cross-checks that the git SHA in a
feisu_analyze --json artifact matches this bench run's tree, so a
recorded baseline can never pair clean-static claims with numbers from a
different checkout.

Usage:
  python3 tools/run_bench.py [--build-dir build] [--out BENCH_micro_ops.json]
                             [--qps-out BENCH_qps.json] [--filter REGEX]
                             [--skip-fig9a] [--skip-qps]
                             [--compare BASELINE.json]
                             [--static-json ANALYZE.json]
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys


def run_micro_ops(build_dir: pathlib.Path, bench_filter: str) -> dict:
    binary = build_dir / "bench" / "bench_micro_ops"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target bench_micro_ops)")
    cmd = [str(binary), "--benchmark_format=json"]
    if bench_filter:
        cmd.append(f"--benchmark_filter={bench_filter}")
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    report = json.loads(proc.stdout)
    benchmarks = []
    for entry in report.get("benchmarks", []):
        row = {
            "name": entry.get("name"),
            "real_time_ns": entry.get("real_time"),
            "cpu_time_ns": entry.get("cpu_time"),
            "iterations": entry.get("iterations"),
        }
        # google-benchmark inlines user counters as extra numeric fields
        # (values_decoded_per_iter, items_per_second, ...); keep them all.
        for key, value in entry.items():
            if key in row or key in ("run_name", "run_type", "repetitions",
                                     "repetition_index", "threads",
                                     "time_unit", "family_index",
                                     "per_family_instance_index"):
                continue
            if isinstance(value, (int, float)):
                row[key] = value
        benchmarks.append(row)
    return {"context": report.get("context", {}), "benchmarks": benchmarks}


def git_sha() -> str:
    """HEAD's SHA, with a -dirty suffix when the tree has local changes;
    "unknown" outside a git checkout."""
    try:
        rev = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=False)
        if rev.returncode != 0:
            return "unknown"
        sha = rev.stdout.strip()
        status = subprocess.run(["git", "status", "--porcelain"],
                                capture_output=True, text=True, check=False)
        if status.returncode == 0 and status.stdout.strip():
            sha += "-dirty"
        return sha
    except OSError:
        return "unknown"


def cmake_build_type(build_dir: pathlib.Path) -> str:
    cache = build_dir / "CMakeCache.txt"
    if cache.is_file():
        m = re.search(r"^CMAKE_BUILD_TYPE:\w+=(.*)$", cache.read_text(),
                      re.MULTILINE)
        if m:
            return m.group(1).strip() or "unspecified"
    return "unknown"


def agg_speedups(micro_ops: dict) -> dict:
    """Vectorized-vs-map-baseline aggregation speedups, per cardinality.

    Pairs BM_AggConsume/<card> with BM_AggConsumeMapBaseline/<card>; the
    high-cardinality entry is the PR 4 acceptance number (>= 2x)."""
    times = {row["name"]: row.get("real_time_ns")
             for row in micro_ops.get("benchmarks", [])}
    speedups = {}
    for name, t in times.items():
        prefix = "BM_AggConsume/"
        if not name.startswith(prefix) or not t:
            continue
        card = name[len(prefix):]
        baseline = times.get(f"BM_AggConsumeMapBaseline/{card}")
        if baseline:
            speedups[card] = {
                "map_baseline_ns": baseline,
                "vectorized_ns": t,
                "speedup": baseline / t,
            }
    return speedups


# (encoded bench, decode-then-evaluate baseline, artifact label): the
# compressed-domain pairs BENCH_micro_ops.json tracks. Benches with args
# pair per arg (label gets an _x<arg> suffix).
COMPRESSED_EVAL_PAIRS = [
    ("BM_DictPredicateEncoded", "BM_DictPredicateDecode", "dict_predicate"),
    ("BM_RlePredicateEncoded", "BM_RlePredicateDecode", "rle_predicate"),
    ("BM_AggConsumeDictCodes", "BM_AggConsumeStringKeys", "dict_group_by"),
]


def compressed_eval_speedups(micro_ops: dict) -> dict:
    """Encoded-kernel vs decode-baseline speedups for the compressed-domain
    execution paths (dict/RLE predicates, group-by on dict codes)."""
    times = {row["name"]: row.get("real_time_ns")
             for row in micro_ops.get("benchmarks", [])}
    speedups = {}
    for encoded_name, baseline_name, label in COMPRESSED_EVAL_PAIRS:
        for name, t in times.items():
            if name != encoded_name and \
                    not name.startswith(encoded_name + "/"):
                continue
            if not t:
                continue
            suffix = name[len(encoded_name):]
            baseline = times.get(baseline_name + suffix)
            if not baseline:
                continue
            key = label + suffix.replace("/", "_x")
            speedups[key] = {
                "decode_ns": baseline,
                "encoded_ns": t,
                "speedup": baseline / t,
            }
    return speedups


# A speedup may drop to this fraction of its recorded baseline before
# --compare calls it a regression (>25% loss fails).
REGRESSION_TOLERANCE = 0.75


def compare_speedups(baseline: dict, current: dict) -> list:
    """Failure strings for every tracked speedup that regressed by more
    than 25% (or disappeared) relative to the baseline artifact."""
    failures = []
    for block in ("agg_consume_speedup", "compressed_eval_speedup",
                  "qps_speedup"):
        for key, row in sorted(baseline.get(block, {}).items()):
            old = row.get("speedup")
            if not old:
                continue
            new = current.get(block, {}).get(key, {}).get("speedup")
            if new is None:
                failures.append(f"{block}/{key}: missing from current run "
                                f"(baseline {old:.2f}x)")
            elif new < old * REGRESSION_TOLERANCE:
                failures.append(f"{block}/{key}: {old:.2f}x -> {new:.2f}x "
                                f"(more than 25% regression)")
    return failures


def run_qps(build_dir: pathlib.Path) -> dict:
    """Runs bench_qps (multi-query sustained-throughput sweep); its stdout
    is already a JSON artifact."""
    binary = build_dir / "bench" / "bench_qps"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target bench_qps)")
    proc = subprocess.run([str(binary)], capture_output=True, text=True,
                          check=True)
    return json.loads(proc.stdout)


def run_fig9a(build_dir: pathlib.Path) -> dict:
    binary = build_dir / "bench" / "bench_fig9a_smartindex"
    if not binary.exists():
        sys.exit(f"error: {binary} not found — build the repo first "
                 f"(cmake --build {build_dir} --target "
                 f"bench_fig9a_smartindex)")
    proc = subprocess.run([str(binary)], capture_output=True, text=True,
                          check=True)
    reproduced = "-> REPRODUCED" in proc.stdout
    return {"stdout": proc.stdout, "reproduced": reproduced}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build tree with the bench binaries")
    parser.add_argument("--out", default="BENCH_micro_ops.json",
                        help="output artifact path")
    parser.add_argument("--filter", default="",
                        help="optional --benchmark_filter regex")
    parser.add_argument("--skip-fig9a", action="store_true",
                        help="skip the ~20s fig9a reproduction run")
    parser.add_argument("--skip-qps", action="store_true",
                        help="skip the multi-query QPS sweep")
    parser.add_argument("--qps-out", default="BENCH_qps.json",
                        help="QPS artifact path")
    parser.add_argument("--compare", metavar="BASELINE_JSON",
                        help="diff the speedup blocks against a previous "
                             "artifact; exit 1 on a >25%% regression")
    parser.add_argument("--static-json", metavar="ANALYZE_JSON",
                        help="with --compare: a feisu_analyze --json "
                             "artifact; fails when its context git SHA "
                             "does not match this bench run's tree "
                             "(guards stale-artifact re-records)")
    args = parser.parse_args()

    build_dir = pathlib.Path(args.build_dir)
    artifact = {"micro_ops": run_micro_ops(build_dir, args.filter)}
    artifact["micro_ops"].setdefault("context", {})
    artifact["micro_ops"]["context"]["git_sha"] = git_sha()
    artifact["micro_ops"]["context"]["cmake_build_type"] = \
        cmake_build_type(build_dir)
    speedups = agg_speedups(artifact["micro_ops"])
    if speedups:
        artifact["agg_consume_speedup"] = speedups
    compressed = compressed_eval_speedups(artifact["micro_ops"])
    if compressed:
        artifact["compressed_eval_speedup"] = compressed
    if not args.skip_fig9a:
        artifact["fig9a_smartindex"] = run_fig9a(build_dir)
    qps = None
    if not args.skip_qps:
        qps = run_qps(build_dir)
        qps.setdefault("context", {})["git_sha"] = \
            artifact["micro_ops"]["context"]["git_sha"]
        # The speedup block rides along in the main artifact too, so one
        # --compare pass gates every tracked *_speedup metric.
        artifact["qps_speedup"] = qps.get("qps_speedup", {})
        qps_path = pathlib.Path(args.qps_out)
        qps_path.write_text(json.dumps(qps, indent=2) + "\n")

    out_path = pathlib.Path(args.out)
    out_path.write_text(json.dumps(artifact, indent=2) + "\n")

    # Human-readable pulse of the late-materialization counters.
    for row in artifact["micro_ops"]["benchmarks"]:
        if "values_decoded_per_iter" in row:
            print(f"{row['name']}: {row['real_time_ns']:.0f} ns, "
                  f"{row['values_decoded_per_iter']:.0f} values decoded "
                  f"per iteration")
    for card, row in sorted(speedups.items(), key=lambda kv: int(kv[0])):
        print(f"agg Consume x{card} groups: {row['vectorized_ns']:.0f} ns "
              f"vectorized vs {row['map_baseline_ns']:.0f} ns map baseline "
              f"-> {row['speedup']:.2f}x")
    for key, row in sorted(compressed.items()):
        print(f"compressed eval {key}: {row['encoded_ns']:.0f} ns encoded "
              f"vs {row['decode_ns']:.0f} ns decode "
              f"-> {row['speedup']:.2f}x")
    if not args.skip_fig9a:
        verdict = ("REPRODUCED"
                   if artifact["fig9a_smartindex"]["reproduced"]
                   else "NOT reproduced")
        print(f"fig9a SmartIndex speedup: {verdict}")
    if qps is not None:
        for key, row in sorted(qps.get("qps_speedup", {}).items()):
            print(f"multi-query QPS {key}: {row['serial_qps']:.1f} serial "
                  f"vs {row['concurrent_qps']:.1f} concurrent "
                  f"-> {row['speedup']:.2f}x "
                  f"({'meets' if qps.get('reproduced') else 'BELOW'} "
                  f"{qps.get('target_speedup', 3.0):.0f}x target)")
        print(f"wrote {args.qps_out}")
    print(f"wrote {out_path}")

    if args.compare:
        baseline_path = pathlib.Path(args.compare)
        if not baseline_path.is_file():
            sys.exit(f"error: --compare baseline {baseline_path} not found")
        baseline = json.loads(baseline_path.read_text())
        failures = compare_speedups(baseline, artifact)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures:
            print(f"--compare: {len(failures)} tracked speedup(s) regressed "
                  f"vs {baseline_path}", file=sys.stderr)
            return 1
        print(f"--compare: no tracked speedup regressed vs {baseline_path}")
        if args.static_json:
            static_path = pathlib.Path(args.static_json)
            if not static_path.is_file():
                sys.exit(f"error: --static-json {static_path} not found")
            static = json.loads(static_path.read_text())
            static_sha = static.get("context", {}).get("git_sha", "missing")
            bench_sha = artifact["micro_ops"]["context"]["git_sha"]
            if static_sha != bench_sha:
                print(f"--static-json: analyzed tree {static_sha} does not "
                      f"match benched tree {bench_sha}; re-run "
                      f"feisu_analyze.py --json on this checkout",
                      file=sys.stderr)
                return 1
            print(f"--static-json: analyzed and benched trees agree "
                  f"({bench_sha})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
