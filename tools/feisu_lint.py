#!/usr/bin/env python3
"""feisu-lint: project-specific static checks for the Feisu codebase.

Rules (see docs/STATIC_ANALYSIS.md for rationale):

  void-cast-call   No silencing of [[nodiscard]] results by casting a call
                   expression to void: `(void)DoThing();` hides failures.
                   Casting an already-bound *identifier* to void (to mark a
                   deliberately unused variable) is fine.
  naked-new        No raw `new` / `delete` outside arena/allocator code.
                   Ownership must flow through smart pointers/containers.
                   Justified exceptions carry an inline waiver comment:
                   `// feisu-lint: allow(naked-new): <reason>`.
  wall-clock       No wall-clock or ambient randomness (`std::time`,
                   `rand`, `system_clock`, `random_device`, ...). The
                   engine is a deterministic simulation: all time comes
                   from SimClock, all randomness from the seeded Rng.
  direct-output    No `std::cout` / `printf`-family output from library
                   code in src/. Use common/logging.h so output is
                   capturable and rate-controlled.
  include-guard    Header guards must be FEISU_<PATH>_H_ derived from the
                   path under src/ (e.g. src/index/index_cache.h =>
                   FEISU_INDEX_INDEX_CACHE_H_).
  raw-mutex        No raw std locking primitives (`std::mutex`,
                   `std::lock_guard`, `std::condition_variable`, ...)
                   outside src/common/. Use the annotated wrappers in
                   common/annotations.h so -Wthread-safety can see every
                   lock; a raw mutex is invisible to the analysis.
  no-analysis      `FEISU_NO_THREAD_SAFETY_ANALYSIS` must carry a
                   justification comment on the same line or the line
                   above. Opting out of the analysis silently is how
                   races come back.
  detached-thread  No ad-hoc thread spawning (`std::thread`,
                   `std::jthread`, `std::async`) or `.detach()` outside
                   src/common/. All host-level parallelism flows through
                   ThreadPool so lifetimes are joined and task order is
                   reasoned about in one place. Test code under tests/
                   is exempt (hammer tests spawn raw threads on purpose).
  sim-clock        No raw monotonic clocks or sleeps (`steady_clock`,
                   `high_resolution_clock`, `sleep_for`, `usleep`, ...)
                   in src/cluster/: scheduling, straggler detection and
                   deadline bookkeeping must be keyed to SimTime (SimClock
                   / TimeoutManager) so fault schedules replay
                   byte-identically. The repo-wide wall-clock rule already
                   bans calendar time; this closes the monotonic loophole
                   where it matters most.
  bare-nolint      Every clang-tidy suppression must name the check it
                   silences and say why: `// NOLINT(check-name): reason`.
                   A bare `NOLINT`, a wildcard check set, or a named check
                   with no justification turns off analysis silently and
                   keeps doing so after the original cause is gone.
  per-row-getvalue No `GetValue()` calls inside a loop in src/exec/: boxing
                   every cell through a Value variant is the per-row slow
                   path the typed batch kernels (and the compressed-domain
                   kernels) exist to avoid. Hot operators must use the
                   typed column accessors. Genuine single-row sites (e.g.
                   one-row residual evaluation, group-key serialization at
                   insert time) carry an inline waiver:
                   `// feisu-lint: allow(per-row-getvalue): <reason>`.
  stale-waiver     A `feisu-lint: allow(...)` comment that no longer
                   suppresses any finding (or names an unknown rule) is
                   itself a violation: dead waivers keep silencing the
                   rule after the original cause is gone. On by default;
                   `--no-stale-waivers` disables the sweep.

Exit status: 0 when no violations, 1 when violations were reported,
2 on usage errors. `--self-test` checks the seeded fixture files under
tools/lint_fixtures/ each trip exactly their intended rule.
`--changed-only` restricts linting to files changed vs. HEAD (staged,
unstaged, and untracked) for fast pre-commit runs.
"""

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURE_DIR = os.path.join(REPO_ROOT, "tools", "lint_fixtures")

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

WAIVER_RE = re.compile(r"feisu-lint:\s*allow\(([a-z-]+)\)")

KNOWN_RULES = frozenset((
    "void-cast-call", "naked-new", "wall-clock", "direct-output",
    "include-guard", "raw-mutex", "no-analysis", "detached-thread",
    "sim-clock", "bare-nolint", "per-row-getvalue"))

# A call expression cast to void: `(void)Foo(...)`, `(void)obj.Method(...)`,
# `(void)ns::Fn(...)`. `(void)identifier;` does not match (no call parens).
VOID_CAST_CALL_RE = re.compile(
    r"\(\s*void\s*\)\s*[A-Za-z_][A-Za-z0-9_]*"
    r"(?:(?:\.|->|::)[A-Za-z_][A-Za-z0-9_]*)*\s*\(")

NAKED_NEW_RE = re.compile(r"(?<![\w.])new\s+[A-Za-z_(]")
NAKED_DELETE_RE = re.compile(r"(?<![\w.])delete(?:\s*\[\s*\])?\s+[A-Za-z_(*]")

WALL_CLOCK_RES = [
    re.compile(r"\bstd::time\b"),
    re.compile(r"\bstd::rand\b"),
    re.compile(r"\bstd::srand\b"),
    re.compile(r"(?<![\w:.>])rand\s*\("),
    re.compile(r"(?<![\w:.>])srand\s*\("),
    re.compile(r"(?<![\w:.>])time\s*\("),
    re.compile(r"\bgettimeofday\b"),
    re.compile(r"\bclock_gettime\b"),
    re.compile(r"\blocaltime\b"),
    re.compile(r"\bstd::chrono::system_clock\b"),
    re.compile(r"\bstd::random_device\b"),
]

DIRECT_OUTPUT_RES = [
    re.compile(r"\bstd::cout\b"),
    re.compile(r"\bstd::cerr\b"),
    re.compile(r"(?<![\w:.>])f?printf\s*\("),
    re.compile(r"(?<![\w:.>])puts\s*\("),
]

GUARD_IFNDEF_RE = re.compile(r"^\s*#ifndef\s+([A-Za-z0-9_]+)")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock|condition_variable(?:_any)?)\b")

THREAD_SPAWN_RES = [
    re.compile(r"\bstd::(?:thread|jthread)\b"),
    re.compile(r"\bstd::async\b"),
    re.compile(r"\.\s*detach\s*\(\s*\)"),
]

NO_ANALYSIS_RE = re.compile(r"\bFEISU_NO_THREAD_SAFETY_ANALYSIS\b")

# clang-tidy suppression tokens. NOLINTEND is exempt (it closes a BEGIN
# whose check list and justification are validated at the BEGIN site).
NOLINT_TOKEN_RE = re.compile(r"\bNOLINT(NEXTLINE|BEGIN|END)?\b")

PER_ROW_GETVALUE_RE = re.compile(r"(?:\.|->)\s*GetValue\s*\(")
LOOP_HEADER_RE = re.compile(r"(?<![\w])(?:for|while)\s*\(")

SIM_CLOCK_RES = [
    re.compile(r"\bstd::chrono::steady_clock\b"),
    re.compile(r"\bstd::chrono::high_resolution_clock\b"),
    re.compile(r"\bstd::this_thread::sleep_(?:for|until)\b"),
    re.compile(r"(?<![\w:.>])(?:usleep|nanosleep)\s*\("),
    re.compile(r"(?<![\w:.>])sleep\s*\("),
]


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = os.path.relpath(self.path, REPO_ROOT)
        return "%s:%d: [%s] %s" % (rel, self.line, self.rule, self.message)


def strip_comments_and_strings(text):
    """Replaces comment and string-literal contents with spaces, keeping
    line structure so reported line numbers stay accurate. Waiver comments
    are honored by inspecting the raw line separately."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; keep line structure
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def expected_guard(path):
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    parts = rel.split(os.sep)
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "FEISU_" + stem.upper() + "_"


def is_arena_path(path):
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    return "arena" in rel.replace(os.sep, "/").split("/")


def is_sim_clock_scoped_path(path):
    """Paths where the sim-clock rule applies: the cluster layer (master,
    scheduler, straggler detection, timeout bookkeeping) plus its seeded
    lint fixtures."""
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    rel = rel.replace(os.sep, "/")
    return (rel.startswith("src/cluster/") or
            rel.startswith("tools/lint_fixtures/cluster/"))


def is_concurrency_exempt_path(path):
    """Paths allowed to touch raw std threading primitives: src/common/
    (the annotated wrappers and ThreadPool are implemented there) and
    tests/ (hammer tests spawn raw threads to exercise the wrappers)."""
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    rel = rel.replace(os.sep, "/")
    return rel.startswith("src/common/") or rel.startswith("tests/")


def is_per_row_getvalue_scoped_path(path):
    """Paths where the per-row-getvalue rule applies: the hot operator
    layer plus its seeded lint fixtures."""
    rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
    rel = rel.replace(os.sep, "/")
    return (rel.startswith("src/exec/") or
            rel.startswith("tools/lint_fixtures/exec/"))


def find_getvalue_in_loops(code_lines):
    """Line numbers of GetValue() calls inside a for/while body. Brace
    depths of loop bodies are tracked line by line; a loop header whose
    body turns out to be brace-less stops matching at its first
    statement-terminating line (the repo style always braces loops, so
    this only has to fail conservatively)."""
    hits = []
    depth = 0
    loop_depths = []
    pending_loop = False
    for lineno, line in enumerate(code_lines, start=1):
        if LOOP_HEADER_RE.search(line):
            pending_loop = True
        if PER_ROW_GETVALUE_RE.search(line) and (loop_depths or pending_loop):
            hits.append(lineno)
        for ch in line:
            if ch == "{":
                depth += 1
                if pending_loop:
                    loop_depths.append(depth)
                    pending_loop = False
            elif ch == "}":
                if loop_depths and loop_depths[-1] == depth:
                    loop_depths.pop()
                depth -= 1
        if (pending_loop and "{" not in line and ";" in line and
                not LOOP_HEADER_RE.search(line)):
            pending_loop = False  # brace-less body ended
    return hits


def nolint_problem(raw_line, match):
    """Returns a complaint string when a NOLINT token is bare, wildcarded,
    or unjustified; None when it is well-formed (or a NOLINTEND)."""
    if match.group(1) == "END":
        return None
    rest = raw_line[match.end():]
    paren = re.match(r"\(([^)]*)\)", rest)
    if paren is None:
        return "names no check; every suppression must be NOLINT(check): why"
    checks = paren.group(1).strip()
    if not checks:
        return "has an empty check list; name the check being silenced"
    if "*" in checks:
        return "suppresses a wildcard check set; name the specific check"
    if re.match(r"\s*:\s*\S", rest[paren.end():]) is None:
        return "carries no justification; append `: <why this is OK here>`"
    return None


def lint_file(path, stale_waivers=True):
    with open(path, "r", encoding="utf-8", errors="replace") as f:
        raw = f.read()
    raw_lines = raw.split("\n")
    code_lines = strip_comments_and_strings(raw).split("\n")
    violations = []
    used_waivers = set()  # raw-line indices whose waiver suppressed a hit

    def waived(lineno, rule):
        # A waiver comment applies to its own line or to the line directly
        # below it (for sites where the comment would overflow the line).
        for idx in (lineno - 1, lineno - 2):
            if idx < 0:
                continue
            m = WAIVER_RE.search(raw_lines[idx])
            if m is not None and m.group(1) == rule:
                used_waivers.add(idx)
                return True
        return False

    for lineno, line in enumerate(code_lines, start=1):
        if VOID_CAST_CALL_RE.search(line) and not waived(lineno,
                                                        "void-cast-call"):
            violations.append(Violation(
                path, lineno, "void-cast-call",
                "discarding a call result with (void) hides failures; "
                "handle or propagate the Status/Result"))
        if not is_arena_path(path):
            if NAKED_NEW_RE.search(line) and not waived(lineno, "naked-new"):
                violations.append(Violation(
                    path, lineno, "naked-new",
                    "raw `new` outside arena code; use make_unique/"
                    "make_shared or a container"))
            if NAKED_DELETE_RE.search(line) and not waived(lineno,
                                                           "naked-new"):
                violations.append(Violation(
                    path, lineno, "naked-new",
                    "raw `delete` outside arena code; ownership must flow "
                    "through smart pointers"))
        for pattern in WALL_CLOCK_RES:
            if pattern.search(line) and not waived(lineno, "wall-clock"):
                violations.append(Violation(
                    path, lineno, "wall-clock",
                    "wall-clock/ambient randomness breaks simulation "
                    "determinism; use SimClock / the seeded Rng"))
                break
        for pattern in DIRECT_OUTPUT_RES:
            if pattern.search(line) and not waived(lineno, "direct-output"):
                violations.append(Violation(
                    path, lineno, "direct-output",
                    "direct console output from library code; use "
                    "common/logging.h"))
                break
        if not is_concurrency_exempt_path(path):
            if RAW_MUTEX_RE.search(line) and not waived(lineno, "raw-mutex"):
                violations.append(Violation(
                    path, lineno, "raw-mutex",
                    "raw std locking primitive is invisible to "
                    "-Wthread-safety; use the annotated wrappers in "
                    "common/annotations.h"))
            for pattern in THREAD_SPAWN_RES:
                if pattern.search(line) and not waived(lineno,
                                                       "detached-thread"):
                    violations.append(Violation(
                        path, lineno, "detached-thread",
                        "ad-hoc thread/async outside ThreadPool; route "
                        "host-level parallelism through common/"
                        "thread_pool.h so lifetimes are joined"))
                    break
        if is_sim_clock_scoped_path(path):
            for pattern in SIM_CLOCK_RES:
                if pattern.search(line) and not waived(lineno, "sim-clock"):
                    violations.append(Violation(
                        path, lineno, "sim-clock",
                        "cluster-layer code must keep time in SimTime "
                        "(SimClock / TimeoutManager); raw monotonic clocks "
                        "and sleeps make straggler detection and deadline "
                        "bookkeeping nondeterministic"))
                    break
        if NO_ANALYSIS_RE.search(line):
            # The macro's own #define (annotations.h) is not a use.
            stripped = line.lstrip()
            is_define = stripped.startswith("#")
            prev_code = code_lines[lineno - 2] if lineno >= 2 else ""
            is_continuation = prev_code.rstrip().endswith("\\")
            if not is_define and not is_continuation:
                has_comment = any(
                    marker in raw_lines[idx]
                    for idx in (lineno - 1, lineno - 2) if idx >= 0
                    for marker in ("//", "/*"))
                if not has_comment and not waived(lineno, "no-analysis"):
                    violations.append(Violation(
                        path, lineno, "no-analysis",
                        "FEISU_NO_THREAD_SAFETY_ANALYSIS without a "
                        "justification comment on this line or the line "
                        "above; say why the analysis is wrong here"))

    if is_per_row_getvalue_scoped_path(path):
        for lineno in find_getvalue_in_loops(code_lines):
            if not waived(lineno, "per-row-getvalue"):
                violations.append(Violation(
                    path, lineno, "per-row-getvalue",
                    "GetValue() inside a loop boxes every cell through a "
                    "Value variant; use the typed column accessors "
                    "(ints()/doubles()/strings()) or a batch kernel"))

    # NOLINT lives inside comments, so this rule reads the raw lines.
    for lineno, raw_line in enumerate(raw_lines, start=1):
        for m in NOLINT_TOKEN_RE.finditer(raw_line):
            problem = nolint_problem(raw_line, m)
            if problem is not None and not waived(lineno, "bare-nolint"):
                violations.append(Violation(
                    path, lineno, "bare-nolint",
                    "clang-tidy suppression " + problem))
                break

    if path.endswith((".h", ".hpp")):
        guard = None
        guard_line = 0
        for lineno, line in enumerate(code_lines, start=1):
            m = GUARD_IFNDEF_RE.match(line)
            if m:
                guard = m.group(1)
                guard_line = lineno
                break
        want = expected_guard(path)
        if guard is None:
            violations.append(Violation(
                path, 1, "include-guard",
                "missing include guard; expected " + want))
        elif guard != want and not waived(guard_line, "include-guard"):
            violations.append(Violation(
                path, guard_line, "include-guard",
                "guard %s does not match path; expected %s" % (guard, want)))

    # Stale-waiver sweep, last: every rule above has consulted waived() by
    # now, so any waiver comment that suppressed nothing is dead weight.
    if stale_waivers:
        for idx, raw_line in enumerate(raw_lines):
            m = WAIVER_RE.search(raw_line)
            if m is None:
                continue
            if m.group(1) not in KNOWN_RULES:
                violations.append(Violation(
                    path, idx + 1, "stale-waiver",
                    "waiver names unknown rule `%s`" % m.group(1)))
            elif idx not in used_waivers:
                violations.append(Violation(
                    path, idx + 1, "stale-waiver",
                    "waiver for `%s` no longer suppresses any finding; "
                    "delete it" % m.group(1)))
    return violations


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, dirs, names in os.walk(p):
                dirs.sort()
                for name in sorted(names):
                    if name.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print("feisu-lint: no such path: %s" % p, file=sys.stderr)
            sys.exit(2)
    return files


def git_changed_files():
    """Source files changed vs. HEAD (staged, unstaged, and untracked).
    Returns None when git is unavailable or this is not a checkout."""
    changed = set()
    cmds = [
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "diff", "--name-only", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    for cmd in cmds:
        try:
            out = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True,
                                 text=True, check=False)
        except OSError:
            return None
        if out.returncode != 0:
            return None
        for rel in out.stdout.splitlines():
            rel = rel.strip()
            if rel.endswith(SOURCE_EXTENSIONS):
                changed.add(os.path.abspath(os.path.join(REPO_ROOT, rel)))
    return changed


def run_self_test():
    """Every fixture must trip exactly its intended rule (encoded in the
    file name), proving the lint fails when it should."""
    expected = {
        "void_cast_discard.cc": "void-cast-call",
        "naked_new.cc": "naked-new",
        "wall_clock.cc": "wall-clock",
        "direct_cout.cc": "direct-output",
        "bad_include_guard.h": "include-guard",
        "raw_mutex.cc": "raw-mutex",
        "no_analysis_unjustified.cc": "no-analysis",
        "detached_thread.cc": "detached-thread",
        os.path.join("cluster", "chrono_scheduler.cc"): "sim-clock",
        "bare_nolint.cc": "bare-nolint",
        os.path.join("exec", "per_row_getvalue.cc"): "per-row-getvalue",
        "stale_waiver.cc": "stale-waiver",
    }
    # Fixtures that must lint CLEAN: they contain would-be violations that
    # are properly waived, proving the waiver machinery works per rule.
    expected_clean = ["raw_mutex_waived.cc",
                      "nolint_justified.cc",
                      os.path.join("cluster", "sim_clock_waived.cc"),
                      os.path.join("exec", "per_row_getvalue_waived.cc")]
    failures = []
    for name, rule in sorted(expected.items()):
        path = os.path.join(FIXTURE_DIR, name)
        if not os.path.isfile(path):
            failures.append("missing fixture: " + name)
            continue
        rules_hit = {v.rule for v in lint_file(path)}
        if rule not in rules_hit:
            failures.append("fixture %s did not trip rule %s (hit: %s)" %
                            (name, rule, sorted(rules_hit) or "none"))
    for name in expected_clean:
        path = os.path.join(FIXTURE_DIR, name)
        if not os.path.isfile(path):
            failures.append("missing fixture: " + name)
            continue
        hits = lint_file(path)
        if hits:
            failures.append("waived fixture %s tripped: %s" %
                            (name, sorted({v.rule for v in hits})))
    if failures:
        for f in failures:
            print("feisu-lint self-test FAILED: " + f, file=sys.stderr)
        return 1
    print("feisu-lint self-test: %d fixtures tripped their rule, "
          "%d waived fixtures stayed clean" %
          (len(expected), len(expected_clean)))
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint "
                             "(default: <repo>/src)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the seeded fixtures trip their rules")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files changed vs. HEAD (staged, "
                             "unstaged, and untracked)")
    parser.add_argument("--no-stale-waivers", action="store_true",
                        help="skip reporting waiver comments that no "
                             "longer suppress any finding")
    args = parser.parse_args()

    if args.self_test:
        sys.exit(run_self_test())

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    files = collect_files(paths)
    if args.changed_only:
        changed = git_changed_files()
        if changed is None:
            print("feisu-lint: --changed-only needs a git checkout; "
                  "linting everything", file=sys.stderr)
        else:
            files = [f for f in files if os.path.abspath(f) in changed]
    violations = []
    for path in files:
        violations.extend(
            lint_file(path, stale_waivers=not args.no_stale_waivers))
    for v in violations:
        print(str(v))
    if violations:
        print("feisu-lint: %d violation(s)" % len(violations),
              file=sys.stderr)
        sys.exit(1)
    print("feisu-lint: clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
