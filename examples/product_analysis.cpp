// Paper Case 3: product analysis. A data engineer produces a revenue
// report that combines the latest hot data (HDFS) with one year of
// archived history on Fatman, Baidu's cold-storage system. The cold
// system's different cost personality is visible in the simulated
// response times, and the engineer uses the early-termination knob for a
// quick sampled look before the full run.

#include <cstdio>

#include "client/client.h"
#include "core/engine.h"
#include "storage/storage_factory.h"

using namespace feisu;

namespace {

Status LoadRevenue(FeisuEngine* engine, const char* table,
                   const char* prefix, int64_t days, int64_t day_offset,
                   uint64_t seed) {
  Schema schema({{"day", DataType::kInt64, true},
                 {"product", DataType::kString, true},
                 {"clicks", DataType::kInt64, true},
                 {"revenue", DataType::kDouble, true}});
  FEISU_RETURN_IF_ERROR(engine->CreateTable(table, schema, prefix));
  RecordBatch batch(schema);
  Rng rng(seed);
  const char* products[] = {"search_ads", "maps", "cloud", "encyclopedia"};
  for (int64_t day = 0; day < days; ++day) {
    for (const char* product : products) {
      for (int sample = 0; sample < 32; ++sample) {
        double base = product[0] == 's' ? 900.0 : 250.0;
        (void)batch.AppendRow(
            {Value::Int64(day_offset + day), Value::String(product),
             Value::Int64(rng.NextInt64(50, 500)),
             Value::Double(base + static_cast<double>(rng.NextInt64(0, 400)))});
      }
    }
  }
  FEISU_RETURN_IF_ERROR(engine->Ingest(table, batch));
  return engine->Flush(table);
}

void Show(const char* label, const Result<QueryResult>& result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n--- %s ---\n%s", label, result->batch.ToString(8).c_str());
  std::printf("[%.2f ms simulated]\n",
              static_cast<double>(result->stats.response_time) /
                  kSimMillisecond);
}

}  // namespace

int main() {
  EngineConfig config;
  config.num_leaf_nodes = 8;
  config.rows_per_block = 1024;
  config.leaf.sim_data_scale = 64.0;  // archival volumes
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), /*is_default=*/true);
  engine.AddStorage("/ffs", MakeFatman());
  engine.GrantAllDomains("data_engineer");

  // Hot: the last 30 days on HDFS. Cold: the previous year on Fatman.
  if (!LoadRevenue(&engine, "revenue_hot", "/hdfs/revenue", 30, 365, 1)
           .ok() ||
      !LoadRevenue(&engine, "revenue_archive", "/ffs/revenue", 365, 0, 2)
           .ok()) {
    return 1;
  }

  FeisuClient client(&engine, "data_engineer");

  Show("This month's revenue by product (hot storage)",
       client.Query(
           "SELECT product, SUM(revenue) AS total, COUNT(*) AS entries "
           "FROM revenue_hot GROUP BY product ORDER BY total DESC"));

  Show("Same report over the one-year archive (cold storage: note the "
       "higher simulated latency)",
       client.Query(
           "SELECT product, SUM(revenue) AS total FROM revenue_archive "
           "GROUP BY product ORDER BY total DESC"));

  Show("Industry-tendency check: yearly search_ads trend, quarters "
       "(archive)",
       client.Query(
           // `/` is double division in this dialect; subtracting the
           // remainder first yields whole-valued quarter buckets.
           "SELECT (day - day % 90) / 90 AS quarter, SUM(revenue) AS total "
           "FROM revenue_archive WHERE product = 'search_ads' "
           "GROUP BY (day - day % 90) / 90 ORDER BY quarter"));

  // Quick sampled look: cap the processed-data ratio (paper §III-C lets
  // users bound processed ratio / response time for interactivity).
  engine.master().mutable_config().processed_ratio = 0.25;
  Show("Sampled quick estimate (25% of blocks, early termination)",
       client.Query("SELECT product, AVG(revenue) AS avg_rev "
                    "FROM revenue_archive GROUP BY product "
                    "ORDER BY avg_rev DESC"));
  engine.master().mutable_config().processed_ratio = 1.0;

  std::printf(
      "\nThe archive scan pays Fatman's cold-read personality; the sampled "
      "pass trades completeness for interactivity (paper §III-C).\n");
  return 0;
}
