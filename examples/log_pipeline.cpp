// The paper's §III-B ingestion path end to end: a light-weight monitor
// process on each online service machine watches newly generated log
// lines, converts them into Feisu's columnar format in place (pinned to
// the generating node, never replicated off it), and the data becomes
// queryable within the freshness window — no central collection, which is
// exactly why Baidu couldn't just funnel everything into one global HDFS.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "ingest/log_monitor.h"
#include "storage/storage_factory.h"

using namespace feisu;

int main() {
  EngineConfig config;
  config.num_leaf_nodes = 4;
  FeisuEngine engine(config);
  StorageSystem* local = engine.AddStorage("", MakeLocalFs(), true);
  engine.GrantAllDomains("ops");

  Schema schema({{"ts", DataType::kInt64, true},
                 {"latency_ms", DataType::kDouble, true},
                 {"status", DataType::kInt64, true},
                 {"endpoint", DataType::kString, true}});
  if (!engine.CreateTable("svc_log", schema, "/log/svc").ok()) return 1;

  // One monitor per online machine — the "light-weight process" of §III-B.
  std::vector<std::unique_ptr<LogMonitor>> monitors;
  LogMonitorConfig monitor_config;
  monitor_config.rows_per_block = 256;
  monitor_config.max_buffer_age = kSimMinute;
  for (uint32_t node = 0; node < engine.num_leaves(); ++node) {
    monitors.push_back(std::make_unique<LogMonitor>(
        node, local, &engine.catalog(), "svc_log", "/log/svc",
        monitor_config));
  }

  // Simulate an hour of service traffic: each node emits mixed TSV/JSON
  // lines (with the occasional corrupt one, as real logs have).
  Rng rng(5);
  for (int second = 0; second < 3600; ++second) {
    SimTime now = static_cast<SimTime>(second) * kSimSecond;
    for (uint32_t node = 0; node < monitors.size(); ++node) {
      int64_t status = rng.NextBool(0.02) ? 500 : 200;
      double latency = status == 500 ? 900.0 + rng.NextDouble() * 300
                                     : 15.0 + rng.NextDouble() * 40;
      std::string line;
      if (rng.NextBool(0.3)) {
        line = "{\"ts\": " + std::to_string(second) +
               ", \"latency_ms\": " + std::to_string(latency) +
               ", \"status\": " + std::to_string(status) +
               ", \"endpoint\": \"/search\"}";
      } else {
        line = std::to_string(second) + "\t" + std::to_string(latency) +
               "\t" + std::to_string(status) + "\t/suggest";
      }
      if (rng.NextBool(0.001)) line = "corrupted ###";
      (void)monitors[node]->OnLogLine(line, now);
      (void)monitors[node]->Tick(now);
    }
  }
  for (auto& monitor : monitors) (void)monitor->Flush(3600 * kSimSecond);

  uint64_t blocks = 0;
  uint64_t rejected = 0;
  for (const auto& monitor : monitors) {
    blocks += monitor->stats().blocks_written;
    rejected += monitor->stats().lines_rejected;
  }
  const TableMeta* meta = engine.catalog().Find("svc_log");
  std::printf(
      "Ingested %llu rows into %llu node-local blocks (%llu dirty lines "
      "dropped); every block pinned to its generating machine.\n",
      static_cast<unsigned long long>(meta->TotalRows()),
      static_cast<unsigned long long>(blocks),
      static_cast<unsigned long long>(rejected));

  // Fresh data is immediately queryable.
  auto errors = engine.Query(
      "ops",
      "SELECT COUNT(*) AS errors, AVG(latency_ms) AS avg_latency "
      "FROM svc_log WHERE status = 500");
  if (!errors.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 errors.status().ToString().c_str());
    return 1;
  }
  std::printf("\nError-rate check over the live hour:\n%s",
              errors->batch.ToString().c_str());
  std::printf("[%.2f ms simulated]\n",
              static_cast<double>(errors->stats.response_time) /
                  kSimMillisecond);

  auto recent = engine.Query(
      "ops",
      "SELECT endpoint, COUNT(*) AS hits FROM svc_log WHERE ts >= 3540 "
      "GROUP BY endpoint ORDER BY hits DESC");
  if (!recent.ok()) return 1;
  std::printf("\nLast minute of traffic (freshness window = 1 min):\n%s",
              recent->batch.ToString().c_str());
  return 0;
}
