// Quickstart: stand up a small Feisu deployment, load a table into a
// simulated HDFS, and run ad-hoc SQL — watching SmartIndex kick in on the
// second, similar query.

#include <cstdio>

#include "core/engine.h"
#include "storage/storage_factory.h"
#include "workload/datagen.h"

int main() {
  using namespace feisu;

  // 1. A deployment with 8 leaf servers and an HDFS-like storage system.
  EngineConfig config;
  config.num_leaf_nodes = 8;
  config.rows_per_block = 2048;
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), /*is_default=*/true);

  // 2. A user with cross-domain (SSO) access.
  engine.GrantAllDomains("ana");

  // 3. A 20-column log table with 32k synthetic rows.
  Schema schema = MakeLogSchema(20);
  Status status = engine.CreateTable("t1", schema, "/hdfs/t1");
  if (!status.ok()) {
    std::fprintf(stderr, "CreateTable: %s\n", status.ToString().c_str());
    return 1;
  }
  Rng rng(1);
  for (int chunk = 0; chunk < 4; ++chunk) {
    status = engine.Ingest("t1", GenerateRows(schema, 8192, &rng));
    if (!status.ok()) {
      std::fprintf(stderr, "Ingest: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  status = engine.Flush("t1");
  if (!status.ok()) {
    std::fprintf(stderr, "Flush: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Loaded t1: %llu rows in %zu blocks\n",
              static_cast<unsigned long long>(
                  engine.catalog().Find("t1")->TotalRows()),
              engine.catalog().Find("t1")->blocks().size());

  // 4. Ad-hoc queries. The second query reuses the first one's predicate
  //    evaluation through SmartIndex — compare the simulated latencies.
  const char* kQueries[] = {
      "SELECT COUNT(*) FROM t1 WHERE (c2 > 0) AND (c2 <= 5)",
      "SELECT COUNT(*) FROM t1 WHERE (c2 > 0) AND NOT (c2 > 5)",
      "SELECT c0, COUNT(*) AS n FROM t1 WHERE c2 > 0 AND c2 <= 5 "
      "GROUP BY c0 ORDER BY n DESC LIMIT 5",
  };
  for (const char* sql : kQueries) {
    auto result = engine.Query("ana", sql);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nSQL: %s\n", sql);
    std::printf("%s", result->batch.ToString().c_str());
    std::printf(
        "simulated response: %.2f ms | index hits: %llu direct + %llu "
        "composed | bytes read: %llu\n",
        static_cast<double>(result->stats.response_time) / kSimMillisecond,
        static_cast<unsigned long long>(result->stats.leaf.index_direct_hits),
        static_cast<unsigned long long>(
            result->stats.leaf.index_composed_hits),
        static_cast<unsigned long long>(result->stats.leaf.bytes_read));
  }
  return 0;
}
