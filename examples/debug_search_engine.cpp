// Paper Case 1: debugging the search engine. A system engineer chases a
// ranking malfunction whose evidence is scattered across heterogeneous
// storage systems — fresh service logs on the online machines' local
// filesystems, the crawled-page store on HDFS, and month-old archived logs
// on Fatman. Feisu's common storage layer gives one SQL view over all of
// them, and the trial-and-error investigation (add one predicate, look,
// add another) is exactly the access pattern SmartIndex accelerates.

#include <cstdio>

#include "client/client.h"
#include "core/engine.h"
#include "storage/storage_factory.h"

using namespace feisu;

namespace {

void Show(const char* label, const Result<QueryResult>& result) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("\n--- %s ---\n%s", label, result->batch.ToString(8).c_str());
  std::printf(
      "[%.2f ms simulated | %llu index hits | %llu bytes read]\n",
      static_cast<double>(result->stats.response_time) / kSimMillisecond,
      static_cast<unsigned long long>(
          result->stats.leaf.index_direct_hits +
          result->stats.leaf.index_composed_hits),
      static_cast<unsigned long long>(result->stats.leaf.bytes_read));
}

}  // namespace

int main() {
  EngineConfig config;
  config.num_leaf_nodes = 6;
  config.rows_per_block = 1024;
  FeisuEngine engine(config);
  // Three heterogeneous systems behind one path namespace.
  engine.AddStorage("/hdfs", MakeHdfs());
  engine.AddStorage("/ffs", MakeFatman());
  engine.AddStorage("", MakeLocalFs(), /*is_default=*/true);
  engine.GrantAllDomains("sys_engineer");

  // Fresh retrieval-service logs (local FS on the online machines).
  Schema log_schema({{"query_id", DataType::kInt64, true},
                     {"latency_ms", DataType::kInt64, true},
                     {"result_count", DataType::kInt64, true},
                     {"shard", DataType::kInt64, true},
                     {"query", DataType::kString, true}});
  if (!engine.CreateTable("service_log", log_schema, "/log/service").ok()) {
    return 1;
  }
  // Crawled page metadata (HDFS).
  Schema page_schema({{"shard", DataType::kInt64, true},
                      {"indexed_pages", DataType::kInt64, true},
                      {"index_version", DataType::kInt64, true}});
  if (!engine.CreateTable("index_meta", page_schema, "/hdfs/index").ok()) {
    return 1;
  }

  // Populate: shard 7 has a stale index version that drops results.
  RecordBatch logs(log_schema);
  RecordBatch pages(page_schema);
  Rng rng(3);
  for (int64_t i = 0; i < 4096; ++i) {
    int64_t shard = i % 16;
    bool broken = shard == 7;
    (void)logs.AppendRow(
        {Value::Int64(i),
         Value::Int64(broken ? 900 + rng.NextInt64(0, 300)
                             : 20 + rng.NextInt64(0, 60)),
         Value::Int64(broken ? rng.NextInt64(0, 2) : rng.NextInt64(5, 50)),
         Value::Int64(shard),
         Value::String(rng.NextBool(0.3) ? "weather beijing"
                                         : "query_" +
                                               std::to_string(i % 97))});
  }
  for (int64_t shard = 0; shard < 16; ++shard) {
    (void)pages.AppendRow({Value::Int64(shard),
                           Value::Int64(1000000 + shard * 1000),
                           Value::Int64(shard == 7 ? 41 : 58)});
  }
  if (!engine.Ingest("service_log", logs).ok()) return 1;
  if (!engine.Ingest("index_meta", pages).ok()) return 1;
  (void)engine.Flush("service_log");
  (void)engine.Flush("index_meta");

  FeisuClient client(&engine, "sys_engineer");

  std::printf("Investigating: users report empty search results...\n");

  // Step 1: is there actually a problem? Aggregate without predicates.
  Show("1. overall result-count distribution",
       client.Query("SELECT MIN(result_count), AVG(result_count), "
                    "MAX(latency_ms) FROM service_log"));

  // Step 2: narrow to failing requests (first predicate).
  Show("2. how many requests return nothing?",
       client.Query(
           "SELECT COUNT(*) FROM service_log WHERE result_count < 2"));

  // Step 3: same predicate + grouping — SmartIndex already has its bitmap.
  Show("3. which shard do they come from?",
       client.Query(
           "SELECT shard, COUNT(*) AS failures FROM service_log "
           "WHERE result_count < 2 GROUP BY shard "
           "ORDER BY failures DESC LIMIT 3"));

  // Step 4: narrow further (trial and error: add predicates one by one).
  Show("4. latency of the failing shard",
       client.Query(
           "SELECT AVG(latency_ms) FROM service_log "
           "WHERE result_count < 2 AND shard = 7"));

  // Step 5: join against the HDFS-resident index metadata to find the
  // root cause — a different storage system, same SQL surface.
  Show("5. cross-system root cause: stale index version on shard 7",
       client.Query(
           "SELECT shard, index_version FROM index_meta "
           "WHERE shard = 7 OR index_version < 50"));

  std::printf(
      "\nDiagnosis: shard 7 serves index_version 41 while the fleet is on "
      "58 — a stale index rollout. Before Feisu this took days of manual "
      "cross-system spelunking (paper §II Case 1).\n");
  return 0;
}
