// Paper Case 2: rapid product prototyping. A strategy engineer evaluating
// a voice-search product must demarcate the benefited user set "again and
// again" from behavior logs. The iterations reuse overlapping predicates,
// so SmartIndex keeps getting faster; the engineer also pins their hottest
// predicate via the client-side history so it outlives the TTL.

#include <cstdio>

#include "client/client.h"
#include "core/engine.h"
#include "storage/storage_factory.h"
#include "workload/datagen.h"

using namespace feisu;

int main() {
  EngineConfig config;
  config.num_leaf_nodes = 8;
  config.rows_per_block = 2048;
  config.leaf.sim_data_scale = 128.0;
  config.master.enable_task_result_reuse = false;  // show pure index effect
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), /*is_default=*/true);
  engine.GrantAllDomains("strategy_engineer");

  // User-behavior log: who could benefit from voice search?
  Schema schema({{"user_id", DataType::kInt64, true},
                 {"queries_per_day", DataType::kInt64, true},
                 {"mobile_ratio", DataType::kDouble, true},
                 {"avg_query_len", DataType::kInt64, true},
                 {"region", DataType::kString, true}});
  if (!engine.CreateTable("behavior", schema, "/hdfs/behavior").ok()) {
    return 1;
  }
  RecordBatch batch(schema);
  Rng rng(9);
  const char* regions[] = {"north", "south", "east", "west"};
  for (int64_t u = 0; u < 16384; ++u) {
    (void)batch.AppendRow(
        {Value::Int64(u), Value::Int64(rng.NextInt64(1, 80)),
         Value::Double(rng.NextDouble()),
         Value::Int64(rng.NextInt64(2, 30)),
         Value::String(regions[rng.NextUint64(4)])});
  }
  if (!engine.Ingest("behavior", batch).ok()) return 1;
  (void)engine.Flush("behavior");

  FeisuClient client(&engine, "strategy_engineer");

  // The prototyping loop: refine the target-user definition round after
  // round. Every round keeps the mobile-heavy core predicate.
  const char* kRounds[] = {
      // Round 1: mobile-heavy users.
      "SELECT COUNT(*) FROM behavior WHERE mobile_ratio > 0.7",
      // Round 2: ... who query often.
      "SELECT COUNT(*) FROM behavior WHERE mobile_ratio > 0.7 AND "
      "queries_per_day > 20",
      // Round 3: ... with long typed queries (voice would help).
      "SELECT COUNT(*) FROM behavior WHERE mobile_ratio > 0.7 AND "
      "queries_per_day > 20 AND avg_query_len >= 15",
      // Round 4: regional breakdown of the candidate set.
      "SELECT region, COUNT(*) AS users FROM behavior WHERE "
      "mobile_ratio > 0.7 AND queries_per_day > 20 AND avg_query_len >= 15 "
      "GROUP BY region ORDER BY users DESC",
      // Round 5: sanity-check the complement.
      "SELECT COUNT(*) FROM behavior WHERE mobile_ratio > 0.7 AND "
      "NOT (queries_per_day > 20)",
  };

  std::printf("Voice-search prototyping: demarcating the benefited user "
              "set, round by round\n");
  for (size_t round = 0; round < std::size(kRounds); ++round) {
    auto result = client.Query(kRounds[round]);
    if (!result.ok()) {
      std::fprintf(stderr, "round %zu failed: %s\n", round + 1,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("\nRound %zu: %s\n%s", round + 1, kRounds[round],
                result->batch.ToString(6).c_str());
    std::printf("[%.2f ms | index hits %llu direct + %llu composed]\n",
                static_cast<double>(result->stats.response_time) /
                    kSimMillisecond,
                static_cast<unsigned long long>(
                    result->stats.leaf.index_direct_hits),
                static_cast<unsigned long long>(
                    result->stats.leaf.index_composed_hits));
  }

  // Personalization: the engineer's history identifies the core predicate
  // and pins it so tomorrow's session starts warm (paper §III-C).
  auto frequent = client.FrequentPredicates(2);
  std::printf("\nHottest predicates in this session's history:\n");
  for (const auto& [predicate, count] : frequent) {
    std::printf("  %zux  %s\n", count, predicate.c_str());
  }
  client.PinFrequentPredicates(2);
  std::printf(
      "Pinned the top predicates in every leaf's index cache: their "
      "SmartIndices survive TTL expiry while memory is free.\n");
  return 0;
}
