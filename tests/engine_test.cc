#include <gtest/gtest.h>

#include "client/client.h"
#include "core/engine.h"
#include "storage/storage_factory.h"
#include "workload/datagen.h"

namespace feisu {
namespace {

/// A small deployment with one HDFS system and a deterministic table of
/// 8000 rows over 10 blocks.
class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineConfig config;
    config.num_leaf_nodes = 4;
    config.rows_per_block = 800;
    engine_ = std::make_unique<FeisuEngine>(config);
    engine_->AddStorage("/hdfs", MakeHdfs(), true);
    engine_->GrantAllDomains("ana");
    Schema schema({{"id", DataType::kInt64, true},
                   {"mod", DataType::kInt64, true},
                   {"name", DataType::kString, true},
                   {"score", DataType::kDouble, true}});
    ASSERT_TRUE(engine_->CreateTable("t", schema, "/hdfs/t").ok());
    RecordBatch batch(schema);
    for (int64_t i = 0; i < 8000; ++i) {
      ASSERT_TRUE(batch
                      .AppendRow({Value::Int64(i), Value::Int64(i % 10),
                                  Value::String("n" + std::to_string(i % 4)),
                                  Value::Double(static_cast<double>(i) / 10)})
                      .ok());
    }
    ASSERT_TRUE(engine_->Ingest("t", batch).ok());
    ASSERT_TRUE(engine_->Flush("t").ok());
  }

  QueryResult Run(const std::string& sql) {
    auto result = engine_->Query("ana", sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::unique_ptr<FeisuEngine> engine_;
};

TEST_F(EngineFixture, IngestCreatesExpectedBlocks) {
  const TableMeta* meta = engine_->catalog().Find("t");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->TotalRows(), 8000u);
  EXPECT_EQ(meta->blocks().size(), 10u);
  EXPECT_FALSE(meta->blocks()[0].stats.empty());
}

TEST_F(EngineFixture, CountStar) {
  QueryResult result = Run("SELECT COUNT(*) FROM t");
  ASSERT_EQ(result.batch.num_rows(), 1u);
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 8000);
}

TEST_F(EngineFixture, FilteredCount) {
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE mod < 3");
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 2400);
}

TEST_F(EngineFixture, FilteredScanRows) {
  QueryResult result = Run("SELECT id FROM t WHERE id < 5");
  EXPECT_EQ(result.batch.num_rows(), 5u);
}

TEST_F(EngineFixture, AggregatesMatchGroundTruth) {
  QueryResult result = Run(
      "SELECT SUM(id), MIN(id), MAX(id), AVG(id), COUNT(id) FROM t "
      "WHERE mod = 0");
  // ids 0,10,...,7990: 800 values, sum = 10*(0+1+...+799) = 3196000.
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 3196000);
  EXPECT_EQ(result.batch.column(1).GetInt64(0), 0);
  EXPECT_EQ(result.batch.column(2).GetInt64(0), 7990);
  EXPECT_DOUBLE_EQ(result.batch.column(3).GetDouble(0), 3995.0);
  EXPECT_EQ(result.batch.column(4).GetInt64(0), 800);
}

TEST_F(EngineFixture, GroupByWithHavingOrderLimit) {
  QueryResult result = Run(
      "SELECT name, COUNT(*) AS n FROM t WHERE mod < 5 GROUP BY name "
      "HAVING COUNT(*) > 0 ORDER BY name LIMIT 2");
  ASSERT_EQ(result.batch.num_rows(), 2u);
  EXPECT_EQ(result.batch.column(0).GetString(0), "n0");
  // i%10 < 5 and i%4 == 0: 3 of every 20 ids.
  EXPECT_EQ(result.batch.column(1).GetInt64(0), 1200);
}

TEST_F(EngineFixture, SecondSimilarQueryIsFasterViaSmartIndex) {
  // Different aggregates, same predicate: the second query cannot reuse the
  // first one's task results, but its predicate evaluation comes straight
  // from SmartIndex.
  QueryResult cold = Run("SELECT COUNT(*) FROM t WHERE mod > 2 AND mod <= 7");
  QueryResult warm = Run("SELECT MAX(id) FROM t WHERE mod > 2 AND mod <= 7");
  EXPECT_EQ(cold.batch.column(0).GetInt64(0), 4000);
  EXPECT_EQ(warm.stats.reused_tasks, 0u);
  EXPECT_GT(warm.stats.leaf.index_direct_hits, 0u);
  EXPECT_LT(warm.stats.response_time, cold.stats.response_time);
}

TEST_F(EngineFixture, IdenticalQueryFasterViaTaskReuse) {
  QueryResult cold = Run("SELECT COUNT(*) FROM t WHERE mod > 2 AND mod <= 7");
  QueryResult warm = Run("SELECT COUNT(*) FROM t WHERE mod > 2 AND mod <= 7");
  EXPECT_EQ(cold.batch.column(0).GetInt64(0),
            warm.batch.column(0).GetInt64(0));
  EXPECT_EQ(warm.stats.reused_tasks, warm.stats.total_tasks);
  EXPECT_LT(warm.stats.response_time, cold.stats.response_time);
}

TEST_F(EngineFixture, Fig7NegatedPredicateReusesIndex) {
  Run("SELECT COUNT(*) FROM t WHERE mod > 5");
  // Use a different aggregate so the task signature differs (no task-level
  // reuse). `NOT (mod > 5)` normalizes to `mod <= 5`, whose bitmap was
  // materialized as the dual when `mod > 5` was evaluated — a direct hit
  // with no scanning.
  QueryResult result = Run("SELECT SUM(id) FROM t WHERE NOT (mod > 5)");
  EXPECT_GT(result.stats.leaf.index_direct_hits, 0u);
  EXPECT_EQ(result.stats.leaf.rows_scanned, 0u);
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 19188000);  // sum of ids with id%10<=5
}

TEST_F(EngineFixture, IdenticalQueryReusesTaskResults) {
  Run("SELECT COUNT(*) FROM t WHERE mod = 1");
  QueryResult again = Run("SELECT COUNT(*) FROM t WHERE mod = 1");
  EXPECT_EQ(again.stats.reused_tasks, again.stats.total_tasks);
  EXPECT_EQ(again.batch.column(0).GetInt64(0), 800);
}

TEST_F(EngineFixture, ZoneMapsSkipOutOfRangeBlocks) {
  // id is monotone: only the last block holds id >= 7200.
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE id >= 7200");
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 800);
  EXPECT_EQ(result.stats.skipped_blocks, 9u);
}

TEST_F(EngineFixture, ProjectionExpressionsAndAliases) {
  QueryResult result =
      Run("SELECT id * 2 AS twice, score FROM t WHERE id = 21");
  ASSERT_EQ(result.batch.num_rows(), 1u);
  EXPECT_EQ(result.batch.schema().field(0).name, "twice");
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 42);
  EXPECT_DOUBLE_EQ(result.batch.column(1).GetDouble(0), 2.1);
}

TEST_F(EngineFixture, OrderByDescLimit) {
  QueryResult result =
      Run("SELECT id FROM t WHERE mod = 3 ORDER BY id DESC LIMIT 3");
  ASSERT_EQ(result.batch.num_rows(), 3u);
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 7993);
  EXPECT_EQ(result.batch.column(0).GetInt64(2), 7973);
}

TEST_F(EngineFixture, ContainsPredicate) {
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE name CONTAINS '3'");
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 2000);
}

TEST_F(EngineFixture, UnknownUserRejected) {
  auto result = engine_->Query("ghost", "SELECT COUNT(*) FROM t");
  EXPECT_TRUE(result.status().IsPermissionDenied());
}

TEST_F(EngineFixture, UnknownTableRejected) {
  auto result = engine_->Query("ana", "SELECT COUNT(*) FROM nope");
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(EngineFixture, SyntaxErrorSurfaced) {
  auto result = engine_->Query("ana", "SELECT FROM WHERE");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(EngineFixture, StatsAreAccounted) {
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE mod = 2");
  EXPECT_EQ(result.stats.total_tasks, 10u);
  EXPECT_GT(result.stats.leaf.bytes_read, 0u);
  EXPECT_GT(result.stats.response_time, 0);
  EXPECT_FALSE(result.stats.plan_text.empty());
  EXPECT_GT(result.stats.leaf_finish_time, 0);
  EXPECT_GE(result.stats.stem_finish_time, result.stats.leaf_finish_time);
}

TEST_F(EngineFixture, ClockAdvancesWithQueries) {
  SimTime before = engine_->clock().Now();
  Run("SELECT COUNT(*) FROM t");
  EXPECT_GT(engine_->clock().Now(), before);
}

TEST_F(EngineFixture, NodeFailureToleratedViaReplicas) {
  engine_->cluster().MarkDead(0);
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE mod = 7");
  EXPECT_EQ(result.batch.column(0).GetInt64(0), 800);
}

TEST_F(EngineFixture, EarlyTerminationAbandonsTasks) {
  // A crawling node makes its tasks long-tail; with processed_ratio 0.5
  // (and speculative execution off) the job returns approximate results
  // without waiting for them.
  ScheduleConfig schedule = engine_->master().scheduler().config();
  schedule.enable_backup_tasks = false;
  engine_->master().scheduler().set_config(schedule);
  engine_->cluster().SetSlowdown(1, 100.0);
  engine_->master().mutable_config().processed_ratio = 0.5;
  QueryResult result = Run("SELECT COUNT(*) FROM t");
  EXPECT_LT(result.batch.column(0).GetInt64(0), 8000);
  EXPECT_GT(result.stats.abandoned_tasks, 0u);
  engine_->master().mutable_config().processed_ratio = 1.0;
}

TEST_F(EngineFixture, CheckpointRestore) {
  MasterCheckpoint checkpoint = engine_->master().Checkpoint();
  EXPECT_EQ(checkpoint.tables.size(), 1u);
  EXPECT_TRUE(MasterServer::RestoreFromCheckpoint(checkpoint,
                                                  engine_->catalog())
                  .ok());
  Catalog empty;
  EXPECT_TRUE(MasterServer::RestoreFromCheckpoint(checkpoint, empty)
                  .IsCorruption());
}

TEST_F(EngineFixture, JsonIngestion) {
  Schema schema({{"user.name", DataType::kString, true},
                 {"user.age", DataType::kInt64, true},
                 {"clicks[0].url", DataType::kString, true}});
  ASSERT_TRUE(engine_->CreateTable("j", schema, "/hdfs/j").ok());
  std::string lines =
      R"({"user": {"name": "ann", "age": 30}, "clicks": [{"url": "u0"}]})"
      "\n"
      R"({"user": {"name": "bob", "age": 25}})"
      "\n";
  ASSERT_TRUE(engine_->IngestJsonLines("j", lines).ok());
  ASSERT_TRUE(engine_->Flush("j").ok());
  const TableMeta* meta = engine_->catalog().Find("j");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->TotalRows(), 2u);
}

TEST_F(EngineFixture, JsonIngestionRejectsUnknownAttribute) {
  Schema schema({{"a", DataType::kInt64, true}});
  ASSERT_TRUE(engine_->CreateTable("j2", schema, "/hdfs/j2").ok());
  EXPECT_TRUE(engine_->IngestJsonLines("j2", R"({"b": 1})")
                  .IsInvalidArgument());
}

TEST_F(EngineFixture, IndexMemorySweepAffectsHitRate) {
  // Disable task-result reuse so the repeated queries exercise the index
  // cache rather than short-circuiting at the master.
  engine_->master().mutable_config().enable_task_result_reuse = false;
  // With a tiny cache, repeated distinct predicates evict each other.
  engine_->SetIndexCacheCapacity(512);
  for (int round = 0; round < 2; ++round) {
    for (int v = 0; v < 8; ++v) {
      Run("SELECT SUM(id) FROM t WHERE mod <= " + std::to_string(v));
    }
  }
  IndexCacheStats small = engine_->AggregateIndexStats();
  engine_->ResetCaches();
  engine_->SetIndexCacheCapacity(64 * 1024 * 1024);
  for (int round = 0; round < 2; ++round) {
    for (int v = 0; v < 8; ++v) {
      Run("SELECT MAX(id) FROM t WHERE mod <= " + std::to_string(v));
    }
  }
  IndexCacheStats big = engine_->AggregateIndexStats();
  EXPECT_GT(big.HitRate(), small.HitRate());
}

TEST_F(EngineFixture, OversizedResultsSpillToGlobalStorage) {
  // Force a tiny spill threshold: every stem result routes via global
  // storage (write flow + locator + read flow), which costs more simulated
  // time than direct streaming.
  QueryResult direct = Run("SELECT id FROM t WHERE mod >= 0");
  engine_->master().mutable_config().result_spill_threshold_bytes = 1024;
  QueryResult spilled = Run("SELECT score FROM t WHERE mod >= 0");
  EXPECT_GT(spilled.stats.spilled_results, 0u);
  EXPECT_GT(spilled.stats.spilled_bytes, 0u);
  EXPECT_EQ(direct.stats.spilled_results, 0u);
  EXPECT_EQ(spilled.batch.num_rows(), 8000u);
  engine_->master().mutable_config().result_spill_threshold_bytes =
      4ULL * 1024 * 1024;
}

TEST_F(EngineFixture, ClientExplainRendersOptimizedPlan) {
  FeisuClient client(engine_.get(), "ana");
  auto plan = client.Explain(
      "SELECT name, COUNT(*) FROM t WHERE mod > 1 + 1 GROUP BY name");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->find("Scan t"), std::string::npos);
  EXPECT_NE(plan->find("(mod > 2)"), std::string::npos);  // folded+pushed
  EXPECT_NE(plan->find("Aggregate"), std::string::npos);
  // Explain of an inaccessible table fails the same way Query would.
  EXPECT_TRUE(client.Explain("SELECT a FROM nope").status().IsNotFound());
}

TEST_F(EngineFixture, MultiLevelStemTreeCorrectness) {
  // stem_fanout 1 puts every leaf in its own level-0 stem and forces the
  // merge tree to collapse over multiple levels; results must not change.
  engine_->master().mutable_config().stem_fanout = 1;
  QueryResult result = Run(
      "SELECT name, COUNT(*) AS n FROM t GROUP BY name ORDER BY name");
  ASSERT_EQ(result.batch.num_rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(result.batch.column(1).GetInt64(r), 2000);
  }
  engine_->master().mutable_config().stem_fanout = 50;
}

TEST_F(EngineFixture, AllNodesDeadFailsGracefully) {
  for (size_t i = 0; i < engine_->num_leaves(); ++i) {
    engine_->cluster().MarkDead(static_cast<uint32_t>(i));
  }
  auto result = engine_->Query("ana", "SELECT COUNT(*) FROM t");
  // Placement falls back to node 0, whose process is dead... the master
  // surfaces the failure instead of hanging or crashing.
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineFixture, ExpressionGroupByKeys) {
  // GROUP BY an expression; the select list repeats it under an alias.
  // (`/` is double division in this dialect, so `%` makes the buckets.)
  QueryResult result = Run(
      "SELECT id % 4 AS bucket, COUNT(*) AS n FROM t "
      "GROUP BY id % 4 ORDER BY bucket");
  ASSERT_EQ(result.batch.num_rows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(result.batch.column(0).GetInt64(r), static_cast<int64_t>(r));
    EXPECT_EQ(result.batch.column(1).GetInt64(r), 2000);
  }
  // HAVING may also reference the group expression.
  QueryResult filtered = Run(
      "SELECT id % 4 AS bucket, COUNT(*) AS n FROM t "
      "GROUP BY id % 4 HAVING id % 4 >= 2 ORDER BY bucket");
  EXPECT_EQ(filtered.batch.num_rows(), 2u);
  // A select column that is neither grouped nor aggregated still fails.
  auto bad = engine_->Query(
      "ana", "SELECT id, COUNT(*) FROM t GROUP BY id % 4");
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST_F(EngineFixture, DistributedLimitCutsShuffle) {
  QueryResult capped = Run("SELECT id FROM t WHERE mod = 1 LIMIT 5");
  EXPECT_EQ(capped.batch.num_rows(), 5u);
  // Each of the 10 leaf tasks returned at most 5 rows instead of 80.
  QueryResult full = Run("SELECT id FROM t WHERE mod = 1");
  EXPECT_EQ(full.batch.num_rows(), 800u);
  EXPECT_LT(capped.stats.bytes_shuffled, full.stats.bytes_shuffled / 4);
  // Ordered limits run as per-leaf top-k; the global order is preserved
  // and the shuffle stays small.
  QueryResult ordered =
      Run("SELECT id FROM t WHERE mod = 1 ORDER BY id DESC LIMIT 5");
  EXPECT_EQ(ordered.batch.num_rows(), 5u);
  EXPECT_EQ(ordered.batch.column(0).GetInt64(0), 7991);
  EXPECT_EQ(ordered.batch.column(0).GetInt64(4), 7951);
  EXPECT_LT(ordered.stats.bytes_shuffled, full.stats.bytes_shuffled / 4);
}

TEST_F(EngineFixture, MaintenanceExpiresIndicesAndSweepsLiveness) {
  // Build an index, then run maintenance past its TTL.
  Run("SELECT COUNT(*) FROM t WHERE mod = 4");
  EXPECT_GT(engine_->leaf(0).index_cache().size() +
                engine_->leaf(1).index_cache().size() +
                engine_->leaf(2).index_cache().size() +
                engine_->leaf(3).index_cache().size(),
            0u);
  SimTime ttl = engine_->leaf(0).index_cache().config().ttl;
  engine_->RunMaintenance(engine_->clock().Now() + ttl + kSimHour);
  uint64_t remaining = 0;
  for (size_t i = 0; i < engine_->num_leaves(); ++i) {
    remaining += engine_->leaf(i).index_cache().size();
  }
  EXPECT_EQ(remaining, 0u);
  // Heartbeats kept every node alive.
  EXPECT_EQ(engine_->cluster().AliveCount(), engine_->num_leaves());
  // A crashed node stays dead across maintenance (no heartbeat from it).
  engine_->cluster().MarkDead(2);
  engine_->RunMaintenance(engine_->clock().Now() + kSimMinute);
  EXPECT_EQ(engine_->cluster().AliveCount(), engine_->num_leaves() - 1);
}

TEST_F(EngineFixture, FormatQueryStatsReport) {
  QueryResult result = Run("SELECT COUNT(*) FROM t WHERE mod = 6");
  std::string report = FormatQueryStats(result.stats);
  EXPECT_NE(report.find("response time:"), std::string::npos);
  EXPECT_NE(report.find("tasks: 10 total"), std::string::npos);
  EXPECT_NE(report.find("SmartIndex:"), std::string::npos);
  EXPECT_NE(report.find("Scan t"), std::string::npos);  // embedded plan
}

// ---------- Multi-storage ----------

TEST(MultiStorageTest, QuerySpansHeterogeneousSystems) {
  EngineConfig config;
  config.num_leaf_nodes = 4;
  config.rows_per_block = 500;
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs("hdfs_a"), true);
  engine.AddStorage("/ffs", MakeFatman("ffs"));
  engine.GrantAllDomains("ana");

  Schema schema({{"k", DataType::kInt64, true},
                 {"v", DataType::kInt64, true}});
  ASSERT_TRUE(engine.CreateTable("hot", schema, "/hdfs/hot").ok());
  ASSERT_TRUE(engine.CreateTable("cold", schema, "/ffs/cold").ok());
  RecordBatch batch(schema);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        batch.AppendRow({Value::Int64(i % 100), Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(engine.Ingest("hot", batch).ok());
  ASSERT_TRUE(engine.Ingest("cold", batch).ok());
  ASSERT_TRUE(engine.Flush("hot").ok());
  ASSERT_TRUE(engine.Flush("cold").ok());

  // Same scan on the cold system is slower (Fatman's cost personality).
  auto hot = engine.Query("ana", "SELECT COUNT(*) FROM hot WHERE v > 10");
  auto cold = engine.Query("ana", "SELECT COUNT(*) FROM cold WHERE v > 10");
  ASSERT_TRUE(hot.ok());
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(hot->batch.column(0).GetInt64(0),
            cold->batch.column(0).GetInt64(0));
  EXPECT_GT(cold->stats.response_time, hot->stats.response_time);

  // A join across the two systems.
  auto join = engine.Query(
      "ana",
      "SELECT COUNT(*) FROM hot JOIN cold ON hot.k = cold.k "
      "WHERE hot.v < 10 AND cold.v < 10");
  ASSERT_TRUE(join.ok()) << join.status().ToString();
  // hot.v<10 -> 10 rows with k=v; cold likewise; k matches pairwise once.
  EXPECT_EQ(join->batch.column(0).GetInt64(0), 10);
}

TEST(MultiStorageTest, DomainDenialBlocksQuery) {
  EngineConfig config;
  config.num_leaf_nodes = 2;
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), true);
  engine.AddStorage("/ffs", MakeFatman());
  // ana gets HDFS only.
  engine.sso().GrantDomain("ana", "hdfs-domain");

  Schema schema({{"a", DataType::kInt64, true}});
  ASSERT_TRUE(engine.CreateTable("cold", schema, "/ffs/cold").ok());
  RecordBatch batch(schema);
  ASSERT_TRUE(batch.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(engine.Ingest("cold", batch).ok());
  ASSERT_TRUE(engine.Flush("cold").ok());
  auto result = engine.Query("ana", "SELECT COUNT(*) FROM cold");
  EXPECT_TRUE(result.status().IsPermissionDenied());
}

// ---------- Client ----------

TEST(ClientTest, SyntaxAndAccessChecks) {
  EngineConfig config;
  config.num_leaf_nodes = 2;
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), true);
  engine.GrantAllDomains("ana");
  Schema schema({{"a", DataType::kInt64, true}});
  ASSERT_TRUE(engine.CreateTable("t", schema, "/hdfs/t").ok());
  RecordBatch batch(schema);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(engine.Ingest("t", batch).ok());
  ASSERT_TRUE(engine.Flush("t").ok());

  FeisuClient client(&engine, "ana");
  EXPECT_TRUE(client.CheckSyntax("SELECT a FROM t").ok());
  EXPECT_FALSE(client.CheckSyntax("SELEKT a").ok());
  EXPECT_TRUE(client.Verify("SELECT a FROM nope").IsNotFound());

  auto result = client.Query("SELECT COUNT(*) FROM t WHERE a > 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.column(0).GetInt64(0), 7);
  ASSERT_EQ(client.history().size(), 1u);
  EXPECT_TRUE(client.history()[0].succeeded);
}

TEST(ClientTest, FrequentPredicatesAndPinning) {
  EngineConfig config;
  config.num_leaf_nodes = 2;
  FeisuEngine engine(config);
  engine.AddStorage("/hdfs", MakeHdfs(), true);
  engine.GrantAllDomains("ana");
  Schema schema({{"a", DataType::kInt64, true}});
  ASSERT_TRUE(engine.CreateTable("t", schema, "/hdfs/t").ok());
  RecordBatch batch(schema);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(batch.AppendRow({Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(engine.Ingest("t", batch).ok());
  ASSERT_TRUE(engine.Flush("t").ok());

  FeisuClient client(&engine, "ana");
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM t WHERE a > 50").ok());
  }
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM t WHERE a > 7").ok());
  auto frequent = client.FrequentPredicates(1);
  ASSERT_EQ(frequent.size(), 1u);
  EXPECT_EQ(frequent[0].first, "(a > 50)");
  EXPECT_EQ(frequent[0].second, 3u);
  client.PinFrequentPredicates(1);  // smoke: marks preference on leaves
}

}  // namespace
}  // namespace feisu
