// Cross-cutting property and integration tests: randomized predicates and
// workloads checking that every optimization layer (normalization,
// SmartIndex, B-tree, zone maps, distributed aggregation) preserves exact
// query semantics.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/aggregate.h"
#include "expr/evaluator.h"
#include "expr/normalize.h"
#include "sql/parser.h"
#include "storage/storage_factory.h"
#include "workload/datagen.h"
#include "workload/tracegen.h"

namespace feisu {
namespace {

// ---------- Random predicate generation ----------

ExprPtr RandomAtom(Rng* rng, const Schema& schema) {
  size_t col = rng->NextUint64(schema.num_fields());
  const Field& field = schema.field(col);
  if (field.type == DataType::kString) {
    CompareOp op = rng->NextBool(0.5) ? CompareOp::kContains : CompareOp::kEq;
    std::string value = (rng->NextBool(0.5) ? "kw_" : "cat_") +
                        std::to_string(rng->NextUint64(30));
    return Expr::Compare(op, Expr::ColumnRef(field.name),
                         Expr::Literal(Value::String(value)));
  }
  CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                     CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
  CompareOp op = ops[rng->NextUint64(6)];
  Value literal = field.type == DataType::kDouble
                      ? Value::Double(static_cast<double>(
                            rng->NextInt64(0, 1000)))
                      : Value::Int64(rng->NextInt64(0, 100));
  ExprPtr atom = Expr::Compare(op, Expr::ColumnRef(field.name),
                               Expr::Literal(std::move(literal)));
  // Sometimes mirror the literal to the left to exercise canonicalization.
  if (rng->NextBool(0.2)) {
    atom = Expr::Compare(MirrorCompareOp(op), atom->child(1), atom->child(0));
  }
  return atom;
}

ExprPtr RandomPredicate(Rng* rng, const Schema& schema, int depth) {
  if (depth <= 0 || rng->NextBool(0.4)) return RandomAtom(rng, schema);
  double which = rng->NextDouble();
  if (which < 0.4) {
    return Expr::And(RandomPredicate(rng, schema, depth - 1),
                     RandomPredicate(rng, schema, depth - 1));
  }
  if (which < 0.8) {
    return Expr::Or(RandomPredicate(rng, schema, depth - 1),
                    RandomPredicate(rng, schema, depth - 1));
  }
  return Expr::Not(RandomPredicate(rng, schema, depth - 1));
}

// ---------- Normalization preserves semantics ----------

class NormalizationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizationProperty, CnfEvaluatesIdentically) {
  Rng rng(GetParam());
  Schema schema = MakeLogSchema(12);
  RecordBatch batch = GenerateRows(schema, 512, &rng);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr predicate = RandomPredicate(&rng, schema, 3);
    auto direct = EvaluatePredicate(*predicate, batch);
    ASSERT_TRUE(direct.ok()) << predicate->ToString();

    std::vector<ExprPtr> conjuncts = NormalizePredicate(predicate);
    ASSERT_FALSE(conjuncts.empty());
    BitVector combined(batch.num_rows(), true);
    for (const auto& conjunct : conjuncts) {
      auto bits = EvaluatePredicate(*conjunct, batch);
      ASSERT_TRUE(bits.ok()) << conjunct->ToString();
      combined.And(*bits);
    }
    EXPECT_TRUE(combined == *direct)
        << "normalization changed semantics of " << predicate->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

// PushDownNot alone must also preserve semantics (it underlies the Fig. 7
// index reuse).
class NotPushdownProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NotPushdownProperty, EvaluatesIdentically) {
  Rng rng(GetParam() * 31 + 7);
  Schema schema = MakeLogSchema(12);
  RecordBatch batch = GenerateRows(schema, 256, &rng);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr predicate = RandomPredicate(&rng, schema, 4);
    auto direct = EvaluatePredicate(*predicate, batch);
    auto pushed = EvaluatePredicate(*PushDownNot(predicate), batch);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(pushed.ok());
    EXPECT_TRUE(*direct == *pushed) << predicate->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NotPushdownProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---------- Engine-level result equivalence across index modes ----------

std::unique_ptr<FeisuEngine> BuildEngine(bool smart_index, bool btree,
                                         const Schema& schema) {
  EngineConfig config;
  config.num_leaf_nodes = 4;
  config.rows_per_block = 512;
  config.leaf.enable_smart_index = smart_index;
  config.leaf.enable_btree_index = btree;
  config.master.enable_task_result_reuse = false;
  auto engine = std::make_unique<FeisuEngine>(config);
  engine->AddStorage("/hdfs", MakeHdfs(), true);
  engine->GrantAllDomains("prop");
  EXPECT_TRUE(engine->CreateTable("t1", schema, "/hdfs/t1").ok());
  Rng rng(77);
  for (int b = 0; b < 6; ++b) {
    EXPECT_TRUE(engine->Ingest("t1", GenerateRows(schema, 512, &rng)).ok());
  }
  EXPECT_TRUE(engine->Flush("t1").ok());
  return engine;
}

std::string Canonicalize(const RecordBatch& batch) {
  // Sort rendered rows: group ordering is implementation-defined.
  std::vector<std::string> rows;
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    std::string row;
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      row += batch.column(c).GetValue(r).ToString();
      row += "|";
    }
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) out += row + "\n";
  return out;
}

TEST(IndexEquivalenceProperty, SmartIndexAndBTreeMatchNoIndex) {
  Schema schema = MakeLogSchema(12);
  TraceConfig trace_config;
  trace_config.table = "t1";
  trace_config.num_queries = 120;
  trace_config.predicate_reuse_prob = 0.7;  // force index reuse paths
  trace_config.value_domain = 15;
  trace_config.seed = 5;
  std::vector<TraceQuery> trace = GenerateTrace(trace_config, schema);

  auto none = BuildEngine(false, false, schema);
  auto smart = BuildEngine(true, false, schema);
  auto btree = BuildEngine(false, true, schema);
  for (const auto& q : trace) {
    auto r_none = none->Query("prop", q.sql);
    auto r_smart = smart->Query("prop", q.sql);
    auto r_btree = btree->Query("prop", q.sql);
    ASSERT_TRUE(r_none.ok()) << q.sql;
    ASSERT_TRUE(r_smart.ok()) << q.sql;
    ASSERT_TRUE(r_btree.ok()) << q.sql;
    std::string expected = Canonicalize(r_none->batch);
    EXPECT_EQ(Canonicalize(r_smart->batch), expected)
        << "SmartIndex changed results of " << q.sql;
    EXPECT_EQ(Canonicalize(r_btree->batch), expected)
        << "B-tree changed results of " << q.sql;
  }
  // The equivalence is only meaningful if the caches actually served hits.
  ResolverStats stats = smart->AggregateResolverStats();
  EXPECT_GT(stats.TotalHits(), 50u);
}

TEST(IndexEquivalenceProperty, ZoneMapsPreserveResults) {
  Schema schema = MakeLogSchema(8);
  auto with_maps = BuildEngine(false, false, schema);
  EngineConfig config;
  config.num_leaf_nodes = 4;
  config.rows_per_block = 512;
  config.leaf.enable_smart_index = false;
  config.leaf.enable_zone_maps = false;
  config.master.enable_task_result_reuse = false;
  auto without_maps = std::make_unique<FeisuEngine>(config);
  without_maps->AddStorage("/hdfs", MakeHdfs(), true);
  without_maps->GrantAllDomains("prop");
  ASSERT_TRUE(without_maps->CreateTable("t1", schema, "/hdfs/t1").ok());
  Rng rng(77);
  for (int b = 0; b < 6; ++b) {
    ASSERT_TRUE(
        without_maps->Ingest("t1", GenerateRows(schema, 512, &rng)).ok());
  }
  ASSERT_TRUE(without_maps->Flush("t1").ok());

  Rng qrng(9);
  for (int trial = 0; trial < 30; ++trial) {
    // Include out-of-range literals so pruning actually triggers.
    int64_t v = qrng.NextInt64(-50, 300);
    std::string sql = "SELECT COUNT(*) FROM t1 WHERE c0 " +
                      std::string(qrng.NextBool(0.5) ? ">" : "<=") + " " +
                      std::to_string(v);
    auto a = with_maps->Query("prop", sql);
    auto b = without_maps->Query("prop", sql);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->batch.column(0).GetInt64(0), b->batch.column(0).GetInt64(0))
        << sql;
  }
}

// ---------- Fault-schedule determinism ----------

// The chaos framework's core guarantee: the same fault seed replayed on a
// fresh engine yields byte-identical results AND identical failure
// accounting, query for query. (The chaos suite in fault_test.cc checks
// correctness under faults; this checks reproducibility.)
std::unique_ptr<FeisuEngine> BuildChaosEngine(uint64_t fault_seed,
                                              const Schema& schema) {
  EngineConfig config;
  config.num_leaf_nodes = 4;
  config.rows_per_block = 512;
  config.master.enable_task_result_reuse = false;
  config.fault.enabled = true;
  config.fault.seed = fault_seed;
  config.fault.default_profile.read_error_rate = 0.2;
  config.fault.default_profile.corruption_rate = 0.1;
  config.fault.node_events.push_back({3 * kSimSecond, 1, true});
  // Every injectable fault type participates in the replay property:
  // a degraded node (speculation fodder), a healing partition, and a
  // doomed primary stem whose merges all fail over to replacements.
  config.fault.slow_nodes.push_back({2, 5.0, 50 * kSimMillisecond});
  config.fault.partitions.push_back(
      {0, 2 * kSimSecond, 4 * kSimSecond});
  config.fault.stem_events.push_back({1, 0, true});
  auto engine = std::make_unique<FeisuEngine>(config);
  engine->AddStorage("/hdfs", MakeHdfs(), true);
  engine->GrantAllDomains("prop");
  EXPECT_TRUE(engine->CreateTable("t1", schema, "/hdfs/t1").ok());
  Rng rng(77);
  for (int b = 0; b < 6; ++b) {
    EXPECT_TRUE(engine->Ingest("t1", GenerateRows(schema, 512, &rng)).ok());
  }
  EXPECT_TRUE(engine->Flush("t1").ok());
  return engine;
}

std::string Canonicalize(const RecordBatch& batch);

class FaultDeterminismProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FaultDeterminismProperty, SameSeedReplaysByteIdentically) {
  Schema schema = MakeLogSchema(10);
  TraceConfig trace_config;
  trace_config.table = "t1";
  trace_config.num_queries = 30;
  trace_config.value_domain = 20;
  trace_config.seed = 13;
  std::vector<TraceQuery> trace = GenerateTrace(trace_config, schema);

  auto a = BuildChaosEngine(GetParam(), schema);
  auto b = BuildChaosEngine(GetParam(), schema);
  for (const auto& q : trace) {
    auto ra = a->Query("prop", q.sql);
    auto rb = b->Query("prop", q.sql);
    ASSERT_EQ(ra.ok(), rb.ok()) << q.sql;
    if (!ra.ok()) continue;
    EXPECT_EQ(Canonicalize(ra->batch), Canonicalize(rb->batch)) << q.sql;
    EXPECT_EQ(ra->stats.response_time, rb->stats.response_time) << q.sql;
    EXPECT_EQ(ra->stats.task_retries, rb->stats.task_retries) << q.sql;
    EXPECT_EQ(ra->stats.corrupt_blocks, rb->stats.corrupt_blocks) << q.sql;
    EXPECT_EQ(ra->stats.io_errors, rb->stats.io_errors) << q.sql;
    EXPECT_EQ(ra->stats.failed_nodes, rb->stats.failed_nodes) << q.sql;
    EXPECT_EQ(ra->stats.lost_blocks, rb->stats.lost_blocks) << q.sql;
    EXPECT_EQ(ra->stats.backup_tasks_launched,
              rb->stats.backup_tasks_launched) << q.sql;
    EXPECT_EQ(ra->stats.backup_tasks_won, rb->stats.backup_tasks_won)
        << q.sql;
    EXPECT_EQ(ra->stats.tasks_terminated_early,
              rb->stats.tasks_terminated_early) << q.sql;
    EXPECT_EQ(ra->stats.partitioned_tasks, rb->stats.partitioned_tasks)
        << q.sql;
    EXPECT_EQ(ra->stats.stem_failures, rb->stats.stem_failures) << q.sql;
    EXPECT_EQ(ra->stats.stem_retries, rb->stats.stem_retries) << q.sql;
    EXPECT_EQ(ra->stats.partial, rb->stats.partial) << q.sql;
    EXPECT_DOUBLE_EQ(ra->stats.processed_ratio, rb->stats.processed_ratio)
        << q.sql;
  }
  const FaultStats& fa = a->fault_injector().stats();
  const FaultStats& fb = b->fault_injector().stats();
  EXPECT_EQ(fa.injected_read_errors, fb.injected_read_errors);
  EXPECT_EQ(fa.injected_corrupt_reads, fb.injected_corrupt_reads);
  EXPECT_EQ(fa.crashes_delivered, fb.crashes_delivered);
  EXPECT_EQ(fa.slowed_tasks, fb.slowed_tasks);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultDeterminismProperty,
                         ::testing::Values(1, 7, 21, 1234));

// ---------- Distributed aggregation equals single-shot ----------

class AggregationMergeProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(AggregationMergeProperty, RandomSplitsMerge) {
  Rng rng(GetParam());
  Schema schema({{"g", DataType::kInt64, true},
                 {"v", DataType::kInt64, true},
                 {"d", DataType::kDouble, true}});
  RecordBatch batch(schema);
  size_t n = 200 + rng.NextUint64(400);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Value> row;
    row.push_back(rng.NextBool(0.05)
                      ? Value::Null()
                      : Value::Int64(rng.NextInt64(0, 5)));
    row.push_back(rng.NextBool(0.1) ? Value::Null()
                                    : Value::Int64(rng.NextInt64(-50, 50)));
    row.push_back(Value::Double(rng.NextDouble() * 10));
    ASSERT_TRUE(batch.AppendRow(row).ok());
  }
  std::vector<AggSpec> specs;
  AggFunc funcs[] = {AggFunc::kCount, AggFunc::kSum, AggFunc::kMin,
                     AggFunc::kMax, AggFunc::kAvg};
  for (int s = 0; s < 5; ++s) {
    AggSpec spec;
    spec.func = funcs[s];
    spec.arg = spec.func == AggFunc::kCount && rng.NextBool(0.5)
                   ? nullptr
                   : Expr::ColumnRef(rng.NextBool(0.5) ? "v" : "d");
    spec.output_name = "a" + std::to_string(s);
    specs.push_back(spec);
  }
  std::vector<ExprPtr> keys = {Expr::ColumnRef("g")};

  auto direct = Aggregator::Make(keys, specs, schema);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(direct->Consume(batch).ok());
  auto expected = direct->FinalResult();
  ASSERT_TRUE(expected.ok());

  // Random 3-way split, two-level merge (leaf -> stem -> master).
  std::vector<BitVector> parts(3, BitVector(batch.num_rows(), false));
  for (size_t i = 0; i < batch.num_rows(); ++i) {
    parts[rng.NextUint64(3)].Set(i, true);
  }
  std::vector<RecordBatch> partials;
  for (const auto& part : parts) {
    auto leaf = Aggregator::Make(keys, specs, schema);
    ASSERT_TRUE(leaf.ok());
    ASSERT_TRUE(leaf->Consume(batch.Filter(part)).ok());
    auto partial = leaf->PartialResult();
    ASSERT_TRUE(partial.ok());
    partials.push_back(std::move(*partial));
  }
  auto stem = Aggregator::Make(keys, specs, schema);
  ASSERT_TRUE(stem.ok());
  ASSERT_TRUE(stem->ConsumePartial(partials[0]).ok());
  ASSERT_TRUE(stem->ConsumePartial(partials[1]).ok());
  auto stem_partial = stem->PartialResult();
  ASSERT_TRUE(stem_partial.ok());
  auto master = Aggregator::Make(keys, specs, schema);
  ASSERT_TRUE(master.ok());
  ASSERT_TRUE(master->ConsumePartial(*stem_partial).ok());
  ASSERT_TRUE(master->ConsumePartial(partials[2]).ok());
  auto actual = master->FinalResult();
  ASSERT_TRUE(actual.ok());

  EXPECT_EQ(Canonicalize(*actual), Canonicalize(*expected));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregationMergeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------- Block serialization round trip with generated data ----------

class BlockRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockRoundTripProperty, GeneratedDataSurvives) {
  Rng rng(GetParam() * 101);
  Schema schema = MakeLogSchema(20);
  RecordBatch batch = GenerateRows(schema, 777, &rng);
  ColumnarBlock block = ColumnarBlock::FromBatch(5, batch);
  auto restored = ColumnarBlock::Deserialize(block.Serialize());
  ASSERT_TRUE(restored.ok());
  auto decoded = restored->DecodeBatch();
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_rows(), batch.num_rows());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      EXPECT_EQ(
          batch.column(c).GetValue(r).Compare(decoded->column(c).GetValue(r)),
          0)
          << "col " << c << " row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockRoundTripProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace feisu
