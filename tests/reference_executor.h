#ifndef FEISU_TESTS_REFERENCE_EXECUTOR_H_
#define FEISU_TESTS_REFERENCE_EXECUTOR_H_

#include <map>
#include <string>

#include "columnar/record_batch.h"
#include "common/result.h"
#include "sql/ast.h"

namespace feisu {

/// A deliberately naive, row-at-a-time SQL interpreter used ONLY as a
/// differential-testing oracle. It shares the parser and the Value type
/// with the engine but nothing else: expression evaluation, three-valued
/// logic, joins, grouping, ordering and limits are all re-implemented
/// independently, so a bug in the vectorized evaluator, the optimizer, the
/// SmartIndex algebra or the distributed merge shows up as a divergence.
class ReferenceExecutor {
 public:
  void AddTable(const std::string& name, RecordBatch rows) {
    tables_[name] = std::move(rows);
  }

  /// Executes a parsed statement. Unsupported shapes return
  /// NotImplemented so the differential harness can skip them.
  Result<RecordBatch> Execute(const SelectStatement& stmt) const;

 private:
  std::map<std::string, RecordBatch> tables_;
};

}  // namespace feisu

#endif  // FEISU_TESTS_REFERENCE_EXECUTOR_H_
