// Runtime half of the thread-safety work: the compile-time matrix in
// ts_fixtures/ proves the annotations reject racy code under Clang; the
// tests here prove the annotated wrappers behave exactly like the std
// primitives they replace (same blocking, same wake-ups, no lost
// notifications) and that the types migrated onto them kept their
// semantics under load. Run under TSan for the full effect.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/bit_vector.h"
#include "common/fault_injector.h"
#include "common/thread_pool.h"
#include "index/index_cache.h"

namespace feisu {
namespace {

// ---------- Wrapper primitives ----------

TEST(AnnotatedMutexTest, GuardsASharedCounter) {
  Mutex mutex;
  int count = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 1000; ++i) {
        MutexLock lock(mutex);
        ++count;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(mutex);
  EXPECT_EQ(count, 8000);
}

TEST(AnnotatedMutexTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mutex;
  mutex.Lock();
  std::atomic<bool> contended_result{true};
  // try_lock from *another* thread: self-try_lock on a std::mutex is UB.
  std::thread prober([&]() { contended_result = mutex.TryLock(); });
  prober.join();
  EXPECT_FALSE(contended_result.load());
  mutex.Unlock();
  ASSERT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(AnnotatedSharedMutexTest, ReadersOverlap) {
  SharedMutex mutex;
  std::atomic<int> concurrent_readers{0};
  std::atomic<bool> overlapped{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      ReaderLock lock(mutex);
      concurrent_readers.fetch_add(1);
      // While holding shared access, wait (bounded) for the other reader
      // to arrive — only possible if readers genuinely overlap. A
      // regression to exclusive locking deadlocks this wait, so the spin
      // cap doubles as the failure path.
      for (int spin = 0; spin < 10000000; ++spin) {
        if (concurrent_readers.load() == 2) {
          overlapped.store(true);
          break;
        }
        std::this_thread::yield();
      }
      concurrent_readers.fetch_sub(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_TRUE(overlapped.load());
}

TEST(AnnotatedSharedMutexTest, WriterExcludesReadersAndWriters) {
  SharedMutex mutex;
  int value = 0;
  std::atomic<int> concurrent_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        ReaderLock lock(mutex);
        concurrent_readers.fetch_add(1);
        // Reads of `value` are safe here by construction; writers hold
        // exclusive access.
        (void)value;
        concurrent_readers.fetch_sub(1);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 200; ++i) {
        WriterLock lock(mutex);
        EXPECT_EQ(concurrent_readers.load(), 0);
        ++value;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  WriterLock lock(mutex);
  EXPECT_EQ(value, 400);
}

TEST(AnnotatedCondVarTest, NotifyWakesWaiter) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&]() {
    MutexLock lock(mutex);
    while (!ready) cv.Wait(lock);
  });
  {
    MutexLock lock(mutex);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();  // completing is the assertion: no lost wake-up
}

// ---------- ThreadPool on the annotated wrappers ----------

TEST(AnnotationsThreadPoolTest, SubmitDrainHammer) {
  ThreadPool pool(4);
  std::atomic<uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    for (uint64_t i = 0; i < 200; ++i) {
      auto unused = pool.Submit([&sum, i]() { sum.fetch_add(i); });
      (void)unused;
    }
    pool.Drain();
    EXPECT_EQ(pool.pending(), 0u);
  }
  EXPECT_EQ(sum.load(), 20ull * (199ull * 200ull / 2));
}

TEST(AnnotationsThreadPoolTest, ParallelForKeepsDeterministicException) {
  ThreadPool pool(4);
  // The lowest-index-wins contract must survive the lock migration: it is
  // what makes parallel leaf failures reproducible.
  for (int round = 0; round < 10; ++round) {
    try {
      pool.ParallelFor(64, [](size_t i) {
        if (i % 9 == 4) throw std::runtime_error("fail@" + std::to_string(i));
      });
      FAIL() << "expected ParallelFor to throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "fail@4");
    }
    pool.Drain();
    EXPECT_EQ(pool.pending(), 0u);
  }
}

// ---------- IndexCache on the annotated wrappers ----------

TEST(AnnotationsIndexCacheTest, ConcurrentMixedOperationsHammer) {
  IndexCacheConfig config;
  config.capacity_bytes = 64 * 1024;  // small: forces eviction churn
  config.shards = 4;
  IndexCache cache(config);
  ThreadPool pool(4);
  std::atomic<uint64_t> alive_handles{0};
  pool.ParallelFor(8, [&](size_t t) {
    BitVector bits(512, t % 2 == 0);
    for (int i = 0; i < 300; ++i) {
      SmartIndexKey key{static_cast<int64_t>((t * 300 + i) % 64),
                        "(c" + std::to_string(i % 7) + " > 0)"};
      cache.Insert(key, bits, static_cast<SimTime>(i));
      if (auto handle = cache.Lookup(key, static_cast<SimTime>(i))) {
        // The shared_ptr contract: the handle stays valid even if a
        // concurrent insert evicts the entry underneath us.
        alive_handles.fetch_add(handle->num_rows() == 512 ? 1 : 0);
      }
      if (i % 16 == 0) {
        cache.SetPreference("(c1 > 0)", t % 2 == 0);
        cache.EvictExpired(static_cast<SimTime>(i));
      }
    }
  });
  EXPECT_GT(alive_handles.load(), 0u);
  IndexCacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 8u * 300u);
  EXPECT_LE(cache.memory_bytes(), cache.capacity_bytes());
}

// ---------- FaultInjector: regression for the Configure race ----------

// Before the annotation migration, Configure() wrote config_ with no lock
// while pool threads read it through OnBlockRead/ProfileFor — a torn read
// of the profiles map under concurrent reconfiguration. The whole swap now
// happens under the injector's mutex; this test reconfigures in a tight
// loop against hammering readers and must stay clean under TSan.
TEST(AnnotationsFaultInjectorTest, ConfigureRacesAgainstQueries) {
  FaultInjector injector;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      std::string path = "/hdfs/part-" + std::to_string(t);
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (injector.enabled()) {
          (void)injector.OnBlockRead(path, static_cast<uint32_t>(i % 3));
          (void)injector.IsReplicaCorrupted(path, static_cast<uint32_t>(i % 3));
          (void)injector.DropHeartbeat(static_cast<uint32_t>(t),
                                       static_cast<SimTime>(i));
        }
        (void)injector.config();  // snapshot while Configure may run
        reads.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  // Keep reconfiguring until the readers have demonstrably interleaved
  // with at least a few hundred Configure swaps (capped so a wedged
  // reader can't hang the test forever).
  int round = 0;
  while ((round < 200 || reads.load(std::memory_order_relaxed) < 2000) &&
         round < 200000) {
    FaultConfig config;
    config.enabled = round % 2 == 0;
    config.seed = static_cast<uint64_t>(round + 1);
    config.heartbeat_drop_rate = 0.5;
    config.profiles["/hdfs"] = HdfsFaultProfile();
    config.profiles["/ffs"] = FatmanFaultProfile();
    config.node_events.push_back({static_cast<SimTime>(round), 1u, true});
    injector.Configure(std::move(config));
    (void)injector.TakeDueNodeEvents(static_cast<SimTime>(round));
    (void)injector.stats();
    ++round;
  }
  stop.store(true);
  for (auto& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0u);
  // Configure resets per-run state, so counters reflect only the final
  // configuration — the point is that nothing tore or deadlocked.
  (void)injector.stats();
}

// Determinism must survive the locking change: same seed, same call
// pattern, identical verdicts.
TEST(AnnotationsFaultInjectorTest, DeterministicAfterReconfigure) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 42;
  config.default_profile = FatmanFaultProfile();
  auto run = [&config]() {
    FaultInjector injector(config);
    std::vector<FaultKind> verdicts;
    for (int i = 0; i < 200; ++i) {
      verdicts.push_back(
          injector.OnBlockRead("/ffs/cold-" + std::to_string(i % 5), 2));
    }
    return verdicts;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace feisu
