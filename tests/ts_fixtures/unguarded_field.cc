// Negative fixture for the thread-safety try_compile matrix: writes a
// FEISU_GUARDED_BY field without holding its mutex — a real data race once
// Bump runs on two threads. -Wthread-safety -Werror MUST reject this
// translation unit; tests/CMakeLists.txt fails the configure if it builds.
#include "common/annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++count_; }  // racy: no lock held

 private:
  feisu::Mutex mutex_;
  int count_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}
