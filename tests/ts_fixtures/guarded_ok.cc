// Positive control for the thread-safety try_compile matrix: a correctly
// locked counter MUST compile cleanly under -Wthread-safety -Werror. If
// this file fails, the harness (not the analysis) is broken and the
// negative results below would be meaningless.
#include "common/annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    feisu::MutexLock lock(mutex_);
    ++count_;
  }
  int Get() const {
    feisu::MutexLock lock(mutex_);
    return count_;
  }

 private:
  mutable feisu::Mutex mutex_;
  int count_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return counter.Get() == 1 ? 0 : 1;
}
