// Negative fixture for the thread-safety try_compile matrix: calls a
// FEISU_REQUIRES private helper without holding the mutex it names — the
// lock-requiring-method contract every *Locked helper in src/ relies on.
// -Wthread-safety -Werror MUST reject this translation unit.
#include "common/annotations.h"

namespace {

class Table {
 public:
  void Clear() { ClearLocked(); }  // racy: helper demands mutex_ held

 private:
  void ClearLocked() FEISU_REQUIRES(mutex_) { size_ = 0; }

  feisu::Mutex mutex_;
  int size_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table table;
  table.Clear();
  return 0;
}
