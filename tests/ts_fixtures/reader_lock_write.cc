// Negative fixture for the thread-safety try_compile matrix: mutates a
// field guarded by a SharedMutex while holding only shared (reader)
// access. Readers may alias; writing under a ReaderLock is a data race.
// -Wthread-safety -Werror MUST reject this translation unit.
#include "common/annotations.h"

namespace {

class Registry {
 public:
  void Grow() {
    feisu::ReaderLock lock(mutex_);
    ++entries_;  // racy: writing needs exclusive (WriterLock) access
  }

 private:
  feisu::SharedMutex mutex_;
  int entries_ FEISU_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Grow();
  return 0;
}
