#include <gtest/gtest.h>

#include "common/bit_vector.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace feisu {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing file");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing file");
  EXPECT_EQ(s.ToString(), "NotFound: missing file");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::PermissionDenied("x").IsPermissionDenied());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::TimedOut("x").IsTimedOut());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    FEISU_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

// ---------- Result ----------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnUnwraps) {
  auto produce = []() -> Result<std::string> { return std::string("hi"); };
  auto consume = [&]() -> Result<size_t> {
    FEISU_ASSIGN_OR_RETURN(std::string s, produce());
    return s.size();
  };
  auto r = consume();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<std::string> {
    return Status::Corruption("bad");
  };
  auto consume = [&]() -> Result<size_t> {
    FEISU_ASSIGN_OR_RETURN(std::string s, produce());
    return s.size();
  };
  EXPECT_TRUE(consume().status().IsCorruption());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// ---------- SimClock ----------

TEST(SimClockTest, StartsAtZeroAndAdvances) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
  clock.Advance(5 * kSimSecond);
  EXPECT_EQ(clock.Now(), 5 * kSimSecond);
}

TEST(SimClockTest, AdvanceToNeverGoesBackwards) {
  SimClock clock(10);
  clock.AdvanceTo(5);
  EXPECT_EQ(clock.Now(), 10);
  clock.AdvanceTo(20);
  EXPECT_EQ(clock.Now(), 20);
}

TEST(SimClockTest, UnitsCompose) {
  EXPECT_EQ(kSimSecond, 1000 * kSimMillisecond);
  EXPECT_EQ(kSimHour, 3600 * kSimSecond);
}

// ---------- Rng ----------

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, BoundedUniform) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextUint64(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, IntRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(11);
  size_t low = 0;
  const int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.NextZipf(100, 1.2) < 10) ++low;
  }
  // With s=1.2, the top-10 of 100 items should take well over half.
  EXPECT_GT(low, static_cast<size_t>(kDraws) / 2);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextZipf(17, 0.9), 17u);
  }
}

// ---------- BitVector ----------

TEST(BitVectorTest, ConstructAndAccess) {
  BitVector bits(10, false);
  EXPECT_EQ(bits.size(), 10u);
  EXPECT_EQ(bits.CountOnes(), 0u);
  bits.Set(3, true);
  bits.Set(9, true);
  EXPECT_TRUE(bits.Get(3));
  EXPECT_FALSE(bits.Get(4));
  EXPECT_EQ(bits.CountOnes(), 2u);
}

TEST(BitVectorTest, AllOnesConstruction) {
  BitVector bits(130, true);
  EXPECT_TRUE(bits.AllOnes());
  EXPECT_EQ(bits.CountOnes(), 130u);
}

TEST(BitVectorTest, PushBackGrows) {
  BitVector bits;
  for (int i = 0; i < 70; ++i) bits.PushBack(i % 2 == 0);
  EXPECT_EQ(bits.size(), 70u);
  EXPECT_EQ(bits.CountOnes(), 35u);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_FALSE(bits.Get(69));
}

TEST(BitVectorTest, AndOrNot) {
  BitVector a(8, false);
  BitVector b(8, false);
  a.Set(1, true);
  a.Set(2, true);
  b.Set(2, true);
  b.Set(3, true);
  BitVector anded = BitVector::And(a, b);
  EXPECT_EQ(anded.ToString(), "00100000");
  BitVector ored = BitVector::Or(a, b);
  EXPECT_EQ(ored.ToString(), "01110000");
  BitVector notted = BitVector::Not(a);
  EXPECT_EQ(notted.ToString(), "10011111");
}

TEST(BitVectorTest, NotKeepsTrailingBitsClear) {
  BitVector bits(67, false);
  bits.Not();
  EXPECT_EQ(bits.CountOnes(), 67u);
  bits.Not();
  EXPECT_EQ(bits.CountOnes(), 0u);
}

TEST(BitVectorTest, DoubleNegationIdentity) {
  Rng rng(5);
  BitVector bits(200, false);
  for (size_t i = 0; i < 200; ++i) bits.Set(i, rng.NextBool(0.3));
  BitVector twice = BitVector::Not(BitVector::Not(bits));
  EXPECT_TRUE(bits == twice);
}

TEST(BitVectorTest, SetIndices) {
  BitVector bits(100, false);
  bits.Set(0, true);
  bits.Set(64, true);
  bits.Set(99, true);
  std::vector<uint32_t> idx = bits.SetIndices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 64u);
  EXPECT_EQ(idx[2], 99u);
}

TEST(BitVectorTest, RleRoundTripSparse) {
  BitVector bits(1000, false);
  bits.Set(17, true);
  bits.Set(900, true);
  std::string payload = bits.SerializeRle();
  BitVector decoded;
  ASSERT_TRUE(BitVector::DeserializeRle(payload, &decoded));
  EXPECT_TRUE(bits == decoded);
  // Sparse vectors compress far below the raw size.
  EXPECT_LT(payload.size(), bits.ByteSize());
}

TEST(BitVectorTest, RleRoundTripDense) {
  BitVector bits(1000, true);
  std::string payload = bits.SerializeRle();
  BitVector decoded;
  ASSERT_TRUE(BitVector::DeserializeRle(payload, &decoded));
  EXPECT_TRUE(bits == decoded);
}

TEST(BitVectorTest, CompressedByteSizeMatchesSerialized) {
  Rng rng(3);
  BitVector bits(4096, false);
  for (size_t i = 0; i < bits.size(); ++i) bits.Set(i, rng.NextBool(0.01));
  EXPECT_EQ(bits.CompressedByteSize(), bits.SerializeRle().size());
}

TEST(BitVectorTest, DeserializeRejectsGarbage) {
  BitVector out;
  EXPECT_FALSE(BitVector::DeserializeRle("", &out));
  EXPECT_FALSE(BitVector::DeserializeRle("abc", &out));
  // Valid header then truncated body.
  BitVector bits(128, true);
  std::string payload = bits.SerializeRle();
  payload.resize(payload.size() - 1);
  EXPECT_FALSE(BitVector::DeserializeRle(payload, &out));
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bits;
  EXPECT_TRUE(bits.empty());
  std::string payload = bits.SerializeRle();
  BitVector decoded(5, true);
  ASSERT_TRUE(BitVector::DeserializeRle(payload, &decoded));
  EXPECT_EQ(decoded.size(), 0u);
}

// Property sweep: RLE round trip across densities and sizes.
class BitVectorRleProperty
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(BitVectorRleProperty, RoundTrip) {
  auto [size, density] = GetParam();
  Rng rng(size * 31 + static_cast<uint64_t>(density * 100));
  BitVector bits(size, false);
  for (size_t i = 0; i < size; ++i) bits.Set(i, rng.NextBool(density));
  BitVector decoded;
  ASSERT_TRUE(BitVector::DeserializeRle(bits.SerializeRle(), &decoded));
  EXPECT_TRUE(bits == decoded);
  EXPECT_EQ(decoded.CountOnes(), bits.CountOnes());
}

INSTANTIATE_TEST_SUITE_P(
    Densities, BitVectorRleProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 63, 64, 65, 1000, 4096),
                       ::testing::Values(0.0, 0.01, 0.5, 0.99, 1.0)));

// De Morgan property: NOT(a AND b) == NOT(a) OR NOT(b).
TEST(BitVectorTest, DeMorgan) {
  Rng rng(21);
  BitVector a(500, false);
  BitVector b(500, false);
  for (size_t i = 0; i < 500; ++i) {
    a.Set(i, rng.NextBool(0.4));
    b.Set(i, rng.NextBool(0.6));
  }
  BitVector lhs = BitVector::Not(BitVector::And(a, b));
  BitVector rhs = BitVector::Or(BitVector::Not(a), BitVector::Not(b));
  EXPECT_TRUE(lhs == rhs);
}

// ---------- Hash ----------

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(HashString("feisu"), HashString("feisu"));
  EXPECT_NE(HashString("feisu"), HashString("feisv"));
  EXPECT_NE(HashInt64(1), HashInt64(2));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

// ---------- Logging ----------

TEST(LoggingTest, LevelGate) {
  LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(FEISU_LOG_ENABLED(kDebug));
  EXPECT_TRUE(FEISU_LOG_ENABLED(kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(FEISU_LOG_ENABLED(kInfo));
  SetLogLevel(old_level);
}

}  // namespace
}  // namespace feisu
