#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace feisu {
namespace {

// ---------- Lexer ----------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b2 FROM t WHERE a >= 10.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_TRUE((*tokens)[2].IsSymbol(","));
  EXPECT_EQ((*tokens)[3].text, "b2");
  EXPECT_TRUE((*tokens)[4].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[6].IsKeyword("WHERE"));
  EXPECT_TRUE((*tokens)[8].IsSymbol(">="));
  EXPECT_EQ((*tokens)[9].type, TokenType::kFloat);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*tokens)[1].IsKeyword("FROM"));
  EXPECT_TRUE((*tokens)[2].IsKeyword("WHERE"));
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_TRUE(Tokenize("'oops").status().IsInvalidArgument());
}

TEST(LexerTest, NotEqualsVariants) {
  auto tokens = Tokenize("a != b <> c");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[1].IsSymbol("!="));
  EXPECT_TRUE((*tokens)[3].IsSymbol("!="));
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_TRUE(Tokenize("SELECT a @ b").status().IsInvalidArgument());
}

TEST(LexerTest, EndOfInputSentinel) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEndOfInput);
}

// ---------- Parser: structure ----------

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseSql("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->column(), "a");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].name, "t");
  EXPECT_EQ(stmt->where, nullptr);
  EXPECT_EQ(stmt->limit, -1);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSql("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select_star);
}

TEST(ParserTest, AliasesExplicitAndImplicit) {
  auto stmt = ParseSql("SELECT a AS x, b y FROM t1 AS u, t2 v");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_EQ(stmt->from[0].alias, "u");
  EXPECT_EQ(stmt->from[1].alias, "v");
}

TEST(ParserTest, WhereWithPrecedence) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR binds loosest: ((a>1 AND b<2) OR (c=3)).
  ASSERT_EQ(stmt->where->kind(), ExprKind::kLogical);
  EXPECT_EQ(stmt->where->logical_op(), LogicalOp::kOr);
  EXPECT_EQ(stmt->where->child(0)->logical_op(), LogicalOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSql("SELECT a + b * 2 FROM t");
  ASSERT_TRUE(stmt.ok());
  const ExprPtr& e = stmt->items[0].expr;
  ASSERT_EQ(e->kind(), ExprKind::kArithmetic);
  EXPECT_EQ(e->arith_op(), ArithOp::kAdd);
  EXPECT_EQ(e->child(1)->arith_op(), ArithOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = ParseSql("SELECT (a + b) * 2 FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->arith_op(), ArithOp::kMul);
}

TEST(ParserTest, CountStarAndAggregates) {
  auto stmt = ParseSql(
      "SELECT COUNT(*), SUM(a), MIN(b), MAX(c), AVG(d) FROM t");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->items.size(), 5u);
  EXPECT_EQ(stmt->items[0].expr->agg_func(), AggFunc::kCount);
  EXPECT_TRUE(stmt->items[0].expr->children().empty());
  EXPECT_EQ(stmt->items[1].expr->agg_func(), AggFunc::kSum);
  EXPECT_EQ(stmt->items[4].expr->agg_func(), AggFunc::kAvg);
}

TEST(ParserTest, AggregateWithin) {
  auto stmt = ParseSql("SELECT COUNT(a) WITHIN b FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_NE(stmt->items[0].expr->within(), nullptr);
  EXPECT_EQ(stmt->items[0].expr->within()->column(), "b");
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = ParseSql(
      "SELECT a, COUNT(*) AS n FROM t WHERE b > 0 GROUP BY a "
      "HAVING COUNT(*) > 5 ORDER BY n DESC, a LIMIT 10;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_EQ(stmt->limit, 10);
}

TEST(ParserTest, JoinVariants) {
  auto stmt = ParseSql(
      "SELECT a FROM t1 JOIN t2 ON t1.k = t2.k "
      "LEFT OUTER JOIN t3 ON t1.k = t3.k CROSS JOIN t4");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->joins.size(), 3u);
  EXPECT_EQ(stmt->joins[0].type, JoinType::kInner);
  EXPECT_EQ(stmt->joins[1].type, JoinType::kLeftOuter);
  EXPECT_EQ(stmt->joins[2].type, JoinType::kCross);
  EXPECT_EQ(stmt->joins[2].condition, nullptr);
}

TEST(ParserTest, RightOuterJoin) {
  auto stmt = ParseSql("SELECT a FROM t1 RIGHT JOIN t2 ON t1.k = t2.k");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->joins[0].type, JoinType::kRightOuter);
}

TEST(ParserTest, QualifiedColumns) {
  auto stmt = ParseSql("SELECT t1.a FROM t1 WHERE t1.b = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].expr->table(), "t1");
  EXPECT_EQ(stmt->items[0].expr->column(), "a");
}

TEST(ParserTest, ContainsOperator) {
  auto stmt = ParseSql("SELECT a FROM t WHERE url CONTAINS 'baidu.com'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->compare_op(), CompareOp::kContains);
}

TEST(ParserTest, NotVariants) {
  auto stmt = ParseSql("SELECT a FROM t WHERE c2 > 0 AND !(c2 > 5)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->where->child(1)->logical_op(), LogicalOp::kNot);
  auto stmt2 = ParseSql("SELECT a FROM t WHERE NOT c2 > 5");
  ASSERT_TRUE(stmt2.ok());
  EXPECT_EQ(stmt2->where->logical_op(), LogicalOp::kNot);
}

TEST(ParserTest, LiteralsAllKinds) {
  auto stmt = ParseSql(
      "SELECT a FROM t WHERE b = 'x' AND c = 1.5 AND d = TRUE AND e = NULL "
      "AND f = -3");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
}

TEST(ParserTest, NegativeNumbersViaUnaryMinus) {
  auto stmt = ParseSql("SELECT a FROM t WHERE b > -10");
  ASSERT_TRUE(stmt.ok());
  // -10 parses as (0 - 10).
  EXPECT_EQ(stmt->where->child(1)->kind(), ExprKind::kArithmetic);
}

// ---------- Parser: errors ----------

TEST(ParserErrorTest, MissingFrom) {
  EXPECT_TRUE(ParseSql("SELECT a").status().IsInvalidArgument());
}

TEST(ParserErrorTest, MissingSelect) {
  EXPECT_TRUE(ParseSql("FROM t").status().IsInvalidArgument());
}

TEST(ParserErrorTest, DanglingOperator) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t WHERE b >").status()
                  .IsInvalidArgument());
}

TEST(ParserErrorTest, TrailingTokens) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t extra junk +")
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserErrorTest, BadLimit) {
  EXPECT_TRUE(
      ParseSql("SELECT a FROM t LIMIT x").status().IsInvalidArgument());
}

TEST(ParserErrorTest, JoinWithoutOn) {
  EXPECT_TRUE(
      ParseSql("SELECT a FROM t1 JOIN t2").status().IsInvalidArgument());
}

TEST(ParserErrorTest, UnbalancedParens) {
  EXPECT_TRUE(ParseSql("SELECT a FROM t WHERE (b > 1").status()
                  .IsInvalidArgument());
}

TEST(ParserErrorTest, ErrorMessageCarriesOffset) {
  Status status = ParseSql("SELECT a FROM t WHERE >").status();
  EXPECT_NE(status.message().find("offset"), std::string::npos);
}

// ---------- AST rendering ----------

TEST(AstTest, ToStringRoundTripsThroughParser) {
  const char* queries[] = {
      "SELECT a FROM t",
      "SELECT a, COUNT(*) AS n FROM t WHERE (b > 1) GROUP BY a "
      "ORDER BY n DESC LIMIT 5",
      "SELECT a FROM t1 INNER JOIN t2 ON (t1.k = t2.k) WHERE (t1.x < 3)",
  };
  for (const char* sql : queries) {
    auto stmt = ParseSql(sql);
    ASSERT_TRUE(stmt.ok()) << sql;
    std::string rendered = stmt->ToString();
    auto reparsed = ParseSql(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered;
    // Rendering is canonical: render(parse(render(x))) == render(x).
    EXPECT_EQ(reparsed->ToString(), rendered);
  }
}

TEST(AstTest, OutputNamePreference) {
  auto stmt = ParseSql("SELECT a AS x, b, COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->items[0].OutputName(), "x");
  EXPECT_EQ(stmt->items[1].OutputName(), "b");
  EXPECT_EQ(stmt->items[2].OutputName(), "COUNT(*)");
}

// ---------- Robustness fuzzing ----------

// The parser must never crash or accept garbage silently: every mutation
// either parses (and re-renders) or returns InvalidArgument.
TEST(ParserFuzzTest, RandomMutationsNeverCrash) {
  const std::string base =
      "SELECT c0, COUNT(*) AS n FROM t1 WHERE c2 > 0 AND (c2 <= 5 OR "
      "c7 CONTAINS 'kw') GROUP BY c0 ORDER BY n DESC LIMIT 10";
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  const char kNoise[] = "()'\",<>=!*+-%.;$ABCxyz019_";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = base;
    size_t edits = 1 + next() % 6;
    for (size_t e = 0; e < edits; ++e) {
      size_t pos = next() % mutated.size();
      switch (next() % 3) {
        case 0:  // replace
          mutated[pos] = kNoise[next() % (sizeof(kNoise) - 1)];
          break;
        case 1:  // delete
          mutated.erase(pos, 1 + next() % 3);
          break;
        default:  // insert
          mutated.insert(pos, 1, kNoise[next() % (sizeof(kNoise) - 1)]);
          break;
      }
      if (mutated.empty()) mutated = "x";
    }
    auto stmt = ParseSql(mutated);
    if (stmt.ok()) {
      // Whatever parsed must re-render into something parseable.
      auto reparsed = ParseSql(stmt->ToString());
      EXPECT_TRUE(reparsed.ok()) << mutated << " -> " << stmt->ToString();
    } else {
      EXPECT_TRUE(stmt.status().IsInvalidArgument()) << mutated;
    }
  }
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  const char* kTokens[] = {"SELECT", "FROM",  "WHERE", "AND",  "OR",
                           "NOT",    "(",     ")",     ",",    "*",
                           "a",      "t",     "1",     "'s'",  ">",
                           "JOIN",   "ON",    "GROUP", "BY",   "LIMIT"};
  uint64_t state = 12345;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    std::string soup;
    size_t len = 1 + next() % 12;
    for (size_t i = 0; i < len; ++i) {
      soup += kTokens[next() % 20];
      soup += " ";
    }
    auto stmt = ParseSql(soup);  // must not crash; outcome is free
    (void)stmt;
  }
}

}  // namespace
}  // namespace feisu
